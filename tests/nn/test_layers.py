"""Layer library tests."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.framework.errors import InvalidArgumentError
from repro.ops import nn_ops


class TestDense:
    def test_output_shape_and_value(self):
        layer = nn.Dense(4, kernel_initializer=lambda s: repro.ones(list(s)))
        x = repro.constant(np.ones((3, 2), np.float32))
        out = layer(x)
        assert out.shape.as_list() == [3, 4]
        np.testing.assert_allclose(out.numpy(), np.full((3, 4), 2.0))

    def test_lazy_build(self):
        layer = nn.Dense(4)
        assert not layer.built
        layer(repro.constant(np.ones((1, 5), np.float32)))
        assert layer.built
        assert layer.kernel.shape.as_list() == [5, 4]

    def test_activation(self):
        layer = nn.Dense(
            2, activation=nn_ops.relu, kernel_initializer=lambda s: -repro.ones(list(s))
        )
        out = layer(repro.constant(np.ones((1, 3), np.float32)))
        np.testing.assert_allclose(out.numpy(), [[0.0, 0.0]])

    def test_no_bias(self):
        layer = nn.Dense(2, use_bias=False)
        layer(repro.constant(np.ones((1, 3), np.float32)))
        assert len(layer.trainable_variables) == 1

    def test_dynamic_last_dim_rejected(self):
        layer = nn.Dense(2)
        with pytest.raises(InvalidArgumentError):
            layer.build(repro.TensorShape([None, None]))


class TestConv2D:
    def test_shapes(self):
        layer = nn.Conv2D(8, 3, strides=2, padding="SAME")
        out = layer(repro.constant(np.zeros((2, 8, 8, 3), np.float32)))
        assert out.shape.as_list() == [2, 4, 4, 8]
        assert layer.kernel.shape.as_list() == [3, 3, 3, 8]

    def test_variable_count(self):
        layer = nn.Conv2D(8, 3)
        layer(repro.constant(np.zeros((1, 4, 4, 2), np.float32)))
        assert len(layer.trainable_variables) == 2  # kernel + bias


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        bn = nn.BatchNormalization()
        x = repro.constant((np.random.randn(256, 4) * 5 + 3).astype(np.float32))
        out = bn(x, training=True).numpy()
        np.testing.assert_allclose(out.mean(0), np.zeros(4), atol=0.05)
        np.testing.assert_allclose(out.std(0), np.ones(4), atol=0.05)

    def test_moving_stats_update_only_in_training(self):
        bn = nn.BatchNormalization(momentum=0.5)
        x = repro.constant((np.random.randn(64, 2) + 10).astype(np.float32))
        bn(x, training=False)
        np.testing.assert_allclose(bn.moving_mean.numpy(), [0.0, 0.0])
        bn(x, training=True)
        assert (bn.moving_mean.numpy() > 1.0).all()

    def test_inference_uses_moving_stats(self):
        bn = nn.BatchNormalization(momentum=0.0)  # instant adoption
        x = repro.constant((np.random.randn(512, 3) * 2 + 7).astype(np.float32))
        bn(x, training=True)
        out = bn(x, training=False).numpy()
        np.testing.assert_allclose(out.mean(0), np.zeros(3), atol=0.1)


class TestPoolingAndShapes:
    def test_max_pool_layer(self):
        layer = nn.MaxPool2D(2)
        out = layer(repro.constant(np.zeros((1, 4, 4, 1), np.float32)))
        assert out.shape.as_list() == [1, 2, 2, 1]

    def test_global_average_pool(self):
        x = repro.constant(np.ones((2, 3, 3, 5), np.float32))
        out = nn.GlobalAveragePooling2D()(x)
        assert out.shape.as_list() == [2, 5]
        np.testing.assert_allclose(out.numpy(), np.ones((2, 5)))

    def test_flatten(self):
        out = nn.Flatten()(repro.constant(np.zeros((2, 3, 4), np.float32)))
        assert out.shape.as_list() == [2, 12]

    def test_dropout_inference_identity(self):
        x = repro.constant(np.ones((4,), np.float32))
        assert nn.Dropout(0.5)(x, training=False) is x


class TestSequentialAndTracking:
    def test_sequential_composes(self):
        model = nn.Sequential(
            [
                nn.Dense(8, activation=nn_ops.relu),
                nn.Dense(2),
            ]
        )
        out = model(repro.constant(np.ones((3, 4), np.float32)))
        assert out.shape.as_list() == [3, 2]
        assert len(model.trainable_variables) == 4

    def test_variables_deduplicated(self):
        shared = nn.Dense(2)

        class Twice(nn.Model):
            def __init__(self):
                super().__init__()
                self.a = shared
                self.b = shared

            def call(self, x, training=False):
                return self.a(x) + self.b(x)

        m = Twice()
        m(repro.constant(np.ones((1, 3), np.float32)))
        assert len(m.trainable_variables) == 2

    def test_non_trainable_excluded(self):
        bn = nn.BatchNormalization()
        bn(repro.constant(np.zeros((2, 3), np.float32)), training=True)
        assert len(bn.variables) == 4
        assert len(bn.trainable_variables) == 2

    def test_layers_work_inside_function(self):
        model = nn.Sequential([nn.Dense(4), nn.Dense(1)])

        @repro.function
        def forward(x):
            return model(x)

        x = repro.constant(np.ones((2, 3), np.float32))
        eager = model(x).numpy()
        staged = forward(x).numpy()
        np.testing.assert_allclose(staged, eager, rtol=1e-6)


class TestResNet:
    def test_tiny_forward_shapes(self):
        model = nn.resnet.resnet_tiny(num_classes=7)
        out = model(repro.constant(np.zeros((2, 8, 8, 3), np.float32)))
        assert out.shape.as_list() == [2, 7]

    def test_resnet50_has_53_convolutions(self):
        model = nn.resnet.resnet50_scaled(width=4)
        model(repro.constant(np.zeros((1, 16, 16, 3), np.float32)))
        convs = [v for v in model.trainable_variables if v.shape.rank == 4]
        assert len(convs) == 53  # 1 stem + 16 blocks * 3 + 4 downsample

    def test_bottleneck_residual_path(self):
        block = nn.resnet.Bottleneck(4, stride=1, downsample=True)
        x = repro.constant(np.random.randn(1, 4, 4, 8).astype(np.float32))
        out = block(x, training=True)
        assert out.shape.as_list() == [1, 4, 4, 16]
        assert (out.numpy() >= 0).all()  # final ReLU


class TestL2HMC:
    def test_sampler_step_shapes(self):
        energy = nn.l2hmc.gaussian_mixture_energy([[-1.0, 0.0], [1.0, 0.0]])
        dyn = nn.l2hmc.L2HMCDynamics(2, energy, num_steps=3)
        sampler = nn.l2hmc.L2HMCSampler(dyn)
        x = repro.random_normal([6, 2])
        loss, x_next = sampler.loss_and_samples(x)
        assert loss.shape.rank == 0
        assert x_next.shape.as_list() == [6, 2]

    def test_acceptance_probabilities_valid(self):
        energy = nn.l2hmc.gaussian_mixture_energy([[0.0, 0.0]])
        dyn = nn.l2hmc.L2HMCDynamics(2, energy, num_steps=2)
        x = repro.random_normal([8, 2])
        v = repro.random_normal([8, 2])
        x_new, v_new, logdet = dyn.propose(x, v)
        p = dyn.accept_prob(x, v, x_new, v_new, logdet).numpy()
        assert (p >= 0).all() and (p <= 1).all()

    def test_trainable(self):
        energy = nn.l2hmc.gaussian_mixture_energy([[0.0, 0.0]])
        dyn = nn.l2hmc.L2HMCDynamics(2, energy, num_steps=2)
        sampler = nn.l2hmc.L2HMCSampler(dyn)
        x = repro.random_normal([4, 2])
        with repro.GradientTape() as tape:
            loss, _ = sampler.loss_and_samples(x)
        grads = tape.gradient(loss, sampler.trainable_variables)
        assert len(grads) > 10
        assert sum(g is not None for g in grads) == len(grads)
