"""Optimizer update rules against hand-computed references."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.framework.errors import InvalidArgumentError


def _grad(value):
    return repro.constant(np.asarray(value, np.float32))


class TestSGD:
    def test_vanilla_update(self):
        v = repro.Variable([1.0, 2.0])
        nn.SGD(0.1).apply_gradients([(_grad([1.0, 2.0]), v)])
        np.testing.assert_allclose(v.numpy(), [0.9, 1.8], rtol=1e-6)

    def test_momentum_accumulates(self):
        v = repro.Variable([0.0])
        opt = nn.SGD(1.0, momentum=0.5)
        opt.apply_gradients([(_grad([1.0]), v)])  # m=1, v=-1
        opt.apply_gradients([(_grad([1.0]), v)])  # m=1.5, v=-2.5
        np.testing.assert_allclose(v.numpy(), [-2.5], rtol=1e-6)

    def test_nesterov(self):
        v = repro.Variable([0.0])
        opt = nn.SGD(1.0, momentum=0.5, nesterov=True)
        opt.apply_gradients([(_grad([1.0]), v)])
        # update = (g + m*mu) * lr = 1 + 0.5 = 1.5
        np.testing.assert_allclose(v.numpy(), [-1.5], rtol=1e-6)

    def test_none_gradients_skipped(self):
        a = repro.Variable([1.0])
        b = repro.Variable([1.0])
        nn.SGD(0.1).apply_gradients([(None, a), (_grad([1.0]), b)])
        np.testing.assert_allclose(a.numpy(), [1.0])
        np.testing.assert_allclose(b.numpy(), [0.9], rtol=1e-6)

    def test_all_none_raises(self):
        with pytest.raises(InvalidArgumentError):
            nn.SGD(0.1).apply_gradients([(None, repro.Variable(1.0))])


class TestAdam:
    def test_first_step_matches_reference(self):
        v = repro.Variable([1.0])
        opt = nn.Adam(learning_rate=0.001, beta_1=0.9, beta_2=0.999, epsilon=1e-8)
        opt.apply_gradients([(_grad([0.5]), v)])
        # Reference: m_hat = g, v_hat = g^2 -> update = lr * g/(|g|+eps)
        expected = 1.0 - 0.001 * 0.5 / (np.sqrt(0.25) + 1e-8)
        np.testing.assert_allclose(v.numpy(), [expected], rtol=1e-5)

    def test_reference_sequence(self):
        """Several steps against an independent NumPy Adam."""
        lr, b1, b2, eps = 0.01, 0.9, 0.999, 1e-7
        v = repro.Variable([2.0, -3.0])
        opt = nn.Adam(lr, b1, b2, eps)
        ref = np.array([2.0, -3.0])
        m = np.zeros(2)
        s = np.zeros(2)
        rng = np.random.default_rng(0)
        for step in range(1, 6):
            g = rng.normal(size=2)
            opt.apply_gradients([(_grad(g), v)])
            m = b1 * m + (1 - b1) * g
            s = b2 * s + (1 - b2) * g * g
            m_hat = m / (1 - b1 ** step)
            s_hat = s / (1 - b2 ** step)
            ref -= lr * m_hat / (np.sqrt(s_hat) + eps)
            np.testing.assert_allclose(v.numpy(), ref, rtol=1e-4, atol=1e-6)

    def test_slots_per_variable(self):
        a, b = repro.Variable([1.0]), repro.Variable([[1.0, 2.0]])
        opt = nn.Adam()
        opt.apply_gradients([(_grad([1.0]), a), (_grad([[1.0, 2.0]]), b)])
        assert len(opt.slots) == 4  # m and v for each variable

    def test_minimize_convenience(self):
        v = repro.Variable(4.0)
        opt = nn.SGD(0.5)
        with repro.GradientTape() as tape:
            loss = v * v
        opt.minimize(tape, loss, [v])
        assert float(v) == pytest.approx(4.0 - 0.5 * 8.0)


class TestStagedOptimizers:
    @pytest.mark.parametrize("make_opt", [lambda: nn.SGD(0.05, momentum=0.9), nn.Adam])
    def test_staged_matches_eager(self, make_opt):
        repro.set_random_seed(0)
        x = repro.constant(np.random.randn(16, 3).astype(np.float32))
        y = repro.constant(np.random.randn(16, 1).astype(np.float32))

        def run(opt, staged):
            repro.set_random_seed(7)
            model = nn.Dense(1)
            model(x)  # build deterministically under the seed

            def step():
                with repro.GradientTape() as tape:
                    loss = nn.mean_squared_error(y, model(x))
                grads = tape.gradient(loss, model.trainable_variables)
                opt.apply_gradients(zip(grads, model.trainable_variables))
                return loss

            fn = repro.function(step) if staged else step
            for _ in range(5):
                loss = fn()
            return float(loss), model.kernel.numpy().copy()

        eager_loss, eager_kernel = run(make_opt(), staged=False)
        staged_loss, staged_kernel = run(make_opt(), staged=True)
        assert eager_loss == pytest.approx(staged_loss, rel=1e-4)
        np.testing.assert_allclose(staged_kernel, eager_kernel, rtol=1e-4)
