"""Recurrent layers: both execution strategies of the §4.1 trade-off."""

import numpy as np
import pytest

import repro
from repro import nn


def _sequence(batch=4, steps=6, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return repro.constant(rng.normal(size=(batch, steps, dim)).astype(np.float32))


class TestCells:
    def test_lstm_shapes_and_state(self):
        cell = nn.LSTMCell(5)
        x = repro.constant(np.zeros((2, 3), np.float32))
        out, (h, c) = cell((x, cell.zero_state(2)))
        assert out.shape.as_list() == [2, 5]
        assert h.shape.as_list() == [2, 5]
        assert c.shape.as_list() == [2, 5]

    def test_lstm_forget_bias(self):
        cell = nn.LSTMCell(4)
        cell((repro.constant(np.zeros((1, 2), np.float32)), cell.zero_state(1)))
        bias = cell.bias.numpy()
        np.testing.assert_array_equal(bias[4:8], np.ones(4))  # forget gate
        np.testing.assert_array_equal(bias[:4], np.zeros(4))

    def test_gru_shapes(self):
        cell = nn.GRUCell(7)
        x = repro.constant(np.zeros((3, 2), np.float32))
        out, (h,) = cell((x, cell.zero_state(3)))
        assert out.shape.as_list() == [3, 7]
        assert len(cell.trainable_variables) == 4

    def test_state_carries_information(self):
        cell = nn.LSTMCell(4)
        x = repro.constant(np.ones((1, 2), np.float32))
        _, state1 = cell((x, cell.zero_state(1)))
        out_from_zero, _ = cell((x, cell.zero_state(1)))
        out_from_state, _ = cell((x, state1))
        assert not np.allclose(out_from_zero.numpy(), out_from_state.numpy())


class TestRNNModes:
    @pytest.mark.parametrize("cell_cls", [nn.LSTMCell, nn.GRUCell])
    def test_unrolled_and_while_agree(self, cell_cls):
        repro.set_random_seed(3)
        cell = cell_cls(5)
        x = _sequence()
        unrolled = nn.RNN(cell, return_sequences=True, unroll=True)(x)
        looped = nn.RNN(cell, return_sequences=True, unroll=False)(x)
        np.testing.assert_allclose(looped.numpy(), unrolled.numpy(), atol=1e-6)

    def test_return_last_output(self):
        cell = nn.LSTMCell(5)
        x = _sequence()
        seq = nn.RNN(cell, return_sequences=True)(x)
        last = nn.RNN(cell, return_sequences=False)(x)
        np.testing.assert_allclose(last.numpy(), seq.numpy()[:, -1], atol=1e-6)

    def test_unrolled_graph_grows_with_sequence_length(self):
        """Paper §4.1: tracing 'fully unrolls' Python loops."""

        def graph_size(steps, unroll):
            cell = nn.LSTMCell(4)
            rnn = nn.RNN(cell, unroll=unroll)
            fn = repro.function(lambda x: rnn(x))
            x = repro.constant(np.zeros((2, steps, 3), np.float32))
            return fn.get_concrete_function(x).num_nodes

        assert graph_size(12, unroll=True) > graph_size(4, unroll=True) + 20
        # while_loop keeps the graph constant-size.
        assert graph_size(12, unroll=False) == graph_size(4, unroll=False)

    def test_while_rnn_trains_staged(self):
        repro.set_random_seed(0)
        rng = np.random.default_rng(0)
        embed = nn.Embedding(12, 4)
        rnn = nn.RNN(nn.LSTMCell(8), unroll=False)
        head = nn.Dense(2)
        opt = nn.Adam(0.02)
        ids = repro.constant(rng.integers(0, 12, size=(8, 5)))
        # Task: does the sequence contain token 0?
        labels = repro.constant((ids.numpy() == 0).any(axis=1).astype(np.int64))

        def step(ids, labels):
            with repro.GradientTape() as tape:
                logits = head(rnn(embed(ids)))
                loss = nn.sparse_softmax_cross_entropy(labels, logits)
            variables = (
                embed.trainable_variables
                + rnn.trainable_variables
                + head.trainable_variables
            )
            grads = tape.gradient(loss, variables)
            assert all(g is not None for g in grads)
            opt.apply_gradients(zip(grads, variables))
            return loss

        staged = repro.function(step)
        first = float(staged(ids, labels))
        for _ in range(25):
            last = float(staged(ids, labels))
        assert last < first * 0.8
        assert staged.trace_count <= 2

    def test_unrolled_rnn_trains_eagerly(self):
        repro.set_random_seed(1)
        rnn = nn.RNN(nn.GRUCell(6), unroll=True)
        head = nn.Dense(1)
        opt = nn.SGD(0.1)
        x = _sequence(seed=1)
        target = repro.constant(np.random.randn(4, 1).astype(np.float32))

        def step():
            with repro.GradientTape() as tape:
                loss = nn.mean_squared_error(target, head(rnn(x)))
            variables = rnn.trainable_variables + head.trainable_variables
            grads = tape.gradient(loss, variables)
            opt.apply_gradients(zip(grads, variables))
            return float(loss)

        losses = [step() for _ in range(15)]
        assert losses[-1] < losses[0]


class TestEmbeddingAndLayerNorm:
    def test_embedding_lookup(self):
        emb = nn.Embedding(5, 3)
        out = emb(repro.constant(np.array([[0, 4], [2, 2]])))
        assert out.shape.as_list() == [2, 2, 3]
        np.testing.assert_allclose(
            out.numpy()[1, 0], out.numpy()[1, 1]
        )  # same id, same vector

    def test_embedding_gradient_sparse_pattern(self):
        emb = nn.Embedding(6, 2)
        ids = repro.constant(np.array([1, 3, 3]))
        with repro.GradientTape() as tape:
            loss = repro.reduce_sum(emb(ids))
        g = tape.gradient(loss, emb.table).numpy()
        np.testing.assert_array_equal(g[1], [1.0, 1.0])
        np.testing.assert_array_equal(g[3], [2.0, 2.0])  # used twice
        np.testing.assert_array_equal(g[0], [0.0, 0.0])

    def test_layer_norm_normalizes(self):
        ln = nn.LayerNormalization()
        x = repro.constant((np.random.randn(8, 16) * 4 + 3).astype(np.float32))
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(8), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(8), atol=1e-3)

    def test_layer_norm_trainable(self):
        ln = nn.LayerNormalization()
        x = repro.constant(np.random.randn(2, 4).astype(np.float32))
        with repro.GradientTape() as tape:
            loss = repro.reduce_sum(ln(x) ** 2.0)
        grads = tape.gradient(loss, ln.trainable_variables)
        assert len(grads) == 2
        assert all(g is not None for g in grads)
