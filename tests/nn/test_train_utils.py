"""Gradient clipping, learning-rate schedules, metrics, EMA."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.framework.errors import InvalidArgumentError


class TestClipping:
    def test_global_norm(self):
        tensors = [repro.constant([3.0]), repro.constant([4.0])]
        assert float(nn.global_norm(tensors)) == pytest.approx(5.0)

    def test_clip_scales_down(self):
        tensors = [repro.constant([3.0]), repro.constant([4.0])]
        clipped, norm = nn.clip_by_global_norm(tensors, 1.0)
        assert float(norm) == pytest.approx(5.0)
        assert float(nn.global_norm(clipped)) == pytest.approx(1.0)
        np.testing.assert_allclose(clipped[0].numpy(), [0.6], rtol=1e-6)

    def test_clip_no_op_when_under(self):
        tensors = [repro.constant([0.3])]
        clipped, _ = nn.clip_by_global_norm(tensors, 10.0)
        np.testing.assert_allclose(clipped[0].numpy(), [0.3], rtol=1e-6)

    def test_preserves_none(self):
        clipped, _ = nn.clip_by_global_norm([repro.constant([1.0]), None], 0.5)
        assert clipped[1] is None

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgumentError):
            nn.global_norm([None])

    def test_clip_by_norm_single(self):
        out = nn.clip_by_norm(repro.constant([3.0, 4.0]), 2.5)
        np.testing.assert_allclose(out.numpy(), [1.5, 2.0], rtol=1e-6)

    def test_clipping_inside_staged_step(self):
        v = repro.Variable([10.0])
        opt = nn.SGD(1.0)

        @repro.function
        def step():
            with repro.GradientTape() as tape:
                loss = repro.reduce_sum(v * v) * 100.0
            grads = tape.gradient(loss, [v])
            clipped, _ = nn.clip_by_global_norm(grads, 1.0)
            opt.apply_gradients(zip(clipped, [v]))
            return loss

        step()
        assert float(v.numpy()[0]) == pytest.approx(9.0)  # moved by exactly 1


class TestSchedules:
    def test_exponential_decay(self):
        sched = nn.ExponentialDecay(1.0, decay_steps=10, decay_rate=0.5)
        assert sched(0) == 1.0
        assert sched(10) == pytest.approx(0.5)
        assert sched(5) == pytest.approx(0.5 ** 0.5)

    def test_exponential_staircase(self):
        sched = nn.ExponentialDecay(1.0, 10, 0.5, staircase=True)
        assert sched(9) == 1.0
        assert sched(10) == pytest.approx(0.5)

    def test_cosine(self):
        sched = nn.CosineDecay(2.0, decay_steps=100)
        assert sched(0) == pytest.approx(2.0)
        assert sched(50) == pytest.approx(1.0)
        assert sched(100) == pytest.approx(0.0, abs=1e-12)
        assert sched(1000) == pytest.approx(0.0, abs=1e-12)  # clamps

    def test_cosine_alpha_floor(self):
        sched = nn.CosineDecay(1.0, 10, alpha=0.1)
        assert sched(10) == pytest.approx(0.1)

    def test_piecewise(self):
        sched = nn.PiecewiseConstant([5, 10], [1.0, 0.1, 0.01])
        assert sched(0) == 1.0
        assert sched(5) == 0.1
        assert sched(12) == 0.01

    def test_piecewise_validation(self):
        with pytest.raises(InvalidArgumentError):
            nn.PiecewiseConstant([5], [1.0])

    def test_schedule_drives_optimizer(self):
        sched = nn.PiecewiseConstant([2], [1.0, 0.0])
        v = repro.Variable(1.0)
        opt = nn.SGD(sched(0))
        for step in range(4):
            opt.learning_rate = sched(step)
            with repro.GradientTape() as tape:
                loss = v * 1.0
            opt.apply_gradients(zip([tape.gradient(loss, v)], [v]))
        # Two unit steps, then LR 0: value froze at -1.
        assert float(v) == pytest.approx(-1.0)


class TestMetrics:
    def test_mean(self):
        m = nn.Mean()
        m.update_state(repro.constant(2.0))
        m.update_state(repro.constant(4.0))
        assert float(m.result()) == pytest.approx(3.0)
        m.reset_state()
        assert float(m.result()) == 0.0

    def test_accuracy(self):
        acc = nn.Accuracy()
        logits = repro.constant(np.float32([[5.0, 0.0], [0.0, 5.0], [5.0, 0.0]]))
        labels = repro.constant(np.array([0, 1, 1]))
        acc.update_state(labels, logits)
        assert float(acc.result()) == pytest.approx(2 / 3)
        acc.update_state(repro.constant(np.array([0])), repro.constant(np.float32([[9.0, 0.0]])))
        assert float(acc.result()) == pytest.approx(3 / 4)

    def test_metrics_update_inside_staged_function(self):
        m = nn.Mean()

        @repro.function
        def observe(x):
            m.update_state(x)

        for v in (1.0, 2.0, 3.0):
            observe(repro.constant(v))
        assert float(m.result()) == pytest.approx(2.0)

    def test_metrics_checkpointable(self, tmp_path):
        from repro.core.checkpoint import Checkpoint

        m = nn.Mean()
        m.update_state(repro.constant(10.0))
        path = Checkpoint(metric=m).save(str(tmp_path / "m"))
        fresh = nn.Mean()
        Checkpoint(metric=fresh).restore(path).assert_consumed()
        assert float(fresh.result()) == pytest.approx(10.0)


class TestEMA:
    def test_shadow_tracks_variable(self):
        v = repro.Variable(0.0)
        ema = nn.ExponentialMovingAverage(decay=0.5)
        ema.apply([v])  # initializes shadow to current value
        v.assign(10.0)
        ema.apply([v])
        assert float(ema.average(v).read_value()) == pytest.approx(5.0)
        v.assign(10.0)
        ema.apply([v])
        assert float(ema.average(v).read_value()) == pytest.approx(7.5)

    def test_unknown_variable_returns_none(self):
        ema = nn.ExponentialMovingAverage()
        assert ema.average(repro.Variable(1.0)) is None
