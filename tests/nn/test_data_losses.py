"""Dataset iterators and loss functions."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.framework.errors import OutOfRangeError


class TestDataset:
    def test_batching(self):
        ds = nn.Dataset([np.arange(10), np.arange(10) * 2], batch_size=3)
        x, y = next(iter(ds))
        np.testing.assert_array_equal(x.numpy(), [0, 1, 2])
        np.testing.assert_array_equal(y.numpy(), [0, 2, 4])

    def test_exhaustion(self):
        it = nn.Dataset([np.arange(4)], batch_size=2).make_iterator()
        it.get_next()
        it.get_next()
        with pytest.raises(OutOfRangeError):
            it.get_next()

    def test_repeat_wraps(self):
        it = nn.Dataset([np.arange(4)], batch_size=3).repeat().make_iterator()
        (first,) = it.get_next()
        (second,) = it.get_next()  # wraps to the start
        np.testing.assert_array_equal(second.numpy(), [0, 1, 2])

    def test_shuffle_deterministic_per_seed(self):
        a = list(nn.Dataset([np.arange(10)], batch_size=5).shuffle(3))
        b = list(nn.Dataset([np.arange(10)], batch_size=5).shuffle(3))
        np.testing.assert_array_equal(a[0][0].numpy(), b[0][0].numpy())

    def test_mismatched_components_rejected(self):
        with pytest.raises(ValueError):
            nn.Dataset([np.arange(3), np.arange(4)])

    def test_synthetic_generator(self):
        ds = nn.synthetic_image_classification(20, height=8, width=8, num_classes=5)
        imgs, labels = next(iter(ds.batch(4)))
        assert imgs.shape.as_list() == [4, 8, 8, 3]
        assert labels.dtype is repro.int64
        assert (labels.numpy() < 5).all()

    def test_num_batches(self):
        assert nn.Dataset([np.arange(10)], batch_size=3).num_batches == 3


class TestLosses:
    def test_mse(self):
        loss = nn.mean_squared_error(
            repro.constant([1.0, 2.0]), repro.constant([2.0, 4.0])
        )
        assert float(loss) == pytest.approx((1 + 4) / 2)

    def test_softmax_xent_uniform(self):
        logits = repro.zeros([2, 4])
        labels = repro.constant(np.eye(4, dtype=np.float32)[[0, 1]])
        loss = nn.softmax_cross_entropy(labels, logits)
        assert float(loss) == pytest.approx(np.log(4), rel=1e-5)

    def test_sparse_xent_perfect_prediction(self):
        logits = repro.constant(np.float32([[100.0, 0.0], [0.0, 100.0]]))
        labels = repro.constant(np.array([0, 1]))
        assert float(nn.sparse_softmax_cross_entropy(labels, logits)) < 1e-5

    def test_losses_differentiable(self):
        logits = repro.constant(np.random.randn(4, 3).astype(np.float32))
        labels = repro.constant(np.array([0, 1, 2, 0]))
        with repro.GradientTape() as tape:
            tape.watch(logits)
            loss = nn.sparse_softmax_cross_entropy(labels, logits)
        g = tape.gradient(loss, logits)
        assert g.shape.as_list() == [4, 3]
        # Cross-entropy gradients sum to zero across classes per example.
        np.testing.assert_allclose(g.numpy().sum(axis=1), np.zeros(4), atol=1e-6)


class TestInitializers:
    def test_glorot_bounds(self):
        w = nn.initializers.glorot_uniform((64, 64)).numpy()
        limit = np.sqrt(6.0 / 128)
        assert (np.abs(w) <= limit).all()
        assert w.std() > 0

    def test_he_normal_scale(self):
        w = nn.initializers.he_normal((1000, 10)).numpy()
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.2)

    def test_constant(self):
        w = nn.initializers.constant(3.5)((2, 2))
        np.testing.assert_allclose(w.numpy(), np.full((2, 2), 3.5))
