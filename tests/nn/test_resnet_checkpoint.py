"""Checkpointed residual blocks: ``ResNet(checkpoint_blocks=True)``.

The knob-at-call-time design makes the cleanest possible A/B: one model,
one set of weights, toggling ``context.recompute`` between backward
passes.  Values and gradients must be bit-for-bit-level identical; only
the tape's contents (what was saved) differ.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import nn
from repro.runtime.context import context


def _loss_and_grads(model, x, training=False):
    with repro.GradientTape() as tape:
        logits = model(x, training=training)
        loss = repro.reduce_mean(repro.square(logits))
    variables = model.trainable_variables
    grads = tape.gradient(loss, variables)
    return float(loss.numpy()), [g.numpy() for g in grads], variables


@pytest.fixture
def model_and_input():
    repro.set_random_seed(7)
    model = nn.resnet.resnet_tiny(num_classes=3, checkpoint_blocks=True)
    x = repro.constant(
        np.random.default_rng(0).normal(size=(2, 8, 8, 3)).astype(np.float32)
    )
    model(x)  # build
    return model, x


class TestCheckpointedResNet:
    def test_forward_value_unaffected_by_knob(self, model_and_input):
        model, x = model_and_input
        on = model(x).numpy()
        context.recompute = False
        try:
            off = model(x).numpy()
        finally:
            context.recompute = True
        np.testing.assert_allclose(on, off)

    def test_gradients_match_uncheckpointed(self, model_and_input):
        model, x = model_and_input
        loss_on, grads_on, variables = _loss_and_grads(model, x)
        context.recompute = False
        try:
            loss_off, grads_off, _ = _loss_and_grads(model, x)
        finally:
            context.recompute = True
        assert loss_on == pytest.approx(loss_off, rel=1e-6)
        assert len(grads_on) == len(grads_off) == len(variables)
        for g_on, g_off in zip(grads_on, grads_off):
            np.testing.assert_allclose(g_on, g_off, rtol=1e-5, atol=1e-6)

    def test_tape_saves_block_boundaries_not_internals(self, model_and_input):
        model, x = model_and_input
        with repro.GradientTape() as tape:
            loss = repro.reduce_sum(model(x))
        ops = [r.op_name for r in tape._records]
        assert ops.count("RecomputeGrad") == len(model.blocks)
        # Block internals (conv + BN arithmetic) were suspended; the
        # stem and classifier still record normally.
        assert "Conv2D" in ops  # the stem conv, outside any block
        tape.gradient(loss, model.trainable_variables)

    def test_train_step_decreases_loss(self, model_and_input):
        model, x = model_and_input
        opt = nn.SGD(0.05)
        losses = []
        for _ in range(3):
            with repro.GradientTape() as tape:
                logits = model(x, training=False)
                loss = repro.reduce_mean(repro.square(logits))
            variables = model.trainable_variables
            grads = tape.gradient(loss, variables)
            opt.apply_gradients(zip(grads, variables))
            losses.append(float(loss.numpy()))
        assert losses[-1] < losses[0]

    def test_staged_step_matches_eager(self, model_and_input):
        model, x = model_and_input

        def step(x):
            return repro.reduce_mean(repro.square(model(x, training=False)))

        staged = repro.function(step)
        with repro.GradientTape() as tape:
            loss = staged(x)
        variables = model.trainable_variables
        staged_grads = tape.gradient(loss, variables)
        _, eager_grads, _ = _loss_and_grads(model, x)
        for sg, eg in zip(staged_grads, eager_grads):
            np.testing.assert_allclose(sg.numpy(), eg, rtol=1e-4, atol=1e-5)

    def test_checkpoint_object_graph_unchanged(self):
        """The wrapper list must not add checkpoint edges (dedup bug)."""
        repro.set_random_seed(7)
        plain = nn.resnet.resnet_tiny(num_classes=3)
        repro.set_random_seed(7)
        ckpt = nn.resnet.resnet_tiny(num_classes=3, checkpoint_blocks=True)
        x = repro.constant(np.zeros((1, 8, 8, 3), np.float32))
        plain(x), ckpt(x)
        names_plain = sorted(n for n, _ in plain._checkpoint_dependencies())
        names_ckpt = sorted(n for n, _ in ckpt._checkpoint_dependencies())
        assert names_plain == names_ckpt
        assert len(plain.trainable_variables) == len(ckpt.trainable_variables)
