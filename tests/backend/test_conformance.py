"""Backend conformance matrix.

Every registered :class:`ArrayBackend` must produce bit-compatible
results with the reference NumPy kernels across a representative
kernel × dtype grid, fall back to NumPy kernels for ops it does not
implement, and round-trip host buffers faithfully.  The ``tracked``
backend doubles as the pluggability witness: its primitive counters
prove ops were actually routed through the backend seam rather than
silently falling back.
"""

import os

import numpy as np
import pytest

import repro
from repro.backend import base, list_backends
from repro.backend.tracked import TRACKED_BACKEND, TrackedArray
from repro.ops import registry
from repro.runtime.context import context

ALL_BACKENDS = sorted(list_backends())

FLOAT_DTYPES = [np.float32, np.float64]
INT_DTYPES = [np.int32, np.int64]

BINARY_OPS = [
    ("Add", repro.add),
    ("Mul", repro.multiply),
    ("Maximum", repro.maximum),
]
UNARY_FLOAT_OPS = [
    ("Exp", repro.exp),
    ("Tanh", repro.tanh),
    ("Sqrt", repro.sqrt),
    ("Sigmoid", repro.sigmoid),
]
REDUCE_OPS = [
    ("Sum", repro.reduce_sum),
    ("Mean", repro.reduce_mean),
    ("Max", repro.reduce_max),
]


@pytest.fixture(params=ALL_BACKENDS)
def backend_name(request):
    context.kernel_backend = request.param
    TRACKED_BACKEND.reset_stats()
    yield request.param
    context._kernel_backend = "numpy"


def _rand(dtype, shape=(4, 5), seed=7):
    rng = np.random.default_rng(seed)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(1, 9, size=shape).astype(dtype)
    return (rng.random(shape) + 0.25).astype(dtype)


class TestKernelMatrix:
    @pytest.mark.parametrize("dtype", FLOAT_DTYPES + INT_DTYPES)
    @pytest.mark.parametrize("op_name,fn", BINARY_OPS)
    def test_binary_elementwise(self, backend_name, op_name, fn, dtype):
        a, b = _rand(dtype, seed=1), _rand(dtype, seed=2)
        out = fn(repro.constant(a), repro.constant(b)).numpy()
        ref = {
            "Add": np.add,
            "Mul": np.multiply,
            "Maximum": np.maximum,
        }[op_name](a, b)
        np.testing.assert_allclose(out, ref, rtol=1e-6)
        assert out.dtype == ref.dtype

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    @pytest.mark.parametrize("op_name,fn", UNARY_FLOAT_OPS)
    def test_unary_elementwise(self, backend_name, op_name, fn, dtype):
        x = _rand(dtype)
        out = fn(repro.constant(x)).numpy()
        ref = {
            "Exp": np.exp,
            "Tanh": np.tanh,
            "Sqrt": np.sqrt,
            "Sigmoid": lambda v: 1.0 / (1.0 + np.exp(-v)),
        }[op_name](x)
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES + INT_DTYPES)
    @pytest.mark.parametrize("op_name,fn", REDUCE_OPS)
    def test_reductions_preserve_dtype(self, backend_name, op_name, fn, dtype):
        x = _rand(dtype, shape=(3, 6))
        out = fn(repro.constant(x), axis=1).numpy()
        ref = {"Sum": np.sum, "Mean": np.mean, "Max": np.max}[op_name](
            x, axis=1
        )
        np.testing.assert_allclose(
            out, ref.astype(dtype), rtol=1e-6, atol=1e-6
        )
        # Framework convention: reductions keep the input dtype (no
        # silent int→int64 / float→float64 widening).
        assert out.dtype == dtype

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_matmul(self, backend_name, dtype):
        a = _rand(dtype, shape=(4, 3), seed=3)
        b = _rand(dtype, shape=(3, 5), seed=4)
        out = repro.matmul(repro.constant(a), repro.constant(b)).numpy()
        np.testing.assert_allclose(out, a @ b, rtol=1e-5)

    @pytest.mark.parametrize("src,dst", [(np.float32, "int32"), (np.int32, "float64")])
    def test_cast(self, backend_name, src, dst):
        x = _rand(src)
        out = repro.cast(repro.constant(x), dst).numpy()
        np.testing.assert_allclose(out, x.astype(dst))

    def test_comparison_returns_bool(self, backend_name):
        a, b = _rand(np.float32, seed=5), _rand(np.float32, seed=6)
        out = repro.less(repro.constant(a), repro.constant(b)).numpy()
        assert out.dtype == np.bool_
        np.testing.assert_array_equal(out, a < b)


class TestBackendSeam:
    def test_promote_types_matches_framework(self):
        for name in ALL_BACKENDS:
            be = base.get_backend(name)
            assert be.promote_types(repro.float32, repro.float32) is repro.float32
            with pytest.raises(TypeError):
                be.promote_types(repro.float32, repro.float64)

    def test_host_roundtrip(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        for name in ALL_BACKENDS:
            be = base.get_backend(name)
            dev = be.from_host(x)
            back = be.to_host(dev)
            np.testing.assert_array_equal(back, x)

    def test_tracked_counts_primitives(self):
        context.kernel_backend = "tracked"
        TRACKED_BACKEND.reset_stats()
        a = repro.constant(_rand(np.float32, shape=(4, 4), seed=8))
        out = repro.add(repro.matmul(a, a, transpose_b=True), a)
        out.numpy()
        calls = dict(TRACKED_BACKEND.primitive_calls)
        assert calls.get("MatMul", 0) >= 1
        assert calls.get("Add", 0) >= 1

    def test_tracked_buffers_are_tagged(self):
        context.kernel_backend = "tracked"
        a = repro.constant(np.ones((2, 2), dtype=np.float32))
        out = repro.multiply(a, a)
        assert out.backend == "tracked"
        assert isinstance(out._array, TrackedArray)
        # .numpy() hands back a plain host ndarray.
        assert type(np.asarray(out.numpy())) is np.ndarray

    def test_numpy_fallback_for_unimplemented_op(self):
        # Reshape has no tracked-backend kernel; resolution must fall
        # back to the numpy kernel rather than fail.
        context.kernel_backend = "tracked"
        k = registry.resolve_kernel("Reshape", "CPU")
        assert k is registry.get_kernel("Reshape", "CPU", backend="numpy")
        x = repro.constant(np.arange(6, dtype=np.float32))
        out = repro.reshape(x, [2, 3])
        assert out.shape.as_list() == [2, 3]

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            context.kernel_backend = "no-such-backend"
        assert context.kernel_backend == "numpy"

    def test_gradients_flow_through_backend(self):
        context.kernel_backend = "tracked"
        x = repro.constant(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.reduce_sum(repro.multiply(x, x))
        (g,) = tape.gradient(y, [x])
        np.testing.assert_allclose(g.numpy(), 2.0 * x.numpy())

    def test_staged_function_respects_backend(self):
        context.kernel_backend = "tracked"
        TRACKED_BACKEND.reset_stats()

        @repro.function
        def f(a, b):
            return repro.add(repro.multiply(a, b), a)

        x = repro.constant(np.ones((8,), dtype=np.float32))
        out = f(x, x)
        np.testing.assert_allclose(out.numpy(), 2.0 * np.ones(8))
        assert TRACKED_BACKEND.total_calls() >= 1


@pytest.mark.skipif(
    not os.environ.get("REPRO_PROCESS_DEVICES"),
    reason="process-device parity checks run with REPRO_PROCESS_DEVICES=1",
)
class TestProcessDeviceParity:
    def test_gpu_matmul_parity(self):
        from repro.runtime import worker_pool

        a_np = _rand(np.float32, shape=(96, 96), seed=11)
        with repro.device("/gpu:0"):
            a = repro.constant(a_np)
            out = repro.matmul(a, a).numpy()
        np.testing.assert_allclose(out, a_np @ a_np, rtol=1e-4)
        stats = worker_pool.worker_stats()
        assert any(st["ops_shipped"] > 0 for st in stats.values())

    def test_small_ops_stay_inline(self):
        with repro.device("/gpu:0"):
            a = repro.constant(np.float32(2.0))
            out = repro.add(a, a).numpy()
        assert float(out) == 4.0
