"""Deferred errors observed from a different thread than the producer.

Regression suite for the serving work: a server records/submits work on
one thread and a client blocks on the value in another, so the deferred
error protocol (async streams and lazy traces alike) must deliver the
failure at whichever thread hits the sync point — exactly once, with
the op name attached — and never hang, drop the error, or return an
unmaterialized value.
"""

import importlib.util
import threading

import numpy as np
import pytest

import repro

if importlib.util.find_spec("pytest_timeout") is not None:
    timeout_marker = pytest.mark.timeout(60, method="thread")
else:

    def timeout_marker(cls):
        return cls


@pytest.fixture
def async_mode():
    with repro.execution_mode("async"):
        yield


@pytest.fixture
def lazy_mode():
    with repro.execution_mode("lazy"):
        yield


def bad_tensor():
    # Fails in the kernel (index out of range), not in shape inference,
    # so the failure genuinely rides the deferred path.
    x = repro.constant([1.0, 2.0, 3.0])
    return repro.gather(x, repro.constant([7], dtype=repro.int32))


def on_thread(fn):
    """Run ``fn`` on a fresh thread; return its result or raise its error."""
    box = {}

    def run():
        try:
            box["result"] = fn()
        except BaseException as exc:
            box["error"] = exc

    t = threading.Thread(target=run)
    t.start()
    t.join(timeout=45.0)
    assert not t.is_alive(), "cross-thread observation hung"
    if "error" in box:
        raise box["error"]
    return box.get("result")


@timeout_marker
class TestAsyncCrossThread:
    def test_error_delivered_at_other_threads_numpy(self, async_mode):
        bad = bad_tensor()
        with pytest.raises(IndexError, match="Gather") as ei:
            on_thread(bad.numpy)
        assert getattr(ei.value, "_repro_async_op", None) == "Gather"

    def test_sync_on_other_thread_delivers_once(self, async_mode):
        bad = bad_tensor()  # noqa: F841 -- kept live, never observed
        with pytest.raises(IndexError):
            on_thread(repro.sync)
        repro.sync()  # already delivered; main thread sees nothing

    def test_value_produced_on_worker_read_on_main(self, async_mode):
        # The submitting thread exits before the value is observed.
        out = {}

        def submit():
            x = repro.constant(np.arange(8, dtype=np.float32))
            out["y"] = x * 2.0 + 1.0

        t = threading.Thread(target=submit)
        t.start()
        t.join(timeout=30.0)
        np.testing.assert_allclose(
            out["y"].numpy(), np.arange(8, dtype=np.float32) * 2.0 + 1.0
        )

    def test_failed_tensor_raises_on_every_thread(self, async_mode):
        bad = bad_tensor()
        for _ in range(2):
            with pytest.raises(IndexError):
                on_thread(bad.numpy)
        with pytest.raises(IndexError):
            bad.numpy()


@timeout_marker
class TestLazyCrossThread:
    def test_error_delivered_at_other_threads_numpy(self, lazy_mode):
        bad = bad_tensor()
        with pytest.raises(IndexError, match="Gather"):
            on_thread(bad.numpy)

    def test_recorded_on_worker_resolved_on_main(self, lazy_mode):
        out = {}

        def record():
            x = repro.constant(np.arange(6, dtype=np.float32))
            out["y"] = x * 3.0

        t = threading.Thread(target=record)
        t.start()
        t.join(timeout=30.0)
        np.testing.assert_allclose(
            out["y"].numpy(), np.arange(6, dtype=np.float32) * 3.0
        )

    def test_concurrent_resolvers_agree(self, lazy_mode):
        # Many threads race _resolve_output on the same lazy tensor;
        # the flush-then-clear ordering means nobody can observe the
        # handle before the segment actually executed.
        for _ in range(20):
            x = repro.constant(np.arange(16, dtype=np.float32))
            y = x * 2.0 + 1.0
            expected = np.arange(16, dtype=np.float32) * 2.0 + 1.0
            barrier = threading.Barrier(6)
            errors = []

            def resolve():
                try:
                    barrier.wait()
                    np.testing.assert_allclose(y.numpy(), expected)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=resolve) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not errors, errors

    def test_concurrent_resolvers_all_see_failure(self, lazy_mode):
        bad = bad_tensor()
        barrier = threading.Barrier(4)
        outcomes = []

        def resolve():
            barrier.wait()
            try:
                bad.numpy()
                outcomes.append("ok")  # pragma: no cover
            except IndexError:
                outcomes.append("raised")

        threads = [threading.Thread(target=resolve) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert outcomes == ["raised"] * 4
