"""Runtime internals: the recorder stack, suspend/stop semantics."""

import numpy as np
import pytest

import repro
from repro.runtime import records


class _SpyRecorder:
    def __init__(self, interested=True):
        self.seen = []
        self.interested = interested

    def should_record(self, inputs):
        return self.interested

    def record(self, op_name, attrs, inputs, outputs, backward_function=None):
        self.seen.append(op_name)


class TestRecorderStack:
    def test_operations_offered_to_recorders(self):
        spy = _SpyRecorder()
        records.push_recorder(spy)
        try:
            repro.add(repro.constant(1.0), repro.constant(1.0))
        finally:
            records.pop_recorder(spy)
        assert spy.seen == ["Add"]

    def test_uninterested_recorder_skipped(self):
        spy = _SpyRecorder(interested=False)
        records.push_recorder(spy)
        try:
            repro.add(repro.constant(1.0), repro.constant(1.0))
        finally:
            records.pop_recorder(spy)
        assert spy.seen == []

    def test_pop_wrong_recorder_raises(self):
        a, b = _SpyRecorder(), _SpyRecorder()
        records.push_recorder(a)
        records.push_recorder(b)
        try:
            with pytest.raises(RuntimeError):
                records.pop_recorder(a)
        finally:
            records.pop_recorder(b)
            records.pop_recorder(a)

    def test_stop_recording_masks_everything(self):
        spy = _SpyRecorder()
        records.push_recorder(spy)
        try:
            with records.stop_recording():
                repro.add(repro.constant(1.0), repro.constant(1.0))
        finally:
            records.pop_recorder(spy)
        assert spy.seen == []

    def test_suspend_hides_existing_allows_new(self):
        outer = _SpyRecorder()
        records.push_recorder(outer)
        try:
            with records.suspend():
                inner = _SpyRecorder()
                records.push_recorder(inner)
                try:
                    repro.add(repro.constant(1.0), repro.constant(1.0))
                finally:
                    records.pop_recorder(inner)
            repro.multiply(repro.constant(2.0), repro.constant(2.0))
        finally:
            records.pop_recorder(outer)
        assert inner.seen == ["Add"]
        assert outer.seen == ["Mul"]

    def test_suspend_detects_unbalanced_stack(self):
        stray = _SpyRecorder()
        suspender = records.suspend()
        suspender.__enter__()
        records.push_recorder(stray)
        with pytest.raises(RuntimeError):
            suspender.__exit__(None, None, None)
        records.pop_recorder(stray)
        suspender.__exit__(None, None, None)

    def test_could_record_fast_path(self):
        assert not records.could_record([repro.constant(1.0)])
        spy = _SpyRecorder()
        records.push_recorder(spy)
        try:
            assert records.could_record([repro.constant(1.0)])
        finally:
            records.pop_recorder(spy)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.framework import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_errors_also_subclass_builtins(self):
        from repro.framework import errors

        assert issubclass(errors.InvalidArgumentError, ValueError)
        assert issubclass(errors.NotFoundError, KeyError)
        assert issubclass(errors.OutOfRangeError, IndexError)
        assert issubclass(errors.UnimplementedError, NotImplementedError)

    def test_catching_base_class_works(self):
        with pytest.raises(repro.ReproError):
            repro.constant([1.0]) + repro.constant([1], dtype=repro.int32)


class TestRegistryInvariants:
    def test_every_kernel_has_an_op_def(self):
        from repro.ops import registry

        for op_name, device_type, backend in registry._KERNELS:
            registry.get_op_def(op_name)  # raises if missing

    def test_every_gradient_has_an_op_def(self):
        from repro.ops import registry

        for op_name in registry._GRADIENTS:
            registry.get_op_def(op_name)

    def test_every_op_is_stageable(self):
        """Every registered op has shape inference (staging support)."""
        from repro.ops import registry

        missing = [
            name
            for name in registry.list_ops()
            if registry.get_op_def(name).infer_fn is None
        ]
        assert missing == []

    def test_duplicate_op_rejected(self):
        from repro.framework.errors import AlreadyExistsError
        from repro.ops import registry

        with pytest.raises(AlreadyExistsError):
            registry.register_op("Add")

    def test_differentiable_float_ops_have_gradients(self):
        """Core float ops all carry gradient rules."""
        from repro.ops import registry

        required = [
            "Add", "Sub", "Mul", "RealDiv", "MatMul", "Exp", "Log", "Tanh",
            "Sigmoid", "Relu", "Softmax", "Conv2D", "MaxPool", "Sum", "Mean",
            "Reshape", "Transpose", "Concat", "Gather", "While", "Cond",
        ]
        for name in required:
            assert registry.has_gradient(name), name
