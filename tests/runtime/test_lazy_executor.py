"""The lazy eager executor: recording, flushing, caching, deferred errors.

Lazy mode's contract (ISSUE 6 tentpole): ``execute`` records pure ops
into a pending trace and returns :class:`~repro.tensor.LazyTensor`
outputs without running anything; any observation of a pending value
flushes the whole recorded segment through the staged compilation
pipeline (optimize → fuse → plan → run); repeated segments hit a
trace-hash cache; dead recorded work is elided; kernel errors surface
with the originating op's name attached, original type preserved,
delivered exactly once — the same deferred-error protocol as async
mode.
"""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError
from repro.runtime import lazy
from repro.runtime.context import Context, context
from repro.tensor import LazyTensor, PendingTensor


@pytest.fixture
def lazy_mode():
    with repro.execution_mode("lazy"):
        yield


def _snapshot():
    return dict(lazy.lazy_stats())


def _delta(before, key):
    return lazy.lazy_stats()[key] - before[key]


class TestExecutionModeKnob:
    def test_env_selects_lazy(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY_EAGER", "1")
        monkeypatch.delenv("REPRO_ASYNC_EAGER", raising=False)
        assert Context._executor_mode_from_env() == "lazy"

    def test_lazy_env_wins_over_async_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY_EAGER", "1")
        monkeypatch.setenv("REPRO_ASYNC_EAGER", "1")
        assert Context._executor_mode_from_env() == "lazy"

    def test_setter_and_properties(self, lazy_mode):
        assert context.executor_mode == "lazy"
        assert context.lazy_eager
        assert not context.async_eager

    def test_leaving_lazy_mode_flushes(self):
        with repro.execution_mode("lazy"):
            y = repro.constant([1.0, 2.0]) * 2.0
            assert isinstance(y, LazyTensor)
            assert not y.is_ready()
        # Mode exit is a synchronization point: recorded work ran.
        assert y.is_ready()
        np.testing.assert_allclose(y.numpy(), [2.0, 4.0])

    def test_segment_limit_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY_MAX_OPS", "banana")
        with pytest.raises(InvalidArgumentError):
            lazy.default_segment_limit()
        monkeypatch.setenv("REPRO_LAZY_MAX_OPS", "0")
        with pytest.raises(InvalidArgumentError):
            lazy.default_segment_limit()


class TestRecording:
    def test_pure_ops_record_without_executing(self, lazy_mode):
        before = _snapshot()
        x = repro.constant([1.0, 2.0, 3.0])
        y = repro.tanh(x * 2.0 + 1.0)
        assert isinstance(y, LazyTensor)
        assert isinstance(y, PendingTensor)
        assert not y.is_ready()
        assert _delta(before, "recorded_ops") == 3
        assert _delta(before, "flushes") == 0

    def test_shape_query_does_not_flush(self, lazy_mode):
        y = repro.constant(np.zeros((4, 5), np.float32)) * 2.0
        assert tuple(y.shape) == (4, 5)
        assert not y.is_ready()

    def test_observation_flushes_whole_segment(self, lazy_mode):
        x = repro.constant([1.0, 2.0])
        a = x * 2.0
        b = a + 1.0
        c = repro.exp(x)
        np.testing.assert_allclose(b.numpy(), [3.0, 5.0])
        # One flush settles every live record, not just the forced one.
        assert a.is_ready() and c.is_ready()

    def test_auto_flush_at_segment_cap(self, lazy_mode, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY_MAX_OPS", "4")
        before = _snapshot()
        y = repro.constant([1.0])
        for _ in range(4):
            y = y * 2.0
        assert _delta(before, "flushes") == 1
        assert y.is_ready()
        np.testing.assert_allclose(y.numpy(), [16.0])

    def test_stateful_ops_fall_back_to_sync_dispatch(self, lazy_mode):
        before = _snapshot()
        r = repro.random_normal([3])
        assert not isinstance(r, LazyTensor)
        assert _delta(before, "fallback_ops") >= 1

    def test_side_effecting_op_flushes_recorded_work(self, lazy_mode):
        v = repro.Variable([1.0, 2.0])
        y = repro.constant([1.0, 1.0]) * 3.0
        assert not y.is_ready()
        v.assign([5.0, 6.0])  # side effects observe program order
        assert y.is_ready()

    def test_read_write_read_stays_ordered(self, lazy_mode):
        v = repro.Variable([1.0])
        a = v.read_value() * 2.0
        v.assign([10.0])
        b = v.read_value() * 2.0
        np.testing.assert_allclose(a.numpy(), [2.0])
        np.testing.assert_allclose(b.numpy(), [20.0])

    def test_gradients_match_sync_mode(self):
        def program(x):
            return repro.reduce_sum(repro.tanh(x * x + 1.0))

        x_np = np.array([0.5, -1.5, 2.0], np.float32)
        grads = {}
        for mode in ("sync", "lazy"):
            with repro.execution_mode(mode):
                x = repro.constant(x_np)
                with repro.GradientTape() as tape:
                    tape.watch(x)
                    loss = program(x)
                grads[mode] = tape.gradient(loss, x).numpy()
        np.testing.assert_allclose(grads["lazy"], grads["sync"], rtol=1e-6)


class TestSegmentCache:
    @pytest.fixture(autouse=True)
    def _fresh_segment_cache(self):
        # These tests assert exact hit/miss/relaxation deltas, so they
        # must not be served by artifacts other tests already compiled
        # (the trace-hash cache is process-global).
        lazy.reset_lazy_stats(clear_cache=True)

    def test_repeated_segment_hits_trace_hash_cache(self, lazy_mode):
        before = _snapshot()
        for _ in range(3):
            x = repro.constant(np.ones(8, np.float32))
            (x * 2.0 + 1.0).numpy()
        assert _delta(before, "flushes") == 3
        assert _delta(before, "cache_hits") == 2

    def test_shape_change_relaxes_after_threshold(self, lazy_mode):
        # relax_retraces defaults to 1: the second distinct shape builds
        # a relaxed (None-dimension) artifact; the third hits it.
        before = _snapshot()
        for n in (4, 5, 6):
            x = repro.constant(np.ones(n, np.float32))
            out = (x * 2.0 + 1.0).numpy()
            np.testing.assert_allclose(out, np.full(n, 3.0))
        assert _delta(before, "relaxed_segments") >= 1
        assert _delta(before, "cache_relaxations") >= 1
        assert _delta(before, "cache_hits") >= 1

    def test_dead_recorded_work_is_elided(self, lazy_mode):
        before = _snapshot()
        x = repro.constant([1.0, 2.0])
        y = x * 123.0  # never observed
        del y
        repro.sync()
        assert _delta(before, "flushes") == 1
        assert _delta(before, "dead_flushes") == 1

    def test_flush_executes_fused_and_planned(self, lazy_mode):
        # The whole point: an undecorated elementwise chain dispatches
        # as a fused region when it runs at the flush.  Fusion is on by
        # default, but force it so this holds on the fusion-off CI leg.
        previous = context.graph_fusion
        context.graph_fusion = True
        try:
            with repro.profiler.Profile() as prof:
                x = repro.constant(np.ones(64, np.float32))
                y = repro.tanh(x * 2.0 + 1.0)
                repro.sync()
            del y
        finally:
            context.graph_fusion = previous
        assert prof.lazy_flushes >= 1
        assert "FusedElementwise" in prof.ops
        assert prof.fused_covered_ops >= 3
        assert "lazy eager:" in prof.summary()


class TestDeferredErrors:
    def test_error_carries_op_name_and_type(self, lazy_mode):
        x = repro.constant([1.0, 2.0, 3.0])
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        with pytest.raises(IndexError, match="Gather") as ei:
            bad.numpy()
        assert getattr(ei.value, "_repro_async_op", None) == "Gather"

    def test_failed_tensor_keeps_raising(self, lazy_mode):
        x = repro.constant([1.0])
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        for _ in range(2):
            with pytest.raises(IndexError):
                bad.numpy()

    def test_sync_delivers_live_unobserved_error_once(self, lazy_mode):
        x = repro.constant([1.0])
        bad = repro.gather(x, repro.constant([9], dtype=repro.int32))
        with pytest.raises(IndexError):
            repro.sync()
        repro.sync()  # delivered exactly once
        del bad

    def test_dependent_op_inherits_producer_error(self, lazy_mode):
        x = repro.constant([1.0, 2.0])
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        dep = bad * 2.0 + 1.0
        with pytest.raises(IndexError, match="Gather"):
            dep.numpy()

    def test_independent_ops_in_failed_segment_still_produce(self, lazy_mode):
        x = repro.constant([1.0, 2.0])
        good = x * 2.0
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        # Forcing the healthy value flushes the shared segment; the
        # op-by-op replay gives it a real value despite the failure.
        np.testing.assert_allclose(good.numpy(), [2.0, 4.0])
        with pytest.raises(IndexError):
            bad.numpy()

    def test_tape_gradient_is_a_delivery_point(self, lazy_mode):
        # Gradient computation flushes the recorded forward segment, so
        # a recorded kernel error surfaces here, not mid-backward-sweep.
        x = repro.constant([1.0, 2.0, 3.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
            loss = repro.reduce_sum(bad * 2.0)
        with pytest.raises(IndexError, match="Gather"):
            tape.gradient(loss, x)

    def test_healthy_work_after_failure(self, lazy_mode):
        x = repro.constant([1.0, 2.0])
        with pytest.raises(IndexError):
            repro.gather(x, repro.constant([7], dtype=repro.int32)).numpy()
        np.testing.assert_allclose((x + x).numpy(), [2.0, 4.0])
