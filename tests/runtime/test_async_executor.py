"""The asynchronous eager executor: streams, sync points, deferred errors.

Async mode's contract (ISSUE 3 tentpole, paper §4.1/§4.4): ``execute``
returns immediately with a pending tensor; per-device program order is
preserved; the Python thread blocks only where a value is observed; a
kernel error raised on a stream worker is delivered — with the op name
attached, original type preserved — at the next synchronization point
and never lost.  These tests drive that contract hard, including from
many threads at once.
"""

import importlib.util
import threading
import time

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError
from repro.runtime import dispatch
from repro.runtime.context import context
from repro.runtime.stream import ExecutionStream, PendingHandle, default_stream_depth
from repro.tensor import AsyncTensor

# pytest-timeout is installed in CI but optional locally; the no-hang
# assertions degrade to plain (unbounded) runs without it.
if importlib.util.find_spec("pytest_timeout") is not None:
    timeout_marker = pytest.mark.timeout(60, method="thread")
else:

    def timeout_marker(cls):
        return cls


@pytest.fixture
def async_mode():
    with repro.execution_mode("async"):
        yield


class TestExecutionModeKnob:
    def test_env_default_is_respected(self):
        # The conftest fixture resets to the env-derived default.
        import os

        expected = os.environ.get("REPRO_ASYNC_EAGER", "0").lower() in (
            "1",
            "true",
            "yes",
            "on",
        )
        assert context.async_eager is expected

    def test_setter_validates(self):
        with pytest.raises(InvalidArgumentError):
            context.executor_mode = "turbo"

    def test_scoped_mode_restores(self):
        before = context.executor_mode
        with repro.execution_mode("async"):
            assert context.executor_mode == "async"
            with repro.execution_mode("sync"):
                assert context.executor_mode == "sync"
            assert context.executor_mode == "async"
        assert context.executor_mode == before

    def test_leaving_async_synchronizes(self, async_mode):
        x = repro.constant(np.ones(8, dtype=np.float32))
        y = x + 1.0
        assert isinstance(y, AsyncTensor)
        context.executor_mode = "sync"
        # The mode switch drained the streams: y settled without any
        # value observation.
        assert y.is_ready()


class TestAsyncSemantics:
    def test_chain_returns_pending_then_correct(self, async_mode):
        x = repro.constant(np.arange(8, dtype=np.float32))
        y = x
        for _ in range(32):
            y = y * 1.0 + 1.0
        assert isinstance(y, AsyncTensor)
        np.testing.assert_allclose(y.numpy(), np.arange(8) + 32.0)

    def test_shape_query_does_not_block(self, async_mode):
        x = repro.constant(np.ones((4, 3), dtype=np.float32))
        y = repro.matmul(x, repro.constant(np.ones((3, 5), dtype=np.float32)))
        assert tuple(y.shape) == (4, 5)  # inferred, no sync needed
        assert y.dtype == repro.float32

    def test_every_observation_is_a_sync_point(self, async_mode):
        x = repro.constant([2.0])
        assert float(x * 3.0) == 6.0  # __float__
        assert bool(repro.reduce_sum(x) > 1.0)  # __bool__
        assert (x + x).numpy()[0] == 4.0  # numpy()
        assert repro.reduce_sum(x * 5.0).item() == 10.0  # item()
        assert len((repro.concat([x, x], axis=0))) == 2  # __len__

    def test_context_sync_is_a_barrier(self, async_mode):
        x = repro.constant(np.ones(4, dtype=np.float32))
        ys = [x * float(i) for i in range(8)]
        repro.sync()
        assert all(y.is_ready() for y in ys)

    def test_gradients_match_sync_mode(self):
        x_np = np.random.randn(3, 3).astype(np.float32)

        def compute():
            x = repro.constant(x_np)
            with repro.GradientTape() as tape:
                tape.watch(x)
                y = repro.reduce_sum(repro.tanh(repro.matmul(x, x)))
            return tape.gradient(y, x).numpy()

        with repro.execution_mode("sync"):
            ref = compute()
        with repro.execution_mode("async"):
            got = compute()
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-6)

    def test_py_func_synchronizes(self, async_mode):
        seen = []

        def observe(a):
            seen.append(np.asarray(a.numpy()).copy())
            return a * 2.0

        x = repro.constant(np.ones(3, dtype=np.float32))
        y = x + 1.0
        (out,) = repro.py_func(observe, [y], [repro.float32])
        # py_func saw the settled value of the pending input.
        np.testing.assert_allclose(seen[0], 2.0)
        np.testing.assert_allclose(out.numpy(), 4.0)


class TestDeferredErrors:
    def test_error_carries_op_name_and_type(self, async_mode):
        x = repro.constant([1.0, 2.0])
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        with pytest.raises(IndexError, match="Gather"):
            bad.numpy()

    def test_failed_tensor_keeps_raising(self, async_mode):
        x = repro.constant([1.0, 2.0])
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        for _ in range(3):
            with pytest.raises(IndexError):
                bad.numpy()

    def test_sync_delivers_unobserved_error_once(self, async_mode):
        x = repro.constant([1.0, 2.0])
        repro.gather(x, repro.constant([7], dtype=repro.int32))  # discarded
        with pytest.raises(IndexError, match="asynchronously"):
            repro.sync()
        repro.sync()  # delivered exactly once; the second sync is clean

    def test_observation_then_sync_does_not_double_deliver(self, async_mode):
        x = repro.constant([1.0, 2.0])
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        with pytest.raises(IndexError):
            bad.numpy()
        repro.sync()  # already delivered through the tensor

    def test_dependent_op_propagates_producer_error(self, async_mode):
        x = repro.constant([1.0, 2.0])
        bad = repro.gather(x, repro.constant([7], dtype=repro.int32))
        downstream = bad * 2.0 + 1.0
        with pytest.raises(IndexError, match="Gather"):
            downstream.numpy()

    def test_healthy_work_after_failure(self, async_mode):
        x = repro.constant([1.0, 2.0])
        with pytest.raises(IndexError):
            repro.gather(x, repro.constant([9], dtype=repro.int32)).numpy()
        np.testing.assert_allclose((x + x).numpy(), [2.0, 4.0])


class TestStreams:
    def test_stream_depth_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_DEPTH", "banana")
        with pytest.raises(InvalidArgumentError):
            default_stream_depth()
        monkeypatch.setenv("REPRO_STREAM_DEPTH", "0")
        with pytest.raises(InvalidArgumentError):
            default_stream_depth()
        monkeypatch.setenv("REPRO_STREAM_DEPTH", "16")
        assert default_stream_depth() == 16

    def test_fifo_order_within_stream(self):
        order = []
        stream = ExecutionStream("test-fifo", depth=4)
        try:
            for i in range(16):
                handle = PendingHandle(f"op{i}")
                stream.enqueue(f"op{i}", lambda i=i: order.append(i) or [], handle)
            stream.drain()
            assert order == list(range(16))
        finally:
            stream.shutdown()

    def test_backpressure_blocks_submitter(self):
        release = threading.Event()
        stream = ExecutionStream("test-backpressure", depth=2)
        try:
            for i in range(3):  # 1 executing + 2 queued = at capacity
                stream.enqueue("Slow", lambda: release.wait(10) and [], PendingHandle("Slow"))
            blocked = []

            def submit_one_more():
                stream.enqueue("Slow", lambda: [], PendingHandle("Slow"))
                blocked.append("done")

            t = threading.Thread(target=submit_one_more, daemon=True)
            t.start()
            t.join(timeout=0.2)
            assert not blocked  # the bounded queue held the submitter
            release.set()
            t.join(timeout=10)
            assert blocked == ["done"]
        finally:
            release.set()
            stream.shutdown()

    def test_pending_ops_counts_down(self, async_mode):
        x = repro.constant(np.ones(4, dtype=np.float32))
        for _ in range(8):
            x = x + 1.0
        device = x.device_object
        stream = device.execution_stream()
        stream.drain()
        assert stream.pending_ops == 0


@timeout_marker
class TestConcurrentSubmission:
    def test_many_threads_shared_input(self, async_mode):
        """Threads race op submission against a shared tensor; every
        result must be exact — no torn reads, no cross-thread mixups."""
        base = repro.constant(np.arange(16, dtype=np.float64))
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []

        def worker(k: int) -> None:
            try:
                y = base * float(k) + float(k)
                for _ in range(5):
                    y = y + base
                results[k] = y.numpy()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        expected_base = np.arange(16, dtype=np.float64)
        for k, got in results.items():
            np.testing.assert_allclose(
                got, expected_base * k + k + 5 * expected_base
            )

    def test_threads_with_private_chains_and_gradients(self, async_mode):
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                rng = np.random.default_rng(seed)
                x = repro.constant(rng.normal(size=(4, 4)), dtype=repro.float64)
                with repro.GradientTape() as tape:
                    tape.watch(x)
                    y = repro.reduce_sum(repro.tanh(repro.matmul(x, x)))
                g = tape.gradient(y, x)
                assert g is not None and g.numpy().shape == (4, 4)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_concurrent_failures_stay_attributed(self, async_mode):
        """Each thread's failed op raises in *that* thread's observation,
        with the failing op's name attached."""
        x = repro.constant([1.0, 2.0])
        outcomes: list[str] = []
        lock = threading.Lock()

        def worker(k: int) -> None:
            if k % 2 == 0:
                bad = repro.gather(x, repro.constant([5 + k], dtype=repro.int32))
                try:
                    bad.numpy()
                    with lock:
                        outcomes.append("no-raise")
                except IndexError as exc:
                    with lock:
                        outcomes.append(
                            "labelled" if "Gather" in str(exc) else "unlabelled"
                        )
            else:
                np.testing.assert_allclose((x * 2.0).numpy(), [2.0, 4.0])
                with lock:
                    outcomes.append("healthy")

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == ["healthy"] * 4 + ["labelled"] * 4
        # Drain whatever deferred state is left so it cannot leak.
        for _ in range(4):
            try:
                repro.sync()
                break
            except IndexError:
                continue


class TestThroughputShape:
    def test_submission_is_faster_than_completion(self, async_mode):
        """The point of the mode: submitting N ops returns before the
        device finished them (dispatch latency is off the critical
        path).  Uses a deliberately slow py-side kernel via big inputs."""
        x = repro.constant(np.ones((256, 256), dtype=np.float32))
        start = time.perf_counter()
        y = x
        for _ in range(64):
            y = y + 1.0
        submitted = time.perf_counter() - start
        y.numpy()
        completed = time.perf_counter() - start
        # Submission must not have waited for every kernel; allow a
        # generous margin so the assertion is robust on loaded machines.
        assert submitted < completed
