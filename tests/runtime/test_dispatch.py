"""The unified dispatch core: shared placement, kernel cache, interceptors."""

import numpy as np
import pytest

import repro
from repro.framework.errors import AlreadyExistsError, NotFoundError
from repro.graph.executor import GraphRunner, shutdown_thread_pool
from repro.graph.function import placeholder
from repro.graph.graph import Graph
from repro.ops import registry
from repro.runtime import dispatch
from repro.runtime.context import context


class _Tracing(dispatch.OpInterceptor):
    """Records every hook invocation into a shared event list."""

    def __init__(self, name, events, modes=(dispatch.EAGER, dispatch.GRAPH)):
        self.name = name
        self.modes = modes
        self.events = events

    def on_start(self, op_name, attrs, inputs, device):
        self.events.append((self.name, "start", op_name))
        return f"{self.name}-token"

    def on_complete(self, op_name, attrs, inputs, outputs, device, token):
        assert token == f"{self.name}-token"
        self.events.append((self.name, "complete", op_name))

    def on_error(self, op_name, attrs, inputs, device, token, exc):
        self.events.append((self.name, "error", op_name))


@pytest.fixture
def registered(request):
    """Register interceptors for the test body, always unregistering."""

    def _register(*interceptors):
        for it in interceptors:
            dispatch.core.register_interceptor(it)
            request.addfinalizer(
                lambda it=it: dispatch.core.unregister_interceptor(it)
            )

    return _register


@pytest.fixture
def eager_dispatch_mode():
    """Pin a mode whose ops reach the eager dispatch core.

    The kernel cache and the eager interceptor stack belong to the
    sync/async submission paths; lazy mode routes pure ops through the
    graph executor instead, so tests of those internals run in sync
    mode when the suite-wide default is lazy.
    """
    mode = "sync" if context.lazy_eager else context.executor_mode
    with repro.execution_mode(mode):
        yield


class TestSharedDeviceResolution:
    def test_eager_and_graph_place_mixed_device_op_identically(self):
        """The collapsed resolver: first non-CPU input wins in both modes."""
        cpu_t = repro.constant([1.0, 2.0])
        gpu_t = repro.constant([3.0, 4.0]).gpu()

        eager_out = repro.add(cpu_t, gpu_t)

        g = Graph("mixed")
        a = placeholder(g, repro.float32, [2], name="a")
        b = placeholder(g, repro.float32, [2], name="b")
        with g.as_default():
            c = a + b
        (graph_out,) = GraphRunner(g, [c]).run([(a, cpu_t), (b, gpu_t)])

        assert eager_out.device == graph_out.device
        assert "GPU" in eager_out.device
        np.testing.assert_allclose(eager_out.numpy(), graph_out.numpy())

    def test_eager_and_graph_honor_explicit_placement_identically(self):
        x = repro.constant([1.0, 2.0])

        with repro.device("/gpu:0"):
            eager_out = repro.multiply(x, x)

        g = Graph("pinned")
        a = placeholder(g, repro.float32, [2], name="a")
        with g.as_default(), repro.device("/gpu:0"):
            c = a * a
        (graph_out,) = GraphRunner(g, [c]).run([(a, x)])

        assert eager_out.device == graph_out.device
        assert "GPU" in graph_out.device

    def test_all_cpu_inputs_stay_on_cpu_in_both_modes(self):
        x = repro.constant([1.0])
        eager_out = repro.add(x, x)
        g = Graph("cpu")
        a = placeholder(g, repro.float32, [1], name="a")
        with g.as_default():
            c = a + a
        (graph_out,) = GraphRunner(g, [c]).run([(a, x)])
        assert eager_out.device == graph_out.device
        assert "CPU" in eager_out.device


@pytest.mark.usefixtures("eager_dispatch_mode")
class TestKernelCache:
    def test_dispatch_populates_cache(self):
        dispatch.core.clear_kernel_cache()
        x = repro.constant(1.0)
        repro.add(x, x)
        repro.sync()  # async mode resolves the kernel on the stream worker
        key = ("Add", "CPU", (repro.float32, repro.float32), "numpy")
        assert key in dispatch.core._kernel_cache
        assert dispatch.core._kernel_cache[key] is registry.get_kernel("Add", "CPU")

    def test_kernel_registration_invalidates_cache(self):
        x = repro.constant(1.0)
        repro.add(x, x)
        assert dispatch.core.kernel_cache_size() > 0
        registry.register_op("TestDispatchCacheOp", infer_fn=lambda specs, attrs: specs)
        registry.register_kernel("TestDispatchCacheOp", ("CPU",))(
            lambda arrays, attrs, device: arrays[0]
        )
        assert dispatch.core.kernel_cache_size() == 0

    def test_soft_placement_toggle_invalidates_cache(self):
        x = repro.constant(1.0)
        repro.add(x, x)
        assert dispatch.core.kernel_cache_size() > 0
        try:
            context.soft_device_placement = False
            assert dispatch.core.kernel_cache_size() == 0
        finally:
            context.soft_device_placement = True

    def test_registry_resolve_kernel_soft_placement(self):
        # GPU has the shared NumPy kernel; TPU has none and soft-places.
        assert registry.resolve_kernel("Add", "TPU") is registry.get_kernel(
            "Add", "CPU"
        )
        with pytest.raises(NotFoundError):
            registry.resolve_kernel("Add", "TPU", allow_soft_placement=False)


class TestInterceptors:
    def test_inactive_stack_is_empty(self):
        """No tape, no profiler: the per-op cost is one emptiness check."""
        assert dispatch.core.eager_interceptors == ()
        assert dispatch.core.graph_interceptors == ()
        assert dispatch.core.stage_interceptors == ()

    def test_ordering_start_in_order_complete_in_reverse(self, registered):
        events = []
        registered(_Tracing("a", events), _Tracing("b", events))
        x = repro.constant(1.0)
        y = repro.add(x, x)
        repro.sync()  # async: hooks run on the worker; lazy: at the flush
        del y
        assert events == [
            ("a", "start", "Add"),
            ("b", "start", "Add"),
            ("b", "complete", "Add"),
            ("a", "complete", "Add"),
        ]

    def test_graph_mode_interceptor_sees_nodes(self, registered):
        events = []
        registered(_Tracing("g", events, modes=(dispatch.GRAPH,)))

        @repro.function
        def f(v):
            return repro.exp(v) * v

        x = repro.constant([1.0, 2.0])
        f(x)  # trace (staging is not graph-mode execution)
        events.clear()
        f(x)
        ops = {op for (_, kind, op) in events if kind == "complete"}
        from repro.runtime.context import context

        if context.graph_fusion:
            # The fuse pass collapsed the Exp*Mul chain: interceptors
            # observe one dispatch for the whole region.
            assert "FusedElementwise" in ops
        else:
            assert "Exp" in ops and "Mul" in ops

    def test_profiler_and_records_active_simultaneously_eager(self):
        v = repro.Variable([2.0, 3.0])
        with repro.profiler.Profile() as prof:
            with repro.GradientTape() as tape:
                y = repro.reduce_sum(v * v)
            grad = tape.gradient(y, v)
        # Both interceptors observed the same dispatches.
        assert prof.ops["Mul"].count >= 1
        assert prof.ops["Sum"].count >= 1
        np.testing.assert_allclose(grad.numpy(), [4.0, 6.0])

    def test_profiler_and_records_active_simultaneously_staged(self):
        v = repro.Variable([2.0, 3.0])

        @repro.function
        def loss():
            return repro.reduce_sum(v * v)

        loss()  # trace outside the profiled region
        with repro.profiler.Profile() as prof:
            with repro.GradientTape() as tape:
                y = loss()
            grad = tape.gradient(y, v)
        assert "Mul" in prof.ops  # inner graph nodes are visible
        np.testing.assert_allclose(grad.numpy(), [4.0, 6.0])

    def test_interceptor_names_reflect_activity(self):
        assert dispatch.core.interceptor_names() == []
        with repro.profiler.Profile():
            assert "profiler" in dispatch.core.interceptor_names("graph")
            with repro.GradientTape():
                assert dispatch.core.interceptor_names("eager") == [
                    "profiler",
                    "records",
                ]
                assert dispatch.core.interceptor_names("stage") == ["records"]
            assert "records" not in dispatch.core.interceptor_names()
        assert dispatch.core.interceptor_names() == []

    def test_duplicate_registration_rejected(self, registered):
        it = _Tracing("dup", [])
        registered(it)
        with pytest.raises(AlreadyExistsError):
            dispatch.core.register_interceptor(it)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(NotFoundError):
            dispatch.core.unregister_interceptor(_Tracing("ghost", []))


class _RaisingInterceptor(dispatch.OpInterceptor):
    name = "boom"
    modes = (dispatch.EAGER, dispatch.GRAPH)

    def on_start(self, op_name, attrs, inputs, device):
        raise RuntimeError("interceptor exploded")


class TestInterceptorErrorPaths:
    @pytest.mark.usefixtures("eager_dispatch_mode")
    def test_raising_interceptor_does_not_corrupt_kernel_cache(self, registered):
        dispatch.core.clear_kernel_cache()
        x = repro.constant(1.0)
        repro.add(x, x)  # warm the cache
        repro.sync()  # async mode: the worker populates the cache
        size_before = dispatch.core.kernel_cache_size()

        boom = _RaisingInterceptor()
        dispatch.core.register_interceptor(boom)
        try:
            with pytest.raises(RuntimeError, match="interceptor exploded"):
                repro.add(x, x)
                repro.sync()  # async mode defers the error to the sync point
        finally:
            dispatch.core.unregister_interceptor(boom)

        assert dispatch.core.kernel_cache_size() == size_before
        assert float(repro.add(x, x)) == 2.0  # dispatch fully recovers

    def test_kernel_error_reaches_on_error_hook(self, registered):
        events = []
        registered(_Tracing("w", events))
        a = repro.constant([[1.0, 2.0]])
        with pytest.raises(ValueError):
            repro.matmul(a, a)  # incompatible shapes
        assert ("w", "error", "MatMul") in events
        assert ("w", "complete", "MatMul") not in events

    def test_profiler_survives_failing_op(self):
        x = repro.constant([[1.0, 2.0]])
        with repro.profiler.Profile() as prof:
            with pytest.raises(ValueError):
                repro.matmul(x, x)
            y = repro.add(repro.constant(1.0), repro.constant(1.0))
            repro.sync()  # async/lazy modes: run the kernel in-profile
        del y
        assert prof.ops["Add"].count == 1
        assert dispatch.core.interceptor_names() == []


class TestDeviceDispatchProtocol:
    def test_cpu_device_has_no_special_dispatch(self):
        cpu = context.cpu_device()
        assert cpu.op_runner is None
        assert not cpu._special_dispatch
        assert cpu.dispatch("Add", [], {}) is None

    def test_tpu_without_compiler_raises_through_protocol(self):
        tpu = context.get_device("/tpu:0")
        saved = tpu.op_runner
        tpu.set_op_runner(None)
        try:
            assert tpu._special_dispatch  # compilation-only: always special
            with pytest.raises(repro.ReproError, match="no compiler"):
                with repro.device("/tpu:0"):
                    repro.add(repro.constant(1.0), repro.constant(1.0))
        finally:
            tpu.set_op_runner(saved)

    def test_xla_install_sets_device_level_runner(self):
        import repro.xla  # noqa: F401  (installs on import)
        from repro.xla import tpu as tpu_bridge

        tpu = context.get_device("/tpu:0")
        tpu_bridge.install()
        try:
            assert tpu.op_runner is tpu_bridge.run_op_on_tpu
            assert dispatch.core.compilation_runner is tpu_bridge.run_op_on_tpu
            tpu_bridge.uninstall()
            assert tpu.op_runner is None
            assert dispatch.core.compilation_runner is None
        finally:
            tpu_bridge.install()

    def test_set_compiled_op_runner_shim(self):
        from repro.runtime import executor
        from repro.xla import tpu as tpu_bridge

        tpu = context.get_device("/tpu:0")
        try:
            executor.set_compiled_op_runner(tpu_bridge.run_op_on_tpu)
            assert tpu.op_runner is tpu_bridge.run_op_on_tpu
        finally:
            tpu_bridge.install()

    def test_late_added_compilation_device_inherits_runner(self):
        from repro.runtime.device import Device, local_device_spec
        from repro.xla import tpu as tpu_bridge

        tpu_bridge.install()
        dev = Device(local_device_spec("TPU", 7))
        assert dev.op_runner is None
        context.add_device(dev)
        try:
            assert dev.op_runner is tpu_bridge.run_op_on_tpu
        finally:
            del context._devices[dev.name]


class TestThreadPoolConfiguration:
    def test_pool_size_follows_context(self):
        from repro.graph import executor as graph_executor

        saved = context.inter_op_parallelism_threads
        shutdown_thread_pool()
        context.inter_op_parallelism_threads = 2
        try:
            g = Graph("par")
            a = placeholder(g, repro.float32, [2], name="a")
            with g.as_default():
                c = a + a
            (out,) = GraphRunner(g, [c]).run(
                [(a, repro.constant([1.0, 2.0]))], parallel=True
            )
            np.testing.assert_allclose(out.numpy(), [2.0, 4.0])
            assert graph_executor._POOL._max_workers == 2
        finally:
            context.inter_op_parallelism_threads = saved
            shutdown_thread_pool()

    def test_invalid_pool_size_rejected(self):
        with pytest.raises(repro.ReproError):
            context.inter_op_parallelism_threads = 0

    def test_env_var_parsing(self, monkeypatch):
        from repro.runtime.context import Context

        monkeypatch.setenv("REPRO_INTER_OP_THREADS", "3")
        assert Context._threads_from_env() == 3
        monkeypatch.setenv("REPRO_INTER_OP_THREADS", "zero")
        with pytest.raises(repro.ReproError):
            Context._threads_from_env()

    def test_shutdown_is_idempotent(self):
        shutdown_thread_pool()
        shutdown_thread_pool()
