"""Device model tests, including the paper's Listings 4 and 5."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError, NotFoundError
from repro.runtime.context import context
from repro.runtime.device import Device, DeviceCostModel, DeviceSpec


class TestDeviceSpec:
    def test_parse_full_name(self):
        spec = DeviceSpec.from_string("/job:training/replica:0/task:2/device:GPU:1")
        assert spec.job == "training"
        assert spec.task == 2
        assert spec.device_type == "GPU"
        assert spec.device_index == 1
        assert spec.is_fully_specified

    def test_parse_shorthand(self):
        spec = DeviceSpec.from_string("/gpu:0")
        assert spec.device_type == "GPU"
        assert spec.device_index == 0
        assert spec.job is None

    def test_parse_case_insensitive_type(self):
        assert DeviceSpec.from_string("/cpu:0").device_type == "CPU"

    def test_roundtrip(self):
        name = "/job:localhost/replica:0/task:0/device:TPU:0"
        assert DeviceSpec.from_string(name).to_string() == name

    def test_malformed_raises(self):
        with pytest.raises(InvalidArgumentError):
            DeviceSpec.from_string("gpu0???")

    def test_merge_with_default(self):
        partial = DeviceSpec.from_string("/gpu:0")
        default = DeviceSpec.from_string("/job:localhost/replica:0/task:0/device:CPU:0")
        merged = partial.make_merged_spec(default)
        assert merged.to_string() == "/job:localhost/replica:0/task:0/device:GPU:0"


class TestDeviceRegistry:
    def test_list_devices(self):
        names = repro.list_devices()
        assert any("CPU:0" in n for n in names)
        assert any("GPU:0" in n for n in names)
        assert any("TPU:0" in n for n in names)

    def test_get_device_shorthand(self):
        assert context.get_device("/gpu:0").device_type == "GPU"

    def test_unknown_device_raises(self):
        with pytest.raises(NotFoundError):
            context.get_device("/gpu:99")


class TestListing4:
    """Tensor copies between CPU and GPU (paper Listing 4)."""

    def test_cpu_to_gpu_copy(self):
        a = repro.constant(1.0)
        assert "CPU" in a.device
        b = a.gpu()
        assert "GPU:0" in b.device
        assert float(b) == 1.0

    def test_gpu_to_cpu_roundtrip(self):
        a = repro.constant([1.0, 2.0]).gpu()
        c = a.cpu()
        assert "CPU" in c.device
        np.testing.assert_allclose(c.numpy(), [1.0, 2.0])

    def test_copies_have_distinct_buffers(self):
        a = repro.constant([1.0])
        b = a.gpu()
        assert b.numpy() is not a.numpy()


class TestListing5:
    """Executing a GPU op with inputs on the CPU (paper Listing 5)."""

    def test_transparent_input_copy(self):
        a = repro.constant(1.0)
        b = repro.constant(2.0)
        with repro.device("/gpu:0"):
            c = repro.add(a, b)
        assert c.numpy() == 3.0
        assert "GPU:0" in c.device

    def test_result_stays_on_device_without_annotation(self):
        with repro.device("/gpu:0"):
            a = repro.constant([1.0])
        b = a * 2.0  # input attraction keeps the op on GPU
        assert "GPU:0" in b.device

    def test_nested_device_scopes(self):
        with repro.device("/gpu:0"):
            with repro.device("/cpu:0"):
                t = repro.add(repro.constant(1.0), repro.constant(1.0))
        assert "CPU" in t.device

    def test_device_none_reenables_auto_placement(self):
        with repro.device("/gpu:0"):
            with repro.device(None):
                t = repro.add(repro.constant(1.0), repro.constant(1.0))
        assert "CPU" in t.device

    def test_bad_device_name_fails_at_with(self):
        with pytest.raises(InvalidArgumentError):
            repro.device("not a device")


class TestMemoryAccounting:
    def test_allocation_stats(self):
        dev = Device(DeviceSpec.from_string("/job:j/replica:0/task:0/device:CPU:9"))
        dev.allocate(np.zeros(10, np.float32))
        stats = dev.memory_stats()
        assert stats["bytes_in_use"] == 40
        assert stats["num_allocations"] == 1

    def test_memory_limit_enforced(self):
        dev = Device(
            DeviceSpec.from_string("/job:j/replica:0/task:0/device:CPU:8"),
            memory_limit_bytes=16,
        )
        with pytest.raises(MemoryError):
            dev.allocate(np.zeros(100, np.float32))

    def test_allocate_copies_user_arrays(self):
        dev = Device(DeviceSpec.from_string("/job:j/replica:0/task:0/device:CPU:7"))
        src = np.ones(3, np.float32)
        buf = dev.allocate(src)
        src[0] = 99.0
        assert buf[0] == 1.0

    def test_allocate_preserves_zero_d(self):
        dev = Device(DeviceSpec.from_string("/job:j/replica:0/task:0/device:CPU:6"))
        assert dev.allocate(np.float32(3.0)).shape == ()


class TestCostModel:
    def test_roofline(self):
        cm = DeviceCostModel(
            launch_overhead_us=10,
            instruction_overhead_us=0.0,
            flops_per_us=100,
            bytes_per_us=50,
        )
        assert cm.program_cost_us(flops=1000, bytes_accessed=0) == 10.0
        assert cm.program_cost_us(flops=0, bytes_accessed=1000) == 20.0

    def test_instruction_overhead_added(self):
        cm = DeviceCostModel(instruction_overhead_us=2.0, flops_per_us=1.0)
        assert cm.program_cost_us(flops=3.0, bytes_accessed=0.0) == 5.0

    def test_tpu_uses_simulated_time(self):
        assert context.get_device("/tpu:0").uses_simulated_time
        assert not context.get_device("/gpu:0").uses_simulated_time

    def test_simulated_clock_accumulates(self):
        dev = Device(DeviceSpec.from_string("/job:j/replica:0/task:0/device:TPU:5"))
        dev.charge_simulated_time(5.0)
        dev.charge_simulated_time(2.5)
        assert dev.simulated_time_us == 7.5
        dev.reset_stats()
        assert dev.simulated_time_us == 0.0
