"""Process-parallel device workers: lifecycle, marshalling, failure.

These tests exercise the worker pool directly (no env flag needed):
they flip ``context.process_devices`` themselves and rely on the
conftest knob-reset fixture to shut workers down afterwards.
"""

import os
import signal
import time

import numpy as np
import pytest

import repro
from repro.framework.errors import InternalError, UnavailableError
from repro.runtime import worker_pool
from repro.runtime.context import context

GPU0 = "/job:localhost/replica:0/task:0/device:GPU:0"


@pytest.fixture
def process_devices():
    context.process_devices = True
    yield
    context.process_devices = False


def _gpu_device():
    return context.get_device(GPU0)


class TestExecution:
    def test_op_executes_in_child_process(self, process_devices):
        with repro.device("/gpu:0"):
            a = repro.constant(np.random.rand(96, 96).astype(np.float32))
            out = repro.matmul(a, a)
        np.testing.assert_allclose(
            out.numpy(), a.numpy() @ a.numpy(), rtol=1e-4
        )
        stats = worker_pool.worker_stats()[GPU0]
        assert stats["ops_shipped"] >= 1
        assert stats["last_exec_pid"] is not None
        assert stats["last_exec_pid"] != os.getpid()

    def test_device_marked_process_backed(self, process_devices):
        assert _gpu_device()._process_backed
        context.process_devices = False
        assert not _gpu_device()._process_backed

    def test_zero_dim_shapes_preserved(self, process_devices):
        w = worker_pool._worker_for(_gpu_device())
        (out,) = w.run_op(
            "Add", [np.float32(1.5), np.float32(2.5)], {}
        )
        assert out.shape == ()
        assert float(out) == 4.0

    def test_large_arrays_round_trip_via_shm(self, process_devices):
        w = worker_pool._worker_for(_gpu_device())
        big = np.random.rand(512, 512).astype(np.float64)  # 2 MiB >> inline
        (out,) = w.run_op("Mul", [big, big], {})
        np.testing.assert_allclose(out, big * big)


class TestErrorMarshalling:
    def test_kernel_error_type_crosses_boundary(self, process_devices):
        w = worker_pool._worker_for(_gpu_device())
        with pytest.raises(ValueError):
            w.run_op(
                "MatMul",
                [
                    np.ones((2, 3), dtype=np.float32),
                    np.ones((5, 7), dtype=np.float32),
                ],
                {"transpose_a": False, "transpose_b": False},
            )
        # The worker survives a kernel error and serves the next op.
        (out,) = w.run_op(
            "Add",
            [np.float32(1.0), np.float32(1.0)],
            {},
        )
        assert float(out) == 2.0

    def test_killed_worker_raises_unavailable_not_hang(
        self, process_devices
    ):
        w = worker_pool._worker_for(_gpu_device())
        os.kill(w.pid, signal.SIGKILL)
        w._proc.join(timeout=5.0)
        with pytest.raises(UnavailableError):
            w.run_op("Add", [np.float32(1.0), np.float32(1.0)], {})

    def test_respawn_after_worker_death(self, process_devices):
        dev = _gpu_device()
        w = worker_pool._worker_for(dev)
        old_pid = w.pid
        os.kill(old_pid, signal.SIGKILL)
        w._proc.join(timeout=5.0)
        with pytest.raises(UnavailableError):
            w.run_op("Add", [np.float32(1.0), np.float32(1.0)], {})
        # Dispatch-level recovery: the pool hands out a fresh worker.
        w2 = worker_pool._worker_for(dev)
        assert w2.pid != old_pid
        (out,) = w2.run_op("Add", [np.float32(3.0), np.float32(4.0)], {})
        assert float(out) == 7.0


class TestLifecycle:
    def test_shutdown_is_idempotent(self, process_devices):
        w = worker_pool._worker_for(_gpu_device())
        w.shutdown()
        w.shutdown()  # second call is a no-op, not an error
        assert not w._proc.is_alive()

    def test_knob_disable_stops_all_workers(self, process_devices):
        w = worker_pool._worker_for(_gpu_device())
        pid = w.pid
        context.process_devices = False
        assert worker_pool.worker_stats() == {}
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and _pid_alive(pid):
            time.sleep(0.05)
        assert not _pid_alive(pid)

    def test_knob_reenable_spawns_fresh_worker(self, process_devices):
        w = worker_pool._worker_for(_gpu_device())
        old = w.pid
        context.process_devices = False
        context.process_devices = True
        w2 = worker_pool._worker_for(_gpu_device())
        assert w2.pid != old
        (out,) = w2.run_op("Add", [np.float32(1.0), np.float32(1.0)], {})
        assert float(out) == 2.0

    def test_shutdown_workers_drains_pool(self, process_devices):
        worker_pool._worker_for(_gpu_device())
        assert worker_pool.worker_stats()
        worker_pool.shutdown_workers()
        assert worker_pool.worker_stats() == {}

    def test_cpu_devices_never_process_backed(self, process_devices):
        cpu = context.get_device(
            "/job:localhost/replica:0/task:0/device:CPU:0"
        )
        assert not cpu._process_backed


class TestShippability:
    def test_denylisted_ops_stay_in_parent(self, process_devices):
        assert not worker_pool._shippable("PyFunc", [], {})
        assert not worker_pool._shippable("FusedElementwise", [], {})

    def test_unpicklable_attrs_stay_in_parent(self, process_devices):
        assert not worker_pool._shippable(
            "Add", [], {"fn": lambda x: x}
        )

    def test_variables_keep_working_on_process_device(
        self, process_devices
    ):
        # Stateful ops (handle dtypes) are never shipped; the variable
        # lives in the parent and mixes with shipped compute.
        with repro.device("/gpu:0"):
            v = repro.Variable(np.ones((64, 64), dtype=np.float32))
            a = repro.constant(
                np.random.rand(64, 64).astype(np.float32)
            )
            prod = repro.matmul(a, v.read_value())
            v.assign(prod)
        np.testing.assert_allclose(
            v.numpy(), a.numpy() @ np.ones((64, 64), dtype=np.float32),
            rtol=1e-4,
        )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True
