"""The shared sync-point matrix for the pending-value execution modes.

Async and lazy eager both return :class:`~repro.tensor.PendingTensor`
subclasses from ``execute`` and promise the same observation contract:
every way Python can look at a value — ``numpy()``, ``item()``,
``bool()``, ``len()``, a cross-device copy, ``py_func`` — is a
synchronization point that (a) produces exactly the value sync mode
would, and (b) delivers a deferred kernel error with the originating
op's name attached, original type preserved, exactly once.  This file
drives that matrix identically through both modes.
"""

import numpy as np
import pytest

import repro
from repro.ops.script_ops import py_func
from repro.tensor import PendingTensor


@pytest.fixture(params=["async", "lazy"])
def pending_mode(request):
    with repro.execution_mode(request.param):
        yield request.param


def _pending_vec():
    """A pending [3, 5, 7] produced by recorded/enqueued pure ops."""
    x = repro.constant([1.0, 2.0, 3.0])
    y = x * 2.0 + 1.0
    assert isinstance(y, PendingTensor)
    return y


def _pending_error():
    """A pending tensor whose kernel fails (out-of-range gather)."""
    x = repro.constant([1.0, 2.0, 3.0])
    return repro.gather(x, repro.constant([7], dtype=repro.int32))


class TestValueMatrix:
    def test_numpy(self, pending_mode):
        np.testing.assert_allclose(_pending_vec().numpy(), [3.0, 5.0, 7.0])

    def test_item(self, pending_mode):
        total = repro.reduce_sum(_pending_vec())
        assert total.item() == pytest.approx(15.0)

    def test_bool(self, pending_mode):
        flag = repro.reduce_sum(_pending_vec()) > 10.0
        assert bool(flag) is True

    def test_len(self, pending_mode):
        assert len(_pending_vec()) == 3

    def test_float_and_int(self, pending_mode):
        total = repro.reduce_sum(_pending_vec())
        assert float(total) == pytest.approx(15.0)
        assert int(total) == 15

    def test_cross_device_copy(self, pending_mode):
        moved = _pending_vec().gpu()
        assert "GPU" in moved.device
        np.testing.assert_allclose(moved.numpy(), [3.0, 5.0, 7.0])

    def test_py_func_sees_materialized_inputs(self, pending_mode):
        seen = []

        def probe(arr):
            seen.append(np.array(arr))
            return arr + 1.0

        out = py_func(probe, [_pending_vec()], repro.float32)
        np.testing.assert_allclose(out.numpy(), [4.0, 6.0, 8.0])
        np.testing.assert_allclose(seen[0], [3.0, 5.0, 7.0])

    def test_tape_gradient(self, pending_mode):
        x = repro.constant([1.0, 2.0, 3.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            loss = repro.reduce_sum(x * x)
        np.testing.assert_allclose(tape.gradient(loss, x).numpy(), [2.0, 4.0, 6.0])


class TestErrorMatrix:
    def test_numpy_delivers_labelled_error(self, pending_mode):
        bad = _pending_error()
        with pytest.raises(IndexError, match="Gather") as ei:
            bad.numpy()
        assert getattr(ei.value, "_repro_async_op", None) == "Gather"

    def test_item_delivers(self, pending_mode):
        bad = _pending_error()
        with pytest.raises(IndexError):
            bad.item()

    def test_bool_delivers(self, pending_mode):
        bad = _pending_error()
        with pytest.raises(IndexError):
            bool(bad)

    def test_cross_device_copy_delivers(self, pending_mode):
        bad = _pending_error()
        with pytest.raises(IndexError, match="Gather"):
            bad.gpu()

    def test_py_func_delivers(self, pending_mode):
        bad = _pending_error()
        with pytest.raises(IndexError):
            py_func(lambda a: a, [bad], repro.float32).numpy()

    def test_delivery_is_exactly_once(self, pending_mode):
        bad = _pending_error()
        with pytest.raises(IndexError):
            bad.numpy()
        repro.sync()  # already delivered: the barrier stays clean
        np.testing.assert_allclose((_pending_vec()).numpy(), [3.0, 5.0, 7.0])
