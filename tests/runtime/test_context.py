"""Runtime context: execution modes, seeding, init_scope."""

import numpy as np
import pytest

import repro
from repro.runtime.context import context


class TestExecutionMode:
    def test_eager_by_default(self):
        assert repro.executing_eagerly()

    def test_graph_building_flips_mode(self):
        g = repro.Graph("t")
        assert repro.executing_eagerly()
        with g.as_default():
            assert not repro.executing_eagerly()
        assert repro.executing_eagerly()

    def test_init_scope_escapes_trace(self):
        """Paper §4.7: init_scope pauses the trace."""
        seen = {}

        @repro.function
        def f(x):
            with repro.init_scope():
                seen["eager_inside_trace"] = repro.executing_eagerly()
                seen["value"] = repro.constant(3.0) * 2.0  # executes eagerly
            return x * 1.0

        f(repro.constant(1.0))
        assert seen["eager_inside_trace"]
        assert isinstance(seen["value"], repro.Tensor)
        assert float(seen["value"]) == 6.0


class TestSeeding:
    def test_same_seed_same_stream(self):
        repro.set_random_seed(7)
        a = repro.random_normal([4]).numpy().copy()
        repro.set_random_seed(7)
        b = repro.random_normal([4]).numpy()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        repro.set_random_seed(7)
        a = repro.random_normal([8]).numpy().copy()
        repro.set_random_seed(8)
        b = repro.random_normal([8]).numpy()
        assert not np.array_equal(a, b)

    def test_devices_have_distinct_streams(self):
        repro.set_random_seed(7)
        a = repro.random_normal([8]).numpy().copy()
        repro.set_random_seed(7)
        with repro.device("/gpu:0"):
            b = repro.random_normal([8]).numpy()
        assert not np.array_equal(a, b)


class TestUniqueIds:
    def test_monotone(self):
        a = context.unique_id()
        b = context.unique_id()
        assert b > a
