"""Negative space of the autograph transform.

The transform is default-on for every ``repro.function``, so what it
must *not* change matters as much as what it lowers.  These tests pin:

- conversion skips (no control flow, generators, lambdas, idempotence);
- exact Python semantics for non-tensor predicates — evaluation order,
  short-circuiting, generators, ``try``/``finally``, closures mutating
  ``nonlocal`` state;
- function identity: name, doc, defaults, closure cells, line numbers;
- clear errors naming the offending symbol and source line when a
  construct cannot be lowered;
- both opt-out paths (per-function ``autograph=False`` and the
  ``REPRO_AUTOGRAPH`` context knob);
- the silent-specialization warning on ``bool(concrete tensor)`` inside
  a trace.
"""

import traceback

import numpy as np
import pytest

import repro
from repro.autograph import (
    AutographError,
    convert,
    converted_code,
    is_converted,
)
from repro.framework.errors import FailedPreconditionError
from repro.runtime.context import context


# ---------------------------------------------------------------------------
# Conversion skips
# ---------------------------------------------------------------------------


def _no_control_flow(x):
    return x * 2.0 + 1.0


def _gen(n):
    for i in range(n):
        yield i


def test_function_without_control_flow_is_returned_unchanged():
    assert convert(_no_control_flow) is _no_control_flow


def test_generator_function_is_returned_unchanged():
    assert convert(_gen) is _gen
    assert list(_gen(3)) == [0, 1, 2]


def test_lambda_is_returned_unchanged():
    f = lambda x: x + 1 if x > 0 else x - 1  # noqa: E731
    assert convert(f) is f


def test_conversion_is_idempotent():
    def f(x):
        if x > 0:
            return x
        return -x

    g = convert(f)
    assert g is not f
    assert is_converted(g)
    assert convert(g) is g


def test_converted_code_shows_lowered_operators():
    def f(x):
        while x > 0:
            x = x - 1
        return x

    code = converted_code(f)
    assert "_ag__.while_stmt" in code
    assert "while x > 0" not in code


# ---------------------------------------------------------------------------
# Python semantics preserved for non-tensor predicates
# ---------------------------------------------------------------------------


def test_python_control_flow_results_identical():
    def f(items):
        total = 0
        out = []
        for item in items:
            if item % 2 == 0:
                out.append(item)
            else:
                total += item
        i = 0
        while i < 3:
            total += i
            i += 1
        return total, out

    g = convert(f)
    assert g is not f
    assert g([1, 2, 3, 4, 5]) == f([1, 2, 3, 4, 5])


def test_short_circuit_evaluation_order_preserved():
    calls = []

    def a():
        calls.append("a")
        return False

    def b():
        calls.append("b")
        return True

    def f():
        if a() and b():
            return 1
        return 0

    g = convert(f)
    assert g() == 0
    assert calls == ["a"], "the `and` right operand must not run"

    calls.clear()

    def h():
        if a() or b():
            return 1
        return 0

    assert convert(h)() == 1
    assert calls == ["a", "b"]


def test_for_over_generator_with_break_does_not_overdrain():
    pulled = []

    def source():
        for i in range(10):
            pulled.append(i)
            yield i

    def f(gen):
        seen = []
        for item in gen:
            seen.append(item)
            if item >= 1:
                break
        return seen

    g = convert(f)
    assert g(source()) == [0, 1]
    # A careless canonicalization advances the iterator once past the
    # break; real Python stops exactly at the broken iteration.
    assert pulled == [0, 1]


def test_continue_semantics_preserved():
    def f(n):
        acc = []
        for i in range(n):
            if i % 2 == 0:
                continue
            acc.append(i)
        return acc

    assert convert(f)(6) == [1, 3, 5]


def test_return_inside_try_runs_finally():
    events = []

    def f(x):
        try:
            if x > 0:
                return "pos"
            return "nonpos"
        finally:
            events.append("fin")

    g = convert(f)
    assert g(1) == "pos"
    assert g(-1) == "nonpos"
    assert events == ["fin", "fin"]


def test_try_except_semantics_preserved():
    def f(x):
        caught = False
        try:
            if x > 0:
                raise ValueError("boom")
        except ValueError:
            caught = True
        return caught

    g = convert(f)
    assert g(1) is True
    assert g(-1) is False


def test_closure_mutating_nonlocal_reaches_original_cell():
    counter = {"n": 0}
    hits = 0

    def bump():
        nonlocal hits
        i = 0
        while i < 3:
            hits += 1
            counter["n"] += 1
            i += 1

    convert(bump)()
    assert hits == 3
    assert counter["n"] == 3


def test_while_else_left_interpreted():
    def f(n):
        i = 0
        while i < n:
            i += 1
        else:
            i = -i
        return i

    assert convert(f)(3) == -3


# ---------------------------------------------------------------------------
# Function identity
# ---------------------------------------------------------------------------


def test_name_doc_and_defaults_preserved():
    def f(x, scale=2.0, *, bias=1.0):
        """Scale then shift."""
        if x > 0:
            return x * scale + bias
        return x

    g = convert(f)
    assert g.__name__ == "f"
    assert g.__doc__ == "Scale then shift."
    assert g.__defaults__ == (2.0,)
    assert g.__kwdefaults__ == {"bias": 1.0}
    assert g(3) == 7.0
    assert g(3, scale=10.0, bias=0.0) == 30.0


def test_runtime_error_points_at_original_source_line():
    def f(x):
        if x > 0:
            raise ValueError("marker")  # LINE: raise-site
        return x

    g = convert(f)
    try:
        g(1)
    except ValueError:
        tb = traceback.extract_tb(__import__("sys").exc_info()[2])
        frame = tb[-1]
        assert frame.filename.endswith("test_transform.py")
        with open(frame.filename) as fh:
            line = fh.readlines()[frame.lineno - 1]
        assert "LINE: raise-site" in line
    else:
        pytest.fail("expected ValueError")


# ---------------------------------------------------------------------------
# Clear errors for un-lowerable staging
# ---------------------------------------------------------------------------


def test_branch_local_symbol_used_after_staged_if_raises_with_location():
    @repro.function(autograph=True)
    def f(x):
        if repro.reduce_sum(x) > 0.0:
            y = x * 2.0
        return y  # `y` has no value on the false path

    with pytest.raises(AutographError) as err:
        f(repro.constant([1.0, 2.0]))
    msg = str(err.value)
    assert "'y'" in msg
    assert "test_transform.py" in msg


def test_body_local_temp_used_after_staged_while_raises():
    @repro.function(autograph=True)
    def f(x):
        i = repro.constant(0)
        while i < 3:
            tmp = x * repro.cast(i, x.dtype)
            i = i + 1
        return tmp  # per-iteration temporary, not loop-carried

    with pytest.raises(AutographError, match="'tmp'"):
        f(repro.constant([1.0, 2.0]))


def test_non_tensor_loop_state_raises_with_symbol_and_location():
    @repro.function(autograph=True)
    def f(x):
        label = object()  # not convertible to a tensor
        i = repro.constant(0)
        while i < 3:
            label = object()
            i = i + 1
        return x

    with pytest.raises(AutographError) as err:
        f(repro.constant([1.0]))
    msg = str(err.value)
    assert "'label'" in msg
    assert "test_transform.py" in msg


# ---------------------------------------------------------------------------
# Opt-out paths
# ---------------------------------------------------------------------------


def _tensor_branch(x):
    if x > 0.0:
        return x * 2.0
    return -x


def test_opt_out_per_function():
    f = repro.function(_tensor_branch, autograph=False)
    with pytest.raises(FailedPreconditionError, match="repro.cond"):
        f(repro.constant(1.0))


def test_opt_out_via_context_knob():
    context.autograph = False
    try:
        f = repro.function(_tensor_branch)
        with pytest.raises(FailedPreconditionError, match="repro.cond"):
            f(repro.constant(1.0))
    finally:
        context.autograph = True


def test_explicit_opt_in_overrides_context_knob():
    context.autograph = False
    try:
        f = repro.function(_tensor_branch, autograph=True)
        assert float(f(repro.constant(2.0))) == 4.0
        assert float(f(repro.constant(-3.0))) == 3.0
        assert f.trace_count == 1
    finally:
        context.autograph = True


def test_default_on_single_trace_serves_both_branches():
    f = repro.function(_tensor_branch)
    assert float(f(repro.constant(2.0))) == 4.0
    assert float(f(repro.constant(-3.0))) == 3.0
    assert f.trace_count == 1


# ---------------------------------------------------------------------------
# Silent-specialization warning
# ---------------------------------------------------------------------------


def test_bool_of_concrete_tensor_during_tracing_warns_once():
    closed_over = repro.constant(1.0)

    def f(x):
        if bool(closed_over):
            return x * 2.0
        return x

    staged = repro.function(f, autograph=False)
    with pytest.warns(repro.TraceSpecializationWarning, match="test_transform.py"):
        staged(repro.constant(3.0))

    import warnings

    with warnings.catch_warnings(record=True) as seen:
        warnings.simplefilter("always")
        staged(repro.constant(np.array([1.0, 2.0], dtype=np.float32)))  # retrace
    assert not [
        w for w in seen if issubclass(w.category, repro.TraceSpecializationWarning)
    ], "the warning is rate-limited to once per call site"


def test_bool_of_concrete_tensor_outside_tracing_does_not_warn():
    import warnings

    with warnings.catch_warnings(record=True) as seen:
        warnings.simplefilter("always")
        assert bool(repro.constant(1.0))
    assert not [
        w for w in seen if issubclass(w.category, repro.TraceSpecializationWarning)
    ]
