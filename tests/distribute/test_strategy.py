"""Data-parallel strategy (the paper's distributed-training direction)."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.distribute import (
    ClusterSpec,
    DataParallelStrategy,
    PerReplica,
    connect_to_cluster,
    shutdown_cluster,
)
from repro.framework.errors import InvalidArgumentError, NotFoundError


@pytest.fixture
def two_workers():
    connect_to_cluster(ClusterSpec({"train": 2}))
    yield [
        "/job:train/task:0/device:CPU:0",
        "/job:train/task:1/device:CPU:0",
    ]
    shutdown_cluster()


class TestConstruction:
    def test_devices_validated(self):
        with pytest.raises(NotFoundError):
            DataParallelStrategy(["/job:nope/task:0/device:CPU:0"])

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgumentError):
            DataParallelStrategy([])

    def test_local_devices_work(self):
        strategy = DataParallelStrategy(["/cpu:0", "/gpu:0"])
        assert strategy.num_replicas == 2


class TestSharding:
    def test_split_batch(self, two_workers):
        strategy = DataParallelStrategy(two_workers)
        x = repro.constant(np.arange(8, dtype=np.float32).reshape(4, 2))
        shards = strategy.split_batch(x)
        assert len(shards) == 2
        np.testing.assert_array_equal(shards[0].numpy(), [[0, 1], [2, 3]])
        np.testing.assert_array_equal(shards[1].numpy(), [[4, 5], [6, 7]])

    def test_split_structure(self, two_workers):
        strategy = DataParallelStrategy(two_workers)
        batch = (repro.constant(np.zeros((4, 2), np.float32)), repro.constant(np.arange(4)))
        shards = strategy.split_batch(batch)
        x0, y0 = shards[0]
        assert x0.shape.as_list() == [2, 2]
        np.testing.assert_array_equal(y0.numpy(), [0, 1])

    def test_indivisible_batch_rejected(self, two_workers):
        strategy = DataParallelStrategy(two_workers)
        with pytest.raises(InvalidArgumentError):
            strategy.split_batch(repro.constant(np.zeros((3, 2), np.float32)))


class TestRunAndReduce:
    def test_run_places_on_each_device(self, two_workers):
        strategy = DataParallelStrategy(two_workers)
        outs = strategy.run(lambda: repro.constant(1.0) * 2.0)
        assert len(outs) == 2
        assert "task:0" in outs[0].device
        assert "task:1" in outs[1].device

    def test_reduce_sum_and_mean(self, two_workers):
        strategy = DataParallelStrategy(two_workers)
        values = PerReplica([repro.constant(2.0), repro.constant(4.0)])
        assert float(strategy.reduce_sum(values)) == 6.0
        assert float(strategy.reduce_mean(values)) == 3.0

    def test_replica_errors_propagate(self, two_workers):
        strategy = DataParallelStrategy(two_workers)

        def boom():
            raise RuntimeError("replica failure")

        with pytest.raises(RuntimeError, match="replica failure"):
            strategy.run(boom)


class TestGradientStep:
    def test_matches_single_device_training(self, two_workers):
        rng = np.random.default_rng(0)
        x_np = rng.normal(size=(32, 3)).astype(np.float32)
        y_np = (x_np @ np.float32([[1.0], [2.0], [-1.0]])).astype(np.float32)
        x, y = repro.constant(x_np), repro.constant(y_np)

        def train(strategy: bool):
            repro.set_random_seed(0)
            model = nn.Dense(1)
            model(x)
            opt = nn.SGD(0.1)
            losses = []
            if strategy:
                strat = DataParallelStrategy(two_workers)
                for _ in range(10):
                    losses.append(
                        float(
                            strat.gradient_step(
                                lambda bx, by: nn.mean_squared_error(by, model(bx)),
                                (x, y),
                                model.trainable_variables,
                                opt,
                            )
                        )
                    )
            else:
                for _ in range(10):
                    with repro.GradientTape() as tape:
                        loss = nn.mean_squared_error(y, model(x))
                    grads = tape.gradient(loss, model.trainable_variables)
                    opt.apply_gradients(zip(grads, model.trainable_variables))
                    losses.append(float(loss))
            return losses, model.kernel.numpy().copy()

        dist_losses, dist_kernel = train(strategy=True)
        local_losses, local_kernel = train(strategy=False)
        # Same data, same updates (mean of shard grads == full-batch grad
        # for MSE with equal shard sizes), so training trajectories match.
        np.testing.assert_allclose(dist_kernel, local_kernel, rtol=1e-4)
        assert dist_losses[-1] < dist_losses[0] * 0.5
