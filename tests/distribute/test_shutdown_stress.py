"""Shutdown races and counter concurrency for worker servers.

The seed implementation had two liveness/correctness bugs this file
pins down:

* a request enqueued concurrently with ``shutdown()`` was never served
  and its ``future.result()`` hung forever — now every submitted
  request is either served or failed with ``UnavailableError``;
* ``_ops_served`` (and ``Device`` launch counters) were incremented
  without synchronization from multiple threads.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro.distribute import (
    ClusterSpec,
    WorkerServer,
    connect_to_cluster,
    shutdown_cluster,
)
from repro.framework.errors import (
    DeadlineExceededError,
    ReproError,
    UnavailableError,
)
from repro.runtime.context import context


def _join_all(threads, timeout=10.0):
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(max(0.0, deadline - time.monotonic()))
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"client threads hung: {stuck}"


class TestShutdownUnderLoad:
    def test_no_client_hangs_when_shutdown_races_submissions(self):
        """Hammer run_op from many threads while shutting the worker down;
        every call must return a result or a typed error, never hang."""
        workers = connect_to_cluster(ClusterSpec({"load": 1}))
        worker = workers[0]
        device = next(iter(worker.devices.values()))
        x = repro.constant(1.0)
        outcomes: list = []
        outcomes_lock = threading.Lock()
        stop = threading.Event()

        def client(n):
            result = "ok"
            while not stop.is_set():
                try:
                    worker.run_op(device, "Add", [x, x], {}, deadline_ms=5000)
                    result = "ok"
                except (UnavailableError, DeadlineExceededError) as exc:
                    result = type(exc).__name__
                    break
                except BaseException as exc:  # noqa: BLE001 - test harness
                    result = f"unexpected:{exc!r}"
                    break
            with outcomes_lock:
                outcomes.append(result)

        threads = [
            threading.Thread(target=client, args=(i,), name=f"client-{i}", daemon=True)
            for i in range(8)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let clients build up in-flight requests
        shutdown_cluster(workers)
        stop.set()
        _join_all(threads)
        assert len(outcomes) == 8
        assert not [o for o in outcomes if o.startswith("unexpected")], outcomes

    def test_request_enqueued_during_shutdown_fails_cleanly(self):
        """The seed bug: check-then-enqueue raced shutdown's drain."""
        worker = WorkerServer("race", 0)
        device = next(iter(worker.devices.values()))
        x = repro.constant(1.0)
        errors = []
        started = threading.Event()

        def spam():
            started.set()
            for _ in range(2000):
                try:
                    worker.run_op(device, "Add", [x, x], {}, deadline_ms=5000)
                except ReproError as exc:
                    errors.append(exc)
                    return

        t = threading.Thread(target=spam, daemon=True)
        t.start()
        started.wait()
        worker.shutdown()
        t.join(timeout=10)
        assert not t.is_alive(), "client hung on a request racing shutdown"
        if errors:  # the thread may also have finished all 2000 ops first
            assert isinstance(errors[0], (UnavailableError, DeadlineExceededError))

    def test_shutdown_is_idempotent(self):
        worker = WorkerServer("idem", 0)
        worker.shutdown()
        worker.shutdown()  # second call: no error, no hang
        assert not worker.is_running

    def test_shutdown_after_kill(self):
        worker = WorkerServer("km", 0)
        worker.kill()
        worker.shutdown()  # joins the already-exiting thread
        assert not worker.is_running

    def test_shutdown_raises_internal_error_on_wedged_worker(self, monkeypatch):
        worker = WorkerServer("wedge", 0)
        release = threading.Event()
        worker.install_fault_hook(lambda op: release.wait() and None)
        device = next(iter(worker.devices.values()))
        x = repro.constant(1.0)
        with pytest.raises(DeadlineExceededError):
            worker.run_op(device, "Add", [x, x], {}, deadline_ms=50)
        # The serve thread is blocked in the hook; a 5 s join would slow
        # the suite, so shrink the timeout for the check.
        from repro.framework.errors import InternalError

        original_join = worker._thread.join
        monkeypatch.setattr(
            worker._thread, "join", lambda timeout=None: original_join(0.2)
        )
        with pytest.raises(InternalError, match="did not terminate"):
            worker.shutdown()
        release.set()  # unwedge so the thread exits


class TestCounterConcurrency:
    def test_ops_served_is_exact_under_concurrency(self):
        workers = connect_to_cluster(ClusterSpec({"count": 1}))
        worker = workers[0]
        device = next(iter(worker.devices.values()))
        device.reset_stats()
        base_served = worker.ops_served
        x = repro.constant(1.0)
        n_threads, n_ops = 8, 50

        def client():
            for _ in range(n_ops):
                worker.run_op(device, "Add", [x, x], {}, deadline_ms=5000)

        threads = [threading.Thread(target=client, daemon=True) for _ in range(n_threads)]
        for t in threads:
            t.start()
        _join_all(threads)
        assert worker.ops_served - base_served == n_threads * n_ops
        assert device.memory_stats()["kernel_launches"] == n_threads * n_ops
        shutdown_cluster(workers)

    def test_device_launch_counter_thread_safe_locally(self):
        device = context.cpu_device()
        device.reset_stats()
        n_threads, n_incr = 8, 2000

        def bump():
            for _ in range(n_incr):
                device.count_kernel_launch()

        threads = [threading.Thread(target=bump, daemon=True) for _ in range(n_threads)]
        for t in threads:
            t.start()
        _join_all(threads)
        assert device.memory_stats()["kernel_launches"] == n_threads * n_incr
        device.reset_stats()


class TestMultiWorkerStress:
    def test_concurrent_clients_across_workers(self):
        """Many client threads spraying eager ops across two workers."""
        connect_to_cluster(ClusterSpec({"stress": 2}))
        saved = context.rpc_deadline_ms
        context.rpc_deadline_ms = 10000.0
        results: dict[int, float] = {}
        lock = threading.Lock()

        def client(idx):
            task = idx % 2
            with repro.device(f"/job:stress/task:{task}/device:CPU:0"):
                acc = repro.constant(0.0)
                for i in range(25):
                    acc = acc + float(i)
            with lock:
                results[idx] = float(acc.cpu())

        try:
            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(8)
            ]
            for t in threads:
                t.start()
            _join_all(threads, timeout=30.0)
            assert results == {i: 300.0 for i in range(8)}
        finally:
            context.rpc_deadline_ms = saved
            shutdown_cluster()
