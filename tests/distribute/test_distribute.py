"""Distributed execution (paper §4.5)."""

import threading

import numpy as np
import pytest

import repro
from repro.distribute import ClusterSpec, connect_to_cluster, shutdown_cluster
from repro.framework.errors import InvalidArgumentError, UnavailableError


@pytest.fixture
def cluster():
    workers = connect_to_cluster(ClusterSpec({"training": 2}), gpus_per_worker=1)
    yield workers
    shutdown_cluster()


class TestClusterSpec:
    def test_task_counts(self):
        spec = ClusterSpec({"training": 3, "ps": 1})
        assert spec.jobs == ["ps", "training"]
        assert spec.num_tasks("training") == 3

    def test_device_names(self):
        spec = ClusterSpec({"training": 3})
        assert (
            spec.device_name("training", 2, "GPU", 0)
            == "/job:training/replica:0/task:2/device:GPU:0"
        )

    def test_explicit_endpoints(self):
        spec = ClusterSpec({"workers": ["hostA:1111", "hostB:2222"]})
        assert spec.task_address("workers", 1) == "hostB:2222"

    def test_unknown_job_raises(self):
        with pytest.raises(InvalidArgumentError):
            ClusterSpec({"a": 1}).num_tasks("b")

    def test_out_of_range_task_raises(self):
        with pytest.raises(InvalidArgumentError):
            ClusterSpec({"a": 1}).task_address("a", 5)


class TestRemoteExecution:
    def test_same_syntax_as_local_devices(self, cluster):
        """Paper: 'the user uses the same syntax as for local devices'."""
        with repro.device("/job:training/task:1/device:GPU:0"):
            out = repro.add(repro.constant(1.0), repro.constant(2.0))
        assert float(out.cpu()) == 3.0
        assert "job:training" in out.device and "task:1" in out.device

    def test_results_stay_remote(self, cluster):
        with repro.device("/job:training/task:0/device:CPU:0"):
            a = repro.constant([1.0, 2.0])
        b = a * 2.0  # follows its input's device
        assert "job:training" in b.device
        c = b.cpu()  # explicit copy to the coordinator
        assert "localhost" in c.device
        np.testing.assert_allclose(c.numpy(), [2.0, 4.0])

    def test_whole_graph_functions_run_remotely(self, cluster):
        @repro.function
        def step(x):
            return repro.reduce_sum(repro.tanh(x) * x)

        served_before = cluster[0].ops_served
        with repro.device("/job:training/task:0/device:CPU:0"):
            out = step(repro.constant([1.0, 2.0, 3.0]))
        assert "job:training" in out.device
        assert cluster[0].ops_served > served_before

    def test_remote_variables(self, cluster):
        with repro.device("/job:training/task:1/device:CPU:0"):
            v = repro.Variable([1.0])
        assert "job:training" in v.device
        v.assign_add([2.0])
        assert float(v.read_value().cpu()) == 3.0

    def test_concurrent_workers(self, cluster):
        """Paper: computations on remote devices run concurrently."""
        results = {}

        def run_on(task):
            with repro.device(f"/job:training/task:{task}/device:CPU:0"):
                acc = repro.constant(0.0)
                for i in range(20):
                    acc = acc + float(i)
                results[task] = float(acc.cpu())

        threads = [threading.Thread(target=run_on, args=(i,)) for i in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert results == {0: 190.0, 1: 190.0}

    def test_cross_worker_data_flow(self, cluster):
        with repro.device("/job:training/task:0/device:CPU:0"):
            a = repro.constant([1.0, 1.0])
        with repro.device("/job:training/task:1/device:CPU:0"):
            b = a + 1.0  # input transferred between workers
        assert "task:1" in b.device
        np.testing.assert_allclose(b.cpu().numpy(), [2.0, 2.0])


class TestLifecycle:
    def test_shutdown_rejects_new_work(self):
        workers = connect_to_cluster(ClusterSpec({"temp": 1}))
        shutdown_cluster()
        with pytest.raises(UnavailableError, match="shut down"):
            workers[0].run_op(
                list(workers[0].devices.values())[0], "Add", [], {}
            )

    def test_devices_unresolvable_after_shutdown(self):
        connect_to_cluster(ClusterSpec({"temp": 1}))
        shutdown_cluster()
        from repro.framework.errors import NotFoundError
        from repro.runtime.context import context

        with pytest.raises(NotFoundError):
            context.get_device("/job:temp/task:0/device:CPU:0")
