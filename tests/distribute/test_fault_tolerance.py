"""The distributed fault-tolerance layer: deadlines, retries, chaos.

Every test here encodes a no-hang guarantee: a dead, stalled, or
dropped worker must surface a typed error (or a recovered result)
within a bounded time, never block a client thread forever.
"""

import time

import numpy as np
import pytest

import repro
from repro.distribute import (
    ClusterSpec,
    DataParallelStrategy,
    FaultInjector,
    RetryPolicy,
    connect_to_cluster,
    get_retry_policy,
    set_retry_policy,
    shutdown_cluster,
)
from repro.framework.errors import (
    AbortedError,
    DeadlineExceededError,
    InvalidArgumentError,
    NotFoundError,
    ReproError,
    UnavailableError,
)
from repro.runtime.context import context


@pytest.fixture
def cluster():
    workers = connect_to_cluster(ClusterSpec({"ft": 2}))
    saved = context.rpc_deadline_ms
    context.rpc_deadline_ms = 2000.0  # a hang fails fast, not at 30 s
    yield workers
    context.rpc_deadline_ms = saved
    shutdown_cluster()


def _first_device(worker):
    return next(iter(worker.devices.values()))


def _add_op(worker, deadline_ms=None):
    x = repro.constant(1.0)
    return worker.run_op(
        _first_device(worker), "Add", [x, x], {}, deadline_ms=deadline_ms
    )


class TestErrorTaxonomy:
    def test_rpc_errors_are_repro_errors(self):
        for err in (UnavailableError, DeadlineExceededError, AbortedError):
            assert issubclass(err, ReproError)

    def test_stdlib_mappings(self):
        # So generic client code catching stdlib categories keeps working.
        assert issubclass(UnavailableError, ConnectionError)
        assert issubclass(DeadlineExceededError, TimeoutError)


class TestDeadlines:
    def test_delayed_worker_hits_deadline(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.delay(0.5, times=1)
            with pytest.raises(DeadlineExceededError, match="deadline"):
                _add_op(cluster[0], deadline_ms=50)

    def test_dropped_request_hits_deadline(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.drop(times=1)
            start = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                _add_op(cluster[0], deadline_ms=100)
            # Bounded: the deadline, not a hang.
            assert time.perf_counter() - start < 2.0

    def test_context_default_deadline_applies(self, cluster):
        context.rpc_deadline_ms = 60.0
        with FaultInjector(cluster[0]) as chaos:
            chaos.drop(times=1)
            with pytest.raises(DeadlineExceededError, match="60"):
                _add_op(cluster[0])

    def test_deadline_validation(self):
        with pytest.raises(InvalidArgumentError):
            context.rpc_deadline_ms = -5

    def test_healthy_op_unaffected(self, cluster):
        (out,) = _add_op(cluster[0], deadline_ms=5000)
        assert float(out.cpu()) == 2.0


class TestRetries:
    def test_transient_failures_recover(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.fail(times=2)  # fewer than max_attempts
            with repro.device("/job:ft/task:0/device:CPU:0"):
                out = repro.add(repro.constant(2.0), repro.constant(3.0))
            assert float(out.cpu()) == 5.0
            assert chaos.injected["fail"] == 2

    def test_transient_delays_recover(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.delay(0.2, times=1)  # first attempt deadlines, retry wins
            context.rpc_deadline_ms = 80.0
            with repro.device("/job:ft/task:0/device:CPU:0"):
                out = repro.add(repro.constant(1.0), repro.constant(1.0))
            assert float(out.cpu()) == 2.0

    def test_profiler_observes_retries(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.fail(times=2)
            with repro.profiler.Profile() as prof:
                with repro.device("/job:ft/task:0/device:CPU:0"):
                    repro.add(repro.constant(1.0), repro.constant(1.0))
        assert prof.retries.get("Add") == 2
        assert "remote retries" in prof.summary()

    def test_exhausted_retries_surface_error(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.fail(times=10)
            with pytest.raises(AbortedError, match="Injected fault"):
                with repro.device("/job:ft/task:0/device:CPU:0"):
                    repro.add(repro.constant(1.0), repro.constant(1.0))
                repro.sync()  # async mode defers the error to a sync point

    def test_stateful_ops_never_retried(self, cluster):
        with repro.device("/job:ft/task:1/device:CPU:0"):
            v = repro.Variable([1.0])
        with FaultInjector(cluster[1]) as chaos:
            chaos.fail(times=1, ops={"AssignAddVariableOp"})
            # AssignAddVariableOp is stateful: one injected abort must
            # propagate rather than risk applying the update twice.
            with pytest.raises(AbortedError):
                v.assign_add([1.0])
        np.testing.assert_allclose(v.read_value().cpu().numpy(), [1.0])

    def test_no_retry_against_dead_worker(self, cluster):
        cluster[1].kill()
        start = time.perf_counter()
        with pytest.raises(UnavailableError):
            with repro.device("/job:ft/task:1/device:CPU:0"):
                repro.add(repro.constant(1.0), repro.constant(1.0))
        # Fail-fast: no backoff sleeps against a permanently-dead worker.
        assert time.perf_counter() - start < 1.0

    def test_policy_validation_and_swap(self):
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(max_attempts=0)
        previous = set_retry_policy(None)
        try:
            assert get_retry_policy() is None
        finally:
            set_retry_policy(previous)

    def test_backoff_grows_and_jitters(self):
        policy = RetryPolicy(initial_backoff_ms=10, multiplier=2, jitter=0.25)
        b1 = [policy.backoff_seconds(1) for _ in range(50)]
        b3 = [policy.backoff_seconds(3) for _ in range(50)]
        assert all(0.0075 <= b <= 0.0125 for b in b1)
        assert all(0.030 <= b <= 0.050 for b in b3)
        assert len(set(b1)) > 1  # jitter decorrelates


class TestHealthChecks:
    def test_healthy_worker_pings(self, cluster):
        assert cluster[0].ping()

    def test_killed_worker_fails_ping(self, cluster):
        cluster[0].kill()
        assert not cluster[0].ping()

    def test_stalled_worker_fails_ping(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.delay(0.5, times=1)
            assert not cluster[0].ping(timeout_ms=50)


class TestKilledWorkers:
    def test_kill_surfaces_unavailable_not_hang(self, cluster):
        cluster[1].kill()
        start = time.perf_counter()
        with pytest.raises(UnavailableError, match="killed"):
            _add_op(cluster[1])
        assert time.perf_counter() - start < 1.0

    def test_injected_kill_fails_triggering_request(self, cluster):
        with FaultInjector(cluster[0]) as chaos:
            chaos.kill_worker(ops={"Mul"})
            with pytest.raises(UnavailableError):
                with repro.device("/job:ft/task:0/device:CPU:0"):
                    repro.multiply(repro.constant(2.0), repro.constant(3.0))
                repro.sync()  # async mode defers the error to a sync point
        assert not cluster[0].is_running

    def test_dispatch_after_cluster_shutdown_is_clear(self):
        connect_to_cluster(ClusterSpec({"tmp": 1}))
        with repro.device("/job:tmp/task:0/device:CPU:0"):
            a = repro.constant([1.0, 2.0])
        shutdown_cluster()
        # The tensor still references the dead remote device; placing an
        # op there must raise a clear UnavailableError, not an opaque
        # queue error.
        with pytest.raises(UnavailableError, match="shut down"):
            a + 1.0


class TestStrategyDegradation:
    def test_fail_fast_names_the_task(self, cluster):
        devices = [
            "/job:ft/task:0/device:CPU:0",
            "/job:ft/task:1/device:CPU:0",
        ]
        strategy = DataParallelStrategy(devices, on_replica_failure="fail")
        cluster[1].kill()
        with pytest.raises(UnavailableError, match=r"task:1"):
            strategy.run(lambda: repro.constant(1.0) * 2.0)

    def test_reshard_recovers_mid_run_kill(self, cluster):
        devices = [
            "/job:ft/task:0/device:CPU:0",
            "/job:ft/task:1/device:CPU:0",
        ]
        strategy = DataParallelStrategy(devices, on_replica_failure="reshard")
        chaos = FaultInjector(cluster[1])
        chaos.kill_worker(ops={"Mul"})
        shards = strategy.split_batch(repro.constant(np.arange(8, dtype=np.float32)))
        start = time.perf_counter()
        out = strategy.run(lambda t: repro.reduce_sum(t * 2.0), shards)
        elapsed = time.perf_counter() - start
        chaos.remove()
        assert [float(o.cpu()) for o in out] == [12.0, 44.0]
        assert strategy.reshard_events == 1
        # "Within the deadline": well under the 2 s fixture deadline.
        assert elapsed < 2.0

    def test_reshard_with_no_survivors_raises(self, cluster):
        devices = [
            "/job:ft/task:0/device:CPU:0",
            "/job:ft/task:1/device:CPU:0",
        ]
        strategy = DataParallelStrategy(devices, on_replica_failure="reshard")
        cluster[0].kill()
        cluster[1].kill()
        with pytest.raises(UnavailableError):
            strategy.run(lambda: repro.constant(1.0) * 2.0)

    def test_non_availability_errors_still_propagate(self, cluster):
        devices = ["/job:ft/task:0/device:CPU:0", "/job:ft/task:1/device:CPU:0"]
        strategy = DataParallelStrategy(devices, on_replica_failure="reshard")

        def boom():
            raise RuntimeError("replica bug")

        with pytest.raises(RuntimeError, match="replica bug"):
            strategy.run(boom)

    def test_mode_validation(self, cluster):
        with pytest.raises(InvalidArgumentError):
            DataParallelStrategy(["/cpu:0"], on_replica_failure="retry")


class TestResolverLifetime:
    def test_partial_shutdown_keeps_other_cluster_resolvable(self):
        first = connect_to_cluster(ClusterSpec({"alpha": 1}))
        second = connect_to_cluster(ClusterSpec({"beta": 1}))
        try:
            shutdown_cluster(first)
            # beta still resolves and serves...
            with repro.device("/job:beta/task:0/device:CPU:0"):
                out = repro.add(repro.constant(1.0), repro.constant(1.0))
            assert float(out.cpu()) == 2.0
            # ...while alpha's devices are gone.
            with pytest.raises(NotFoundError):
                context.get_device("/job:alpha/task:0/device:CPU:0")
        finally:
            shutdown_cluster()
        with pytest.raises(NotFoundError):
            context.get_device("/job:beta/task:0/device:CPU:0")

    def test_shutdown_unknown_workers_is_noop(self, cluster):
        other = connect_to_cluster(ClusterSpec({"other": 1}))
        shutdown_cluster(other)
        shutdown_cluster(other)  # already removed: no-op
        assert cluster[0].ping()
