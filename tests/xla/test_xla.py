"""XLA-sim: lowering, fusion, compiled execution, and the TPU bridge."""

import numpy as np
import pytest

import repro
import repro.xla  # installs the TPU hook
from repro.framework.errors import UnimplementedError
from repro.runtime.context import context
from repro.xla import compiler, fusion, hlo, tpu


def _concrete(fn, *args):
    return repro.function(fn).get_concrete_function(*args).graph_function


class TestLowering:
    def test_parameters_and_roots(self):
        gf = _concrete(lambda x: repro.reduce_sum(x * x), repro.constant([1.0, 2.0]))
        comp = hlo.lower(gf)
        params = [i for i in comp.instructions if i.opcode == "Parameter"]
        assert len(params) == len(gf.inputs)
        assert len(comp.roots) == 1

    def test_cost_estimates_positive(self):
        gf = _concrete(
            lambda x: repro.matmul(x, x),
            repro.constant(np.eye(8, dtype=np.float32)),
        )
        comp = hlo.lower(gf)
        matmuls = [i for i in comp.instructions if i.opcode == "MatMul"]
        assert matmuls and matmuls[0].flops == pytest.approx(2 * 8 * 8 * 8)
        assert comp.total_bytes > 0

    def test_py_func_uncompilable(self):
        gf = _concrete(
            lambda x: repro.py_func(lambda v: v.numpy(), [x], Tout=repro.float32),
            repro.constant(1.0),
        )
        with pytest.raises(UnimplementedError):
            hlo.lower(gf)


class TestFusion:
    def test_elementwise_chain_fuses(self):
        gf = _concrete(
            lambda x: repro.tanh(repro.exp(x * 2.0) + 1.0),
            repro.constant([1.0, 2.0]),
        )
        comp = hlo.lower(gf)
        fused = fusion.fuse_elementwise(comp)
        fusions = [i for i in fused.instructions if i.opcode == "Fusion"]
        assert len(fusions) == 1
        assert len(fusions[0].fused) >= 3
        # Fewer launches after fusion.
        assert len(fused.instructions) < len(comp.instructions)

    def test_matmul_breaks_fusion(self):
        gf = _concrete(
            lambda x: repro.matmul(x * 2.0, x) + 1.0,
            repro.constant(np.eye(3, dtype=np.float32)),
        )
        fused = fusion.fuse_elementwise(hlo.lower(gf))
        opcodes = [i.opcode for i in fused.instructions]
        assert "MatMul" in opcodes

    def test_fanout_not_fused(self):
        def f(x):
            y = repro.exp(x)  # two consumers
            return y * 2.0 + y

        gf = _concrete(f, repro.constant([1.0]))
        fused = fusion.fuse_elementwise(hlo.lower(gf))
        # Exp must remain standalone (its value feeds two ops).
        assert any(i.opcode == "Exp" for i in fused.instructions)

    def test_fusion_preserves_values(self):
        def f(x):
            return repro.tanh(repro.exp(x * 2.0) + repro.sigmoid(x))

        gf = _concrete(f, repro.constant([0.3, -1.2]))
        reference = gf.run([repro.constant([0.3, -1.2])])[0].numpy()
        exe = compiler.compile_function(gf, fuse=True)
        out = exe.execute([np.float32([0.3, -1.2])], context.get_device("/tpu:0"))
        np.testing.assert_allclose(out[0], reference, rtol=1e-6)

    def test_fusion_reduces_modelled_bytes(self):
        gf = _concrete(
            lambda x: repro.tanh(repro.exp(x * 2.0) + 1.0),
            repro.constant(np.zeros(1024, np.float32)),
        )
        comp = hlo.lower(gf)
        fused = fusion.fuse_elementwise(comp)
        assert fused.total_bytes < comp.total_bytes
        assert fused.total_flops == comp.total_flops


class TestCompiledExecution:
    def test_values_match_cpu(self):
        gf = _concrete(
            lambda x: repro.reduce_sum(repro.matmul(x, x) * 0.5),
            repro.constant(np.eye(4, dtype=np.float32)),
        )
        exe = compiler.compile_function(gf)
        arg = np.random.randn(4, 4).astype(np.float32)
        cpu_out = gf.run([repro.constant(arg)])[0].numpy()
        tpu_out = exe.execute([arg], context.get_device("/tpu:0"))[0]
        np.testing.assert_allclose(tpu_out, cpu_out, rtol=1e-5)

    def test_one_launch_overhead_per_execution(self):
        gf = _concrete(lambda x: repro.tanh(x) + repro.exp(x), repro.constant([1.0]))
        exe = compiler.compile_function(gf)
        dev = context.get_device("/tpu:0")
        dev.reset_stats()
        exe.execute([np.float32([1.0])], dev)
        once = dev.simulated_time_us
        exe.execute([np.float32([1.0])], dev)
        assert dev.simulated_time_us == pytest.approx(2 * once)
        assert once >= dev.cost_model.launch_overhead_us


class TestTPUBridge:
    def test_per_op_execution_charges_launch_each_time(self):
        dev = context.get_device("/tpu:0")
        dev.reset_stats()
        with repro.device("/tpu:0"):
            a = repro.constant([1.0, 2.0])
            b = a * 2.0 + 1.0
        np.testing.assert_allclose(b.numpy(), [3.0, 5.0])
        # constant copy is free; Mul and Add each pay >= one launch.
        assert dev.simulated_time_us >= 2 * dev.cost_model.launch_overhead_us

    def test_staged_call_is_one_launch(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(repro.tanh(x) * x + 1.0)

        dev = context.get_device("/tpu:0")
        x = repro.constant(np.random.randn(16).astype(np.float32))
        with repro.device("/tpu:0"):
            f(x)  # compile + first launch
            dev.reset_stats()
            out_tpu = f(x)
        per_step = dev.simulated_time_us
        assert per_step < 2 * dev.cost_model.launch_overhead_us
        np.testing.assert_allclose(float(out_tpu), float(f(x)), rtol=1e-5)

    def test_single_op_programs_are_cached(self):
        tpu.reset_caches()
        with repro.device("/tpu:0"):
            x = repro.constant([1.0])
            for _ in range(5):
                x = x * 1.5
        stats = tpu.compile_cache_stats()
        assert stats["op_compiles"] == 1  # same signature compiles once
        assert stats["launches"] >= 5

    def test_variables_work_on_tpu(self):
        with repro.device("/tpu:0"):
            v = repro.Variable([1.0, 2.0])
            v.assign_add([1.0, 1.0])
        np.testing.assert_allclose(v.numpy(), [2.0, 3.0])

    def test_gradients_through_tpu_function(self):
        v = repro.Variable(2.0)

        @repro.function
        def f(x):
            return x * v * v

        x = repro.constant(3.0)
        with repro.device("/tpu:0"):
            with repro.GradientTape() as tape:
                y = f(x)
            g = tape.gradient(y, v)
        assert float(g) == pytest.approx(12.0)
