"""Numeric verification of gradient rules via central differences.

Each test states only *what* is differentiated; the expected values
come from :func:`tests.harness.grad_check.check_gradients`, i.e. from
the definition of the derivative, not from a hand-derived formula that
could share a mistake with the implementation under test.
"""

import numpy as np
import pytest

import repro
from repro.ops import nn_ops
from tests.harness.grad_check import check_gradient, check_gradients, numeric_gradient


class TestChecker:
    """The checker itself must be trustworthy before we lean on it."""

    def test_numeric_gradient_of_known_function(self):
        # d/dx sum(x^2) = 2x, exactly representable — tight agreement.
        x = np.array([0.5, -1.25, 2.0])
        grad = numeric_gradient(lambda a: float(np.sum(a * a)), x)
        np.testing.assert_allclose(grad, 2 * x, rtol=1e-6)

    def test_checker_catches_a_wrong_gradient(self):
        # A gradient rule that is off by 2x must fail the check:
        # stop_gradient(x) + x has gradient 1, not the 2 a naive rule
        # for y = 2x would produce.  Build the mismatch directly.
        with pytest.raises(AssertionError):
            check_gradient(lambda x: repro.stop_gradient(x * x) + x * x, np.array([1.0, 2.0]))
            # analytic: 2x (only the live branch); objective behaves
            # like 2x^2 numerically -> numeric 4x.  Disagreement caught.

    def test_checker_rejects_disconnected_gradients(self):
        with pytest.raises(AssertionError, match="no gradient"):
            check_gradient(lambda x: repro.stop_gradient(x), np.array([1.0]))


class TestOpGradients:
    def test_matmul(self):
        check_gradients(
            repro.matmul,
            [np.random.randn(3, 4), np.random.randn(4, 2)],
        )

    def test_matmul_transposed(self):
        check_gradients(
            lambda a, b: repro.matmul(a, b, transpose_b=True),
            [np.random.randn(3, 4), np.random.randn(5, 4)],
        )

    def test_softmax(self):
        check_gradient(
            lambda x: nn_ops.softmax(x), np.random.randn(3, 5)
        )

    def test_softmax_cross_entropy_with_logits(self):
        labels = np.eye(4)[[0, 2, 1]]
        check_gradient(
            lambda logits: nn_ops.softmax_cross_entropy_with_logits(
                repro.constant(labels, dtype=logits.dtype), logits
            ),
            np.random.randn(3, 4),
        )

    def test_conv2d(self):
        check_gradients(
            lambda img, filt: nn_ops.conv2d(img, filt, strides=1, padding="SAME"),
            [np.random.randn(1, 4, 4, 2), np.random.randn(2, 2, 2, 3)],
        )

    def test_conv2d_valid_padding(self):
        check_gradients(
            lambda img, filt: nn_ops.conv2d(img, filt, strides=1, padding="VALID"),
            [np.random.randn(1, 5, 5, 1), np.random.randn(3, 3, 1, 2)],
        )

    def test_while_loop(self):
        # x -> x^8 by repeated squaring inside a while loop; the
        # gradient threads through three loop iterations.
        def loop_power(x):
            def body(i, acc):
                return i + 1, acc * acc

            _, out = repro.while_loop(
                lambda i, acc: i < 3, body, (repro.constant(0), x)
            )
            return out

        check_gradient(
            loop_power, np.array([0.9, 1.05, 1.1]), eps=1e-4, rtol=5e-2
        )

    def test_staged_while_loop(self):
        # The same loop staged through repro.function: the symbolic
        # While gradient must match central differences too.
        def loop_power(x):
            @repro.function
            def run(x):
                def body(i, acc):
                    return i + 1, acc * acc

                _, out = repro.while_loop(
                    lambda i, acc: i < 3, body, (repro.constant(0), x)
                )
                return out

            return run(x)

        check_gradient(
            loop_power, np.array([0.9, 1.05, 1.1]), eps=1e-4, rtol=5e-2
        )

    def test_reduce_logsumexp(self):
        check_gradient(
            lambda x: repro.reduce_logsumexp(x, axis=-1), np.random.randn(3, 4)
        )

    def test_gather(self):
        check_gradient(
            lambda p: repro.gather(p, repro.constant([2, 0, 2], dtype=repro.int32)),
            np.random.randn(4, 3),
        )


class TestAutographControlFlowGradients:
    """Central-difference checks over autograph-lowered control flow.

    Each body is plain Python `if`/`while`/`for` over tensors, staged
    through ``repro.function(autograph=True)`` (explicit, so the checks
    hold under the ``REPRO_AUTOGRAPH=0`` CI leg too) and rewritten onto
    Cond / While; the analytic gradient therefore exercises ``_cond_grad`` /
    ``_while_grad`` through lowered traces, and the numeric oracle is
    the same staged forward.  Inputs are chosen away from predicate
    thresholds so the +-eps perturbations never flip a branch or a trip
    count (where the true gradient is discontinuous).
    """

    def test_lowered_if_true_branch(self):
        @repro.function(autograph=True)
        def f(x):
            if repro.reduce_sum(x) > 0.0:
                return repro.tanh(x) * 2.0
            return x * 0.5

        check_gradient(f, np.array([1.0, 2.0, 0.5]))

    def test_lowered_if_false_branch(self):
        @repro.function(autograph=True)
        def f(x):
            if repro.reduce_sum(x) > 0.0:
                return repro.tanh(x) * 2.0
            return x * x

        check_gradient(f, np.array([-1.0, -2.0, -0.5]))

    def test_lowered_while_fixed_bound(self):
        @repro.function(autograph=True)
        def f(x):
            i = repro.constant(0)
            acc = repro.zeros_like(x)
            while i < 4:
                acc = acc + repro.tanh(x) * repro.cast(i + 1, x.dtype)
                i = i + 1
            return acc

        check_gradient(f, np.array([0.3, -0.7, 1.2]))

    def test_lowered_while_data_dependent_bound(self):
        # sum(x^2) = 6.25 decays by 0.25x per iteration; the +-1e-3
        # perturbation cannot move any iterate across the 0.5 threshold.
        @repro.function(autograph=True)
        def f(x):
            y = x
            while repro.reduce_sum(repro.square(y)) > 0.5:
                y = y * 0.5
            return y

        check_gradient(f, np.array([2.0, -1.5]))

    def test_lowered_while_with_break(self):
        @repro.function(autograph=True)
        def f(x):
            i = repro.constant(0)
            y = x
            while i < 10:
                y = y + repro.sin(x)
                if repro.cast(i, x.dtype) > 2.5:
                    break
                i = i + 1
            return y

        check_gradient(f, np.array([0.4, -0.9, 1.3]))

    def test_lowered_for_scan(self):
        @repro.function(autograph=True)
        def f(x):
            h = repro.reduce_sum(x, axis=0) * 0.0
            for row in x:
                h = repro.tanh(h * 0.5 + row)
            return h

        check_gradient(f, np.random.default_rng(3).normal(size=(4, 3)))

    def test_lowered_scan_with_weight(self):
        @repro.function(autograph=True)
        def f(x, w):
            h = repro.reduce_sum(x, axis=0) * 0.0
            for row in x:
                h = repro.tanh(
                    repro.reshape(repro.matmul(repro.expand_dims(h, 0), w), (-1,))
                    + row
                )
            return h

        rng = np.random.default_rng(4)
        check_gradients(f, [rng.normal(size=(3, 2)), rng.normal(size=(2, 2))])
