"""Numeric gradient checking by central differences.

The only trustworthy oracle for a gradient rule is the definition of
the derivative itself: perturb one input element, rerun the forward
function, difference the outputs.  :func:`numeric_gradient` implements
the second-order central-difference estimate

    df/dx_i  ~=  (f(x + eps e_i) - f(x - eps e_i)) / (2 eps)

and :func:`check_gradient` / :func:`check_gradients` compare a tape
gradient against it, in float64 so the comparison tolerance is set by
the truncation error of the estimate (O(eps^2)), not by float32 noise.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

import repro


def numeric_gradient(f: Callable, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``.

    Args:
        f: maps a float64 ndarray shaped like ``x`` to a Python scalar.
        x: the point of linearization.
        eps: perturbation half-width.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(f(x.copy()))
        flat[i] = orig - eps
        lo = float(f(x.copy()))
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable,
    inputs: Sequence[np.ndarray],
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
) -> None:
    """Assert that tape gradients of ``fn`` match central differences.

    ``fn`` takes ``len(inputs)`` tensors and returns a tensor of any
    shape; the checked objective is ``reduce_sum(fn(*args))``.  The
    gradient with respect to *every* input is verified.

    All computation runs in float64: ``eps = 1e-3`` perturbations lose
    roughly half their significant digits to cancellation in float32,
    which would force tolerances loose enough to hide real bugs.
    """
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
    tensors = [repro.constant(a, dtype=repro.float64) for a in arrays]
    with repro.GradientTape() as tape:
        for t in tensors:
            tape.watch(t)
        y = repro.reduce_sum(fn(*tensors))
    analytic = tape.gradient(y, tensors)

    for i, (a_i, analytic_i) in enumerate(zip(arrays, analytic)):
        assert analytic_i is not None, f"input {i}: tape returned no gradient"

        def scalar_fn(perturbed, i=i):
            args = [
                repro.constant(perturbed if j == i else arrays[j], dtype=repro.float64)
                for j in range(len(arrays))
            ]
            return float(repro.reduce_sum(fn(*args)).numpy())

        numeric = numeric_gradient(scalar_fn, a_i, eps=eps)
        np.testing.assert_allclose(
            np.asarray(analytic_i.numpy(), dtype=np.float64),
            numeric,
            rtol=rtol,
            atol=atol,
            err_msg=f"analytic gradient for input {i} disagrees with "
            f"central differences",
        )


def check_gradient(
    op_fn: Callable,
    x_np: np.ndarray,
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
) -> None:
    """Single-input convenience wrapper around :func:`check_gradients`."""
    check_gradients(op_fn, [x_np], eps=eps, rtol=rtol, atol=atol)


def numeric_jvp(
    f: Callable, x: np.ndarray, v: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference directional derivative of ``f`` at ``x`` along ``v``.

    ``f`` maps a float64 ndarray to a float64 ndarray (any output
    shape); one perturbation along the whole direction suffices, which
    is exactly the cost profile forward mode has analytically.
    """
    x = np.asarray(x, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    hi = np.asarray(f(x + eps * v), dtype=np.float64)
    lo = np.asarray(f(x - eps * v), dtype=np.float64)
    return (hi - lo) / (2 * eps)


def check_jvp(
    fn: Callable,
    x_np: np.ndarray,
    v_np: np.ndarray = None,
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
) -> None:
    """Assert forward-mode ``jvp`` agrees with central differences.

    The forward-over-reverse implementation shares the gradient
    registry with the tape, so this simultaneously exercises each op's
    VJP rule under a second (forward) transposition.
    """
    x = np.asarray(x_np, dtype=np.float64)
    if v_np is None:
        v_np = np.random.default_rng(7).standard_normal(x.shape)
    v = np.asarray(v_np, dtype=np.float64)
    xt = repro.constant(x, dtype=repro.float64)
    vt = repro.constant(v, dtype=repro.float64)
    _, tangent = repro.jvp(lambda t: fn(t), [xt], [vt])
    analytic = np.asarray(tangent.numpy(), dtype=np.float64)

    def host_fn(arr):
        return fn(repro.constant(arr, dtype=repro.float64)).numpy()

    numeric = numeric_jvp(host_fn, x, v, eps=eps)
    np.testing.assert_allclose(
        analytic,
        numeric,
        rtol=rtol,
        atol=atol,
        err_msg="forward-mode jvp disagrees with central differences",
    )


def check_hvp(
    fn: Callable,
    x_np: np.ndarray,
    v_np: np.ndarray = None,
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
) -> None:
    """Cross-check three Hessian-vector-product implementations.

    The objective is ``reduce_sum(fn(x))``.  Compared:

    1. forward-over-reverse (``repro.hvp``: ForwardAccumulator outside,
       GradientTape inside),
    2. reverse-over-reverse (tape over tape, contracting the gradient
       with ``v`` before the outer sweep),
    3. central differences of the *gradient* along ``v``.

    Agreement of (1) and (2) checks the two composition orders of the
    same registry; (3) anchors both to the definition.
    """
    x = np.asarray(x_np, dtype=np.float64)
    if v_np is None:
        v_np = np.random.default_rng(11).standard_normal(x.shape)
    v = np.asarray(v_np, dtype=np.float64)
    xt = repro.constant(x, dtype=repro.float64)
    vt = repro.constant(v, dtype=repro.float64)

    forward_over_reverse = repro.hvp(
        lambda t: repro.reduce_sum(fn(t)), [xt], [vt]
    )[0]

    with repro.GradientTape() as outer:
        outer.watch(xt)
        with repro.GradientTape() as inner:
            inner.watch(xt)
            y = repro.reduce_sum(fn(xt))
        (g,) = inner.gradient(y, [xt])
        contracted = repro.reduce_sum(g * vt)
    (reverse_over_reverse,) = outer.gradient(contracted, [xt])
    # A function linear in x has a zero Hessian; both compositions are
    # then legitimately unconnected.
    if forward_over_reverse is None:
        forward_over_reverse = repro.zeros_like(xt)
    if reverse_over_reverse is None:
        reverse_over_reverse = repro.zeros_like(xt)

    def grad_at(arr):
        t = repro.constant(arr, dtype=repro.float64)
        with repro.GradientTape() as tape:
            tape.watch(t)
            y = repro.reduce_sum(fn(t))
        return tape.gradient(y, [t])[0].numpy()

    numeric = numeric_jvp(grad_at, x, v, eps=eps)
    fo = np.asarray(forward_over_reverse.numpy(), dtype=np.float64)
    ro = np.asarray(reverse_over_reverse.numpy(), dtype=np.float64)
    np.testing.assert_allclose(
        fo, ro, rtol=rtol, atol=atol,
        err_msg="forward-over-reverse hvp disagrees with reverse-over-reverse",
    )
    np.testing.assert_allclose(
        fo, numeric, rtol=rtol, atol=atol,
        err_msg="hvp disagrees with central differences of the gradient",
    )
