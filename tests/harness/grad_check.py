"""Numeric gradient checking by central differences.

The only trustworthy oracle for a gradient rule is the definition of
the derivative itself: perturb one input element, rerun the forward
function, difference the outputs.  :func:`numeric_gradient` implements
the second-order central-difference estimate

    df/dx_i  ~=  (f(x + eps e_i) - f(x - eps e_i)) / (2 eps)

and :func:`check_gradient` / :func:`check_gradients` compare a tape
gradient against it, in float64 so the comparison tolerance is set by
the truncation error of the estimate (O(eps^2)), not by float32 noise.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

import repro


def numeric_gradient(f: Callable, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``.

    Args:
        f: maps a float64 ndarray shaped like ``x`` to a Python scalar.
        x: the point of linearization.
        eps: perturbation half-width.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(f(x.copy()))
        flat[i] = orig - eps
        lo = float(f(x.copy()))
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable,
    inputs: Sequence[np.ndarray],
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
) -> None:
    """Assert that tape gradients of ``fn`` match central differences.

    ``fn`` takes ``len(inputs)`` tensors and returns a tensor of any
    shape; the checked objective is ``reduce_sum(fn(*args))``.  The
    gradient with respect to *every* input is verified.

    All computation runs in float64: ``eps = 1e-3`` perturbations lose
    roughly half their significant digits to cancellation in float32,
    which would force tolerances loose enough to hide real bugs.
    """
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
    tensors = [repro.constant(a, dtype=repro.float64) for a in arrays]
    with repro.GradientTape() as tape:
        for t in tensors:
            tape.watch(t)
        y = repro.reduce_sum(fn(*tensors))
    analytic = tape.gradient(y, tensors)

    for i, (a_i, analytic_i) in enumerate(zip(arrays, analytic)):
        assert analytic_i is not None, f"input {i}: tape returned no gradient"

        def scalar_fn(perturbed, i=i):
            args = [
                repro.constant(perturbed if j == i else arrays[j], dtype=repro.float64)
                for j in range(len(arrays))
            ]
            return float(repro.reduce_sum(fn(*args)).numpy())

        numeric = numeric_gradient(scalar_fn, a_i, eps=eps)
        np.testing.assert_allclose(
            np.asarray(analytic_i.numpy(), dtype=np.float64),
            numeric,
            rtol=rtol,
            atol=atol,
            err_msg=f"analytic gradient for input {i} disagrees with "
            f"central differences",
        )


def check_gradient(
    op_fn: Callable,
    x_np: np.ndarray,
    eps: float = 1e-3,
    rtol: float = 1e-2,
    atol: float = 1e-3,
) -> None:
    """Single-input convenience wrapper around :func:`check_gradients`."""
    check_gradients(op_fn, [x_np], eps=eps, rtol=rtol, atol=atol)
