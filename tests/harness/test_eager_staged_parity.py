"""Eager/async/lazy/staged differential tests over the parity corpus.

Every program in :data:`tests.harness.parity.CORPUS` runs four times —
sync eager, async eager, lazy eager (recorded and flushed through the
staged pipeline), ``repro.function``-staged — and must produce
identical outputs *and* identical input gradients.  A failure here
localizes immediately: the program is tiny and the diverging mode is in
the test id.
"""

import numpy as np
import pytest

import repro
from repro.tensor import AsyncTensor, LazyTensor
from tests.harness.parity import (
    CORPUS,
    MODES,
    assert_fused_parity,
    assert_parity,
    assert_relaxed_parity,
    run_program,
)

_IDS = [p.name for p in CORPUS]
_RELAXABLE = [p for p in CORPUS if p.alt_inputs is not None]


def test_corpus_is_large_enough():
    # The differential harness only earns its keep with real coverage.
    assert len(CORPUS) >= 35
    assert len(_IDS) == len(set(_IDS)), "duplicate program names"
    # The autograph family (plain-Python control flow, lowered at trace
    # time) must stay represented: at least 8 distinct programs.
    assert sum(1 for n in _IDS if n.startswith("ag_")) >= 8


@pytest.mark.parametrize("dtype", ["float32", "float64"])
@pytest.mark.parametrize("program", CORPUS, ids=_IDS)
def test_modes_agree(program, dtype):
    if dtype not in program.dtypes:
        pytest.skip(f"{program.name} not defined for {dtype}")
    assert_parity(program, dtype)


@pytest.mark.parametrize("dtype", ["float32", "float64"])
@pytest.mark.parametrize("program", CORPUS, ids=_IDS)
def test_fused_staging_agrees(program, dtype):
    """Graph fusion + memory planning is semantics-preserving: every
    program's outputs and input gradients must match sync eager."""
    if dtype not in program.dtypes:
        pytest.skip(f"{program.name} not defined for {dtype}")
    assert_fused_parity(program, dtype)


def test_relaxable_subset_is_large_enough():
    # Shape relaxation must be exercised across most of the corpus, not
    # a couple of cherry-picked elementwise programs.
    assert len(_RELAXABLE) >= 30


@pytest.mark.parametrize("dtype", ["float32", "float64"])
@pytest.mark.parametrize("program", _RELAXABLE, ids=[p.name for p in _RELAXABLE])
def test_relaxed_trace_agrees(program, dtype):
    """One symbolic trace (batch dims = None) must reproduce sync eager
    outputs *and* gradients — shape relaxation is semantics-preserving."""
    if dtype not in program.dtypes:
        pytest.skip(f"{program.name} not defined for {dtype}")
    assert_relaxed_parity(program, dtype)


def test_async_mode_actually_defers():
    """The harness must genuinely exercise the async runtime: a plain
    elementwise program yields pending tensors under ``async`` mode."""
    with repro.execution_mode("async"):
        x = repro.constant([1.0, 2.0, 3.0])
        y = x * 2.0 + 1.0
        assert isinstance(y, AsyncTensor)
        np.testing.assert_allclose(y.numpy(), [3.0, 5.0, 7.0])


def test_lazy_mode_actually_records():
    """The harness must genuinely exercise the lazy runtime: a plain
    elementwise program yields recorded pending tensors under ``lazy``
    mode, and forcing one flushes the whole segment."""
    with repro.execution_mode("lazy"):
        x = repro.constant([1.0, 2.0, 3.0])
        y = x * 2.0 + 1.0
        assert isinstance(y, LazyTensor)
        assert not y.is_ready()
        np.testing.assert_allclose(y.numpy(), [3.0, 5.0, 7.0])
        assert y.is_ready()


def test_run_program_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown mode"):
        run_program(CORPUS[0], "turbo", "float32")


def test_modes_tuple_is_the_public_contract():
    assert MODES == ("sync", "async", "lazy", "staged")
