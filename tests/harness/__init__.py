"""Differential-testing and gradient-checking harnesses.

Two verification tools live here:

* :mod:`tests.harness.grad_check` — numeric (central-difference)
  gradient checking, replacing hand-computed expected values.
* :mod:`tests.harness.parity` — a corpus of small programs executed
  sync-eager, async-eager, and ``function``-staged, asserting that
  outputs and gradients agree across all three modes.
"""
