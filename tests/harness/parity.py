"""Differential testing of execution modes.

One program, four runtimes: the same Python function is executed
sync-eager, async-eager (per-device streams, §4.1/§4.4), lazy-eager
(LazyTensor-style recording flushed through the staged pipeline), and
staged through ``repro.function`` (§3.1).  The paper's central claim is
that staging is a *semantics-preserving* performance knob; asynchronous
and lazy execution make the same promise for eager dispatch.  Each
:class:`Program` in :data:`CORPUS` is therefore run in all four modes
and both its outputs and its tape gradients must agree to tight
tolerances.

The corpus is deliberately small programs — elementwise chains, dense
layers, softmax losses, convolutions, data-dependent control flow, an
RNN cell — because differential testing wants many *distinct shapes of
computation*, not large ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

import repro
from repro.ops import nn_ops

__all__ = [
    "CORPUS",
    "MODES",
    "Program",
    "assert_fused_parity",
    "assert_parity",
    "assert_relaxed_parity",
    "run_program",
    "run_program_fused",
    "run_program_relaxed",
]

MODES = ("sync", "async", "lazy", "staged")

# Per-dtype comparison tolerances.  Mode changes may legally reorder
# float reductions, so exact bit equality is not required; disagreement
# beyond these bounds means a kernel or gradient diverged.
_TOLERANCES = {
    "float32": dict(rtol=1e-5, atol=1e-5),
    "float64": dict(rtol=1e-9, atol=1e-11),
}


@dataclass(frozen=True)
class Program:
    """One differential-test case.

    Attributes:
        name: test id.
        make_inputs: draws the (float) input arrays from a seeded rng;
            every input is tape-watched and differentiated.
        fn: the program body, ``fn(*tensors) -> tensor``.  Must be
            traceable by ``repro.function`` (no Python side effects).
        dtypes: dtypes the program is exercised under.
        alt_inputs: optional second input draw with *different tensor
            shapes* (typically a different batch size).  Programs that
            provide it additionally run under the trace cache's shape
            relaxation policy: a warm-up call on the alternate shapes
            followed by the main call must produce one relaxed
            (symbolic) trace whose outputs and gradients still match
            sync eager.  Programs whose bodies pin a shape (fixed
            labels, literal reshape sizes) leave it None.
    """

    name: str
    make_inputs: Callable[[np.random.Generator], Sequence[np.ndarray]]
    fn: Callable
    dtypes: tuple = ("float32", "float64")
    alt_inputs: Optional[Callable[[np.random.Generator], Sequence[np.ndarray]]] = None


def run_program(program: Program, mode: str, dtype: str):
    """Run ``program`` under ``mode``; return (output, gradients) as ndarrays.

    The gradient is of ``reduce_sum(fn(*inputs))`` with respect to every
    input, so each mode exercises its backward path too (for the async
    and lazy modes the tape records pending tensors at submission and
    synchronizes at ``gradient()`` — both ends of the pending-value
    contract).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    arrays = program.make_inputs(np.random.default_rng(0))
    dt = getattr(repro, dtype)
    # autograph=True explicitly (not just the default) so the corpus —
    # including the plain-Python ``ag_*`` control-flow programs — stays
    # meaningful under the REPRO_AUTOGRAPH=0 CI leg; the default-on
    # contract itself is pinned in tests/core/test_function.py.
    fn = (
        repro.function(program.fn, autograph=True)
        if mode == "staged"
        else program.fn
    )
    with repro.execution_mode("sync" if mode == "staged" else mode):
        tensors = [repro.constant(a, dtype=dt) for a in arrays]
        with repro.GradientTape() as tape:
            for t in tensors:
                tape.watch(t)
            out = fn(*tensors)
            loss = repro.reduce_sum(out)
        grads = tape.gradient(loss, tensors)
        out_np = np.asarray(out.numpy())
        grads_np = [None if g is None else np.asarray(g.numpy()) for g in grads]
    return out_np, grads_np


def assert_parity(program: Program, dtype: str) -> None:
    """Assert outputs and gradients agree across all four modes."""
    tol = _TOLERANCES[dtype]
    ref_out, ref_grads = run_program(program, "sync", dtype)
    for mode in ("async", "lazy", "staged"):
        out, grads = run_program(program, mode, dtype)
        np.testing.assert_allclose(
            out,
            ref_out,
            **tol,
            err_msg=f"{program.name}: {mode} output diverged from sync eager",
        )
        assert len(grads) == len(ref_grads)
        for i, (g, ref) in enumerate(zip(grads, ref_grads)):
            assert (g is None) == (ref is None), (
                f"{program.name}: {mode} gradient {i} connectivity differs "
                f"from sync eager"
            )
            if ref is not None:
                np.testing.assert_allclose(
                    g,
                    ref,
                    **tol,
                    err_msg=f"{program.name}: {mode} gradient {i} diverged "
                    f"from sync eager",
                )


def run_program_fused(program: Program, dtype: str):
    """Run ``program`` staged with graph fusion + memory planning on.

    Forces ``context.graph_fusion`` for the duration, so the trace is
    optimized by the ``fuse`` pass and executed through the planner's
    in-place donation path — the configuration the fused-mode parity
    axis certifies against sync eager.
    """
    from repro.runtime.context import context

    previous = context.graph_fusion
    context.graph_fusion = True
    try:
        return run_program(program, "staged", dtype)
    finally:
        context.graph_fusion = previous


def assert_fused_parity(program: Program, dtype: str) -> None:
    """Assert fused staged execution matches sync eager (outputs + grads).

    Fusion is a scheduling rewrite: collapsing an elementwise region
    into one kernel dispatch must not change a single value, including
    through the staged backward function (which is fused independently).
    """
    tol = _TOLERANCES[dtype]
    ref_out, ref_grads = run_program(program, "sync", dtype)
    out, grads = run_program_fused(program, dtype)
    np.testing.assert_allclose(
        out,
        ref_out,
        **tol,
        err_msg=f"{program.name}: fused staged output diverged from sync eager",
    )
    assert len(grads) == len(ref_grads)
    for i, (g, ref) in enumerate(zip(grads, ref_grads)):
        assert (g is None) == (ref is None), (
            f"{program.name}: fused staged gradient {i} connectivity differs "
            f"from sync eager"
        )
        if ref is not None:
            np.testing.assert_allclose(
                g,
                ref,
                **tol,
                err_msg=f"{program.name}: fused staged gradient {i} diverged "
                f"from sync eager",
            )


def run_program_relaxed(program: Program, dtype: str):
    """Run ``program`` through one *relaxed* (symbolic) trace.

    Warms a shape-relaxing ``repro.function`` on ``alt_inputs`` (the
    exact trace), then runs ``make_inputs`` — a different shape of the
    same rank/dtype pattern, which triggers the relaxation policy and
    executes through the symbolic trace.  Returns the main call's
    ``(output, gradients)`` plus the Function so callers can assert on
    trace counts.
    """
    if program.alt_inputs is None:
        raise ValueError(f"{program.name} has no alt_inputs; cannot relax")
    dt = getattr(repro, dtype)
    fn = repro.function(
        program.fn, experimental_relax_shapes=True, autograph=True
    )
    warm = [
        repro.constant(a, dtype=dt)
        for a in program.alt_inputs(np.random.default_rng(1))
    ]
    fn(*warm)  # exact trace at the alternate shapes
    arrays = program.make_inputs(np.random.default_rng(0))
    tensors = [repro.constant(a, dtype=dt) for a in arrays]
    with repro.GradientTape() as tape:
        for t in tensors:
            tape.watch(t)
        out = fn(*tensors)
        loss = repro.reduce_sum(out)
    grads = tape.gradient(loss, tensors)
    out_np = np.asarray(out.numpy())
    grads_np = [None if g is None else np.asarray(g.numpy()) for g in grads]
    return out_np, grads_np, fn


def assert_relaxed_parity(program: Program, dtype: str) -> None:
    """Assert the relaxed trace matches sync eager, from one retrace."""
    tol = _TOLERANCES[dtype]
    ref_out, ref_grads = run_program(program, "sync", dtype)
    out, grads, fn = run_program_relaxed(program, dtype)
    stats = fn.cache_stats()
    assert fn.trace_count == 2, (
        f"{program.name}: expected exact + relaxed trace, got "
        f"{fn.trace_count} traces"
    )
    assert stats["relaxations"] == 1, f"{program.name}: {stats}"
    np.testing.assert_allclose(
        out,
        ref_out,
        **tol,
        err_msg=f"{program.name}: relaxed-trace output diverged from sync eager",
    )
    assert len(grads) == len(ref_grads)
    for i, (g, ref) in enumerate(zip(grads, ref_grads)):
        assert (g is None) == (ref is None), (
            f"{program.name}: relaxed-trace gradient {i} connectivity differs"
        )
        if ref is not None:
            np.testing.assert_allclose(
                g,
                ref,
                **tol,
                err_msg=f"{program.name}: relaxed-trace gradient {i} diverged "
                f"from sync eager",
            )


# -- the corpus --------------------------------------------------------------


def _p(name: str, make_inputs, fn, **kwargs) -> Program:
    return Program(name=name, make_inputs=make_inputs, fn=fn, **kwargs)


def _vec(n):
    return lambda rng: [rng.normal(size=(n,))]


def _mat(*shape):
    return lambda rng: [rng.normal(size=shape)]


# Elementwise chains ---------------------------------------------------------


def _chain_long(x):
    for _ in range(10):
        x = repro.tanh(x * 1.1 + 0.1)
    return x


def _polynomial(x):
    return 3.0 * x * x * x - 2.0 * x * x + x - 5.0


def _smooth_abs(x):
    return repro.sqrt(repro.square(x) + 1e-4)


def _sigmoid_tanh_mix(x):
    return repro.sigmoid(x) * repro.tanh(x) + repro.exp(-repro.square(x))


def _log1p_exp(x):
    return repro.log1p(repro.exp(x))  # softplus, written long-hand


# Linear algebra -------------------------------------------------------------


def _matmul_bias_relu(x, w, b):
    return nn_ops.relu(nn_ops.bias_add(repro.matmul(x, w), b))


def _matmul_chain(x, w1, w2):
    return repro.matmul(repro.matmul(x, w1), w2)


def _mlp_two_layer(x, w1, b1, w2, b2):
    h = repro.tanh(nn_ops.bias_add(repro.matmul(x, w1), b1))
    return nn_ops.bias_add(repro.matmul(h, w2), b2)


def _transpose_matmul(x, w):
    return repro.matmul(x, w, transpose_b=True)


def _einsum_bilinear(x, a, y):
    return repro.einsum("bi,ij,bj->b", x, a, y)


# Reductions and softmax -----------------------------------------------------


def _softmax_xent(logits):
    labels = repro.constant(
        np.eye(4, dtype=np.float64)[[0, 2, 1]], dtype=logits.dtype
    )
    return nn_ops.softmax_cross_entropy_with_logits(labels, logits)


def _log_softmax_nll(logits):
    return -repro.reduce_sum(nn_ops.log_softmax(logits), axis=-1)


def _normalize_rows(x):
    mean = repro.reduce_mean(x, axis=1, keepdims=True)
    centered = x - mean
    var = repro.reduce_mean(repro.square(centered), axis=1, keepdims=True)
    return centered * repro.rsqrt(var + 1e-5)


def _logsumexp_margin(x):
    return repro.reduce_logsumexp(x, axis=-1) - repro.reduce_max(x, axis=-1)


# Shape surgery --------------------------------------------------------------


def _reshape_transpose(x):
    return repro.transpose(repro.reshape(x, (3, 4)))


def _concat_then_scale(x, y):
    joined = repro.concat([x, y], axis=0)
    return joined * repro.cast(repro.range(6), joined.dtype)


def _split_then_mix(x):
    a, b = repro.split(x, 2, axis=0)
    return a * 2.0 + b * 3.0


def _gather_rows(x):
    return repro.gather(x, repro.constant([2, 0, 1], dtype=repro.int32))


def _pad_and_sum(x):
    return repro.reduce_sum(repro.pad(x, [[1, 1], [0, 2]]), axis=0)


def _broadcast_outer(x, y):
    return repro.expand_dims(x, 1) * repro.expand_dims(y, 0)


# Control flow ---------------------------------------------------------------


def _cond_branch(x):
    return repro.cond(
        repro.reduce_sum(x) > 0.0, lambda: x * 2.0, lambda: x * 0.5
    )


def _while_power(x):
    def body(i, acc):
        return i + 1, acc * x

    _, out = repro.while_loop(
        lambda i, acc: i < 3,
        body,
        (repro.constant(0), repro.ones_like(x)),
    )
    return out


def _while_accumulate(x):
    def body(i, acc):
        return i + 1, acc + x * repro.cast(i + 1, x.dtype)

    _, out = repro.while_loop(
        lambda i, acc: i < 4,
        body,
        (repro.constant(0), repro.zeros_like(x)),
    )
    return out


# Autograph-lowered control flow ---------------------------------------------
#
# The same corpus discipline, but written as *plain Python* control
# flow over tensor values.  Eagerly these run as ordinary Python (the
# truth value of a concrete tensor exists); staged, autograph rewrites
# them onto Cond / While at trace time.  Parity across all four modes
# pins the transform end to end: outputs AND gradients.


def _ag_if_scale(x):
    if repro.reduce_sum(x) > 0.0:
        y = x * 2.0
    else:
        y = x * 0.5
    return y


def _ag_if_nested(x):
    s = repro.reduce_sum(x)
    if s > 0.0:
        if repro.reduce_max(x) > 1.0:
            y = x * 3.0
        else:
            y = x + 1.0
    else:
        y = -x
    return y


def _ag_elif_chain(x):
    s = repro.reduce_mean(x)
    if s > 1.0:
        y = x - 1.0
    elif s > 0.0:
        y = x * 2.0
    elif s > -1.0:
        y = x * -0.5
    else:
        y = x + 2.0
    return y


def _ag_boolop_pred(x):
    s = repro.reduce_sum(x)
    if s > -10.0 and s < 10.0:
        y = repro.tanh(x)
    else:
        y = x
    return y


def _ag_early_return(x):
    if repro.reduce_sum(x) < 0.0:
        return -x
    return x * 3.0


def _ag_while_bound(x):
    i = repro.constant(0)
    y = x
    while i < 3:
        y = y * 1.5 + 0.25
        i = i + 1
    return y


def _ag_while_data_bound(x):
    # Data-dependent trip count; the 0.7 decay guarantees termination.
    y = x
    while repro.reduce_sum(repro.square(y)) > 0.5:
        y = y * 0.7
    return y


def _ag_while_accum(x):
    i = repro.constant(0)
    acc = repro.zeros_like(x)
    while i < 4:
        acc = acc + x * repro.cast(i + 1, x.dtype)
        i = i + 1
    return acc


def _ag_while_break(x):
    i = repro.constant(0)
    y = x
    while i < 10:
        y = y + x
        if repro.reduce_sum(repro.abs(y)) > 4.0:
            break
        i = i + 1
    return y


def _ag_while_continue(x):
    i = repro.constant(0)
    acc = repro.zeros_like(x)
    while i < 6:
        i = i + 1
        if repro.cast(i, x.dtype) > 3.0:
            continue
        acc = acc + x * repro.cast(i, x.dtype)
    return acc


def _ag_for_scan(x):
    # RNN-style scan: iterate the leading axis, carrying hidden state.
    h = repro.reduce_sum(x, axis=0) * 0.0
    for row in x:
        h = repro.tanh(h * 0.5 + row)
    return h


def _ag_for_scan_weighted(x, w):
    h = repro.reduce_sum(x, axis=0) * 0.0
    for row in x:
        h = repro.tanh(
            repro.reshape(repro.matmul(repro.expand_dims(h, 0), w), (-1,)) + row
        )
    return h


# Small networks -------------------------------------------------------------


def _rnn_cell_step(x, h, wx, wh, b):
    return repro.tanh(repro.matmul(x, wx) + repro.matmul(h, wh) + b)


def _rnn_three_steps(x, wx, wh, b):
    h = repro.zeros_like(repro.matmul(x, wx))
    for _ in range(3):
        h = repro.tanh(repro.matmul(x, wx) + repro.matmul(h, wh) + b)
    return h


def _conv_relu_pool(img, filt):
    y = nn_ops.relu(nn_ops.conv2d(img, filt, strides=1, padding="SAME"))
    return nn_ops.max_pool2d(y, ksize=2, strides=2)


CORPUS = [
    _p("scale_shift", _vec(8), lambda x: x * 2.0 + 1.0, alt_inputs=_vec(5)),
    _p("chain_long", _vec(8), _chain_long, alt_inputs=_vec(5)),
    _p("polynomial", _vec(8), _polynomial, alt_inputs=_vec(5)),
    _p("smooth_abs", _vec(8), _smooth_abs, alt_inputs=_vec(5)),
    _p("sigmoid_tanh_mix", _vec(8), _sigmoid_tanh_mix, alt_inputs=_vec(5)),
    _p("log1p_exp", _vec(8), _log1p_exp, alt_inputs=_vec(5)),
    _p(
        "matmul_bias_relu",
        lambda rng: [
            rng.normal(size=(3, 4)),
            rng.normal(size=(4, 5)),
            rng.normal(size=(5,)),
        ],
        _matmul_bias_relu,
        alt_inputs=lambda rng: [
            rng.normal(size=(6, 4)),
            rng.normal(size=(4, 5)),
            rng.normal(size=(5,)),
        ],
    ),
    _p(
        "matmul_chain",
        lambda rng: [
            rng.normal(size=(3, 4)),
            rng.normal(size=(4, 4)),
            rng.normal(size=(4, 2)),
        ],
        _matmul_chain,
        alt_inputs=lambda rng: [
            rng.normal(size=(5, 4)),
            rng.normal(size=(4, 4)),
            rng.normal(size=(4, 2)),
        ],
    ),
    _p(
        "mlp_two_layer",
        lambda rng: [
            rng.normal(size=(2, 3)),
            rng.normal(size=(3, 5)),
            rng.normal(size=(5,)),
            rng.normal(size=(5, 2)),
            rng.normal(size=(2,)),
        ],
        _mlp_two_layer,
        alt_inputs=lambda rng: [
            rng.normal(size=(4, 3)),
            rng.normal(size=(3, 5)),
            rng.normal(size=(5,)),
            rng.normal(size=(5, 2)),
            rng.normal(size=(2,)),
        ],
    ),
    _p(
        "transpose_matmul",
        lambda rng: [rng.normal(size=(3, 4)), rng.normal(size=(5, 4))],
        _transpose_matmul,
        alt_inputs=lambda rng: [rng.normal(size=(6, 4)), rng.normal(size=(5, 4))],
    ),
    _p(
        "einsum_bilinear",
        lambda rng: [
            rng.normal(size=(2, 3)),
            rng.normal(size=(3, 4)),
            rng.normal(size=(2, 4)),
        ],
        _einsum_bilinear,
        alt_inputs=lambda rng: [
            rng.normal(size=(4, 3)),
            rng.normal(size=(3, 4)),
            rng.normal(size=(4, 4)),
        ],
    ),
    _p("softmax_xent", _mat(3, 4), _softmax_xent),
    _p("log_softmax_nll", _mat(3, 4), _log_softmax_nll, alt_inputs=_mat(5, 4)),
    _p("normalize_rows", _mat(3, 5), _normalize_rows, alt_inputs=_mat(6, 5)),
    _p("logsumexp_margin", _mat(3, 5), _logsumexp_margin, alt_inputs=_mat(6, 5)),
    _p("reshape_transpose", _vec(12), _reshape_transpose),
    _p(
        "concat_then_scale",
        lambda rng: [rng.normal(size=(3,)), rng.normal(size=(3,))],
        _concat_then_scale,
    ),
    _p("split_then_mix", _vec(6), _split_then_mix, alt_inputs=_vec(8)),
    _p("gather_rows", _mat(4, 3), _gather_rows, alt_inputs=_mat(6, 3)),
    _p("pad_and_sum", _mat(2, 3), _pad_and_sum, alt_inputs=_mat(4, 3)),
    _p(
        "broadcast_outer",
        lambda rng: [rng.normal(size=(3,)), rng.normal(size=(4,))],
        _broadcast_outer,
        alt_inputs=lambda rng: [rng.normal(size=(5,)), rng.normal(size=(6,))],
    ),
    _p("cond_branch", _vec(6), _cond_branch, alt_inputs=_vec(9)),
    _p("while_power", _vec(5), _while_power, alt_inputs=_vec(7)),
    _p("while_accumulate", _vec(5), _while_accumulate, alt_inputs=_vec(7)),
    _p("ag_if_scale", _vec(6), _ag_if_scale, alt_inputs=_vec(9)),
    _p("ag_if_nested", _vec(6), _ag_if_nested, alt_inputs=_vec(9)),
    _p("ag_elif_chain", _vec(6), _ag_elif_chain, alt_inputs=_vec(9)),
    _p("ag_boolop_pred", _vec(6), _ag_boolop_pred, alt_inputs=_vec(9)),
    _p("ag_early_return", _vec(6), _ag_early_return, alt_inputs=_vec(9)),
    _p("ag_while_bound", _vec(5), _ag_while_bound, alt_inputs=_vec(7)),
    _p("ag_while_data_bound", _vec(5), _ag_while_data_bound, alt_inputs=_vec(7)),
    _p("ag_while_accum", _vec(5), _ag_while_accum, alt_inputs=_vec(7)),
    _p("ag_while_break", _vec(5), _ag_while_break, alt_inputs=_vec(7)),
    _p("ag_while_continue", _vec(5), _ag_while_continue, alt_inputs=_vec(7)),
    _p("ag_for_scan", _mat(4, 3), _ag_for_scan, alt_inputs=_mat(6, 3)),
    _p(
        "ag_for_scan_weighted",
        lambda rng: [rng.normal(size=(4, 3)), rng.normal(size=(3, 3))],
        _ag_for_scan_weighted,
        alt_inputs=lambda rng: [rng.normal(size=(6, 3)), rng.normal(size=(3, 3))],
    ),
    _p(
        "rnn_cell_step",
        lambda rng: [
            rng.normal(size=(2, 3)),
            rng.normal(size=(2, 4)),
            rng.normal(size=(3, 4)),
            rng.normal(size=(4, 4)),
            rng.normal(size=(4,)),
        ],
        _rnn_cell_step,
        alt_inputs=lambda rng: [
            rng.normal(size=(5, 3)),
            rng.normal(size=(5, 4)),
            rng.normal(size=(3, 4)),
            rng.normal(size=(4, 4)),
            rng.normal(size=(4,)),
        ],
    ),
    _p(
        "rnn_three_steps",
        lambda rng: [
            rng.normal(size=(2, 3)),
            rng.normal(size=(3, 3)),
            rng.normal(size=(3, 3)),
            rng.normal(size=(3,)),
        ],
        _rnn_three_steps,
        alt_inputs=lambda rng: [
            rng.normal(size=(5, 3)),
            rng.normal(size=(3, 3)),
            rng.normal(size=(3, 3)),
            rng.normal(size=(3,)),
        ],
    ),
    _p(
        "conv_relu_pool",
        lambda rng: [
            rng.normal(size=(1, 4, 4, 2)),
            rng.normal(size=(2, 2, 2, 3)),
        ],
        _conv_relu_pool,
        alt_inputs=lambda rng: [
            rng.normal(size=(2, 4, 4, 2)),
            rng.normal(size=(2, 2, 2, 3)),
        ],
    ),
]
