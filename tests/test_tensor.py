"""Tests for concrete tensors: creation, metadata, operators, interop."""

import numpy as np
import pytest

import repro
from repro.framework import dtypes
from repro.framework.errors import InvalidArgumentError
from repro.tensor import Tensor, TensorSpec, convert_to_tensor


class TestCreation:
    def test_python_float_defaults_to_float32(self):
        assert repro.constant(1.5).dtype is dtypes.float32

    def test_python_int_defaults_to_int32(self):
        assert repro.constant(7).dtype is dtypes.int32

    def test_bool(self):
        t = repro.constant(True)
        assert t.dtype is dtypes.bool_
        assert bool(t) is True

    def test_numpy_dtype_preserved(self):
        t = repro.constant(np.arange(3, dtype=np.float64))
        assert t.dtype is dtypes.float64

    def test_nested_list(self):
        t = repro.constant([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape.as_list() == [2, 2]
        assert t.dtype is dtypes.float32

    def test_explicit_dtype(self):
        t = repro.constant([1, 2], dtype=repro.float64)
        assert t.dtype is dtypes.float64

    def test_resides_on_cpu_by_default(self):
        assert "CPU:0" in repro.constant(1.0).device

    def test_buffer_read_only(self):
        t = repro.constant([1.0, 2.0])
        with pytest.raises(ValueError):
            t.numpy()[0] = 5.0

    def test_convert_passthrough(self):
        t = repro.constant(1.0)
        assert convert_to_tensor(t) is t

    def test_convert_dtype_mismatch_raises(self):
        t = repro.constant(1.0)
        with pytest.raises(InvalidArgumentError):
            convert_to_tensor(t, dtype=repro.int32)


class TestMetadata:
    def test_shape(self):
        assert repro.constant(np.zeros((2, 3))).shape.as_list() == [2, 3]

    def test_ndim(self):
        assert repro.constant(np.zeros((2, 3))).ndim == 2

    def test_nbytes(self):
        assert repro.constant(np.zeros((4,), np.float32)).nbytes == 16

    def test_repr_contains_data(self):
        r = repr(repro.constant([1.0]))
        assert "shape=(1,)" in r and "float32" in r

    def test_constant_value(self):
        t = repro.constant([3])
        np.testing.assert_array_equal(t.constant_value, [3])


class TestPythonProtocol:
    def test_len(self):
        assert len(repro.constant([1, 2, 3])) == 3
        with pytest.raises(TypeError):
            len(repro.constant(1))

    def test_iter(self):
        parts = [float(x) for x in repro.constant([1.0, 2.0])]
        assert parts == [1.0, 2.0]

    def test_bool_of_nonscalar_raises(self):
        with pytest.raises(InvalidArgumentError):
            bool(repro.constant([1, 2]))

    def test_float_int_conversion(self):
        assert float(repro.constant(2.5)) == 2.5
        assert int(repro.constant(4)) == 4

    def test_index(self):
        arr = [10, 20, 30]
        assert arr[repro.constant(1)] == 20

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(repro.constant(1.0))

    def test_item(self):
        assert repro.constant(3.25).item() == 3.25


class TestOperators:
    def test_add_sub_mul_div(self):
        x = repro.constant([2.0, 4.0])
        np.testing.assert_allclose((x + 1.0).numpy(), [3.0, 5.0])
        np.testing.assert_allclose((x - 1.0).numpy(), [1.0, 3.0])
        np.testing.assert_allclose((x * 3.0).numpy(), [6.0, 12.0])
        np.testing.assert_allclose((x / 2.0).numpy(), [1.0, 2.0])

    def test_reflected_operators(self):
        x = repro.constant([2.0])
        np.testing.assert_allclose((1.0 + x).numpy(), [3.0])
        np.testing.assert_allclose((1.0 - x).numpy(), [-1.0])
        np.testing.assert_allclose((3.0 * x).numpy(), [6.0])
        np.testing.assert_allclose((8.0 / x).numpy(), [4.0])

    def test_weak_int_literal_adopts_float_dtype(self):
        x = repro.constant([1.5])
        assert (x * 2).dtype is dtypes.float32

    def test_pow_neg_abs(self):
        x = repro.constant([-2.0, 3.0])
        np.testing.assert_allclose((x ** 2.0).numpy(), [4.0, 9.0])
        np.testing.assert_allclose((-x).numpy(), [2.0, -3.0])
        np.testing.assert_allclose(abs(x).numpy(), [2.0, 3.0])

    def test_matmul_operator(self):
        a = repro.constant([[1.0, 0.0], [0.0, 2.0]])
        b = repro.constant([[3.0], [4.0]])
        np.testing.assert_allclose((a @ b).numpy(), [[3.0], [8.0]])

    def test_comparisons_elementwise(self):
        x = repro.constant([1.0, 5.0])
        np.testing.assert_array_equal((x > 2.0).numpy(), [False, True])
        np.testing.assert_array_equal((x <= 1.0).numpy(), [True, False])
        np.testing.assert_array_equal((x == 5.0).numpy(), [False, True])
        np.testing.assert_array_equal((x != 5.0).numpy(), [True, False])

    def test_mismatched_dtypes_raise(self):
        with pytest.raises(InvalidArgumentError):
            repro.constant([1.0]) + repro.constant([1], dtype=repro.int32)

    def test_logical_ops(self):
        a = repro.constant([True, False])
        b = repro.constant([True, True])
        np.testing.assert_array_equal((a & b).numpy(), [True, False])
        np.testing.assert_array_equal((a | b).numpy(), [True, True])
        np.testing.assert_array_equal((~a).numpy(), [False, True])

    def test_floordiv_mod(self):
        x = repro.constant([7, 9])
        np.testing.assert_array_equal((x // 2).numpy(), [3, 4])
        np.testing.assert_array_equal((x % 4).numpy(), [3, 1])


class TestIndexing:
    def test_int_index(self):
        x = repro.constant([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(x[1].numpy(), [3.0, 4.0])

    def test_slice(self):
        x = repro.constant([0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(x[1:3].numpy(), [1.0, 2.0])
        np.testing.assert_allclose(x[::-1].numpy(), [3.0, 2.0, 1.0, 0.0])

    def test_ellipsis_and_newaxis(self):
        x = repro.constant(np.arange(8.0).reshape(2, 2, 2))
        assert x[..., 0].shape.as_list() == [2, 2]
        assert x[:, None].shape.as_list() == [2, 1, 2, 2]

    def test_negative_index(self):
        x = repro.constant([1.0, 2.0, 3.0])
        assert float(x[-1]) == 3.0

    def test_tensor_index_gathers(self):
        x = repro.constant([10.0, 20.0, 30.0])
        idx = repro.constant([2, 0])
        np.testing.assert_allclose(x[idx].numpy(), [30.0, 10.0])


class TestNumpyInterop:
    def test_numpy_view(self):
        x = repro.constant([1.0, 2.0])
        np.testing.assert_allclose(np.asarray(x), [1.0, 2.0])

    def test_numpy_functions_accept_tensor(self):
        x = repro.constant([3.0, 4.0])
        assert float(np.linalg.norm(x)) == pytest.approx(5.0)

    def test_array_with_dtype(self):
        x = repro.constant([1.0])
        assert np.asarray(x, dtype=np.float64).dtype == np.float64


class TestTensorSpec:
    def test_from_tensor(self):
        spec = TensorSpec.from_tensor(repro.constant(np.zeros((2, 3))))
        assert spec.shape.as_list() == [2, 3]
        assert spec.dtype is dtypes.float64

    def test_compatibility(self):
        spec = TensorSpec([None, 3])
        assert spec.is_compatible_with(repro.constant(np.zeros((5, 3), np.float32)))
        assert not spec.is_compatible_with(repro.constant(np.zeros((5, 4), np.float32)))

    def test_hash_eq(self):
        assert TensorSpec([1], repro.int32) == TensorSpec([1], repro.int32)
        assert hash(TensorSpec([1])) == hash(TensorSpec([1]))
        assert TensorSpec([1]) != TensorSpec([2])
