"""Classic graph mode — the paper's "TF" baseline (§5, §6)."""

import numpy as np
import pytest

import repro
from repro.compat import v1
from repro.framework.errors import InvalidArgumentError
from repro import nn


class TestSession:
    def test_feed_and_fetch(self):
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [2])
            y = x * 2.0 + 1.0
        with v1.Session(g) as sess:
            out = sess.run(y, feed_dict={x: repro.constant([1.0, 2.0])})
        np.testing.assert_allclose(out.numpy(), [3.0, 5.0])

    def test_feed_accepts_numpy(self):
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [2])
            y = repro.reduce_sum(x)
        with v1.Session(g) as sess:
            assert float(sess.run(y, feed_dict={x: np.float32([1, 2])})) == 3.0

    def test_structured_fetches(self):
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [])
            fetches = {"double": x * 2.0, "triple": [x * 3.0]}
        with v1.Session(g) as sess:
            out = sess.run(fetches, feed_dict={x: repro.constant(2.0)})
        assert float(out["double"]) == 4.0
        assert float(out["triple"][0]) == 6.0

    def test_fetch_driven_pruning(self):
        """Only the subgraph the fetches need executes (paper §5)."""
        v = repro.Variable(0.0)
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [])
            harmless = x * 2.0
            _mutation = v.assign_add(1.0)
        with v1.Session(g) as sess:
            sess.run(harmless, feed_dict={x: repro.constant(1.0)})
        assert float(v.read_value()) == 0.0  # assign was not fetched

    def test_fetch_op_node(self):
        v = repro.Variable(1.0)
        g = v1.GraphBuilder()
        with g.building():
            train_op = v.assign_add(2.0)
        with v1.Session(g) as sess:
            result = sess.run(train_op)
        assert result is None
        assert float(v.read_value()) == 3.0

    def test_foreign_fetch_rejected(self):
        g1, g2 = v1.GraphBuilder(), v1.GraphBuilder()
        with g1.building():
            x = g1.placeholder(repro.float32, [])
            y = x * 1.0
        with v1.Session(g2) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(y)

    def test_non_graph_fetch_rejected(self):
        g = v1.GraphBuilder()
        with v1.Session(g) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(repro.constant(1.0))

    def test_unfed_placeholder_fails(self):
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [])
            y = x + 1.0
        with v1.Session(g) as sess:
            with pytest.raises(InvalidArgumentError):
                sess.run(y)


class TestGradients:
    def test_symbolic_gradients(self):
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [3])
            y = repro.reduce_sum(x * x)
            (dx,) = v1.gradients(y, [x])
        with v1.Session(g) as sess:
            out = sess.run(dx, feed_dict={x: repro.constant([1.0, 2.0, 3.0])})
        np.testing.assert_allclose(out.numpy(), [2.0, 4.0, 6.0])

    def test_gradients_wrt_variables(self):
        v = repro.Variable([2.0, 3.0])
        g = v1.GraphBuilder()
        with g.building():
            loss = repro.reduce_sum(v * v)
            (dv,) = v1.gradients(loss, [v])
        with v1.Session(g) as sess:
            out = sess.run(dv)
        np.testing.assert_allclose(out.numpy(), [4.0, 6.0])

    def test_gradients_require_graph_context(self):
        with pytest.raises(InvalidArgumentError):
            v1.gradients(repro.constant(1.0), [repro.constant(1.0)])

    def test_grad_ys_seed(self):
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [2])
            y = x * 2.0
            (dx,) = v1.gradients([y], [x], grad_ys=[repro.constant([10.0, 1.0])])
        with v1.Session(g) as sess:
            out = sess.run(dx, feed_dict={x: repro.constant([0.0, 0.0])})
        np.testing.assert_allclose(out.numpy(), [20.0, 2.0])


class TestClassicTraining:
    def test_full_training_loop(self):
        """The define-before-run workflow: build once, run many times."""
        repro.set_random_seed(0)
        w = repro.Variable(np.zeros((3, 1), np.float32))
        b = repro.Variable(np.zeros((1,), np.float32))
        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [None, 3])
            y = g.placeholder(repro.float32, [None, 1])
            pred = repro.matmul(x, w) + b
            loss = repro.reduce_mean((pred - y) ** 2.0)
            grads = v1.gradients(loss, [w, b])
            train_ops = [
                w.assign_sub(grads[0] * 0.1),
                b.assign_sub(grads[1] * 0.1),
            ]
        rng = np.random.default_rng(0)
        true_w = np.float32([[1.0], [-2.0], [0.5]])
        xs = rng.normal(size=(64, 3)).astype(np.float32)
        ys = xs @ true_w + 0.3
        with v1.Session(g) as sess:
            first = float(sess.run(loss, feed_dict={x: xs, y: ys}))
            for _ in range(100):
                sess.run(train_ops, feed_dict={x: xs, y: ys})
            last = float(sess.run(loss, feed_dict={x: xs, y: ys}))
        assert last < first * 0.05
        np.testing.assert_allclose(w.numpy(), true_w, atol=0.15)
