"""cond / while_loop in imperative and staged execution (paper §4.1)."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError, UnimplementedError


class TestCondEager:
    def test_takes_true_branch(self):
        out = repro.cond(
            repro.constant(True), lambda: repro.constant(1.0), lambda: repro.constant(2.0)
        )
        assert float(out) == 1.0

    def test_takes_false_branch(self):
        out = repro.cond(
            repro.constant(False), lambda: repro.constant(1.0), lambda: repro.constant(2.0)
        )
        assert float(out) == 2.0

    def test_eager_runs_single_branch(self):
        ran = []
        repro.cond(
            repro.constant(True),
            lambda: ran.append("t") or repro.constant(0.0),
            lambda: ran.append("f") or repro.constant(0.0),
        )
        assert ran == ["t"]

    def test_eager_gradient_through_cond(self):
        x = repro.constant(3.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.cond(x > 0.0, lambda: x * x, lambda: -x)
        assert float(tape.gradient(y, x)) == 6.0


class TestCondStaged:
    def test_data_dependent_branching(self):
        @repro.function
        def f(x):
            return repro.cond(
                repro.reduce_sum(x) > 0.0, lambda: x * 2.0, lambda: x / 2.0
            )

        np.testing.assert_allclose(
            f(repro.constant([1.0, 2.0])).numpy(), [2.0, 4.0]
        )
        np.testing.assert_allclose(
            f(repro.constant([-1.0, -2.0])).numpy(), [-0.5, -1.0]
        )
        assert f.trace_count == 1  # one trace handles both branches

    def test_both_branches_staged(self):
        @repro.function
        def f(x):
            return repro.cond(x > 0.0, lambda: x + 1.0, lambda: x - 1.0)

        concrete = f.get_concrete_function(repro.constant(0.0))
        cond_nodes = concrete.func_graph.ops_by_type("Cond")
        assert len(cond_nodes) == 1
        assert cond_nodes[0].attrs["true_fn"].num_nodes > 0
        assert cond_nodes[0].attrs["false_fn"].num_nodes > 0

    def test_multi_output_structure(self):
        @repro.function
        def f(x):
            return repro.cond(
                x > 0.0,
                lambda: {"a": x * 2.0, "b": x + 1.0},
                lambda: {"a": x / 2.0, "b": x - 1.0},
            )

        out = f(repro.constant(4.0))
        assert float(out["a"]) == 8.0
        assert float(out["b"]) == 5.0

    def test_mismatched_structures_raise(self):
        @repro.function
        def f(x):
            return repro.cond(x > 0.0, lambda: (x, x), lambda: x)

        with pytest.raises(InvalidArgumentError):
            f(repro.constant(1.0))

    def test_mismatched_dtypes_raise(self):
        @repro.function
        def f(x):
            return repro.cond(
                x > 0.0, lambda: x, lambda: repro.cast(x, repro.float64)
            )

        with pytest.raises(InvalidArgumentError):
            f(repro.constant(1.0))

    def test_staged_cond_gradient(self):
        @repro.function
        def f(x):
            y = repro.cond(
                repro.reduce_sum(x) > 0.0,
                lambda: repro.reduce_sum(x * x),
                lambda: repro.reduce_sum(-x),
            )
            return y

        for value, expected in [([2.0, 1.0], [4.0, 2.0]), ([-2.0, -1.0], [-1.0, -1.0])]:
            x = repro.constant(value)
            with repro.GradientTape() as tape:
                tape.watch(x)
                y = f(x)
            np.testing.assert_allclose(tape.gradient(y, x).numpy(), expected)

    def test_variable_mutation_in_branch(self):
        v = repro.Variable(0.0)

        @repro.function
        def f(x):
            repro.cond(x > 0.0, lambda: v.assign_add(1.0), lambda: v.assign_sub(1.0))
            return v.read_value()

        assert float(f(repro.constant(1.0))) == 1.0
        assert float(f(repro.constant(-1.0))) == 0.0


class TestWhileEager:
    def test_accumulate(self):
        i, total = repro.while_loop(
            lambda i, total: i < 5,
            lambda i, total: (i + 1, total + i),
            (repro.constant(0), repro.constant(0)),
        )
        assert int(i) == 5
        assert int(total) == 10

    def test_maximum_iterations(self):
        i, = repro.while_loop(
            lambda i: i < 100,
            lambda i: (i + 1,),
            (repro.constant(0),),
            maximum_iterations=3,
        )
        assert int(i) == 3

    def test_eager_gradient_through_unrolled_loop(self):
        x = repro.constant(2.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = x
            i = 0
            while i < 3:  # plain Python loop: tape records each iteration
                y = y * x
                i += 1
        assert float(tape.gradient(y, x)) == pytest.approx(4 * 2.0 ** 3)


class TestWhileStaged:
    def test_constant_graph_size(self):
        @repro.function
        def f(x):
            _, acc = repro.while_loop(
                lambda i, acc: i < 10,
                lambda i, acc: (i + 1, acc + x),
                (repro.constant(0), repro.zeros_like(x)),
            )
            return acc

        concrete = f.get_concrete_function(repro.constant([1.0]))
        assert len(concrete.func_graph.ops_by_type("While")) == 1
        np.testing.assert_allclose(f(repro.constant([1.5])).numpy(), [15.0])

    def test_data_dependent_trip_count(self):
        @repro.function
        def countdown(n):
            i, steps = repro.while_loop(
                lambda i, steps: i > 0,
                lambda i, steps: (i - 1, steps + 1),
                (n, repro.constant(0)),
            )
            return steps

        assert int(countdown(repro.constant(4))) == 4
        assert int(countdown(repro.constant(7))) == 7
        assert countdown.trace_count == 1

    def test_captures_in_cond_and_body(self):
        limit = repro.constant(6)
        step = repro.constant(2)

        @repro.function
        def f(x):
            out, = repro.while_loop(
                lambda v: v < limit, lambda v: (v + step,), (x,)
            )
            return out

        assert int(f(repro.constant(0))) == 6

    def test_bad_condition_rejected(self):
        @repro.function
        def f(x):
            return repro.while_loop(lambda v: v, lambda v: (v,), (x,))

        with pytest.raises(InvalidArgumentError):
            f(repro.constant(1.0))

    def test_body_structure_mismatch_rejected(self):
        @repro.function
        def f(x):
            return repro.while_loop(
                lambda a, b: a < 1.0, lambda a, b: (a,), (x, x)
            )

        with pytest.raises(InvalidArgumentError):
            f(repro.constant(0.0))

    def test_staged_while_gradient_power(self):
        """Reverse mode through While via tensor-list stacks."""

        @repro.function
        def f(x):
            _, y = repro.while_loop(
                lambda i, y: i < 3,
                lambda i, y: (i + 1, y * x),
                (repro.constant(0), repro.ones_like(x)),
            )
            return repro.reduce_sum(y)

        x = repro.constant([2.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = f(x)
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), [12.0])  # 3x^2

    def test_staged_while_gradient_wrt_initial_value(self):
        @repro.function
        def f(x0):
            _, acc = repro.while_loop(
                lambda i, acc: i < 4,
                lambda i, acc: (i + 1, acc * 0.5),
                (repro.constant(0), x0),
            )
            return repro.reduce_sum(acc)

        x0 = repro.constant([8.0, 16.0])
        with repro.GradientTape() as tape:
            tape.watch(x0)
            out = f(x0)
        np.testing.assert_allclose(tape.gradient(out, x0).numpy(), [0.0625, 0.0625])

    def test_staged_while_gradient_wrt_captured_variable(self):
        v = repro.Variable(3.0)

        @repro.function
        def f(x):
            _, acc = repro.while_loop(
                lambda i, acc: i < 2,
                lambda i, acc: (i + 1, acc * v),
                (repro.constant(0), x),
            )
            return repro.reduce_sum(acc)

        with repro.GradientTape() as tape:
            out = f(repro.constant([1.0]))
        assert float(tape.gradient(out, v)) == pytest.approx(6.0)  # d v^2/dv

    def test_staged_while_gradient_dynamic_trip_count(self):
        @repro.function
        def f(x, n):
            _, y = repro.while_loop(
                lambda i, y: i < n,
                lambda i, y: (i + 1, y * x),
                (repro.constant(0), repro.ones_like(x)),
            )
            return repro.reduce_sum(y)

        for n, expected in [(2, 6.0), (4, 108.0)]:  # d(x^n)/dx at x=3
            x = repro.constant([3.0])
            with repro.GradientTape() as tape:
                tape.watch(x)
                out = f(x, repro.constant(n))
            np.testing.assert_allclose(tape.gradient(out, x).numpy(), [expected])
        assert f.trace_count <= 2  # trip count is data, not a new trace

    def test_variable_mutation_in_body(self):
        v = repro.Variable(0.0)

        @repro.function
        def f():
            repro.while_loop(
                lambda i: i < 4,
                lambda i: (_bump(i),),
                (repro.constant(0),),
            )
            return v.read_value()

        def _bump(i):
            v.assign_add(10.0)
            return i + 1

        assert float(f()) == 40.0
