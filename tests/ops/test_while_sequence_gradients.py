"""Gradients through While loops that accumulate per-iteration outputs.

The list-valued gradient path: ``TensorListStack`` gradients become
tensor lists that thread backward through the loop, so models like
while_loop-based RNNs (constant-size staged graphs) train end to end.
"""

import numpy as np
import pytest

import repro
from repro import nn
from repro.ops import list_ops
from tests.conftest import numeric_gradient


class TestListGradientPlumbing:
    def test_stack_gradient_is_a_list(self):
        x = repro.constant([1.0, 2.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            handle = list_ops.empty_tensor_list()
            handle = list_ops.tensor_list_push_back(handle, x)
            handle = list_ops.tensor_list_push_back(handle, x * 3.0)
            stacked = list_ops.tensor_list_stack(handle, repro.float32)
            y = repro.reduce_sum(stacked * repro.constant([[1.0, 1.0], [10.0, 10.0]]))
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), [31.0, 31.0])

    def test_from_tensor_roundtrip_gradient(self):
        x = repro.constant(np.arange(6, dtype=np.float32).reshape(3, 2))
        with repro.GradientTape() as tape:
            tape.watch(x)
            handle = list_ops.tensor_list_from_tensor(x)
            back = list_ops.tensor_list_stack(handle, repro.float32)
            y = repro.reduce_sum(back * 2.0)
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), np.full((3, 2), 2.0))


class TestWhileAccumulatorGradients:
    def test_gradient_through_stacked_loop_outputs(self):
        """sum over t of (x * (t+1)) — gradient must count iterations."""

        @repro.function
        def f(x):
            def body(i, acc):
                value = x * repro.cast(i + 1, repro.float32)
                return i + 1, list_ops.tensor_list_push_back(acc, value)

            _, acc = repro.while_loop(
                lambda i, acc: i < 4,
                body,
                (repro.constant(0), list_ops.empty_tensor_list()),
            )
            stacked = list_ops.tensor_list_stack(acc, repro.float32, element_shape=(2,))
            return repro.reduce_sum(stacked)

        x = repro.constant([1.0, 1.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = f(x)
        assert float(y) == pytest.approx(2 * (1 + 2 + 3 + 4))
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), [10.0, 10.0])

    def test_while_rnn_matches_unrolled_gradients(self):
        """The acid test: identical gradients from both RNN modes."""
        repro.set_random_seed(5)
        rng = np.random.default_rng(5)
        x_np = rng.normal(size=(3, 4, 2)).astype(np.float32)
        seed_np = rng.normal(size=(3, 4, 6)).astype(np.float32)

        cell = nn.GRUCell(6)
        unrolled = nn.RNN(cell, return_sequences=True, unroll=True)
        looped = nn.RNN(cell, return_sequences=True, unroll=False)
        x = repro.constant(x_np)
        seed = repro.constant(seed_np)
        unrolled(x)  # build cell variables once, shared by both drivers

        def grads_for(rnn, staged):
            def loss_fn(inp):
                return repro.reduce_sum(rnn(inp) * seed)

            fn = repro.function(loss_fn) if staged else loss_fn
            with repro.GradientTape() as tape:
                tape.watch(x)
                loss = fn(x)
            grads = tape.gradient(
                loss, [x] + cell.trainable_variables, unconnected_gradients="zero"
            )
            return [g.numpy() for g in grads]

        reference = grads_for(unrolled, staged=False)
        for mode_name, rnn, staged in [
            ("unrolled-staged", unrolled, True),
            ("while-eager-call", looped, True),
        ]:
            got = grads_for(rnn, staged)
            for r, g in zip(reference, got):
                np.testing.assert_allclose(g, r, rtol=1e-4, atol=1e-5)

    def test_unused_accumulator_is_harmless(self):
        """A loop that stacks values nobody differentiates through."""

        @repro.function
        def f(x):
            def body(i, acc, total):
                return (
                    i + 1,
                    list_ops.tensor_list_push_back(acc, x * 0.0),
                    total + x,
                )

            _, _, total = repro.while_loop(
                lambda i, acc, total: i < 3,
                body,
                (
                    repro.constant(0),
                    list_ops.empty_tensor_list(),
                    repro.zeros_like(x),
                ),
            )
            return repro.reduce_sum(total)

        x = repro.constant([2.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = f(x)
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), [3.0])
