"""Array op correctness against NumPy references."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError

X = np.arange(24, dtype=np.float32).reshape(2, 3, 4)


def t(x):
    return repro.constant(x)


class TestShapeReading:
    def test_shape(self):
        s = repro.shape(t(X))
        assert s.dtype is repro.int32
        np.testing.assert_array_equal(s.numpy(), [2, 3, 4])

    def test_size_rank(self):
        assert int(repro.size(t(X))) == 24
        assert int(repro.rank(t(X))) == 3

    def test_shape_of_scalar(self):
        assert repro.shape(t(1.0)).numpy().shape == (0,)


class TestReshapeTranspose:
    def test_reshape_static(self):
        out = repro.reshape(t(X), [4, 6])
        assert out.shape.as_list() == [4, 6]
        np.testing.assert_array_equal(out.numpy(), X.reshape(4, 6))

    def test_reshape_minus_one(self):
        assert repro.reshape(t(X), [-1]).shape.as_list() == [24]
        assert repro.reshape(t(X), [2, -1]).shape.as_list() == [2, 12]

    def test_reshape_dynamic_shape_tensor(self):
        out = repro.reshape(t(X), repro.shape(t(np.zeros((6, 4)))))
        assert out.shape.as_list() == [6, 4]

    def test_transpose_default_reverses(self):
        np.testing.assert_array_equal(repro.transpose(t(X)).numpy(), X.T)

    def test_transpose_perm(self):
        np.testing.assert_array_equal(
            repro.transpose(t(X), [1, 0, 2]).numpy(), np.transpose(X, (1, 0, 2))
        )

    def test_expand_squeeze(self):
        e = repro.expand_dims(t(X), 1)
        assert e.shape.as_list() == [2, 1, 3, 4]
        s = repro.squeeze(e, axis=1)
        assert s.shape.as_list() == [2, 3, 4]
        assert repro.squeeze(e).shape.as_list() == [2, 3, 4]

    def test_expand_dims_negative_axis(self):
        assert repro.expand_dims(t(X), -1).shape.as_list() == [2, 3, 4, 1]


class TestJoining:
    def test_concat(self):
        out = repro.concat([t(X), t(X)], axis=1)
        np.testing.assert_array_equal(out.numpy(), np.concatenate([X, X], axis=1))

    def test_concat_negative_axis(self):
        out = repro.concat([t(X), t(X)], axis=-1)
        assert out.shape.as_list() == [2, 3, 8]

    def test_split_equal(self):
        parts = repro.split(t(X), 3, axis=1)
        assert len(parts) == 3
        np.testing.assert_array_equal(parts[1].numpy(), X[:, 1:2])

    def test_split_sizes(self):
        a, b = repro.split(t(X), [1, 3], axis=2)
        assert a.shape.as_list() == [2, 3, 1]
        assert b.shape.as_list() == [2, 3, 3]

    def test_split_uneven_raises(self):
        with pytest.raises(InvalidArgumentError):
            repro.split(t(X), 5, axis=1)

    def test_stack_unstack_roundtrip(self):
        rows = [t(np.float32([1, 2])), t(np.float32([3, 4]))]
        stacked = repro.stack(rows, axis=0)
        np.testing.assert_array_equal(stacked.numpy(), [[1, 2], [3, 4]])
        back = repro.unstack(stacked)
        assert len(back) == 2
        np.testing.assert_array_equal(back[1].numpy(), [3, 4])

    def test_stack_axis1(self):
        rows = [t(np.float32([1, 2])), t(np.float32([3, 4]))]
        np.testing.assert_array_equal(
            repro.stack(rows, axis=1).numpy(), [[1, 3], [2, 4]]
        )


class TestGatherPadTile:
    def test_gather_axis0(self):
        out = repro.gather(t(X), t(np.array([1, 0, 1])))
        np.testing.assert_array_equal(out.numpy(), X[[1, 0, 1]])

    def test_gather_axis1(self):
        out = repro.gather(t(X), t(np.array([2, 2])), axis=1)
        np.testing.assert_array_equal(out.numpy(), np.take(X, [2, 2], axis=1))

    def test_pad(self):
        out = repro.pad(t(np.float32([[1, 2]])), [[1, 0], [0, 2]])
        np.testing.assert_array_equal(out.numpy(), [[0, 0, 0, 0], [1, 2, 0, 0]])

    def test_tile(self):
        out = repro.tile(t(np.float32([[1, 2]])), [2, 3])
        assert out.shape.as_list() == [2, 6]
        np.testing.assert_array_equal(out.numpy(), np.tile([[1, 2]], (2, 3)))


class TestFillers:
    def test_zeros_ones(self):
        assert repro.zeros([2, 2]).numpy().sum() == 0
        assert repro.ones([3]).numpy().sum() == 3
        assert repro.zeros([], dtype=repro.int32).shape.rank == 0

    def test_zeros_like_ones_like(self):
        x = t(X)
        np.testing.assert_array_equal(repro.zeros_like(x).numpy(), np.zeros_like(X))
        np.testing.assert_array_equal(repro.ones_like(x).numpy(), np.ones_like(X))
        assert repro.zeros_like(t(np.array([1, 2], np.int32))).dtype is repro.int32

    def test_fill_dynamic(self):
        out = repro.fill(repro.constant(np.array([2, 2], np.int32)), 7.0)
        np.testing.assert_array_equal(out.numpy(), np.full((2, 2), 7.0, np.float32))

    def test_eye(self):
        np.testing.assert_array_equal(repro.eye(3).numpy(), np.eye(3, dtype=np.float32))

    def test_diag_roundtrip(self):
        v = t(np.float32([1, 2, 3]))
        m = repro.diag(v)
        np.testing.assert_array_equal(m.numpy(), np.diag([1, 2, 3]))
        np.testing.assert_array_equal(repro.diag_part(m).numpy(), [1, 2, 3])

    def test_range(self):
        np.testing.assert_array_equal(repro.range(5).numpy(), np.arange(5))
        np.testing.assert_array_equal(repro.range(2, 8, 2).numpy(), [2, 4, 6])
        assert repro.range(0.0, 1.0, 0.25).dtype is repro.float32

    def test_one_hot(self):
        out = repro.one_hot(t(np.array([0, 2, 9])), depth=3)
        np.testing.assert_array_equal(
            out.numpy(), [[1, 0, 0], [0, 0, 1], [0, 0, 0]]
        )

    def test_broadcast_to(self):
        out = repro.broadcast_to(t(np.float32([1, 2])), [3, 2])
        assert out.shape.as_list() == [3, 2]
        np.testing.assert_array_equal(out.numpy(), np.broadcast_to([1, 2], (3, 2)))


class TestWhere:
    def test_select(self):
        cond = t(np.array([True, False, True]))
        out = repro.where(cond, t(np.float32([1, 2, 3])), t(np.float32([9, 9, 9])))
        np.testing.assert_array_equal(out.numpy(), [1, 9, 3])

    def test_scalar_broadcasting(self):
        cond = t(np.array([True, False]))
        out = repro.where(cond, t(np.float32([5, 5])), 0.0)
        np.testing.assert_array_equal(out.numpy(), [5, 0])

    def test_boolean_mask(self):
        out = repro.boolean_mask(t(np.float32([1, 2, 3, 4])), t(np.array([True, False, True, False])))
        np.testing.assert_array_equal(out.numpy(), [1, 3])


class TestIdentityStopGradient:
    def test_identity_values(self):
        x = t(X)
        np.testing.assert_array_equal(repro.identity(x).numpy(), X)

    def test_stop_gradient_blocks(self):
        x = repro.constant(3.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.stop_gradient(x) * x
        assert float(tape.gradient(y, x)) == 3.0
