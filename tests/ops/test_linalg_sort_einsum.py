"""Linear algebra, sorting/selection, einsum, and the extra activations."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError
from repro.ops import linalg_ops, nn_ops, sort_ops
from tests.conftest import numeric_gradient


def t64(x):
    return repro.constant(np.asarray(x, np.float64), dtype=repro.float64)


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestLinalgValues:
    def test_inverse(self):
        a = _spd(4)
        np.testing.assert_allclose(
            linalg_ops.matrix_inverse(t64(a)).numpy(), np.linalg.inv(a), rtol=1e-8
        )

    def test_cholesky(self):
        a = _spd(5)
        np.testing.assert_allclose(
            linalg_ops.cholesky(t64(a)).numpy(), np.linalg.cholesky(a), rtol=1e-8
        )

    def test_solve(self):
        a, b = _spd(4), np.random.randn(4, 2)
        np.testing.assert_allclose(
            linalg_ops.matrix_solve(t64(a), t64(b)).numpy(),
            np.linalg.solve(a, b),
            rtol=1e-8,
        )

    def test_triangular_solve(self):
        a = np.tril(_spd(4))
        b = np.random.randn(4, 3)
        out = linalg_ops.matrix_triangular_solve(t64(a), t64(b), lower=True)
        np.testing.assert_allclose(a @ out.numpy(), b, rtol=1e-7, atol=1e-9)

    def test_logdet_and_det(self):
        a = _spd(4)
        assert float(linalg_ops.logdet(t64(a))) == pytest.approx(
            np.log(np.linalg.det(a)), rel=1e-8
        )
        assert float(linalg_ops.matrix_determinant(t64(a))) == pytest.approx(
            np.linalg.det(a), rel=1e-8
        )

    def test_batched_inverse(self):
        a = np.stack([_spd(3, s) for s in range(4)])
        np.testing.assert_allclose(
            linalg_ops.matrix_inverse(t64(a)).numpy(), np.linalg.inv(a), rtol=1e-8
        )

    def test_trace(self):
        a = np.random.randn(3, 5, 5)
        np.testing.assert_allclose(
            linalg_ops.trace(t64(a)).numpy(), np.trace(a, axis1=-2, axis2=-1)
        )

    def test_band_part(self):
        a = np.random.randn(4, 4)
        np.testing.assert_allclose(
            linalg_ops.band_part(t64(a), -1, 0).numpy(), np.tril(a)
        )
        np.testing.assert_allclose(
            linalg_ops.band_part(t64(a), 0, -1).numpy(), np.triu(a)
        )
        np.testing.assert_allclose(
            linalg_ops.band_part(t64(a), 0, 0).numpy(), np.diag(np.diag(a))
        )

    def test_matrix_transpose(self):
        a = np.random.randn(2, 3, 4)
        np.testing.assert_allclose(
            linalg_ops.matrix_transpose(t64(a)).numpy(), np.swapaxes(a, -1, -2)
        )


class TestLinalgGradients:
    def _check(self, fn, a, rtol=2e-2):
        x = t64(a)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.reduce_sum(fn(x))
        analytic = tape.gradient(y, x).numpy()
        numeric = numeric_gradient(
            lambda m: repro.reduce_sum(fn(t64(m))).numpy(), a, eps=1e-5
        )
        np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=1e-5)

    def test_inverse_grad(self):
        self._check(linalg_ops.matrix_inverse, _spd(3))

    def test_logdet_grad(self):
        a = _spd(3)
        x = t64(a)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = linalg_ops.logdet(x)
        np.testing.assert_allclose(
            tape.gradient(y, x).numpy(), np.linalg.inv(a).T, rtol=1e-7
        )

    def test_det_grad(self):
        self._check(linalg_ops.matrix_determinant, _spd(3))

    def test_cholesky_grad(self):
        # The analytic rule returns the *symmetrized* gradient (the input
        # is constrained symmetric); NumPy's kernel reads only the lower
        # triangle, so symmetrize the numeric gradient before comparing.
        a = _spd(3)
        x = t64(a)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.reduce_sum(linalg_ops.cholesky(x))
        analytic = tape.gradient(y, x).numpy()
        numeric = numeric_gradient(
            lambda m: repro.reduce_sum(linalg_ops.cholesky(t64(m))).numpy(),
            a,
            eps=1e-5,
        )
        np.testing.assert_allclose(
            analytic, (numeric + numeric.T) / 2, rtol=1e-3, atol=1e-6
        )

    def test_solve_grad(self):
        a, b = _spd(3), np.random.randn(3, 2)
        x, y = t64(a), t64(b)
        with repro.GradientTape() as tape:
            tape.watch(x)
            tape.watch(y)
            out = repro.reduce_sum(linalg_ops.matrix_solve(x, y))
        ga, gb = tape.gradient(out, [x, y])
        na = numeric_gradient(
            lambda m: repro.reduce_sum(linalg_ops.matrix_solve(t64(m), t64(b))).numpy(), a, eps=1e-5
        )
        nb = numeric_gradient(
            lambda m: repro.reduce_sum(linalg_ops.matrix_solve(t64(a), t64(m))).numpy(), b, eps=1e-5
        )
        np.testing.assert_allclose(ga.numpy(), na, rtol=1e-3, atol=1e-6)
        np.testing.assert_allclose(gb.numpy(), nb, rtol=1e-3, atol=1e-6)

    def test_trace_grad(self):
        a = np.random.randn(4, 4)
        x = t64(a)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = linalg_ops.trace(x)
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), np.eye(4))

    def test_gaussian_log_likelihood_end_to_end(self):
        """A realistic composite: multivariate normal log-density."""
        cov = _spd(3)
        x_np = np.random.randn(3, 1)

        def neg_log_prob(c):
            solve = linalg_ops.matrix_solve(c, t64(x_np))
            quad = repro.reduce_sum(t64(x_np) * solve)
            return 0.5 * (quad + linalg_ops.logdet(c))

        c = t64(cov)
        with repro.GradientTape() as tape:
            tape.watch(c)
            nll = neg_log_prob(c)
        analytic = tape.gradient(nll, c).numpy()
        numeric = numeric_gradient(
            lambda m: float(neg_log_prob(t64(m)).numpy()), cov, eps=1e-5
        )
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-6)


class TestSorting:
    def test_sort_matches_numpy(self):
        x = np.random.randn(3, 7)
        np.testing.assert_array_equal(
            sort_ops.sort(t64(x)).numpy(), np.sort(x, axis=-1)
        )
        np.testing.assert_array_equal(
            sort_ops.sort(t64(x), direction="DESCENDING").numpy(),
            -np.sort(-x, axis=-1),
        )

    def test_sort_axis0(self):
        x = np.random.randn(4, 3)
        np.testing.assert_array_equal(
            sort_ops.sort(t64(x), axis=0).numpy(), np.sort(x, axis=0)
        )

    def test_argsort(self):
        x = np.float64([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(sort_ops.argsort(t64(x)).numpy(), [1, 2, 0])

    def test_sort_gradient_follows_permutation(self):
        x = t64([3.0, 1.0, 2.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.reduce_sum(sort_ops.sort(x) * t64([100.0, 10.0, 1.0]))
        # sorted = [1,2,3] -> positions of x entries: 3->seed 1, 1->100, 2->10
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), [1.0, 100.0, 10.0])

    def test_bad_direction(self):
        with pytest.raises(InvalidArgumentError):
            sort_ops.sort(t64([1.0]), direction="SIDEWAYS")

    def test_top_k_values_and_indices(self):
        x = np.float64([[5.0, 1.0, 9.0, 3.0], [0.0, -1.0, -2.0, 4.0]])
        values, indices = sort_ops.top_k(t64(x), k=2)
        np.testing.assert_array_equal(values.numpy(), [[9.0, 5.0], [4.0, 0.0]])
        np.testing.assert_array_equal(indices.numpy(), [[2, 0], [3, 0]])

    def test_top_k_too_large(self):
        with pytest.raises(InvalidArgumentError):
            values, _ = sort_ops.top_k(t64([1.0, 2.0]), k=5)
            values.numpy()  # async/lazy modes defer the kernel error

    def test_top_k_gradient_scatters(self):
        x = t64([5.0, 1.0, 9.0, 3.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            values, _ = sort_ops.top_k(x, k=2)
            y = repro.reduce_sum(values * t64([10.0, 1.0]))
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), [1.0, 0.0, 10.0, 0.0])

    def test_cumprod(self, grad_checker):
        x = np.float64([1.0, 2.0, 3.0])
        np.testing.assert_allclose(
            sort_ops.cumprod(t64(x)).numpy(), [1.0, 2.0, 6.0]
        )
        grad_checker(lambda v: sort_ops.cumprod(v), np.random.rand(4) + 0.5)


class TestEinsum:
    CASES = [
        ("ij,jk->ik", [(3, 4), (4, 5)]),
        ("ij,ij->", [(3, 4), (3, 4)]),
        ("bij,bjk->bik", [(2, 3, 4), (2, 4, 5)]),
        ("ij->ji", [(3, 4)]),
        ("bi,ij->bj", [(5, 3), (3, 2)]),
        ("i,j->ij", [(3,), (4,)]),
    ]

    @pytest.mark.parametrize("equation,shapes", CASES, ids=[c[0] for c in CASES])
    def test_values_match_numpy(self, equation, shapes):
        arrays = [np.random.randn(*s) for s in shapes]
        got = repro.einsum(equation, *[t64(a) for a in arrays]).numpy()
        np.testing.assert_allclose(got, np.einsum(equation, *arrays), rtol=1e-8)

    @pytest.mark.parametrize("equation,shapes", CASES[:5], ids=[c[0] for c in CASES[:5]])
    def test_gradients(self, equation, shapes):
        arrays = [np.random.randn(*s) for s in shapes]
        tensors = [t64(a) for a in arrays]
        with repro.GradientTape() as tape:
            for x in tensors:
                tape.watch(x)
            out = repro.reduce_sum(repro.einsum(equation, *tensors))
        grads = tape.gradient(out, tensors)
        for i, (a, g) in enumerate(zip(arrays, grads)):
            def scalar(m, i=i):
                ops = [t64(x) for x in arrays]
                ops[i] = t64(m)
                return repro.reduce_sum(repro.einsum(equation, *ops)).numpy()

            np.testing.assert_allclose(
                g.numpy(), numeric_gradient(scalar, a, eps=1e-5), rtol=1e-3, atol=1e-6
            )

    def test_implicit_output(self):
        a, b = np.random.randn(3, 4), np.random.randn(4, 5)
        got = repro.einsum("ij,jk", t64(a), t64(b)).numpy()
        np.testing.assert_allclose(got, a @ b, rtol=1e-8)

    def test_repeated_label_rejected(self):
        with pytest.raises(InvalidArgumentError):
            repro.einsum("ii->i", t64(np.eye(3)))


class TestExtraActivations:
    def test_gelu_reference(self):
        from scipy.stats import norm

        x = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(
            nn_ops.gelu(t64(x)).numpy(), x * norm.cdf(x), rtol=1e-6
        )

    def test_silu(self):
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(
            nn_ops.silu(t64(x)).numpy(), x / (1 + np.exp(-x)), rtol=1e-8
        )

    def test_softsign(self):
        x = np.float64([-2.0, 0.0, 2.0])
        np.testing.assert_allclose(
            nn_ops.softsign(t64(x)).numpy(), x / (1 + np.abs(x))
        )

    def test_log_sigmoid_stable(self):
        x = t64([-1000.0, 0.0, 1000.0])
        out = nn_ops.log_sigmoid(x).numpy()
        assert np.isfinite(out[0]) or out[0] == -1000.0
        assert out[1] == pytest.approx(np.log(0.5))
        assert out[2] == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize(
        "fn", [nn_ops.gelu, nn_ops.silu, nn_ops.softsign, nn_ops.log_sigmoid]
    )
    def test_gradients(self, fn, grad_checker):
        grad_checker(fn, np.array([-1.5, -0.2, 0.4, 2.0]))
