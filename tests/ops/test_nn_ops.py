"""Neural-net op correctness against naive references."""

import numpy as np
import pytest

import repro
from repro.ops import nn_ops


def t(x):
    return repro.constant(x)


def naive_conv2d(x, w, stride, padding):
    """Direct-loop reference convolution (NHWC / HWIO)."""
    n, h, wd, cin = x.shape
    kh, kw, _, cout = w.shape
    if padding == "SAME":
        oh = -(-h // stride)
        ow = -(-wd // stride)
        ph = max((oh - 1) * stride + kh - h, 0)
        pw = max((ow - 1) * stride + kw - wd, 0)
        x = np.pad(x, ((0, 0), (ph // 2, ph - ph // 2), (pw // 2, pw - pw // 2), (0, 0)))
    else:
        oh = (h - kh) // stride + 1
        ow = (wd - kw) // stride + 1
    out = np.zeros((n, oh, ow, cout), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            patch = x[:, i * stride : i * stride + kh, j * stride : j * stride + kw, :]
            out[:, i, j, :] = np.tensordot(patch, w, axes=([1, 2, 3], [0, 1, 2]))
    return out


class TestActivations:
    def test_relu(self):
        x = t(np.float32([-1, 0, 2]))
        np.testing.assert_array_equal(nn_ops.relu(x).numpy(), [0, 0, 2])

    def test_leaky_relu(self):
        x = t(np.float32([-2, 4]))
        np.testing.assert_allclose(nn_ops.leaky_relu(x, 0.1).numpy(), [-0.2, 4])

    def test_softplus_matches_reference(self):
        x = np.float32([-30, -1, 0, 1, 30])
        np.testing.assert_allclose(
            nn_ops.softplus(t(x)).numpy(), np.logaddexp(0, x), rtol=1e-6
        )

    def test_elu(self):
        x = t(np.float32([-1, 2]))
        np.testing.assert_allclose(
            nn_ops.elu(x).numpy(), [np.expm1(-1), 2], rtol=1e-6
        )

    def test_softmax_rows_sum_to_one(self):
        x = t(np.random.randn(4, 7).astype(np.float32))
        s = nn_ops.softmax(x).numpy()
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), rtol=1e-6)
        assert (s >= 0).all()

    def test_log_softmax_consistent(self):
        x = np.random.randn(3, 5).astype(np.float32)
        np.testing.assert_allclose(
            nn_ops.log_softmax(t(x)).numpy(),
            np.log(nn_ops.softmax(t(x)).numpy()),
            rtol=1e-5,
            atol=1e-6,
        )


class TestCrossEntropy:
    def test_softmax_xent_matches_manual(self):
        logits = np.random.randn(6, 4).astype(np.float32)
        labels = np.eye(4, dtype=np.float32)[np.random.randint(0, 4, 6)]
        loss = nn_ops.softmax_cross_entropy_with_logits(
            labels=t(labels), logits=t(logits)
        ).numpy()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(loss, -(labels * log_probs).sum(axis=1), rtol=1e-5)

    def test_sparse_equals_dense(self):
        logits = np.random.randn(5, 3).astype(np.float32)
        labels = np.array([0, 2, 1, 1, 0])
        dense = nn_ops.softmax_cross_entropy_with_logits(
            labels=t(np.eye(3, dtype=np.float32)[labels]), logits=t(logits)
        )
        sparse = nn_ops.sparse_softmax_cross_entropy_with_logits(
            labels=t(labels), logits=t(logits)
        )
        np.testing.assert_allclose(sparse.numpy(), dense.numpy(), rtol=1e-6)

    def test_sigmoid_xent_stable(self):
        logits = np.float32([-100.0, 0.0, 100.0])
        labels = np.float32([0.0, 0.5, 1.0])
        out = nn_ops.sigmoid_cross_entropy_with_logits(
            labels=t(labels), logits=t(logits)
        ).numpy()
        assert np.isfinite(out).all()
        assert out[1] == pytest.approx(np.log(2), rel=1e-5)


class TestConv2D:
    @pytest.mark.parametrize("padding", ["VALID", "SAME"])
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_naive(self, padding, stride):
        x = np.random.randn(2, 6, 5, 3).astype(np.float32)
        w = np.random.randn(3, 2, 3, 4).astype(np.float32)
        got = nn_ops.conv2d(t(x), t(w), strides=stride, padding=padding).numpy()
        np.testing.assert_allclose(
            got, naive_conv2d(x, w, stride, padding), rtol=1e-4, atol=1e-5
        )

    def test_output_shape_inference_same(self):
        x = np.zeros((1, 7, 7, 2), np.float32)
        w = np.zeros((3, 3, 2, 8), np.float32)
        out = nn_ops.conv2d(t(x), t(w), strides=2, padding="SAME")
        assert out.shape.as_list() == [1, 4, 4, 8]

    def test_bad_padding_raises(self):
        with pytest.raises(Exception):
            nn_ops.conv2d(
                t(np.zeros((1, 4, 4, 1), np.float32)),
                t(np.zeros((2, 2, 1, 1), np.float32)),
                padding="WEIRD",
            )


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = nn_ops.max_pool2d(t(x), 2).numpy()
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = nn_ops.avg_pool2d(t(x), 2).numpy()
        np.testing.assert_allclose(out[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_same_padding_shape(self):
        x = np.zeros((1, 5, 5, 2), np.float32)
        out = nn_ops.max_pool2d(t(x), 3, strides=2, padding="SAME")
        assert out.shape.as_list() == [1, 3, 3, 2]


class TestComposites:
    def test_bias_add(self):
        x = np.random.randn(2, 3).astype(np.float32)
        b = np.float32([1, 2, 3])
        np.testing.assert_allclose(nn_ops.bias_add(t(x), t(b)).numpy(), x + b)

    def test_dropout_zero_rate_is_identity(self):
        x = t(np.ones((4, 4), np.float32))
        assert nn_ops.dropout(x, 0.0) is x

    def test_dropout_scales_survivors(self):
        x = t(np.ones((2000,), np.float32))
        out = nn_ops.dropout(x, 0.5).numpy()
        kept = out != 0
        assert 0.35 < kept.mean() < 0.65
        np.testing.assert_allclose(out[kept], 2.0, rtol=1e-6)

    def test_moments(self):
        x = np.random.randn(50, 3).astype(np.float32)
        mean, var = nn_ops.moments(t(x), axes=(0,))
        np.testing.assert_allclose(mean.numpy(), x.mean(0), rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(var.numpy(), x.var(0), rtol=1e-3, atol=1e-5)

    def test_batch_normalization_normalizes(self):
        x = np.random.randn(200, 4).astype(np.float32) * 3 + 5
        mean, var = nn_ops.moments(t(x), axes=(0,))
        out = nn_ops.batch_normalization(
            t(x), mean, var, offset=None, scale=None, variance_epsilon=0.0
        ).numpy()
        np.testing.assert_allclose(out.mean(0), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(0), np.ones(4), atol=1e-3)

    def test_l2_loss(self):
        x = np.float32([3.0, 4.0])
        assert float(nn_ops.l2_loss(t(x))) == pytest.approx(12.5)
