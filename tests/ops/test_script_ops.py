"""py_func: embedding imperative code in graphs (paper §4.7)."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError


class TestEager:
    def test_basic_call(self):
        out = repro.py_func(
            lambda a, b: a.numpy() + b.numpy(),
            [repro.constant([1.0]), repro.constant([2.0])],
            Tout=repro.float32,
        )
        np.testing.assert_allclose(out.numpy(), [3.0])

    def test_multiple_outputs(self):
        a, b = repro.py_func(
            lambda x: (x.numpy() * 2, x.numpy() * 3),
            [repro.constant([1.0])],
            Tout=[repro.float32, repro.float32],
        )
        assert float(a[0]) == 2.0
        assert float(b[0]) == 3.0

    def test_wrong_arity_raises(self):
        with pytest.raises(InvalidArgumentError):
            repro.py_func(
                lambda x: (x, x),
                [repro.constant(1.0)],
                Tout=[repro.float32, repro.float32, repro.float32],
            )

    def test_differentiable(self):
        """py_func executes under a tape, so it is differentiable (§4.7)."""

        def cube(x):
            return x * x * x  # uses library ops on the passed tensors

        x = repro.constant(2.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.py_func(cube, [x], Tout=repro.float32)
        assert float(tape.gradient(y, x)) == pytest.approx(12.0)

    def test_arbitrary_python_inside(self):
        def data_dependent(x):
            # Recursion and Python control flow on concrete values.
            def collatz_steps(n):
                return 0 if n <= 1 else 1 + collatz_steps(n // 2 if n % 2 == 0 else 3 * n + 1)

            return np.int32(collatz_steps(int(x)))

        out = repro.py_func(data_dependent, [repro.constant(6)], Tout=repro.int32)
        assert int(out) == 8


class TestStaged:
    def test_runs_inside_graph_function(self):
        """Wrapping in py_func keeps imperative semantics when staged."""
        log = []

        @repro.function
        def f(x):
            doubled = repro.py_func(
                lambda v: (log.append(1), v.numpy() * 2)[1], [x], Tout=repro.float32
            )
            return doubled + 1.0

        assert float(f(repro.constant(2.0))) == 5.0
        assert float(f(repro.constant(3.0))) == 7.0
        # Tracing only *stages* the py_func node (the Python callable
        # does not run at trace time); each execution then runs it.
        assert len(log) == 2

    def test_gradient_through_staged_py_func(self):
        @repro.function
        def f(x):
            y = repro.py_func(lambda v: v * v, [x], Tout=repro.float32)
            return y * 3.0

        x = repro.constant(2.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            out = f(x)
        assert float(tape.gradient(out, x)) == pytest.approx(12.0)

    def test_graph_marked_unserializable(self):
        @repro.function
        def f(x):
            return repro.py_func(lambda v: v.numpy(), [x], Tout=repro.float32)

        concrete = f.get_concrete_function(repro.constant(1.0))
        assert concrete.func_graph.contains_py_func
        with pytest.raises(InvalidArgumentError):
            concrete.definition()

    def test_py_func_flag_propagates_through_nesting(self):
        @repro.function
        def inner(x):
            return repro.py_func(lambda v: v.numpy(), [x], Tout=repro.float32)

        @repro.function
        def outer(x):
            return inner(x)

        concrete = outer.get_concrete_function(repro.constant(1.0))
        assert concrete.func_graph.contains_py_func

    def test_imperative_wrapping_has_no_effect(self):
        """Paper: 'when executing in imperative mode, wrapping a Python
        function in a py_func has essentially no effect.'"""

        def f(v):
            return v * 2.0

        x = repro.constant(3.0)
        direct = f(x)
        wrapped = repro.py_func(f, [x], Tout=repro.float32)
        assert float(direct) == float(wrapped)
