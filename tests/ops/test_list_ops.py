"""Tensor lists (variant tensors)."""

import numpy as np
import pytest

import repro
from repro.framework import dtypes
from repro.framework.errors import OutOfRangeError
from repro.ops import list_ops


class TestTensorList:
    def test_empty_list(self):
        handle = list_ops.empty_tensor_list()
        assert handle.dtype is dtypes.variant
        assert int(list_ops.tensor_list_length(handle)) == 0

    def test_push_pop(self):
        handle = list_ops.empty_tensor_list()
        handle = list_ops.tensor_list_push_back(handle, repro.constant([1.0]))
        handle = list_ops.tensor_list_push_back(handle, repro.constant([2.0]))
        assert int(list_ops.tensor_list_length(handle)) == 2
        handle, last = list_ops.tensor_list_pop_back(handle, repro.float32)
        np.testing.assert_allclose(last.numpy(), [2.0])
        assert int(list_ops.tensor_list_length(handle)) == 1

    def test_push_is_functional(self):
        base = list_ops.empty_tensor_list()
        a = list_ops.tensor_list_push_back(base, repro.constant(1.0))
        b = list_ops.tensor_list_push_back(base, repro.constant(2.0))
        assert int(list_ops.tensor_list_length(base)) == 0
        assert int(list_ops.tensor_list_length(a)) == 1
        assert int(list_ops.tensor_list_length(b)) == 1

    def test_stack(self):
        handle = list_ops.empty_tensor_list()
        for v in (1.0, 2.0, 3.0):
            handle = list_ops.tensor_list_push_back(handle, repro.constant([v, v]))
        stacked = list_ops.tensor_list_stack(handle, repro.float32)
        assert stacked.shape.as_list() == [3, 2]
        np.testing.assert_allclose(stacked.numpy()[:, 0], [1.0, 2.0, 3.0])

    def test_stack_empty(self):
        handle = list_ops.empty_tensor_list()
        out = list_ops.tensor_list_stack(handle, repro.float32, element_shape=(2,))
        assert out.shape.as_list() == [0, 2]

    def test_pop_empty_raises(self):
        with pytest.raises(OutOfRangeError):
            list_ops.tensor_list_pop_back(list_ops.empty_tensor_list(), repro.float32)

    def test_usable_inside_staged_function(self):
        @repro.function
        def f(x):
            handle = list_ops.empty_tensor_list()
            handle = list_ops.tensor_list_push_back(handle, x)
            handle = list_ops.tensor_list_push_back(handle, x * 2.0)
            return list_ops.tensor_list_stack(handle, repro.float32)

        out = f(repro.constant([1.0, 2.0]))
        np.testing.assert_allclose(out.numpy(), [[1.0, 2.0], [2.0, 4.0]])

    def test_gradient_through_push_pop(self):
        x = repro.constant([3.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            handle = list_ops.empty_tensor_list()
            handle = list_ops.tensor_list_push_back(handle, x * 2.0)
            _, popped = list_ops.tensor_list_pop_back(handle, repro.float32)
            y = repro.reduce_sum(popped * 5.0)
        assert float(tape.gradient(y, x)) == pytest.approx(10.0)
