"""Math op correctness against NumPy references."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError

A = np.array([[1.0, -2.0], [3.5, 4.0]], dtype=np.float32)
B = np.array([[0.5, 2.0], [-1.0, 3.0]], dtype=np.float32)


def t(x):
    return repro.constant(x)


ELEMENTWISE_BINARY = [
    (repro.add, np.add),
    (repro.subtract, np.subtract),
    (repro.multiply, np.multiply),
    (repro.divide, np.true_divide),
    (repro.maximum, np.maximum),
    (repro.minimum, np.minimum),
    (repro.squared_difference, lambda a, b: np.square(a - b)),
    (repro.pow, np.power),
]

ELEMENTWISE_UNARY = [
    (repro.negative, np.negative),
    (repro.abs, np.abs),
    (repro.exp, np.exp),
    (repro.square, np.square),
    (repro.sign, np.sign),
    (repro.sin, np.sin),
    (repro.cos, np.cos),
    (repro.tanh, np.tanh),
    (repro.floor, np.floor),
    (repro.ceil, np.ceil),
    (repro.round, np.round),
    (repro.reciprocal, np.reciprocal),
]


class TestElementwise:
    @pytest.mark.parametrize("fn,ref", ELEMENTWISE_BINARY, ids=lambda f: getattr(f, "__name__", "ref"))
    def test_binary_matches_numpy(self, fn, ref):
        expected = ref(np.abs(A) + 0.5, np.abs(B) + 0.5)
        got = fn(t(np.abs(A) + 0.5), t(np.abs(B) + 0.5)).numpy()
        np.testing.assert_allclose(got, expected, rtol=1e-6)

    @pytest.mark.parametrize("fn,ref", ELEMENTWISE_UNARY, ids=lambda f: getattr(f, "__name__", "ref"))
    def test_unary_matches_numpy(self, fn, ref):
        np.testing.assert_allclose(fn(t(A)).numpy(), ref(A), rtol=1e-6)

    def test_log_family(self):
        x = np.abs(A) + 0.1
        np.testing.assert_allclose(repro.log(t(x)).numpy(), np.log(x), rtol=1e-6)
        np.testing.assert_allclose(repro.log1p(t(x)).numpy(), np.log1p(x), rtol=1e-6)
        np.testing.assert_allclose(repro.sqrt(t(x)).numpy(), np.sqrt(x), rtol=1e-6)
        np.testing.assert_allclose(
            repro.rsqrt(t(x)).numpy(), 1.0 / np.sqrt(x), rtol=1e-6
        )

    def test_sigmoid_stable_at_extremes(self):
        x = t(np.array([-1000.0, 0.0, 1000.0], np.float32))
        out = repro.sigmoid(x).numpy()
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-7)

    def test_erf(self):
        from scipy.special import erf as scipy_erf

        np.testing.assert_allclose(repro.erf(t(A)).numpy(), scipy_erf(A), rtol=1e-5)

    def test_broadcasting(self):
        x = t(np.ones((2, 3), np.float32))
        y = t(np.arange(3, dtype=np.float32))
        np.testing.assert_allclose((x + y).numpy(), 1.0 + np.arange(3) * np.ones((2, 3)))

    def test_clip_by_value(self):
        x = t(np.array([-5.0, 0.5, 5.0], np.float32))
        np.testing.assert_allclose(
            repro.clip_by_value(x, -1.0, 1.0).numpy(), [-1.0, 0.5, 1.0]
        )

    def test_cast(self):
        x = repro.cast(t(np.array([1.7, -2.3], np.float32)), repro.int32)
        assert x.dtype is repro.int32
        np.testing.assert_array_equal(x.numpy(), [1, -2])

    def test_cast_same_dtype_is_identity(self):
        x = t(A)
        assert repro.cast(x, repro.float32) is x


class TestMatMul:
    def test_2d(self):
        np.testing.assert_allclose(repro.matmul(t(A), t(B)).numpy(), A @ B, rtol=1e-6)

    def test_transpose_flags(self):
        np.testing.assert_allclose(
            repro.matmul(t(A), t(B), transpose_a=True).numpy(), A.T @ B, rtol=1e-6
        )
        np.testing.assert_allclose(
            repro.matmul(t(A), t(B), transpose_b=True).numpy(), A @ B.T, rtol=1e-6
        )
        np.testing.assert_allclose(
            repro.matmul(t(A), t(B), transpose_a=True, transpose_b=True).numpy(),
            A.T @ B.T,
            rtol=1e-6,
        )

    def test_batched(self):
        a = np.random.randn(4, 2, 3).astype(np.float32)
        b = np.random.randn(4, 3, 5).astype(np.float32)
        np.testing.assert_allclose(
            repro.matmul(t(a), t(b)).numpy(), a @ b, rtol=1e-5
        )

    def test_mismatched_inner_dims_raise(self):
        with pytest.raises(Exception):
            repro.matmul(t(np.zeros((2, 3), np.float32)), t(np.zeros((2, 3), np.float32)))

    def test_mixed_dtypes_raise(self):
        with pytest.raises(InvalidArgumentError):
            repro.matmul(t(A), t(B.astype(np.float64)))


class TestReductions:
    @pytest.mark.parametrize(
        "fn,ref",
        [
            (repro.reduce_sum, np.sum),
            (repro.reduce_mean, np.mean),
            (repro.reduce_max, np.max),
            (repro.reduce_min, np.min),
            (repro.reduce_prod, np.prod),
        ],
    )
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 1), -1])
    @pytest.mark.parametrize("keepdims", [False, True])
    def test_matches_numpy(self, fn, ref, axis, keepdims):
        got = fn(t(A), axis=axis, keepdims=keepdims).numpy()
        expected = ref(A, axis=axis, keepdims=keepdims)
        np.testing.assert_allclose(got, expected, rtol=1e-6)

    def test_int_sum_keeps_dtype(self):
        x = t(np.array([1, 2, 3], np.int32))
        out = repro.reduce_sum(x)
        assert out.dtype is repro.int32
        assert int(out) == 6

    def test_reduce_any_all(self):
        x = t(np.array([[True, False], [True, True]]))
        assert bool(repro.reduce_any(x)) is True
        assert bool(repro.reduce_all(x)) is False
        np.testing.assert_array_equal(
            repro.reduce_all(x, axis=1).numpy(), [False, True]
        )

    def test_logsumexp_stable(self):
        x = t(np.array([1000.0, 1000.0], np.float32))
        assert np.isfinite(float(repro.reduce_logsumexp(x)))
        small = np.array([0.5, 1.5, -1.0])
        np.testing.assert_allclose(
            float(repro.reduce_logsumexp(t(small.astype(np.float32)))),
            np.log(np.sum(np.exp(small))),
            rtol=1e-5,
        )

    def test_duplicate_axes_raise(self):
        with pytest.raises(InvalidArgumentError):
            repro.reduce_sum(t(A), axis=(0, 0))


class TestArgReductions:
    def test_argmax_argmin(self):
        x = t(np.array([[1.0, 9.0, 3.0], [7.0, 2.0, 5.0]], np.float32))
        np.testing.assert_array_equal(repro.argmax(x, axis=1).numpy(), [1, 0])
        np.testing.assert_array_equal(repro.argmin(x, axis=0).numpy(), [0, 1, 0])
        assert repro.argmax(x, axis=1).dtype is repro.int64


class TestCumsum:
    def test_basic(self):
        x = t(np.array([1.0, 2.0, 3.0], np.float32))
        np.testing.assert_allclose(repro.cumsum(x).numpy(), [1.0, 3.0, 6.0])

    def test_reverse(self):
        x = t(np.array([1.0, 2.0, 3.0], np.float32))
        np.testing.assert_allclose(
            repro.cumsum(x, reverse=True).numpy(), [6.0, 5.0, 3.0]
        )


class TestAddN:
    def test_add_n(self):
        parts = [t(A), t(B), t(A)]
        np.testing.assert_allclose(repro.add_n(parts).numpy(), A + B + A, rtol=1e-6)

    def test_single_passthrough(self):
        x = t(A)
        assert repro.add_n([x]) is x

    def test_empty_raises(self):
        with pytest.raises(InvalidArgumentError):
            repro.add_n([])


class TestTensordot:
    def test_matrix_contraction(self):
        got = repro.tensordot(t(A), t(B), axes=1).numpy()
        np.testing.assert_allclose(got, np.tensordot(A, B, axes=1), rtol=1e-5)

    def test_explicit_axes(self):
        a = np.random.randn(2, 3, 4).astype(np.float32)
        b = np.random.randn(4, 3, 5).astype(np.float32)
        got = repro.tensordot(t(a), t(b), axes=([1, 2], [1, 0])).numpy()
        np.testing.assert_allclose(
            got, np.tensordot(a, b, axes=([1, 2], [1, 0])), rtol=1e-4, atol=1e-5
        )
