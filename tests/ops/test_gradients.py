"""Numeric gradient checks for the op set.

Every registered gradient rule is validated against central
differences through the public tape API, plus hypothesis property
tests on randomly-shaped inputs for the broadcasting rules (the
trickiest part of reverse mode).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.ops import nn_ops
from tests.conftest import numeric_gradient


def t64(x):
    return repro.constant(np.asarray(x, np.float64), dtype=repro.float64)


UNARY_CASES = [
    ("negative", repro.negative, [-1.2, 0.4, 2.0]),
    ("abs", repro.abs, [-1.2, 0.4, 2.0]),
    ("exp", repro.exp, [-1.0, 0.0, 1.5]),
    ("log", repro.log, [0.3, 1.0, 4.0]),
    ("log1p", repro.log1p, [0.3, 1.0, 4.0]),
    ("sqrt", repro.sqrt, [0.5, 2.0, 9.0]),
    ("rsqrt", repro.rsqrt, [0.5, 2.0, 9.0]),
    ("square", repro.square, [-2.0, 0.5, 3.0]),
    ("sin", repro.sin, [-1.0, 0.2, 2.0]),
    ("cos", repro.cos, [-1.0, 0.2, 2.0]),
    ("tanh", repro.tanh, [-2.0, 0.1, 1.0]),
    ("sigmoid", repro.sigmoid, [-2.0, 0.1, 1.0]),
    ("erf", repro.erf, [-1.0, 0.0, 0.7]),
    ("reciprocal", repro.reciprocal, [0.5, 2.0, -3.0]),
    ("relu", nn_ops.relu, [-1.5, 0.5, 2.0]),
    ("softplus", nn_ops.softplus, [-2.0, 0.0, 3.0]),
    ("elu", nn_ops.elu, [-1.5, 0.5, 2.0]),
    ("leaky_relu", lambda x: nn_ops.leaky_relu(x, 0.1), [-1.5, 0.5, 2.0]),
    ("softmax", nn_ops.softmax, [0.5, -1.0, 2.0]),
    ("log_softmax", nn_ops.log_softmax, [0.5, -1.0, 2.0]),
    ("cumsum", repro.cumsum, [1.0, -2.0, 0.5]),
    ("logsumexp", lambda x: repro.reduce_logsumexp(x), [0.1, -0.5, 1.2]),
]


class TestUnaryGradients:
    @pytest.mark.parametrize("name,fn,x", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
    def test_matches_numeric(self, name, fn, x, grad_checker):
        grad_checker(fn, np.asarray(x))


BINARY_CASES = [
    ("add", repro.add),
    ("subtract", repro.subtract),
    ("multiply", repro.multiply),
    ("divide", repro.divide),
    ("maximum", repro.maximum),
    ("minimum", repro.minimum),
    ("squared_difference", repro.squared_difference),
]


class TestBinaryGradients:
    @pytest.mark.parametrize("name,fn", BINARY_CASES, ids=[c[0] for c in BINARY_CASES])
    def test_both_args(self, name, fn):
        x_np = np.array([[0.7, -1.3], [2.1, 0.4]])
        y_np = np.array([[1.4, 0.9], [-0.5, 1.8]])

        x, y = t64(x_np), t64(y_np)
        with repro.GradientTape() as tape:
            tape.watch(x)
            tape.watch(y)
            z = repro.reduce_sum(fn(x, y))
        gx, gy = tape.gradient(z, [x, y])
        nx = numeric_gradient(lambda a: repro.reduce_sum(fn(t64(a), t64(y_np))).numpy(), x_np)
        ny = numeric_gradient(lambda b: repro.reduce_sum(fn(t64(x_np), t64(b))).numpy(), y_np)
        np.testing.assert_allclose(gx.numpy(), nx, rtol=1e-2, atol=1e-3)
        np.testing.assert_allclose(gy.numpy(), ny, rtol=1e-2, atol=1e-3)

    def test_pow_gradient(self):
        # Checked against central differences for both base and exponent.
        from tests.harness.grad_check import check_gradients

        check_gradients(
            lambda x, y: x ** y,
            [np.array([0.5, 1.5, 2.0]), np.array([2.0, 3.0, 0.5])],
        )


@st.composite
def _broadcast_pair(draw):
    base = draw(st.lists(st.integers(1, 3), min_size=1, max_size=3))
    a = list(base)
    b = list(base)
    for i in range(len(base)):
        which = draw(st.integers(0, 2))
        if which == 1:
            a[i] = 1
        elif which == 2:
            b[i] = 1
    drop = draw(st.integers(0, min(1, len(b) - 1)))
    return tuple(a), tuple(b[drop:])


class TestBroadcastGradientProperties:
    """The broadcasting reduction in binary gradients is shape-correct
    and mass-preserving for any broadcastable operand shapes."""

    @settings(max_examples=40, deadline=None)
    @given(_broadcast_pair())
    def test_add_grad_shapes_and_values(self, shapes):
        sa, sb = shapes
        x_np = np.random.randn(*sa)
        y_np = np.random.randn(*sb)
        x, y = t64(x_np), t64(y_np)
        with repro.GradientTape() as tape:
            tape.watch(x)
            tape.watch(y)
            z = repro.reduce_sum(x + y)
        gx, gy = tape.gradient(z, [x, y])
        assert gx.shape.as_tuple() == sa
        assert gy.shape.as_tuple() == sb
        # d(sum(x+y))/dx_i == 1 and the total equals broadcast multiplicity.
        total = np.prod(np.broadcast_shapes(sa, sb))
        assert gx.numpy().sum() == pytest.approx(total)
        assert gy.numpy().sum() == pytest.approx(total)

    @settings(max_examples=40, deadline=None)
    @given(_broadcast_pair())
    def test_mul_grad_matches_other_operand(self, shapes):
        sa, sb = shapes
        x_np = np.random.randn(*sa)
        y_np = np.random.randn(*sb)
        x, y = t64(x_np), t64(y_np)
        with repro.GradientTape() as tape:
            tape.watch(x)
            z = repro.reduce_sum(x * y)
        gx = tape.gradient(z, x)
        expected = np.broadcast_to(y_np, np.broadcast_shapes(sa, sb))
        expected = expected.sum(
            axis=tuple(range(expected.ndim - len(sa)))
        ).reshape(np.broadcast_shapes(sa, sb)[len(np.broadcast_shapes(sa, sb)) - len(sa):])
        # Reduce the broadcast of y back onto x's shape by summing.
        full = np.broadcast_shapes(sa, sb)
        yb = np.broadcast_to(y_np, full)
        extra = len(full) - len(sa)
        red = yb.sum(axis=tuple(range(extra))) if extra else yb
        for i, d in enumerate(sa):
            if d == 1 and red.shape[i] != 1:
                red = red.sum(axis=i, keepdims=True)
        np.testing.assert_allclose(gx.numpy(), red, rtol=1e-6)


class TestShapeOpGradients:
    def test_reshape(self, grad_checker):
        grad_checker(lambda x: repro.reshape(x, [3, 2]) * 2.0, np.random.randn(2, 3))

    def test_transpose(self, grad_checker):
        grad_checker(lambda x: repro.transpose(x) ** 2.0, np.random.randn(2, 3) + 2.0)

    def test_concat_split(self):
        # Checked against central differences rather than hand-derived
        # per-column weights.
        from tests.harness.grad_check import check_gradients

        def concat_split(x, y):
            joined = repro.concat([x, y], axis=1)
            a, b = repro.split(joined, [3, 2], axis=1)
            return repro.reduce_sum(a * 2.0) + repro.reduce_sum(b * 3.0)

        check_gradients(
            concat_split, [np.random.randn(2, 2), np.random.randn(2, 3)]
        )

    def test_stack_unstack(self):
        x = t64([1.0, 2.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            s = repro.stack([x, x * 2.0], axis=0)
            z = repro.reduce_sum(s)
        np.testing.assert_allclose(tape.gradient(z, x).numpy(), [3.0, 3.0])

    def test_gather(self):
        x = t64([1.0, 2.0, 3.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            z = repro.reduce_sum(repro.gather(x, repro.constant(np.array([0, 0, 2]))))
        np.testing.assert_allclose(tape.gradient(z, x).numpy(), [2.0, 0.0, 1.0])

    def test_strided_slice(self, grad_checker):
        grad_checker(lambda x: x[1:, ::2] * 3.0, np.random.randn(3, 4))

    def test_pad(self, grad_checker):
        grad_checker(lambda x: repro.pad(x, [[1, 1], [0, 2]]) * 2.0, np.random.randn(2, 2))

    def test_tile(self, grad_checker):
        grad_checker(lambda x: repro.tile(x, [2, 3]), np.random.randn(2, 2))

    def test_broadcast_to(self, grad_checker):
        grad_checker(lambda x: repro.broadcast_to(x, [4, 3]), np.random.randn(1, 3))

    def test_diag(self, grad_checker):
        grad_checker(lambda x: repro.diag(x) * 2.0, np.random.randn(3))

    def test_where(self):
        cond = repro.constant(np.array([True, False, True]))
        x, y = t64([1.0, 2.0, 3.0]), t64([4.0, 5.0, 6.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            tape.watch(y)
            z = repro.reduce_sum(repro.where(cond, x, y))
        gx, gy = tape.gradient(z, [x, y])
        np.testing.assert_allclose(gx.numpy(), [1.0, 0.0, 1.0])
        np.testing.assert_allclose(gy.numpy(), [0.0, 1.0, 0.0])


class TestReductionGradients:
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 1)])
    @pytest.mark.parametrize("keepdims", [False, True])
    def test_sum(self, axis, keepdims, grad_checker):
        grad_checker(
            lambda x: repro.reduce_sum(x, axis=axis, keepdims=keepdims) * 2.0,
            np.random.randn(2, 3),
        )

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean(self, axis, grad_checker):
        grad_checker(
            lambda x: repro.reduce_mean(x, axis=axis) ** 2.0,
            np.random.randn(2, 3) + 3.0,
        )

    def test_max_routes_to_argmax(self):
        x = t64([1.0, 5.0, 3.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            z = repro.reduce_max(x)
        np.testing.assert_allclose(tape.gradient(z, x).numpy(), [0, 1, 0])

    def test_max_splits_ties(self):
        x = t64([5.0, 5.0, 3.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            z = repro.reduce_max(x)
        np.testing.assert_allclose(tape.gradient(z, x).numpy(), [0.5, 0.5, 0])

    def test_prod(self, grad_checker):
        grad_checker(lambda x: repro.reduce_prod(x, axis=0), np.random.rand(3, 2) + 0.5)


class TestMatMulGradients:
    @pytest.mark.parametrize("ta", [False, True])
    @pytest.mark.parametrize("tb", [False, True])
    def test_all_transpose_combos(self, ta, tb):
        a_np = np.random.randn(2, 3) if not ta else np.random.randn(3, 2)
        b_np = np.random.randn(3, 4) if not tb else np.random.randn(4, 3)
        a, b = t64(a_np), t64(b_np)
        with repro.GradientTape() as tape:
            tape.watch(a)
            tape.watch(b)
            z = repro.reduce_sum(repro.matmul(a, b, transpose_a=ta, transpose_b=tb))
        ga, gb = tape.gradient(z, [a, b])
        na = numeric_gradient(
            lambda m: repro.reduce_sum(
                repro.matmul(t64(m), t64(b_np), transpose_a=ta, transpose_b=tb)
            ).numpy(),
            a_np,
        )
        nb = numeric_gradient(
            lambda m: repro.reduce_sum(
                repro.matmul(t64(a_np), t64(m), transpose_a=ta, transpose_b=tb)
            ).numpy(),
            b_np,
        )
        np.testing.assert_allclose(ga.numpy(), na, rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(gb.numpy(), nb, rtol=1e-3, atol=1e-4)

    def test_batched_matmul_grad(self, grad_checker):
        b_np = np.random.randn(2, 3, 4)

        def fn(x):
            return repro.matmul(x, t64(b_np))

        grad_checker(fn, np.random.randn(2, 2, 3))


class TestNNGradients:
    def test_conv2d(self, grad_checker):
        w = np.random.randn(2, 2, 2, 3)
        grad_checker(
            lambda x: nn_ops.conv2d(x, t64(w), strides=1, padding="VALID"),
            np.random.randn(1, 4, 4, 2),
            rtol=2e-2,
        )

    def test_conv2d_filter_grad(self, grad_checker):
        x = np.random.randn(1, 4, 4, 2)
        grad_checker(
            lambda w: nn_ops.conv2d(t64(x), w, strides=2, padding="SAME"),
            np.random.randn(3, 3, 2, 2),
            rtol=2e-2,
        )

    def test_max_pool(self, grad_checker):
        grad_checker(
            lambda x: nn_ops.max_pool2d(x, 2),
            np.random.randn(1, 4, 4, 2) * 3,
            rtol=2e-2,
        )

    def test_avg_pool(self, grad_checker):
        grad_checker(
            lambda x: nn_ops.avg_pool2d(x, 2), np.random.randn(1, 4, 4, 2), rtol=2e-2
        )

    def test_softmax_xent(self):
        logits_np = np.random.randn(4, 3)
        labels = np.eye(3)[np.array([0, 2, 1, 1])]
        x = t64(logits_np)
        with repro.GradientTape() as tape:
            tape.watch(x)
            loss = repro.reduce_sum(
                nn_ops.softmax_cross_entropy_with_logits(labels=t64(labels), logits=x)
            )
        analytic = tape.gradient(loss, x).numpy()
        numeric = numeric_gradient(
            lambda a: repro.reduce_sum(
                nn_ops.softmax_cross_entropy_with_logits(labels=t64(labels), logits=t64(a))
            ).numpy(),
            logits_np,
        )
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-4)


class TestChainedGradients:
    def test_deep_chain(self, grad_checker):
        grad_checker(
            lambda x: repro.tanh(repro.exp(x * 0.3) + repro.square(x)),
            np.random.randn(4),
        )

    def test_fan_out_accumulates(self):
        x = t64(2.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = x * x + x * 3.0 + repro.square(x)
        assert float(tape.gradient(y, x)) == pytest.approx(2 * 2.0 + 3.0 + 2 * 2.0)

    def test_clip_gradient_masks(self):
        x = t64([-5.0, 0.0, 5.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.reduce_sum(repro.clip_by_value(x, -1.0, 1.0))
        np.testing.assert_allclose(tape.gradient(y, x).numpy(), [0.0, 1.0, 0.0])

    def test_cast_float_to_float_passes_grad(self):
        x = t64([1.0, 2.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.reduce_sum(repro.cast(x, repro.float32))
        g = tape.gradient(y, x)
        assert g.dtype is repro.float64
        np.testing.assert_allclose(g.numpy(), [1.0, 1.0])

    def test_int_cast_stops_grad(self):
        x = t64([1.5])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.cast(repro.cast(x, repro.int32), repro.float64)
        assert tape.gradient(y, x) is None
