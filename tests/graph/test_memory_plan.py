"""The executor's static memory plan: lifetimes, donation, peak bytes.

``GraphRunner._build_schedule`` performs last-use analysis (an explicit
free list per step) and, under ``context.graph_fusion``, plans in-place
buffer donation: a node may write into an input buffer that dies at
that step, has exactly one consumer, is not fetched, was freshly
allocated by its producer, and matches the output's static dtype/shape.
The plan reports peak live bytes.  These tests pin the safety rules —
wrong donation corrupts values silently, so every rule gets a case that
would fail loudly if it regressed.
"""

import numpy as np

import repro
from repro.graph import fusion, optimize
from repro.graph.function import GraphFunction, placeholder
from repro.graph.graph import Graph
from repro.runtime.context import context


def _fn(build, in_specs=((repro.float32, [8]),), name="t"):
    g = Graph(name)
    phs = [placeholder(g, dt, shape) for dt, shape in in_specs]
    with g.as_default():
        outputs = build(*phs)
    if not isinstance(outputs, (list, tuple)):
        outputs = [outputs]
    return GraphFunction(name, g, phs, list(outputs))


def _with_fusion(value):
    class _Knob:
        def __enter__(self):
            self.prev = context.graph_fusion
            context.graph_fusion = value

        def __exit__(self, *exc):
            context.graph_fusion = self.prev

    return _Knob()


class TestPeakAccounting:
    def test_chain_peak_counts_live_intermediates(self):
        # exp produces 32 bytes (8 x float32); neg's output coexists
        # with it for one step before exp's buffer dies.
        fn = _fn(lambda x: -repro.exp(x))
        with _with_fusion(False):
            plan = fn.plan().memory_plan
        assert plan["peak_live_bytes"] == 64
        assert plan["donated_nodes"] == 0
        assert not plan["lower_bound"]

    def test_donation_halves_chain_peak(self):
        fn = _fn(lambda x: -repro.exp(x))
        with _with_fusion(True):
            plan = fn.plan().memory_plan
        # neg writes into exp's dying buffer: no second allocation.
        assert plan["donated_nodes"] == 1
        assert plan["peak_live_bytes"] == 32
        x = np.float32([0.5] * 8)
        (out,) = fn.run([repro.constant(x)])
        np.testing.assert_allclose(out.numpy(), -np.exp(x), rtol=1e-6)

    def test_symbolic_plan_reports_lower_bound(self):
        fn = _fn(
            lambda x: -repro.exp(x),
            in_specs=((repro.float32, [None]),),
        )
        with _with_fusion(False):
            plan = fn.plan().memory_plan
        assert plan["lower_bound"]

    def test_fused_region_internal_peak_is_counted(self):
        def build(x):
            y = x * 2.0
            for _ in range(5):
                y = repro.tanh(y + 0.1)
            return y

        plain = _fn(build, in_specs=((repro.float32, [1024]),))
        with _with_fusion(False):
            optimize.optimize_function(plain)
            plain_peak = plain.plan().memory_plan["peak_live_bytes"]
        fused = _fn(build, in_specs=((repro.float32, [1024]),))
        with _with_fusion(True):
            optimize.optimize_function(fused)
            runner = fused.plan()
        assert runner.memory_plan["fused_nodes"] == 1
        fused_peak = runner.memory_plan["peak_live_bytes"]
        # In-place donation inside the region reuses one 4 KiB buffer
        # for the whole chain instead of two live at every step.
        assert fused_peak > 0
        # A few bytes of scalar constants ride along in both plans, so
        # compare against half-plus-slack rather than exactly half.
        assert fused_peak <= plain_peak // 2 + 64


class TestDonationSafety:
    def test_multi_consumer_input_never_donated(self):
        def build(x):
            a = repro.exp(x)
            return -a, a * 2.0

        fn = _fn(build)
        with _with_fusion(True):
            plan = fn.plan().memory_plan
            assert plan["donated_nodes"] == 0
            x = np.float32(np.linspace(-1, 1, 8))
            neg, double = fn.run([repro.constant(x)])
        np.testing.assert_allclose(neg.numpy(), -np.exp(x), rtol=1e-6)
        np.testing.assert_allclose(double.numpy(), 2 * np.exp(x), rtol=1e-6)

    def test_fetched_value_never_donated(self):
        def build(x):
            a = repro.exp(x)
            return a, -a

        fn = _fn(build)
        with _with_fusion(True):
            fn.plan()
            x = np.float32([0.1] * 8)
            a, b = fn.run([repro.constant(x)])
        # If neg had stolen a's buffer, the fetched a would hold -exp(x).
        np.testing.assert_allclose(a.numpy(), np.exp(x), rtol=1e-6)
        np.testing.assert_allclose(b.numpy(), -np.exp(x), rtol=1e-6)

    def test_placeholder_feed_never_donated(self):
        fn = _fn(lambda x: repro.tanh(x))
        with _with_fusion(True):
            assert fn.plan().memory_plan["donated_nodes"] == 0
            x = repro.constant(np.ones(8, np.float32))
            fn.run([x])
        np.testing.assert_array_equal(x.numpy(), np.ones(8, np.float32))

    def test_constant_buffer_never_donated(self):
        """Const kernels hand out the graph-owned array; an in-place
        consumer must not scribble on it (the next run would see it)."""

        def build(x):
            c = repro.constant(np.float32([1.0] * 8))
            return repro.exp(c) + x

        fn = _fn(build)
        with _with_fusion(True):
            fn.plan()
            x = repro.constant(np.zeros(8, np.float32))
            (first,) = fn.run([x])
            (second,) = fn.run([x])
        np.testing.assert_array_equal(first.numpy(), second.numpy())
        np.testing.assert_allclose(first.numpy(), np.exp(np.float32(1.0)) * np.ones(8), rtol=1e-6)

    def test_dtype_mismatch_blocks_donation(self):
        def build(x):
            return repro.cast(repro.exp(x), repro.float64) * 1.0

        fn = _fn(build)
        with _with_fusion(True):
            fn.plan()
            x = np.float32([0.2] * 8)
            (out,) = fn.run([repro.constant(x)])
        np.testing.assert_allclose(out.numpy(), np.exp(x).astype(np.float64), rtol=1e-6)


class TestConstantHoisting:
    def test_consts_leave_the_serial_plan(self):
        fn = _fn(lambda x: x * 2.0 + 3.0)
        runner = fn.plan()
        assert all(e[0].op_name != "Const" for e in runner.plan)
        assert len(runner.const_store) == 2
        # The memory plan still describes the full graph.
        assert runner.memory_plan["num_nodes"] == len(runner.plan) + 2
        (out,) = fn.run([repro.constant(np.float32([1.0] * 8))])
        np.testing.assert_allclose(out.numpy(), [5.0] * 8)

    def test_hoisted_buffers_survive_repeated_runs(self):
        """The hoisted array is shared across runs; nothing may have
        scribbled on it by run two."""

        def build(x):
            c = repro.constant(np.float32([2.0] * 8))
            return repro.tanh(c * x) + c

        fn = _fn(build)
        with _with_fusion(True):
            x = repro.constant(np.float32([0.5] * 8))
            (first,) = fn.run([x])
            (second,) = fn.run([x])
        np.testing.assert_array_equal(first.numpy(), second.numpy())
        np.testing.assert_allclose(
            first.numpy(), np.tanh(np.float32(1.0)) + 2.0, rtol=1e-6
        )

    def test_pinned_const_keeps_its_plan_entry(self):
        def build(x):
            with repro.device("/gpu:0"):
                c = repro.constant(np.float32([1.0] * 8))
            return x + c

        fn = _fn(build)
        runner = fn.plan()
        assert any(e[0].op_name == "Const" for e in runner.plan)

    def test_fetched_const_is_served_from_the_store(self):
        def build(x):
            c = repro.constant(np.float32([7.0] * 8))
            return c, x * 1.0

        fn = _fn(build)
        c_out, _ = fn.run([repro.constant(np.zeros(8, np.float32))])
        np.testing.assert_array_equal(c_out.numpy(), np.float32([7.0] * 8))


class TestParallelScheduler:
    def _wide_fn(self):
        def build(x):
            branches = []
            for i in range(6):
                b = repro.tanh(x * float(i + 1) + 0.5)
                branches.append(repro.exp(-repro.square(b)))
            total = branches[0]
            for b in branches[1:]:
                total = total + b
            return total, repro.reduce_sum(total)

        return _fn(build, in_specs=((repro.float32, [64]),))

    def test_parallel_matches_serial_with_fusion(self):
        with _with_fusion(True):
            fn = self._wide_fn()
            optimize.optimize_function(fn)
            assert fusion.has_fused_nodes(fn)
            x = repro.constant(
                np.random.default_rng(0).normal(size=64).astype(np.float32)
            )
            ref_out, ref_sum = fn.run([x], parallel=False)
            # Repeated parallel runs shake out frees racing with reads:
            # a use-after-free surfaces as wrong values, not a hang.
            for _ in range(10):
                out, total = fn.run([x], parallel=True)
                np.testing.assert_array_equal(out.numpy(), ref_out.numpy())
                np.testing.assert_array_equal(total.numpy(), ref_sum.numpy())

    def test_parallel_matches_serial_with_donation_no_regions(self):
        """Donation entries (no fused nodes) under the thread pool."""

        def build(x):
            a = repro.exp(x)
            b = repro.matmul(repro.reshape(a, (8, 8)), repro.reshape(a, (8, 8)))
            return repro.reduce_sum(b) + repro.reduce_sum(-a)

        with _with_fusion(True):
            fn = _fn(build, in_specs=((repro.float32, [64]),))
            x = repro.constant(
                np.random.default_rng(1).normal(size=64).astype(np.float32)
            )
            (ref,) = fn.run([x], parallel=False)
            for _ in range(10):
                (out,) = fn.run([x], parallel=True)
                np.testing.assert_array_equal(out.numpy(), ref.numpy())
