"""Graph IR construction and capture semantics."""

import numpy as np
import pytest

import repro
from repro.framework.errors import FailedPreconditionError
from repro.graph.graph import Graph
from repro.graph.function import placeholder


class TestBuilding:
    def test_add_operation_infers_specs(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [2, 3])
        with g.as_default():
            y = repro.matmul(x, repro.transpose(x))
        assert y.shape.as_list() == [2, 2]
        assert y.dtype is repro.float32

    def test_names_are_uniquified(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [2])
        with g.as_default():
            a = x + x
            b = x + x
        assert a.node.name != b.node.name
        assert a.node.name.startswith("Add")

    def test_symbolic_tensor_repr_and_name(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [2], name="input")
        assert x.name == "input:0"
        assert "SymbolicTensor" in repr(x)

    def test_symbolic_numpy_raises(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [2])
        with pytest.raises(FailedPreconditionError):
            x.numpy()

    def test_symbolic_bool_raises_with_hint(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [])
        with pytest.raises(FailedPreconditionError, match="cond"):
            bool(x)

    def test_symbolic_static_len_and_iter(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [3, 2])
        assert len(x) == 3
        with g.as_default():
            rows = list(x)
        assert len(rows) == 3
        assert rows[0].shape.as_list() == [2]

    def test_concrete_inputs_become_interned_constants(self):
        g = Graph("t")
        c = repro.constant([1.0, 2.0])
        with g.as_default():
            a = repro.reduce_sum(c * 1.0)
            b = repro.reduce_sum(c * 2.0)
        const_nodes = g.ops_by_type("Const")
        # c was interned once despite two uses (the scalars differ).
        values = [n.attrs["value"].tobytes() for n in const_nodes]
        assert len([v for v in values if v == np.float32([1.0, 2.0]).tobytes()]) == 1

    def test_cross_graph_use_rejected(self):
        g1, g2 = Graph("a"), Graph("b")
        x = placeholder(g1, repro.float32, [])
        with g2.as_default():
            with pytest.raises(FailedPreconditionError):
                repro.add(x, x)

    def test_device_scope_recorded_on_nodes(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [])
        with g.as_default():
            with repro.device("/gpu:0"):
                y = x + 1.0
        assert y.node.device == "/gpu:0"

    def test_get_node(self):
        g = Graph("t")
        placeholder(g, repro.float32, [], name="ph")
        assert g.get_node("ph").op_name == "Placeholder"

    def test_constant_propagation_through_shape(self):
        g = Graph("t")
        x = placeholder(g, repro.float32, [4, 5])
        with g.as_default():
            s = repro.shape(x)
        np.testing.assert_array_equal(s.constant_value, [4, 5])
