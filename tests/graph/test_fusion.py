"""Graph-native elementwise fusion (the ``fuse`` pass).

Region *legality* is the point of this file: what may join a fused
region (elementwise chains and DAGs, broadcasts, symbolic dims) and
what must stay out or split it (stateful ops, device pins,
multi-consumer escapes, paths that leave the region and come back).
Value correctness of fused execution at scale is covered by the parity
harness's fused axis; here the graphs are small enough to assert on
structure.
"""

import numpy as np
import pytest

import repro
from repro.graph import fusion, optimize
from repro.graph.function import GraphFunction, placeholder
from repro.graph.graph import Graph
from repro.runtime.context import context


def _fn(build, in_specs=((repro.float32, [2]),), name="t"):
    g = Graph(name)
    phs = [placeholder(g, dt, shape) for dt, shape in in_specs]
    with g.as_default():
        outputs = build(*phs)
    if not isinstance(outputs, (list, tuple)):
        outputs = [outputs]
    return GraphFunction(name, g, phs, list(outputs))


def _fused_nodes(fn):
    return fn.graph.ops_by_type(fusion.FUSED_OP)


class TestRegionFormation:
    def test_chain_fuses_into_one_node(self):
        def build(x):
            return repro.tanh(x * 2.0 + 1.0)

        fn = _fn(build)
        assert fusion.fuse_function(fn) == 1
        (fused,) = _fused_nodes(fn)
        assert fused.attrs["region"].op_names == ("Mul", "Add", "Tanh")
        (out,) = fn.run([repro.constant([0.0, 1.0])])
        np.testing.assert_allclose(
            out.numpy(), np.tanh([1.0, 3.0]), rtol=1e-6
        )

    def test_diamond_dag_fuses_whole(self):
        """A DAG merge node unions the branch clusters (not just one)."""

        def build(x):
            a = repro.exp(x)
            b = repro.tanh(x)
            return a * b + a

        fn = _fn(build)
        assert fusion.fuse_function(fn) == 1
        (fused,) = _fused_nodes(fn)
        assert fused.attrs["region"].size == 4
        (out,) = fn.run([repro.constant([0.5, -0.5])])
        e, t = np.exp([0.5, -0.5]), np.tanh([0.5, -0.5])
        np.testing.assert_allclose(out.numpy(), e * t + e, rtol=1e-6)

    def test_single_op_not_fused(self):
        fn = _fn(lambda x: repro.exp(x))
        assert fusion.fuse_function(fn) == 0
        assert _fused_nodes(fn) == []

    def test_broadcast_operands_fuse(self):
        """Scalar- and row-broadcast variants are legal members."""

        def build(x, b):
            return repro.tanh(x * 2.0 + b) * x

        fn = _fn(build, in_specs=((repro.float32, [2, 3]), (repro.float32, [3])))
        assert fusion.fuse_function(fn) == 1
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.float32([1.0, -1.0, 0.5])
        (out,) = fn.run([repro.constant(x), repro.constant(b)])
        np.testing.assert_allclose(out.numpy(), np.tanh(x * 2 + b) * x, rtol=1e-6)

    def test_fusion_stats_recorded(self):
        def build(x):
            return repro.sqrt(repro.square(x) + 1e-4)

        fn = _fn(build)
        fusion.fuse_function(fn)
        stats = fn._fusion_stats
        assert stats["nodes_before"] > stats["nodes_after"]
        assert stats["regions"] == [3]
        assert stats["fused_ops"] == 3


class TestRegionBoundaries:
    def test_multi_consumer_value_escapes(self):
        """An intermediate also consumed outside the region must become
        a region output, not a buried temporary."""

        def build(x):
            h = repro.exp(x)  # consumed by the region AND by Sum
            y = repro.tanh(h * 2.0)
            return y + 0.0 * y, repro.reduce_sum(h)

        fn = _fn(build)
        assert fusion.fuse_function(fn) >= 1
        x = np.float32([0.3, -0.7])
        out, total = fn.run([repro.constant(x)])
        h = np.exp(x)
        np.testing.assert_allclose(out.numpy(), np.tanh(h * 2.0), rtol=1e-6)
        np.testing.assert_allclose(total.numpy(), h.sum(), rtol=1e-6)

    def test_stateful_ops_are_barriers(self):
        """Variable reads/writes never join a region, and a write
        between elementwise ops keeps its program-order position."""
        v = repro.Variable([1.0, 1.0])

        def build(x):
            a = v.read_value() * x
            v.assign_add([1.0, 1.0])
            b = v.read_value() * x
            return a + b

        fn = _fn(build)
        fusion.fuse_function(fn)
        for node in _fused_nodes(fn):
            assert all(
                op not in ("ReadVariableOp", "AssignAddVariableOp")
                for op in node.attrs["region"].op_names
            )
        (out,) = fn.run([repro.constant([2.0, 3.0])])
        # a uses v==1, b uses v==2 (the write happened in between).
        np.testing.assert_allclose(out.numpy(), [6.0, 9.0])

    def test_path_through_nonfusable_op_splits_region(self):
        """exp -> Sum -> mul may not contract into one region: the path
        through Sum would become a cycle."""

        def build(x):
            h = repro.exp(x) * 2.0
            s = repro.reduce_sum(h)
            return h * s + 1.0

        fn = _fn(build)
        fusion.fuse_function(fn)
        for node in _fused_nodes(fn):
            names = node.attrs["region"].op_names
            # The pre-Sum and post-Sum ops must be in different regions.
            assert not ("Exp" in names and "Add" in names)
        x = np.float32([0.1, 0.9])
        (out,) = fn.run([repro.constant(x)])
        h = np.exp(x) * 2.0
        np.testing.assert_allclose(out.numpy(), h * h.sum() + 1.0, rtol=1e-6)

    def test_device_pinned_node_not_fused(self):
        def build(x):
            with repro.device("/gpu:0"):
                a = repro.exp(x)
            return repro.tanh(a * 2.0)

        fn = _fn(build)
        fusion.fuse_function(fn)
        for node in _fused_nodes(fn):
            assert "Exp" not in node.attrs["region"].op_names


class TestSymbolicDims:
    def test_symbolic_region_serves_multiple_shapes(self):
        def build(x):
            return repro.sigmoid(x) * repro.tanh(x) + 1.0

        fn = _fn(build, in_specs=((repro.float32, [None]),))
        assert fusion.fuse_function(fn) == 1
        (fused,) = _fused_nodes(fn)
        region = fused.attrs["region"]
        # Static in-place planning needs static shapes.
        assert region.donated_steps == 0
        assert region.peak_is_lower_bound
        for n in (3, 7):
            x = np.random.default_rng(n).normal(size=n).astype(np.float32)
            (out,) = fn.run([repro.constant(x)])
            expect = 1.0 / (1.0 + np.exp(-x)) * np.tanh(x) + 1.0
            np.testing.assert_allclose(out.numpy(), expect, rtol=1e-5)

    def test_fused_infer_matches_member_inference(self):
        def build(x, b):
            return repro.tanh(x + b) * x

        fn = _fn(
            build, in_specs=((repro.float32, [None, 4]), (repro.float32, [4]))
        )
        fusion.fuse_function(fn)
        (fused,) = _fused_nodes(fn)
        assert fused.outputs[0].shape.as_list() == [None, 4]
        assert fused.outputs[0].dtype == repro.float32


class TestInPlaceInsideRegion:
    def test_chain_donates_dying_intermediates(self):
        def build(x):
            y = x * 2.0
            for _ in range(4):
                y = repro.tanh(y + 0.1)
            return y

        fn = _fn(build, in_specs=((repro.float32, [8]),))
        fusion.fuse_function(fn)
        (fused,) = _fused_nodes(fn)
        region = fused.attrs["region"]
        assert region.donated_steps >= 4
        # Donation never touches region *inputs*: the fed tensor
        # survives execution bit-for-bit.
        x = repro.constant(np.ones(8, np.float32))
        fn.run([x])
        np.testing.assert_array_equal(x.numpy(), np.ones(8, np.float32))

    def test_alias_ops_pin_their_buffer(self):
        """Identity returns a view; its root buffer must not be donated
        out from under the other alias."""

        def build(x):
            h = repro.exp(x)
            i = repro.identity(h)
            return repro.tanh(h + 1.0) * i

        fn = _fn(build)
        fusion.fuse_function(fn)
        x = np.float32([0.2, -0.4])
        (out,) = fn.run([repro.constant(x)])
        h = np.exp(x)
        np.testing.assert_allclose(out.numpy(), np.tanh(h + 1.0) * h, rtol=1e-6)


class TestCompiledRegions:
    """Regions specialize their step loop into generated code at build
    time; the interpreted loop stays behind as the fallback and the two
    must agree bit-for-bit."""

    def _region(self):
        def build(x):
            y = x * 2.0
            for _ in range(3):
                y = repro.tanh(y + 0.1)
            return y

        fn = _fn(build, in_specs=((repro.float32, [16]),))
        fusion.fuse_function(fn)
        (fused,) = _fused_nodes(fn)
        return fused.attrs["region"]

    def test_region_compiles(self):
        assert self._region()._compiled is not None

    def test_compiled_matches_interpreter(self):
        from repro.runtime.context import context as ctx

        region = self._region()
        device = ctx.cpu_device()
        rng = np.random.default_rng(3)
        # Exact external order doesn't matter for the equivalence check:
        # both paths see the same slot assignment.
        ins = [rng.normal(size=16).astype(np.float32), np.float32(2.0), np.float32(0.1)]
        ins = ins[: region.num_inputs]
        assert len(ins) == region.num_inputs
        compiled = region([a.copy() for a in ins], device)
        region._compiled = None
        interpreted = region([a.copy() for a in ins], device)
        np.testing.assert_array_equal(
            np.asarray(compiled), np.asarray(interpreted)
        )


class TestDefuse:
    def test_roundtrip_restores_primitives(self):
        def build(x):
            return repro.tanh(x * 2.0 + 1.0)

        fn = _fn(build)
        fusion.fuse_function(fn)
        assert fusion.has_fused_nodes(fn)
        plain = fusion.defuse_function(fn)
        assert not fusion.has_fused_nodes(plain)
        assert len(plain.graph.ops_by_type("Tanh")) == 1
        x = repro.constant([0.0, 1.0])
        np.testing.assert_allclose(
            plain.run([x])[0].numpy(), fn.run([x])[0].numpy(), rtol=1e-6
        )

    def test_serialization_defuses(self):
        def build(x):
            return repro.exp(x) * repro.tanh(x)

        fn = _fn(build)
        fusion.fuse_function(fn)
        graph_def = fn.definition()
        ops = {n["op"] for n in graph_def["graph"]["nodes"]}
        assert fusion.FUSED_OP not in ops
        assert {"Exp", "Tanh", "Mul"} <= ops


class TestPipelineIntegration:
    def test_fuse_runs_in_default_passes_under_knob(self):
        def build(x):
            return repro.tanh(x * 2.0 + 1.0)

        previous = context.graph_fusion
        context.graph_fusion = True
        try:
            fn = _fn(build)
            optimize.optimize_function(fn)
            assert fusion.has_fused_nodes(fn)
        finally:
            context.graph_fusion = previous

    def test_fuse_not_in_default_passes_when_off(self):
        def build(x):
            return repro.tanh(x * 2.0 + 1.0)

        previous = context.graph_fusion
        context.graph_fusion = False
        try:
            fn = _fn(build)
            optimize.optimize_function(fn)
            assert not fusion.has_fused_nodes(fn)
        finally:
            context.graph_fusion = previous

    def test_gradient_through_fused_function(self):
        previous = context.graph_fusion
        context.graph_fusion = True
        try:

            @repro.function
            def f(x):
                return repro.reduce_sum(repro.tanh(x) * x + repro.exp(x))

            x = repro.constant(np.float64([0.3, -1.1, 0.7]))
            with repro.GradientTape() as tape:
                tape.watch(x)
                y = f(x)
            (g,) = tape.gradient(y, [x])
            xn = x.numpy()
            expect = np.tanh(xn) + xn / np.cosh(xn) ** 2 + np.exp(xn)
            np.testing.assert_allclose(g.numpy(), expect, rtol=1e-9)
        finally:
            context.graph_fusion = previous


class TestFusedErrorAttribution:
    """A kernel error inside a fused region must carry the *member* op's
    name, not the region label (the deferred-error contract: errors are
    attributed to the op the user wrote, even after fusion rewrote it)."""

    @staticmethod
    def _ensure_boom_op():
        from repro.framework.errors import AlreadyExistsError
        from repro.ops import registry as op_registry

        try:
            op_registry.register_op(
                "TestBoomElem", infer_fn=lambda inputs, attrs: [inputs[0].spec]
            )
        except AlreadyExistsError:
            return

        def _boom(arrays, attrs, device):
            raise ValueError("boom kernel exploded")

        op_registry.register_kernel("TestBoomElem", ("CPU",))(_boom)

    def test_member_op_name_attached(self, monkeypatch):
        self._ensure_boom_op()
        monkeypatch.setattr(
            fusion, "FUSABLE_OPS", fusion.FUSABLE_OPS | {"TestBoomElem"}
        )
        from repro.runtime.executor import execute

        def build(x):
            y = x * 2.0
            z = execute("TestBoomElem", [y], {})
            return z + 1.0

        fn = _fn(build)
        assert fusion.fuse_function(fn) == 1
        (fused,) = _fused_nodes(fn)
        assert "TestBoomElem" in fused.attrs["region"].op_names
        with pytest.raises(ValueError, match="boom kernel exploded") as ei:
            fn.run([repro.constant([1.0, 2.0])])
        assert getattr(ei.value, "_repro_async_op", None) == "TestBoomElem"
