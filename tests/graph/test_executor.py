"""Graph executor: serial/parallel equivalence, pruning, buffer freeing."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError
from repro.graph.executor import GraphRunner
from repro.graph.function import GraphFunction, placeholder
from repro.graph.graph import Graph


def _build_diamond():
    """x -> (a, b) -> c : a graph with reconvergent fan-out."""
    g = Graph("diamond")
    x = placeholder(g, repro.float32, [4], name="x")
    with g.as_default():
        a = x * 2.0
        b = x + 10.0
        c = a * b
    return g, x, (a, b, c)


class TestSerialExecution:
    def test_basic(self):
        g, x, (_, _, c) = _build_diamond()
        runner = GraphRunner(g, [c])
        (out,) = runner.run([(x, repro.constant([1.0, 2.0, 3.0, 4.0]))])
        np.testing.assert_allclose(out.numpy(), [22.0, 48.0, 78.0, 112.0])

    def test_multiple_fetches(self):
        g, x, (a, b, c) = _build_diamond()
        runner = GraphRunner(g, [a, c])
        out_a, out_c = runner.run([(x, repro.constant([1.0, 1.0, 1.0, 1.0]))])
        np.testing.assert_allclose(out_a.numpy(), [2.0] * 4)
        np.testing.assert_allclose(out_c.numpy(), [22.0] * 4)

    def test_duplicate_fetch(self):
        g, x, (a, _, _) = _build_diamond()
        runner = GraphRunner(g, [a, a])
        o1, o2 = runner.run([(x, repro.constant([1.0] * 4))])
        assert o1 is o2

    def test_missing_feed_raises(self):
        g, x, (a, _, _) = _build_diamond()
        runner = GraphRunner(g, [a])
        with pytest.raises(InvalidArgumentError):
            runner.run([])

    def test_runner_reusable(self):
        g, x, (a, _, _) = _build_diamond()
        runner = GraphRunner(g, [a])
        for v in (1.0, 2.0, 3.0):
            (out,) = runner.run([(x, repro.constant([v] * 4))])
            assert out.numpy()[0] == pytest.approx(v * 2)

    def test_pruning_skips_unneeded_nodes(self):
        g = Graph("p")
        x = placeholder(g, repro.float32, [], name="x")
        ran = []

        def spy(v):
            ran.append(1)
            return v.numpy()

        with g.as_default():
            wanted = x * 2.0
            _unwanted = repro.py_func(spy, [x], Tout=repro.float32) * 3.0
        runner = GraphRunner(g, [wanted], include_side_effects=False)
        runner.run([(x, repro.constant(1.0))])
        assert ran == []  # the side-effecting branch never executed

    def test_side_effects_included_for_functions(self):
        g = Graph("s")
        x = placeholder(g, repro.float32, [], name="x")
        v = repro.Variable(0.0)
        with g.as_default():
            wanted = x * 2.0
            v.assign_add(1.0)
        runner = GraphRunner(g, [wanted], include_side_effects=True)
        runner.run([(x, repro.constant(1.0))])
        assert float(v.read_value()) == 1.0


class TestParallelExecution:
    def test_matches_serial(self):
        g, x, (a, b, c) = _build_diamond()
        feed = [(x, repro.constant([1.0, 2.0, 3.0, 4.0]))]
        serial = GraphRunner(g, [a, b, c]).run(feed)
        parallel = GraphRunner(g, [a, b, c]).run(feed, parallel=True)
        for s, p in zip(serial, parallel):
            np.testing.assert_allclose(s.numpy(), p.numpy())

    def test_wide_fanout(self):
        g = Graph("wide")
        x = placeholder(g, repro.float32, [8], name="x")
        with g.as_default():
            branches = [x * float(i) for i in range(20)]
            total = repro.add_n(branches)
        feed = [(x, repro.constant(np.ones(8, np.float32)))]
        (serial,) = GraphRunner(g, [total]).run(feed)
        (parallel,) = GraphRunner(g, [total]).run(feed, parallel=True)
        np.testing.assert_allclose(parallel.numpy(), serial.numpy())

    def test_stateful_order_preserved(self):
        v = repro.Variable(1.0)
        g = Graph("state")
        x = placeholder(g, repro.float32, [], name="x")
        with g.as_default():
            v.assign(v.read_value() * 2.0)
            v.assign_add(1.0)
            out = x * 1.0
        GraphRunner(g, [out]).run([(x, repro.constant(0.0))], parallel=True)
        assert float(v.read_value()) == 3.0  # (1*2)+1, in program order

    def test_error_propagates(self):
        g = Graph("err")
        x = placeholder(g, repro.float32, [2], name="x")
        with g.as_default():
            bad = repro.py_func(
                lambda v: (_ for _ in ()).throw(RuntimeError("boom")),
                [x],
                Tout=repro.float32,
            )
        with pytest.raises(RuntimeError, match="boom"):
            GraphRunner(g, [bad]).run([(x, repro.constant([1.0, 2.0]))], parallel=True)


class TestGraphFunction:
    def test_run_arity_checked(self):
        g = Graph("f")
        x = placeholder(g, repro.float32, [], name="x")
        with g.as_default():
            y = x * 2.0
        fn = GraphFunction("f", g, [x], [y])
        with pytest.raises(InvalidArgumentError):
            fn.run([])

    def test_repr(self):
        g = Graph("f")
        x = placeholder(g, repro.float32, [], name="x")
        with g.as_default():
            y = x * 2.0
        fn = GraphFunction("f", g, [x], [y])
        assert "1 inputs" in repr(fn)
