"""Property tests: graph optimization never changes program meaning.

Random DAGs of arithmetic ops (with shared subexpressions, constants,
and dead branches mixed in) must produce bit-identical results before
and after the full optimization pipeline, and the same holds for
serialization round-trips of the optimized graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.tracing import trace_into_graph
from repro.graph.function import GraphFunction
from repro.graph.optimize import optimize_function
from repro.graph.serialization import function_from_def, function_to_def
from repro.tensor import TensorSpec

_BINARY = [repro.add, repro.subtract, repro.multiply, repro.maximum]
_UNARY = [repro.tanh, repro.exp, lambda t: t * 1.0, lambda t: t + 0.0, repro.negative]


@st.composite
def _programs(draw):
    """A random straight-line program over one input vector."""
    steps = draw(st.lists(st.tuples(
        st.integers(0, 1),          # unary vs binary
        st.integers(0, 4),          # op index
        st.integers(0, 7),          # operand pick a
        st.integers(0, 7),          # operand pick b
        st.booleans(),              # mix in a constant operand
    ), min_size=2, max_size=12))
    out_pick = draw(st.integers(0, 7))
    return steps, out_pick


def _build(steps, out_pick):
    def program(x):
        values = [x, x * 0.5]
        for kind, op_idx, a, b, use_const in steps:
            lhs = values[a % len(values)]
            if kind == 0:
                values.append(_UNARY[op_idx % len(_UNARY)](lhs))
            else:
                rhs = (
                    repro.constant(1.5)
                    if use_const
                    else values[b % len(values)]
                )
                values.append(_BINARY[op_idx % len(_BINARY)](lhs, rhs))
        return values[out_pick % len(values)] * 1.0

    graph, outs, _ = trace_into_graph(program, [TensorSpec([4])], "prop")
    return GraphFunction("prop", graph, list(graph.inputs), outs)


class TestOptimizationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(_programs(), st.integers(0, 2 ** 31 - 1))
    def test_pipeline_preserves_values(self, program, seed):
        steps, out_pick = program
        fn = _build(steps, out_pick)
        rng = np.random.default_rng(seed)
        x = repro.constant(rng.normal(size=4).astype(np.float32) * 0.5)
        (before,) = fn.run([x])
        optimize_function(fn)
        (after,) = fn.run([x])
        np.testing.assert_allclose(
            after.numpy(), before.numpy(), rtol=1e-6, atol=1e-6, equal_nan=True
        )

    @settings(max_examples=30, deadline=None)
    @given(_programs())
    def test_pipeline_never_grows_the_graph(self, program):
        steps, out_pick = program
        fn = _build(steps, out_pick)
        before = fn.num_nodes
        optimize_function(fn)
        assert fn.num_nodes <= before

    @settings(max_examples=30, deadline=None)
    @given(_programs(), st.integers(0, 2 ** 31 - 1))
    def test_optimized_graph_serializes(self, program, seed):
        steps, out_pick = program
        fn = _build(steps, out_pick)
        optimize_function(fn)
        rng = np.random.default_rng(seed)
        x = repro.constant(rng.normal(size=4).astype(np.float32) * 0.5)
        (direct,) = fn.run([x])
        rebuilt = function_from_def(function_to_def(fn))
        (roundtrip,) = rebuilt.run([x])
        np.testing.assert_allclose(
            roundtrip.numpy(), direct.numpy(), rtol=1e-6, equal_nan=True
        )

    @settings(max_examples=30, deadline=None)
    @given(_programs(), st.integers(0, 2 ** 31 - 1))
    def test_compiled_execution_matches_interpreter(self, program, seed):
        """XLA-sim lowering + fusion agree with the graph executor."""
        from repro.runtime.context import context
        from repro.xla.compiler import compile_function

        steps, out_pick = program
        fn = _build(steps, out_pick)
        rng = np.random.default_rng(seed)
        x = repro.constant(rng.normal(size=4).astype(np.float32) * 0.5)
        (interpreted,) = fn.run([x])
        exe = compile_function(fn)
        (compiled,) = exe.execute([x._array], context.cpu_device())
        np.testing.assert_allclose(
            compiled, interpreted.numpy(), rtol=1e-6, equal_nan=True
        )
