"""GraphDef serialization round-trips (paper §4.3: staging enables
serializing the program for use without a Python interpreter)."""

import json

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError
from repro.graph.serialization import function_from_def, function_to_def


def _concrete(fn, *args):
    return repro.function(fn).get_concrete_function(*args)


class TestRoundTrip:
    def test_simple_function(self):
        concrete = _concrete(lambda x: x * 2.0 + 1.0, repro.constant([1.0, 2.0]))
        spec = function_to_def(concrete.graph_function)
        rebuilt = function_from_def(spec)
        out = rebuilt.run([repro.constant([3.0, 4.0])])
        np.testing.assert_allclose(out[0].numpy(), [7.0, 9.0])

    def test_json_compatible(self):
        concrete = _concrete(
            lambda x: repro.reduce_sum(repro.matmul(x, x)),
            repro.constant(np.eye(2, dtype=np.float32)),
        )
        spec = concrete.definition()
        text = json.dumps(spec)  # must not raise
        rebuilt = function_from_def(json.loads(text))
        out = rebuilt.run([repro.constant(np.eye(2, dtype=np.float32))])
        assert float(out[0]) == 2.0

    def test_constants_preserved(self):
        c = repro.constant(np.arange(6, dtype=np.float32).reshape(2, 3))

        @repro.function
        def f(x):
            return repro.matmul(repro.constant(np.ones((2, 2), np.float32)), c) + x

        concrete = f.get_concrete_function(repro.constant(np.zeros((2, 3), np.float32)))
        rebuilt = function_from_def(concrete.definition())
        out = rebuilt.run(
            [repro.constant(np.zeros((2, 3), np.float32))]
            + [t for t in concrete.captured_externals]
        )
        expected = np.ones((2, 2)) @ np.arange(6).reshape(2, 3)
        np.testing.assert_allclose(out[0].numpy(), expected)

    def test_nested_function_attr(self):
        @repro.function
        def inner(x):
            return x * 3.0

        @repro.function
        def outer(x):
            return inner(x) + 1.0

        concrete = outer.get_concrete_function(repro.constant(1.0))
        rebuilt = function_from_def(concrete.definition())
        out = rebuilt.run([repro.constant(2.0)])
        assert float(out[0]) == 7.0

    def test_control_flow_serializes(self):
        @repro.function
        def f(x):
            return repro.cond(x > 0.0, lambda: x * 2.0, lambda: x - 1.0)

        concrete = f.get_concrete_function(repro.constant(1.0))
        rebuilt = function_from_def(concrete.definition())
        assert float(rebuilt.run([repro.constant(3.0)])[0]) == 6.0
        assert float(rebuilt.run([repro.constant(-3.0)])[0]) == -4.0

    def test_dtype_and_shape_attrs_roundtrip(self):
        @repro.function
        def f(x):
            return repro.cast(repro.reduce_sum(x, axis=0, keepdims=True), repro.float64)

        concrete = f.get_concrete_function(repro.constant(np.ones((2, 2), np.float32)))
        rebuilt = function_from_def(concrete.definition())
        out = rebuilt.run([repro.constant(np.ones((2, 2), np.float32))])
        assert out[0].dtype is repro.float64


class TestLimits:
    def test_py_func_not_serializable(self):
        """Paper §4.7: graphs with py_funcs are not serializable."""

        @repro.function
        def f(x):
            return repro.py_func(lambda v: v.numpy(), [x], Tout=repro.float32)

        concrete = f.get_concrete_function(repro.constant(1.0))
        with pytest.raises(InvalidArgumentError, match="py_func"):
            concrete.definition()
