"""Grappler-style optimization passes."""

import numpy as np
import pytest

import repro
from repro.graph.function import GraphFunction, placeholder
from repro.graph.graph import Graph
from repro.graph import optimize


def _fn(build, in_specs=((repro.float32, [2]),), name="t"):
    g = Graph(name)
    phs = [placeholder(g, dt, shape) for dt, shape in in_specs]
    with g.as_default():
        outputs = build(*phs)
    if not isinstance(outputs, (list, tuple)):
        outputs = [outputs]
    return GraphFunction(name, g, phs, list(outputs))


class TestPrune:
    def test_removes_dead_ops(self):
        def build(x):
            _dead = x * 3.0 + 7.0
            return x * 2.0

        fn = _fn(build)
        before = fn.num_nodes
        removed = optimize.prune(fn)
        assert removed >= 2
        assert fn.num_nodes < before
        (out,) = fn.run([repro.constant([1.0, 2.0])])
        np.testing.assert_allclose(out.numpy(), [2.0, 4.0])

    def test_keeps_side_effects(self):
        v = repro.Variable(0.0)

        def build(x):
            v.assign_add(1.0)  # unused output but must survive
            return x * 1.0

        fn = _fn(build)
        optimize.prune(fn)
        assert len(fn.graph.ops_by_type("AssignAddVariableOp")) == 1


class TestConstantFold:
    def test_folds_constant_subgraph(self):
        def build(x):
            c = repro.constant(2.0) * repro.constant(3.0)
            return x * c

        fn = _fn(build)
        folded = optimize.constant_fold(fn)
        assert folded >= 1
        optimize.prune(fn)
        mults = fn.graph.ops_by_type("Mul")
        assert len(mults) == 1  # only x * 6 remains
        (out,) = fn.run([repro.constant([1.0, 2.0])])
        np.testing.assert_allclose(out.numpy(), [6.0, 12.0])

    def test_does_not_fold_random(self):
        def build(x):
            return x + repro.random_normal([2])

        fn = _fn(build)
        assert optimize.constant_fold(fn) == 0
        assert len(fn.graph.ops_by_type("RandomStandardNormal")) == 1

    def test_folds_shape_of_placeholder(self):
        def build(x):
            return repro.cast(repro.shape(x)[0], repro.float32) * x

        fn = _fn(build)
        optimize.constant_fold(fn)
        optimize.prune(fn)
        assert len(fn.graph.ops_by_type("Shape")) == 0
        (out,) = fn.run([repro.constant([1.0, 1.0])])
        np.testing.assert_allclose(out.numpy(), [2.0, 2.0])


class TestArithmetic:
    def test_mul_by_one_removed(self):
        def build(x):
            return (x * 1.0) + 0.0

        fn = _fn(build)
        optimize.constant_fold(fn)
        rewrites = optimize.arithmetic_simplify(fn)
        assert rewrites >= 2
        optimize.prune(fn)
        assert fn.graph.ops_by_type("Mul") == []
        assert fn.graph.ops_by_type("Add") == []
        (out,) = fn.run([repro.constant([5.0, 6.0])])
        np.testing.assert_allclose(out.numpy(), [5.0, 6.0])

    def test_broadcasting_identity_not_removed(self):
        """x * ones([2,2]) changes shape; must not be elided."""

        def build(x):
            return x * repro.ones([2, 2])  # broadcasts [2] -> [2,2]

        fn = _fn(build)
        optimize.arithmetic_simplify(fn)
        (out,) = fn.run([repro.constant([1.0, 2.0])])
        assert out.shape.as_list() == [2, 2]

    def test_double_negation(self):
        def build(x):
            return -(-x)

        fn = _fn(build)
        optimize.arithmetic_simplify(fn)
        optimize.prune(fn)
        assert fn.graph.ops_by_type("Neg") == []

    def test_transpose_pair_collapsed(self):
        def build(x):
            return repro.transpose(repro.transpose(x, [1, 0]), [1, 0])

        fn = _fn(build, in_specs=((repro.float32, [2, 3]),))
        optimize.arithmetic_simplify(fn)
        optimize.prune(fn)
        assert fn.graph.ops_by_type("Transpose") == []


class TestCSE:
    def test_merges_identical_ops(self):
        def build(x):
            a = repro.exp(x)
            b = repro.exp(x)
            return a + b

        fn = _fn(build)
        merged = optimize.cse(fn)
        assert merged == 1
        optimize.prune(fn)
        assert len(fn.graph.ops_by_type("Exp")) == 1
        (out,) = fn.run([repro.constant([0.0, 1.0])])
        np.testing.assert_allclose(out.numpy(), 2 * np.exp([0.0, 1.0]), rtol=1e-6)

    def test_does_not_merge_random(self):
        def build(x):
            return repro.random_normal([2]) + repro.random_normal([2]) + x

        fn = _fn(build)
        assert optimize.cse(fn) == 0
        assert len(fn.graph.ops_by_type("RandomStandardNormal")) == 2

    def test_attrs_distinguish(self):
        def build(x):
            return repro.reduce_sum(x, keepdims=True) + repro.reduce_sum(
                x, keepdims=False
            )

        fn = _fn(build)
        assert optimize.cse(fn) == 0


class TestDedupReads:
    def test_merges_reads_without_writes(self):
        v = repro.Variable([1.0, 2.0])

        def build(x):
            return v.read_value() + v.read_value() + x

        fn = _fn(build)
        assert optimize.dedup_reads(fn) == 1
        optimize.prune(fn)
        assert len(fn.graph.ops_by_type("ReadVariableOp")) == 1

    def test_write_invalidates(self):
        v = repro.Variable(1.0)

        def build(x):
            a = v.read_value()
            v.assign_add(1.0)
            b = v.read_value()
            return a + b + x

        fn = _fn(build, in_specs=((repro.float32, []),))
        assert optimize.dedup_reads(fn) == 0
        assert len(fn.graph.ops_by_type("ReadVariableOp")) == 2

    def test_unrelated_write_does_not_invalidate(self):
        """Side-effect ordering is per-resource: a write to one variable
        must not split reads of a *different* variable (it needlessly
        breaks up fusion regions otherwise)."""
        v = repro.Variable(1.0)
        w = repro.Variable(10.0)

        def build(x):
            a = v.read_value()
            w.assign_add(1.0)
            b = v.read_value()
            return a + b + x

        fn = _fn(build, in_specs=((repro.float32, []),))
        assert optimize.dedup_reads(fn) == 1
        optimize.prune(fn)
        assert len(fn.graph.ops_by_type("ReadVariableOp")) == 1
        assert len(fn.graph.ops_by_type("AssignAddVariableOp")) == 1
        x = repro.constant(0.0)
        (out,) = fn.run([x])
        assert float(out.numpy()) == 2.0
        assert float(w.read_value()) == 11.0

    def test_py_func_still_invalidates_all(self):
        """An opaque py_func may close over any variable, so it remains
        a full barrier for read dedup."""
        v = repro.Variable(1.0)

        def build(x):
            a = v.read_value()
            y = repro.py_func(lambda t: t.numpy() * 1.0, [x], Tout=repro.float32)
            b = v.read_value()
            return a + b + y

        fn = _fn(build, in_specs=((repro.float32, []),))
        assert optimize.dedup_reads(fn) == 0
        assert len(fn.graph.ops_by_type("ReadVariableOp")) == 2


class TestPipeline:
    def test_default_pipeline_preserves_semantics(self):
        v = repro.Variable(2.0)

        def build(x):
            a = (x * 1.0 + 0.0) * v.read_value()
            b = repro.exp(x) + repro.exp(x)
            dead = repro.tanh(x) * 123.0  # noqa: F841 - intentionally unused
            return a + b + repro.constant(1.0) * repro.constant(4.0)

        fn = _fn(build)
        x = repro.constant([0.5, 1.5])
        (before,) = fn.run([x])
        report = optimize.optimize_function(fn)
        (after,) = fn.run([x])
        np.testing.assert_allclose(after.numpy(), before.numpy(), rtol=1e-6)
        assert sum(report.values()) > 0

    def test_explicit_pass_selection(self):
        def build(x):
            return x * 1.0

        fn = _fn(build)
        report = optimize.optimize_function(fn, passes=["arithmetic"])
        assert list(report) == ["0:arithmetic"]
