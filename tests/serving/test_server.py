"""The multi-tenant model server: coalescing, backpressure, isolation.

These tests drive the server through its public API only (submit /
predict / stats), using ``batch_window_ms`` to make coalescing
deterministic and :class:`FaultInjector` for chaos — the same injector
the distributed tests aim at a :class:`WorkerServer`.
"""

import importlib.util
import threading
import time

import numpy as np
import pytest

import repro
from repro.core import saved_function
from repro.distribute import FaultInjector
from repro.framework.errors import (
    AlreadyExistsError,
    AbortedError,
    DeadlineExceededError,
    InvalidArgumentError,
    NotFoundError,
    ResourceExhaustedError,
    ReproError,
    UnavailableError,
)
from repro.runtime.context import context
from repro.serving import ModelServer
from repro.tensor import TensorSpec

if importlib.util.find_spec("pytest_timeout") is not None:
    timeout_marker = pytest.mark.timeout(60, method="thread")
else:

    def timeout_marker(cls):
        return cls


def export_linear(tmp_path, name="m", features=4):
    """A saved y = x @ w + 1 with a shape-polymorphic trace."""
    rng = np.random.default_rng(7)
    w = repro.Variable(rng.standard_normal((features, 3)).astype(np.float32))

    @repro.function
    def f(x):
        return repro.matmul(x, w) + 1.0

    path = saved_function.save(
        f, str(tmp_path / name), TensorSpec([None, features], repro.float32)
    )
    return path, w.numpy().copy()


def expected_linear(x, w):
    return x @ w + 1.0


def x_batch(n, features=4, seed=0):
    return np.random.default_rng(seed).standard_normal((n, features)).astype(
        np.float32
    )


@timeout_marker
class TestCoalescingCorrectness:
    def test_coalesced_results_match_per_request(self, tmp_path):
        path, w = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            # A generous batch window: the worker waits for the whole
            # burst, so the burst coalesces deterministically.
            model = server.load("m", path, batch_window_ms=200.0)
            inputs = [x_batch(n, seed=n) for n in (1, 3, 1, 2, 1)]
            futures = [model.submit(x) for x in inputs]
            for x, future in zip(inputs, futures):
                np.testing.assert_allclose(
                    future.result(timeout=30.0).numpy(),
                    expected_linear(x, w),
                    rtol=1e-5,
                )
            stats = model.stats()
            assert stats["max_batch_seen"] > 1
            assert stats["coalesced"] > 0
            assert stats["completed"] == len(inputs)

    def test_mixed_ranks_do_not_cross_coalesce(self, tmp_path):
        # 2-D and (broadcastable) higher-rank requests have different
        # signatures; both still serve correctly.
        path, w = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path, batch_window_ms=50.0)
            a = x_batch(2, seed=1)
            out = model.predict(a)
            np.testing.assert_allclose(
                out.numpy(), expected_linear(a, w), rtol=1e-5
            )

    def test_unsplittable_output_falls_back_per_request(self, tmp_path):
        # A scalar reduction has no batch dim: the coalesced call's
        # result cannot be split, so the server re-runs per request.
        @repro.function
        def total(x):
            return repro.reduce_sum(x)

        path = saved_function.save(
            total, str(tmp_path / "sum"), TensorSpec([None, 4], repro.float32)
        )
        with ModelServer(timeout_ms=None) as server:
            model = server.load("sum", path, batch_window_ms=200.0)
            inputs = [x_batch(2, seed=i) for i in range(4)]
            futures = [model.submit(x) for x in inputs]
            for x, future in zip(inputs, futures):
                np.testing.assert_allclose(
                    float(future.result(timeout=30.0).numpy()),
                    float(x.sum()),
                    rtol=1e-4,
                )
            stats = model.stats()
            assert stats["fallback_splits"] >= 1
            assert stats["failed"] == 0

    def test_scalar_requests_serve_unbatched(self, tmp_path):
        @repro.function
        def double(x):
            return x * 2.0

        path = saved_function.save(
            double, str(tmp_path / "d"), repro.constant(1.0)
        )
        with ModelServer(timeout_ms=None) as server:
            model = server.load("d", path)
            assert float(model.predict(21.0).numpy()) == 42.0


@timeout_marker
class TestBackpressure:
    def test_full_queue_rejects_with_resource_exhausted(self, tmp_path):
        path, _ = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path, queue_depth=2, max_batch=1)
            with FaultInjector(model) as chaos:
                chaos.delay(0.2)  # hold the worker on the first request
                model.submit(x_batch(1))  # worker takes this one
                time.sleep(0.05)
                model.submit(x_batch(1))  # queued: 1
                model.submit(x_batch(1))  # queued: 2 == depth
                with pytest.raises(ResourceExhaustedError) as excinfo:
                    model.submit(x_batch(1))
                # Typed for clients: a ReproError they can catch broadly.
                assert isinstance(excinfo.value, ReproError)
            assert model.stats()["rejected"] == 1

    def test_deadline_fires_for_stuck_request(self, tmp_path):
        path, _ = export_linear(tmp_path)
        with ModelServer() as server:
            model = server.load("m", path, timeout_ms=100.0, max_batch=1)
            with FaultInjector(model) as chaos:
                chaos.drop(times=1)  # the request is never answered
                with pytest.raises(DeadlineExceededError):
                    model.predict(x_batch(1))
            assert model.stats()["dropped"] == 1

    def test_wrong_arity_rejected_at_submit(self, tmp_path):
        path, _ = export_linear(tmp_path)
        with ModelServer() as server:
            model = server.load("m", path)
            with pytest.raises(InvalidArgumentError):
                model.submit(x_batch(1), x_batch(1))


@timeout_marker
class TestFaultIsolation:
    def test_failing_model_does_not_poison_neighbor(self, tmp_path):
        path, w = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            a = server.load("a", path)
            b = server.load("b", path)
            with FaultInjector(a) as chaos:
                chaos.fail()  # every request to A aborts, forever
                x = x_batch(2)
                for _ in range(3):
                    with pytest.raises(AbortedError):
                        a.predict(x)
                    np.testing.assert_allclose(
                        b.predict(x).numpy(), expected_linear(x, w), rtol=1e-5
                    )
            assert a.stats()["failed"] == 3
            assert b.stats()["failed"] == 0
            assert b.stats()["completed"] == 3

    def test_transient_fault_recovers_via_retry(self, tmp_path):
        path, w = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path)
            with FaultInjector(model) as chaos:
                chaos.fail(times=1)  # first attempt aborts; retry wins
                x = x_batch(2)
                np.testing.assert_allclose(
                    model.predict(x).numpy(), expected_linear(x, w), rtol=1e-5
                )
            stats = model.stats()
            assert stats["retries"] == 1
            assert stats["failed"] == 0

    def test_killed_model_fails_fast_and_neighbor_survives(self, tmp_path):
        path, w = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            a = server.load("a", path)
            b = server.load("b", path)
            chaos = FaultInjector(a)
            chaos.kill_worker()
            with pytest.raises(UnavailableError):
                a.predict(x_batch(1))
            assert not a.alive
            with pytest.raises(UnavailableError):
                a.submit(x_batch(1))  # rejected at the door now
            x = x_batch(3)
            np.testing.assert_allclose(
                b.predict(x).numpy(), expected_linear(x, w), rtol=1e-5
            )
            chaos.remove()

    def test_nonretryable_batch_fault_isolated_per_request(self, tmp_path):
        # A one-shot non-retryable failure hits the coalesced call; the
        # server re-executes per request, so every future still settles.
        path, w = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path, batch_window_ms=200.0)
            fired = threading.Event()

            def hook(name):
                if not fired.is_set():
                    fired.set()
                    raise InvalidArgumentError("injected poison")

            model.install_fault_hook(hook)
            inputs = [x_batch(1, seed=i) for i in range(3)]
            futures = [model.submit(x) for x in inputs]
            for x, future in zip(inputs, futures):
                np.testing.assert_allclose(
                    future.result(timeout=30.0).numpy(),
                    expected_linear(x, w),
                    rtol=1e-5,
                )
            assert model.stats()["failed"] == 0


@timeout_marker
class TestConcurrentLoadSave:
    def test_concurrent_save_load_serve_roundtrip(self, tmp_path):
        """Many threads exporting, loading, and serving at once."""
        errors = []
        server = ModelServer(timeout_ms=None)

        def worker(i):
            try:
                rng = np.random.default_rng(i)
                w = repro.Variable(
                    rng.standard_normal((4, 2)).astype(np.float32)
                )

                @repro.function
                def f(x):
                    return repro.matmul(x, w)

                path = saved_function.save(
                    f,
                    str(tmp_path / f"m{i}"),
                    TensorSpec([None, 4], repro.float32),
                )
                model = server.load(f"m{i}", path)
                x = x_batch(2, seed=i)
                out = model.predict(x)
                np.testing.assert_allclose(
                    out.numpy(), x @ w.numpy(), rtol=1e-4
                )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        server.stop()
        assert not errors, errors
        assert len(server.models()) == 0  # stop() cleared the registry

    def test_concurrent_predicts_one_model(self, tmp_path):
        path, w = export_linear(tmp_path)
        errors = []
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path)

            def client(seed):
                try:
                    for i in range(20):
                        x = x_batch(1 + (seed + i) % 3, seed=seed * 100 + i)
                        np.testing.assert_allclose(
                            model.predict(x).numpy(),
                            expected_linear(x, w),
                            rtol=1e-5,
                        )
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(s,)) for s in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not errors, errors
            assert model.stats()["completed"] == 8 * 20


@timeout_marker
class TestServerApi:
    def test_duplicate_name_rejected(self, tmp_path):
        path, _ = export_linear(tmp_path)
        with ModelServer() as server:
            server.load("m", path)
            with pytest.raises(AlreadyExistsError):
                server.load("m", path)

    def test_unknown_model_not_found(self):
        with ModelServer() as server:
            with pytest.raises(NotFoundError):
                server.predict("ghost", 1.0)
            with pytest.raises(NotFoundError):
                server.unload("ghost")

    def test_unload_then_submit_unavailable(self, tmp_path):
        path, _ = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path)
            model.predict(x_batch(1))
            server.unload("m")
            assert server.models() == []
            with pytest.raises(UnavailableError):
                model.submit(x_batch(1))

    def test_stats_shape(self, tmp_path):
        path, _ = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path)
            model.predict(x_batch(2))
            stats = server.stats()["m"]
            for key in ("completed", "p50_ms", "p99_ms", "mean_batch_size"):
                assert key in stats
            assert stats["completed"] == 1
            assert stats["p99_ms"] >= stats["p50_ms"] >= 0.0

    def test_settles_feed_active_profiler(self, tmp_path):
        path, _ = export_linear(tmp_path)
        from repro.runtime.profiler import Profile

        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path)
            with Profile() as prof:
                model.predict(x_batch(2))
            assert any(name.startswith("serving/m") for name in prof.ops)

    def test_knob_defaults_come_from_context(self, tmp_path):
        path, _ = export_linear(tmp_path)
        context.serving_max_batch = 5
        context.serving_queue_depth = 9
        context.serving_timeout_ms = 1234.0
        with ModelServer() as server:
            model = server.load("m", path)
            assert model._max_batch == 5
            assert model._queue_depth == 9
            assert model._timeout_ms == 1234.0

    def test_knob_setters_validate(self):
        with pytest.raises(InvalidArgumentError):
            context.serving_max_batch = 0
        with pytest.raises(InvalidArgumentError):
            context.serving_queue_depth = -1
        with pytest.raises(InvalidArgumentError):
            context.serving_timeout_ms = 0.0

    def test_future_result_from_other_thread(self, tmp_path):
        path, w = export_linear(tmp_path)
        with ModelServer(timeout_ms=None) as server:
            model = server.load("m", path)
            x = x_batch(2)
            future = model.submit(x)
            box = {}

            def wait():
                box["out"] = future.result(timeout=30.0)

            t = threading.Thread(target=wait)
            t.start()
            t.join(timeout=30.0)
            np.testing.assert_allclose(
                box["out"].numpy(), expected_linear(x, w), rtol=1e-5
            )
