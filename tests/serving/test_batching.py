"""The coalescing contract: signatures, concat, and splitting back."""

import numpy as np
import pytest

import repro
from repro.framework.errors import InvalidArgumentError
from repro.serving import batching


def t(arr, dtype=np.float32):
    return repro.constant(np.asarray(arr, dtype=dtype))


class TestRequestSignature:
    def test_compatible_requests_share_a_signature(self):
        a = batching.request_signature([t(np.zeros((2, 4)))])
        b = batching.request_signature([t(np.ones((7, 4)))])
        assert a == b  # leading size excluded: any batch coalesces

    def test_dtype_mismatch_differs(self):
        a = batching.request_signature([t(np.zeros((2, 4)))])
        b = batching.request_signature([t(np.zeros((2, 4)), dtype=np.float64)])
        assert a != b

    def test_trailing_shape_mismatch_differs(self):
        a = batching.request_signature([t(np.zeros((2, 4)))])
        b = batching.request_signature([t(np.zeros((2, 5)))])
        assert a != b

    def test_rank0_is_uncoalescible(self):
        assert batching.request_signature([t(3.0)]) is None

    def test_no_args_is_uncoalescible(self):
        assert batching.request_signature([]) is None

    def test_disagreeing_leading_dims_uncoalescible(self):
        # e.g. an example batch plus a per-request lookup table.
        sig = batching.request_signature(
            [t(np.zeros((2, 4))), t(np.zeros((9, 4)))]
        )
        assert sig is None

    def test_multi_arg_signature(self):
        a = batching.request_signature([t(np.zeros((3, 4))), t(np.zeros((3, 2)))])
        b = batching.request_signature([t(np.zeros((5, 4))), t(np.zeros((5, 2)))])
        assert a == b


class TestCoalesceSplit:
    def test_roundtrip(self):
        reqs = [
            [t(np.full((2, 3), 1.0))],
            [t(np.full((1, 3), 2.0))],
            [t(np.full((4, 3), 3.0))],
        ]
        merged, sizes = batching.coalesce_requests(reqs)
        assert sizes == [2, 1, 4]
        assert merged[0].shape.as_tuple() == (7, 3)
        parts = batching.split_results(merged[0], sizes)
        for part, req in zip(parts, reqs):
            np.testing.assert_array_equal(part.numpy(), req[0].numpy())

    def test_split_is_zero_copy(self):
        merged = t(np.arange(12, dtype=np.float32).reshape(6, 2))
        parts = batching.split_results(merged, [2, 4])
        base = merged.numpy()
        for part in parts:
            view = part.numpy()
            assert view.base is base or view.base is base.base

    def test_split_nested_structure(self):
        result = {"y": t(np.zeros((5, 2))), "z": (t(np.ones((5,))), None)}
        parts = batching.split_results(result, [2, 3])
        assert parts[0]["y"].shape.as_tuple() == (2, 2)
        assert parts[1]["z"][0].shape.as_tuple() == (3,)
        assert parts[0]["z"][1] is None

    def test_scalar_output_not_splittable(self):
        with pytest.raises(batching.NotSplittableError):
            batching.split_results(t(7.0), [1, 1])

    def test_wrong_leading_dim_not_splittable(self):
        with pytest.raises(batching.NotSplittableError):
            batching.split_results(t(np.zeros((3, 2))), [2, 2])

    def test_empty_batch_rejected(self):
        with pytest.raises(InvalidArgumentError):
            batching.coalesce_requests([])

    def test_single_request_passthrough(self):
        x = t(np.zeros((3, 2)))
        merged, sizes = batching.coalesce_requests([[x]])
        assert merged[0] is x and sizes == [3]
