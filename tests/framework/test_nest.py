"""Unit and property tests for structured-value utilities."""

import collections

import pytest
from hypothesis import given, strategies as st

from repro.framework import nest

Point = collections.namedtuple("Point", ["x", "y"])


class TestFlatten:
    def test_leaf(self):
        assert nest.flatten(5) == [5]

    def test_nested_list(self):
        assert nest.flatten([1, [2, 3], (4,)]) == [1, 2, 3, 4]

    def test_dict_sorted_order(self):
        assert nest.flatten({"b": 2, "a": 1}) == [1, 2]

    def test_namedtuple(self):
        assert nest.flatten(Point(1, [2, 3])) == [1, 2, 3]

    def test_none_is_leaf(self):
        assert nest.flatten([None, 1]) == [None, 1]

    def test_flatten_with_paths(self):
        paths = nest.flatten_with_paths({"a": [10, 20]})
        assert paths == [(("a", 0), 10), (("a", 1), 20)]


class TestPack:
    def test_roundtrip_mixed(self):
        structure = {"a": [1, (2, 3)], "b": 4}
        flat = nest.flatten(structure)
        assert nest.pack_sequence_as(structure, flat) == structure

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            nest.pack_sequence_as([1, 2], [1])

    def test_namedtuple_type_preserved(self):
        packed = nest.pack_sequence_as(Point(0, 0), [7, 8])
        assert isinstance(packed, Point)
        assert packed == Point(7, 8)

    def test_replaces_leaves(self):
        packed = nest.pack_sequence_as((1, [2]), ["a", "b"])
        assert packed == ("a", ["b"])


class TestSameStructure:
    def test_matching(self):
        nest.assert_same_structure({"a": [1]}, {"a": [9]})

    def test_dict_keys_differ(self):
        with pytest.raises(ValueError):
            nest.assert_same_structure({"a": 1}, {"b": 1})

    def test_list_vs_tuple_differ(self):
        with pytest.raises(ValueError):
            nest.assert_same_structure([1], (1,))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            nest.assert_same_structure([1, 2], [1])


class TestMapStructure:
    def test_single(self):
        assert nest.map_structure(lambda v: v * 2, {"a": 1, "b": [2]}) == {
            "a": 2,
            "b": [4],
        }

    def test_multi(self):
        out = nest.map_structure(lambda a, b: a + b, [1, 2], [10, 20])
        assert out == [11, 22]

    def test_structure_mismatch_raises(self):
        with pytest.raises(ValueError):
            nest.map_structure(lambda a, b: a, [1], [1, 2])


_leaves = st.integers(-5, 5)
_structures = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(st.sampled_from("abcd"), children, max_size=3),
    ),
    max_leaves=12,
)


class TestProperties:
    @given(_structures)
    def test_flatten_pack_roundtrip(self, structure):
        flat = nest.flatten(structure)
        assert nest.pack_sequence_as(structure, flat) == structure

    @given(_structures)
    def test_map_identity(self, structure):
        assert nest.map_structure(lambda v: v, structure) == structure

    @given(_structures)
    def test_flatten_deterministic(self, structure):
        assert nest.flatten(structure) == nest.flatten(structure)

    @given(_structures)
    def test_map_preserves_leaf_count(self, structure):
        mapped = nest.map_structure(lambda v: v + 1, structure)
        assert len(nest.flatten(mapped)) == len(nest.flatten(structure))
