"""Unit tests for the dtype system."""

import numpy as np
import pytest

from repro.framework import dtypes


class TestDTypeBasics:
    def test_float32_properties(self):
        assert dtypes.float32.name == "float32"
        assert dtypes.float32.is_floating
        assert dtypes.float32.is_differentiable
        assert not dtypes.float32.is_integer
        assert dtypes.float32.size == 4

    def test_int32_properties(self):
        assert dtypes.int32.is_integer
        assert not dtypes.int32.is_floating
        assert not dtypes.int32.is_differentiable
        assert dtypes.int32.size == 4

    def test_bool_properties(self):
        assert dtypes.bool_.is_bool
        assert not dtypes.bool_.is_differentiable
        assert dtypes.bool_.min is False
        assert dtypes.bool_.max is True

    def test_complex_differentiable(self):
        assert dtypes.complex64.is_complex
        assert dtypes.complex64.is_differentiable

    def test_min_max(self):
        assert dtypes.int8.min == -128
        assert dtypes.int8.max == 127
        assert dtypes.uint8.min == 0
        assert dtypes.float32.max > 1e38

    def test_equality_with_numpy(self):
        assert dtypes.float32 == np.float32
        assert dtypes.int64 == np.int64
        assert dtypes.float32 != np.float64

    def test_interning_and_hash(self):
        assert dtypes.as_dtype("float32") is dtypes.float32
        assert hash(dtypes.float32) == hash(dtypes.as_dtype(np.float32))

    def test_repr(self):
        assert "float32" in repr(dtypes.float32)
        assert str(dtypes.int64) == "int64"


class TestAsDtype:
    def test_from_string(self):
        assert dtypes.as_dtype("int32") is dtypes.int32

    def test_from_python_types(self):
        assert dtypes.as_dtype(float) is dtypes.float32
        assert dtypes.as_dtype(int) is dtypes.int32
        assert dtypes.as_dtype(bool) is dtypes.bool_
        assert dtypes.as_dtype(complex) is dtypes.complex64

    def test_from_numpy_dtype(self):
        assert dtypes.as_dtype(np.dtype("float64")) is dtypes.float64
        assert dtypes.as_dtype(np.uint8) is dtypes.uint8

    def test_passthrough(self):
        assert dtypes.as_dtype(dtypes.float16) is dtypes.float16

    def test_invalid_raises(self):
        with pytest.raises(TypeError):
            dtypes.as_dtype("not_a_dtype")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            dtypes.DType("float32", np.float32)


class TestResultType:
    def test_same_dtype(self):
        assert dtypes.result_type(dtypes.float32, dtypes.float32) is dtypes.float32

    def test_mixed_raises(self):
        with pytest.raises(TypeError):
            dtypes.result_type(dtypes.float32, dtypes.float64)


class TestHandleDtypes:
    def test_resource_not_differentiable(self):
        assert not dtypes.resource.is_differentiable
        assert not dtypes.resource.is_floating

    def test_object_arrays_never_map_to_handles(self):
        with pytest.raises(TypeError):
            dtypes.as_dtype(np.dtype(object))
