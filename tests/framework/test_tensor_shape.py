"""Unit and property tests for the shape algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.framework.errors import InvalidArgumentError
from repro.framework.tensor_shape import TensorShape, broadcast_shapes


class TestConstruction:
    def test_unknown_rank(self):
        s = TensorShape(None)
        assert s.rank is None
        assert not s.is_fully_defined
        assert not bool(s)

    def test_scalar(self):
        s = TensorShape([])
        assert s.rank == 0
        assert s.is_fully_defined
        assert s.num_elements() == 1

    def test_from_int(self):
        assert TensorShape(3).as_list() == [3]

    def test_partial(self):
        s = TensorShape([2, None, 4])
        assert s.rank == 3
        assert not s.is_fully_defined
        assert s.num_elements() is None

    def test_negative_dim_rejected(self):
        with pytest.raises(InvalidArgumentError):
            TensorShape([-2])

    def test_from_tensorshape(self):
        s = TensorShape([1, 2])
        assert TensorShape(s) == s

    def test_indexing_and_slicing(self):
        s = TensorShape([2, 3, 4])
        assert s[0] == 2
        assert s[-1] == 4
        assert s[1:].as_list() == [3, 4]
        assert TensorShape(None)[0] is None

    def test_len_and_iter(self):
        s = TensorShape([5, 6])
        assert len(s) == 2
        assert list(s) == [5, 6]
        with pytest.raises(ValueError):
            len(TensorShape(None))


class TestCompatibility:
    def test_unknown_compatible_with_all(self):
        assert TensorShape(None).is_compatible_with([1, 2, 3])

    def test_partial_compatible(self):
        assert TensorShape([2, None]).is_compatible_with([2, 7])
        assert not TensorShape([2, None]).is_compatible_with([3, 7])

    def test_rank_mismatch_incompatible(self):
        assert not TensorShape([2]).is_compatible_with([2, 2])

    def test_subtype(self):
        assert TensorShape([2, 3]).is_subtype_of([2, None])
        assert TensorShape([2, 3]).is_subtype_of(None)
        assert not TensorShape([2, None]).is_subtype_of([2, 3])


class TestMerge:
    def test_merge_fills_unknowns(self):
        merged = TensorShape([2, None]).merge_with([None, 3])
        assert merged.as_list() == [2, 3]

    def test_merge_conflict_raises(self):
        with pytest.raises(InvalidArgumentError):
            TensorShape([2]).merge_with([3])

    def test_most_general(self):
        g = TensorShape([2, 3]).most_general(TensorShape([2, 4]))
        assert g.as_list() == [2, None]
        assert TensorShape([2]).most_general(TensorShape([2, 2])).rank is None

    def test_concatenate(self):
        assert TensorShape([1]).concatenate([2, 3]).as_list() == [1, 2, 3]
        assert (TensorShape([1]) + [4]).as_list() == [1, 4]


class TestBroadcast:
    def test_simple(self):
        assert broadcast_shapes([2, 1], [1, 3]).as_list() == [2, 3]

    def test_scalar(self):
        assert broadcast_shapes([], [4, 5]).as_list() == [4, 5]

    def test_unknown_dims(self):
        out = broadcast_shapes([None, 3], [1, 3])
        assert out.as_list() == [None, 3]

    def test_incompatible_raises(self):
        with pytest.raises(InvalidArgumentError):
            broadcast_shapes([2], [3])

    def test_unknown_rank(self):
        assert broadcast_shapes(None, [1, 2]).rank is None


@st.composite
def _np_shapes(draw):
    return tuple(draw(st.lists(st.integers(1, 4), min_size=0, max_size=4)))


class TestBroadcastProperties:
    @given(_np_shapes(), _np_shapes())
    def test_matches_numpy(self, a, b):
        """Our broadcasting agrees with NumPy on fully-defined shapes."""
        try:
            expected = np.broadcast_shapes(a, b)
        except ValueError:
            with pytest.raises(InvalidArgumentError):
                broadcast_shapes(a, b)
            return
        assert broadcast_shapes(a, b).as_tuple() == tuple(expected)

    @given(_np_shapes(), _np_shapes())
    def test_commutative(self, a, b):
        try:
            left = broadcast_shapes(a, b)
        except InvalidArgumentError:
            with pytest.raises(InvalidArgumentError):
                broadcast_shapes(b, a)
            return
        assert left == broadcast_shapes(b, a)

    @given(_np_shapes())
    def test_merge_identity(self, a):
        s = TensorShape(a)
        assert s.merge_with(s) == s
        assert s.is_subtype_of(s.most_general(s))

    @given(_np_shapes(), _np_shapes())
    def test_most_general_is_upper_bound(self, a, b):
        sa, sb = TensorShape(a), TensorShape(b)
        g = sa.most_general(sb)
        assert sa.is_subtype_of(g)
        assert sb.is_subtype_of(g)

    @given(_np_shapes())
    def test_hash_consistency(self, a):
        assert hash(TensorShape(a)) == hash(TensorShape(list(a)))
