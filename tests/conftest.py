"""Shared fixtures: deterministic seeds and numeric-gradient helpers."""

from __future__ import annotations

import numpy as np
import pytest

import repro


@pytest.fixture(autouse=True)
def _seed_everything():
    repro.set_random_seed(1234)
    np.random.seed(1234)
    yield
    repro.set_random_seed(None)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(f(x.copy()))
        flat[i] = orig - eps
        lo = float(f(x.copy()))
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


@pytest.fixture
def grad_checker():
    """Compare tape gradients against central differences."""

    def check(op_fn, x_np, rtol=1e-2, atol=1e-3):
        x_np = np.asarray(x_np, dtype=np.float64)

        def scalar_fn(arr):
            t = repro.constant(arr.astype(np.float64), dtype=repro.float64)
            return repro.reduce_sum(op_fn(t)).numpy()

        x = repro.constant(x_np, dtype=repro.float64)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.reduce_sum(op_fn(x))
        analytic = tape.gradient(y, x).numpy()
        numeric = numeric_gradient(scalar_fn, x_np)
        np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)

    return check
