"""Shared fixtures: deterministic seeds, context-knob isolation, and
numeric-gradient helpers (re-exported from :mod:`tests.harness.grad_check`)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.runtime import dispatch, profiler
from repro.runtime.context import Context, context

# Kept importable from here for existing tests; the implementation
# lives in the harness package now.
from tests.harness.grad_check import numeric_gradient  # noqa: F401


@pytest.fixture(autouse=True)
def _seed_everything():
    repro.set_random_seed(1234)
    np.random.seed(1234)
    yield
    repro.set_random_seed(None)


@pytest.fixture(autouse=True)
def _reset_context_knobs():
    """Restore every process-global execution knob after each test.

    Tests flip ``executor_mode``, deadlines, placement policy, and
    register dispatch interceptors; a test that fails (or just forgets
    to clean up) must not leak that state into whichever test happens
    to run next.
    """
    interceptors_before = tuple(dispatch.core._interceptors)
    yield
    # Lazy traces: flush any pending segment, then *discard* the
    # deferred error — it belongs to the test that just finished.
    import sys

    lazy_mod = sys.modules.get("repro.runtime.lazy")
    if lazy_mod is not None:
        lazy_mod.flush_all_pending()
        lazy_mod.take_deferred()
    # Async streams: wait for stragglers, then likewise discard.
    stream_mod = sys.modules.get("repro.runtime.stream")
    if stream_mod is not None:
        stream_mod.drain_all_streams()
        with stream_mod._streams_lock:
            streams = list(stream_mod._streams)
        for s in streams:
            s.take_deferred()
        with stream_mod._remote_lock:
            stream_mod._remote_handles.clear()
    # Execution knobs back to their environment-derived defaults.
    context._executor_mode = Context._executor_mode_from_env()
    context.soft_device_placement = True
    context.inter_op_parallelism_threads = Context._threads_from_env()
    context.rpc_deadline_ms = Context._rpc_deadline_from_env()
    context._relax_shapes = Context._relax_shapes_from_env()
    context._relax_retraces = Context._relax_retraces_from_env()
    context._trace_cache_size = Context._trace_cache_size_from_env()
    context._graph_fusion = Context._graph_fusion_from_env()
    context._autograph = Context._autograph_from_env()
    context._recompute = Context._recompute_from_env()
    repro.tensor._specialization_warned_sites.clear()
    # RetraceWarning state is rate-limited per Function; a warning
    # consumed (or suppressed) by one test must not change whether the
    # next test sees one.
    from repro.core.function import reset_retrace_warning_state

    reset_retrace_warning_state()
    context._serving_max_batch = Context._serving_max_batch_from_env()
    context._serving_queue_depth = Context._serving_queue_depth_from_env()
    context._serving_timeout_ms = Context._serving_timeout_from_env()
    # Kernel backend: direct attribute reset — array_backend() re-resolves
    # lazily by name, so no object to restore.
    context._kernel_backend = Context._kernel_backend_from_env()
    # Process devices: use the property setter so a test that turned
    # workers on has them shut down (idempotent when already off).
    env_proc = Context._process_devices_from_env()
    if context._process_devices != env_proc:
        context.process_devices = env_proc
    # Interceptors registered during the test and never unregistered.
    for it in tuple(dispatch.core._interceptors):
        if it not in interceptors_before:
            dispatch.core.unregister_interceptor(it)
    # A profiler left active (a failed test inside `with Profile()`).
    if profiler.active is not None:
        with profiler._lock:
            profiler.active = None


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def grad_checker():
    """Compare tape gradients against central differences."""
    from tests.harness.grad_check import check_gradient

    def check(op_fn, x_np, rtol=1e-2, atol=1e-3):
        check_gradient(op_fn, x_np, rtol=rtol, atol=atol)

    return check
