"""Higher-order gradients through autograph-lowered control flow.

Satellite of ISSUE 10: tape-over-tape (and forward-over-reverse)
differentiation where the inner function is staged and its Python
``if``/``while`` was rewritten onto ``Cond``/``While`` at trace time.
The analytic references are chosen so second derivatives are nontrivial
(cubics) and branch-dependent.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro


def _second_order(fn, x):
    """d²/dx² of sum(fn(x)) via tape-over-tape, as an ndarray."""
    with repro.GradientTape() as outer:
        outer.watch(x)
        with repro.GradientTape() as inner:
            inner.watch(x)
            loss = repro.reduce_sum(fn(x))
        (g,) = inner.gradient(loss, [x])
        total = repro.reduce_sum(g)
    (h,) = outer.gradient(total, [x])
    assert h is not None, "second-order gradient disconnected"
    return np.asarray(h.numpy())


class TestSecondOrderThroughAutographCond:
    def _body(self, x):
        if repro.reduce_sum(x) > 0.0:
            y = x * x * x
        else:
            y = -(x * x)
        return y

    def test_positive_branch(self):
        x_np = np.array([1.0, 2.0, 0.5])
        staged = repro.function(self._body, autograph=True)
        x = repro.constant(x_np, dtype=repro.float64)
        got = _second_order(staged, x)
        np.testing.assert_allclose(got, 6 * x_np, rtol=1e-12)

    def test_negative_branch(self):
        x_np = np.array([-1.0, -2.0, -0.5])
        staged = repro.function(self._body, autograph=True)
        x = repro.constant(x_np, dtype=repro.float64)
        got = _second_order(staged, x)
        np.testing.assert_allclose(got, np.full_like(x_np, -2.0), rtol=1e-12)

    def test_matches_eager_tape_over_tape(self):
        x_np = np.array([0.3, 0.9])
        staged = repro.function(self._body, autograph=True)
        x = repro.constant(x_np, dtype=repro.float64)
        np.testing.assert_allclose(
            _second_order(staged, x), _second_order(self._body, x), rtol=1e-12
        )


class TestSecondOrderThroughAutographWhile:
    def _cube_by_loop(self, x):
        i = repro.constant(0)
        acc = repro.ones_like(x)
        while i < 3:
            acc = acc * x
            i = i + 1
        return acc

    def test_lowered_while_second_order(self):
        x_np = np.array([1.5, -0.5, 2.0])
        staged = repro.function(self._cube_by_loop, autograph=True)
        x = repro.constant(x_np, dtype=repro.float64)
        got = _second_order(staged, x)
        np.testing.assert_allclose(got, 6 * x_np, rtol=1e-12)

    def test_matches_eager(self):
        x_np = np.array([0.7, 1.2])
        staged = repro.function(self._cube_by_loop, autograph=True)
        x = repro.constant(x_np, dtype=repro.float64)
        np.testing.assert_allclose(
            _second_order(staged, x),
            _second_order(self._cube_by_loop, x),
            rtol=1e-12,
        )


class TestForwardOverReverseThroughStaged:
    def test_hvp_through_staged_cond(self):
        def body(x):
            if repro.reduce_sum(x) > 0.0:
                return repro.reduce_sum(x * x * x)
            return repro.reduce_sum(x * x)

        staged = repro.function(body, autograph=True)
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        v = repro.constant([1.0, -1.0], dtype=repro.float64)
        (got,) = repro.hvp(staged, [x], [v])
        np.testing.assert_allclose(
            got.numpy(), 6 * x.numpy() * v.numpy(), rtol=1e-12
        )

    def test_jvp_reverse_consistency_on_lowered_loop(self):
        def loop(x):
            i = repro.constant(0)
            y = x
            while i < 4:
                y = repro.tanh(y * 1.3)
                i = i + 1
            return y

        staged = repro.function(loop, autograph=True)
        x = repro.constant([0.2, -0.6, 1.1], dtype=repro.float64)
        v = repro.constant([1.0, 0.5, -2.0], dtype=repro.float64)
        _, forward = repro.jvp(staged, [x], [v])
        # Reverse reference: the loop output is elementwise in x, so
        # J v = grad(sum(y)) * v elementwise only if J is diagonal —
        # which it is here.  Use it as the cross-check.
        with repro.GradientTape() as tape:
            tape.watch(x)
            loss = repro.reduce_sum(staged(x))
        (g,) = tape.gradient(loss, [x])
        np.testing.assert_allclose(
            forward.numpy(), g.numpy() * v.numpy(), rtol=1e-10
        )
