"""Tracing from TensorSpecs: symbolic concrete functions and export.

Regression suite for the polymorphic-export bug: ``save()`` with a
``TensorSpec([None, d])`` example must produce an artifact whose graph
keeps the symbolic leading dimension, so the loaded function serves any
batch size — the contract the serving layer's coalescer relies on.
"""

import numpy as np
import pytest

import repro
from repro.core import saved_function
from repro.framework.errors import InvalidArgumentError
from repro.tensor import TensorSpec


class TestGetConcreteFromSpec:
    def test_spec_traces_symbolically(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(x, axis=1)

        concrete = f.get_concrete_function(
            TensorSpec([None, 4], repro.float32)
        )
        for n in (1, 3, 8):
            x = repro.constant(np.ones((n, 4), dtype=np.float32))
            np.testing.assert_allclose(
                concrete(x).numpy(), np.full(n, 4.0, dtype=np.float32)
            )

    def test_spec_trace_serves_later_concrete_calls(self):
        # The symbolic trace is installed in the relaxed cache level:
        # plain calls at any batch size reuse it instead of retracing.
        @repro.function
        def f(x):
            return x * 2.0

        f.get_concrete_function(TensorSpec([None, 3], repro.float32))
        traces_before = f.cache_stats()["traces"]
        for n in (2, 5, 9):
            x = repro.constant(np.ones((n, 3), dtype=np.float32))
            np.testing.assert_allclose(
                f(x).numpy(), np.full((n, 3), 2.0, dtype=np.float32)
            )
        assert f.cache_stats()["traces"] == traces_before

    def test_fully_defined_spec_caches_exact(self):
        @repro.function
        def f(x):
            return x + 1.0

        concrete = f.get_concrete_function(TensorSpec([2, 2], repro.float32))
        x = repro.constant(np.zeros((2, 2), dtype=np.float32))
        np.testing.assert_allclose(concrete(x).numpy(), np.ones((2, 2)))
        # The direct call reuses the spec-traced concrete function.
        traces_before = f.cache_stats()["traces"]
        f(x)
        assert f.cache_stats()["traces"] == traces_before

    def test_calling_with_spec_rejected(self):
        @repro.function
        def f(x):
            return x + 1.0

        with pytest.raises(InvalidArgumentError):
            f(TensorSpec([None, 2], repro.float32))

    def test_spec_with_input_signature_rejected(self):
        @repro.function(
            input_signature=[TensorSpec([None, 2], repro.float32)]
        )
        def f(x):
            return x + 1.0

        with pytest.raises(InvalidArgumentError):
            f.get_concrete_function(TensorSpec([None, 2], repro.float32))


class TestPolymorphicExport:
    def test_save_with_spec_roundtrips_any_batch(self, tmp_path):
        w = repro.Variable(
            np.random.default_rng(3)
            .standard_normal((4, 2))
            .astype(np.float32)
        )

        @repro.function
        def f(x):
            return repro.matmul(x, w)

        path = saved_function.save(
            f, str(tmp_path / "m"), TensorSpec([None, 4], repro.float32)
        )
        loaded = saved_function.load(path)
        for n in (1, 3, 8):
            x_np = np.random.default_rng(n).standard_normal((n, 4)).astype(
                np.float32
            )
            np.testing.assert_allclose(
                loaded(repro.constant(x_np)).numpy(),
                x_np @ w.numpy(),
                rtol=1e-5,
            )

    def test_loaded_input_spec_keeps_symbolic_dim(self, tmp_path):
        @repro.function
        def f(x):
            return x * 3.0

        path = saved_function.save(
            f, str(tmp_path / "m"), TensorSpec([None, 2], repro.float32)
        )
        loaded = saved_function.load(path)
        spec = loaded.input_specs[0]
        assert spec.shape.as_tuple()[0] is None

    def test_save_with_concrete_example_stays_fixed(self, tmp_path):
        # The old behavior remains for concrete examples: the exported
        # graph is specialized to the example's shape.
        @repro.function
        def f(x):
            return x * 3.0

        x = repro.constant(np.ones((2, 2), dtype=np.float32))
        path = saved_function.save(f, str(tmp_path / "m"), x)
        loaded = saved_function.load(path)
        assert loaded.input_specs[0].shape.as_tuple() == (2, 2)

    def test_polymorphic_roundtrip_with_structured_output(self, tmp_path):
        @repro.function
        def f(x):
            return {"sum": repro.reduce_sum(x, axis=1), "twice": x * 2.0}

        path = saved_function.save(
            f, str(tmp_path / "m"), TensorSpec([None, 3], repro.float32)
        )
        loaded = saved_function.load(path)
        x_np = np.arange(6, dtype=np.float32).reshape(2, 3)
        out = loaded(repro.constant(x_np))
        np.testing.assert_allclose(out["sum"].numpy(), x_np.sum(axis=1))
        np.testing.assert_allclose(out["twice"].numpy(), x_np * 2.0)
