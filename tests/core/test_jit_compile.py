"""function(jit_compile=True): XLA-sim lowering of traces (paper §4.4)."""

import numpy as np
import pytest

import repro
import repro.xla  # install the TPU bridge
from repro.runtime.context import context


class TestJitParity:
    def test_matches_graph_execution(self):
        def model(x):
            return repro.reduce_sum(repro.tanh(repro.matmul(x, x) * 0.5) + 1.0)

        plain = repro.function(model)
        jitted = repro.function(model, jit_compile=True)
        x = repro.constant(np.random.randn(8, 8).astype(np.float32))
        assert float(jitted(x)) == pytest.approx(float(plain(x)), rel=1e-5)

    def test_multi_output(self):
        @repro.function(jit_compile=True)
        def f(x):
            return x * 2.0, repro.reduce_sum(x)

        a, b = f(repro.constant([1.0, 2.0]))
        np.testing.assert_allclose(a.numpy(), [2.0, 4.0])
        assert float(b) == 3.0

    def test_variables_read_and_written(self):
        v = repro.Variable([1.0, 2.0])

        @repro.function(jit_compile=True)
        def bump(x):
            v.assign_add(x)
            return v.read_value()

        out = bump(repro.constant([1.0, 1.0]))
        np.testing.assert_allclose(out.numpy(), [2.0, 3.0])
        np.testing.assert_allclose(v.numpy(), [2.0, 3.0])

    def test_compiled_once_then_cached(self):
        @repro.function(jit_compile=True)
        def f(x):
            return repro.exp(x)

        x = repro.constant([0.5])
        f(x)
        concrete = f.get_concrete_function(x)
        exe = concrete._compiled
        assert exe is not None and exe is not False
        f(x)
        assert concrete._compiled is exe

    def test_py_func_falls_back_gracefully(self):
        @repro.function(jit_compile=True)
        def f(x):
            return repro.py_func(lambda v: v.numpy() * 2, [x], Tout=repro.float32)

        out = f(repro.constant([2.0]))
        np.testing.assert_allclose(out.numpy(), [4.0])
        concrete = f.get_concrete_function(repro.constant([2.0]))
        assert concrete._compiled is False  # remembered as uncompilable

    def test_gradients_still_flow(self):
        v = repro.Variable(3.0)

        @repro.function(jit_compile=True)
        def f(x):
            return x * v * v

        with repro.GradientTape() as tape:
            y = f(repro.constant(2.0))
        assert float(tape.gradient(y, v)) == pytest.approx(12.0)


class TestJitOnDevices:
    def test_single_launch_on_tpu(self):
        @repro.function(jit_compile=True)
        def f(x):
            return repro.reduce_sum(repro.tanh(x) * x)

        device = context.get_device("/tpu:0")
        x = repro.constant(np.random.randn(16).astype(np.float32))
        with repro.device("/tpu:0"):
            f(x)
            device.reset_stats()
            f(x)
        assert device.simulated_time_us >= device.cost_model.launch_overhead_us
        assert device.simulated_time_us < 2 * device.cost_model.launch_overhead_us

    def test_fusion_reduces_dispatches(self):
        def chain(x):
            y = x
            for _ in range(10):
                y = repro.tanh(y * 1.01)
            return y

        jitted = repro.function(chain, jit_compile=True)
        plain = repro.function(chain)
        x = repro.constant(np.random.randn(32).astype(np.float32))
        jitted(x)
        exe = jitted.get_concrete_function(x)._compiled
        # 20 elementwise ops collapse into one fused dispatch.
        assert exe.num_launch_instructions < 5
        concrete = plain.get_concrete_function(x)
        assert concrete.num_nodes > exe.num_launch_instructions
