"""Variable semantics: unique storage, reads/writes, conversion."""

import numpy as np
import pytest

import repro
from repro.framework import dtypes
from repro.framework.errors import InvalidArgumentError


class TestCreation:
    def test_from_python_value(self):
        v = repro.Variable(3.0)
        assert v.dtype is repro.float32
        assert v.shape.rank == 0
        assert float(v) == 3.0

    def test_from_array(self):
        v = repro.Variable(np.arange(4, dtype=np.float64))
        assert v.dtype is repro.float64
        assert v.shape.as_list() == [4]

    def test_from_callable_initializer(self):
        v = repro.Variable(lambda: repro.ones([2, 2]))
        np.testing.assert_array_equal(v.numpy(), np.ones((2, 2)))

    def test_trainable_flag(self):
        assert repro.Variable(1.0).trainable
        assert not repro.Variable(1.0, trainable=False).trainable

    def test_unique_storage(self):
        a = repro.Variable([1.0])
        b = repro.Variable([1.0])
        a.assign([5.0])
        assert b.numpy()[0] == 1.0

    def test_handle_is_resource(self):
        v = repro.Variable(1.0)
        assert v.handle.dtype is dtypes.resource
        assert v.handle.resource_value() is v

    def test_device_scope_placement(self):
        with repro.device("/gpu:0"):
            v = repro.Variable(1.0)
        assert "GPU:0" in v.device


class TestReadsWrites:
    def test_read_value_snapshot(self):
        v = repro.Variable([1.0, 2.0])
        snap = v.read_value()
        v.assign([9.0, 9.0])
        np.testing.assert_array_equal(snap.numpy(), [1.0, 2.0])

    def test_assign_add_sub(self):
        v = repro.Variable(10.0)
        v.assign_add(5.0)
        assert float(v) == 15.0
        v.assign_sub(3.0)
        assert float(v) == 12.0

    def test_assign_returns_self_eagerly(self):
        v = repro.Variable(1.0)
        assert v.assign(2.0) is v

    def test_assign_accepts_tensor(self):
        v = repro.Variable([0.0])
        v.assign(repro.constant([7.0]))
        assert v.numpy()[0] == 7.0

    def test_assign_dtype_mismatch_raises(self):
        v = repro.Variable(1.0)
        with pytest.raises(InvalidArgumentError):
            v.assign(repro.constant(1, dtype=repro.int32))


class TestConversion:
    def test_ops_accept_variables(self):
        v = repro.Variable([1.0, 2.0])
        np.testing.assert_allclose(repro.reduce_sum(v).numpy(), 3.0)

    def test_arithmetic_sugar(self):
        v = repro.Variable(4.0)
        assert float(v + 1.0) == 5.0
        assert float(1.0 + v) == 5.0
        assert float(v * 2.0) == 8.0
        assert float(v / 2.0) == 2.0
        assert float(-v) == -4.0
        assert float(v ** 2.0) == 16.0

    def test_matmul_sugar(self):
        v = repro.Variable(np.eye(2, dtype=np.float32))
        x = repro.constant([[1.0], [2.0]])
        np.testing.assert_allclose((v @ x).numpy(), [[1.0], [2.0]])

    def test_indexing(self):
        v = repro.Variable([1.0, 2.0, 3.0])
        assert float(v[1]) == 2.0

    def test_convert_to_tensor_reads(self):
        v = repro.Variable(2.5)
        t = repro.convert_to_tensor(v)
        assert isinstance(t, repro.Tensor)
        assert float(t) == 2.5


class TestGradientsThroughVariables:
    def test_gradient_wrt_variable(self):
        v = repro.Variable([1.0, 2.0])
        with repro.GradientTape() as tape:
            y = repro.reduce_sum(v * v)
        np.testing.assert_allclose(tape.gradient(y, v).numpy(), [2.0, 4.0])

    def test_assign_breaks_gradient(self):
        v = repro.Variable(1.0)
        with repro.GradientTape() as tape:
            y = v * 2.0
            v.assign(5.0)  # write after read must not affect the gradient
        assert float(tape.gradient(y, v)) == 2.0

    def test_multiple_reads_accumulate(self):
        v = repro.Variable(3.0)
        with repro.GradientTape() as tape:
            y = v * 1.0 + v * 2.0
        assert float(tape.gradient(y, v)) == 3.0
