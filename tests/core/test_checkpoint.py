"""Graph-based state matching (paper §4.3, Listing 3 / Figure 1)."""

import os

import numpy as np
import pytest

import repro
from repro import nn
from repro.core.checkpoint import Checkpoint, NumpyState, Trackable
from repro.framework.errors import FailedPreconditionError
from repro.ops import nn_ops


class Net(nn.Model):
    """The model from paper Listing 3: a variable plus a Dense layer."""

    def __init__(self):
        super().__init__()
        self.v = repro.Variable(1.0)
        self.out = nn.Dense(1)

    def call(self, x, training: bool = False):
        return self.out(nn_ops.softplus(x * self.v))


class TestListing3:
    def test_dependency_graph_edges(self):
        """Figure 1: edges v, out; out has kernel and bias."""
        net = Net()
        net(repro.constant([[1.0]]))
        names = [name for name, _ in net._checkpoint_dependencies()]
        assert "v" in names and "out" in names
        out_deps = [name for name, _ in net.out._checkpoint_dependencies()]
        assert "kernel" in out_deps and "bias" in out_deps

    def test_save_restore_roundtrip(self, tmp_path):
        net = Net()
        net(repro.constant([[1.0]]))
        net.v.assign(7.5)
        path = Checkpoint(model=net).save(str(tmp_path / "net"))

        other = Net()
        other(repro.constant([[1.0]]))  # build variables
        status = Checkpoint(model=other).restore(path)
        status.assert_consumed()
        assert float(other.v) == 7.5
        np.testing.assert_array_equal(other.out.kernel.numpy(), net.out.kernel.numpy())

    def test_deferred_restore_on_first_call(self, tmp_path):
        """Restoring before layers build: values applied on creation."""
        net = Net()
        net(repro.constant([[1.0]]))
        net.out.kernel.assign([[42.0]])
        path = Checkpoint(model=net).save(str(tmp_path / "net"))

        fresh = Net()  # out layer not yet built: kernel doesn't exist
        status = Checkpoint(model=fresh).restore(path)
        assert float(fresh.v) == float(net.v)  # v existed; restored now
        fresh(repro.constant([[1.0]]))  # builds out.kernel -> deferred apply
        status.assert_consumed()
        assert float(fresh.out.kernel.numpy()[0, 0]) == 42.0

    def test_matching_is_local(self, tmp_path):
        """The same subtree restores regardless of surrounding structure."""
        net = Net()
        net(repro.constant([[1.0]]))
        net.v.assign(3.25)
        path = Checkpoint(model=net).save(str(tmp_path / "net"))

        class Wrapper(Trackable):
            def __init__(self):
                self.model = Net()

        w = Wrapper()
        w.model(repro.constant([[1.0]]))
        # Restore with the *same* edge name at the root.
        Checkpoint(model=w.model).restore(path).assert_consumed()
        assert float(w.model.v) == 3.25


class TestContainers:
    def test_list_edges_are_numbered(self, tmp_path):
        class Holder(Trackable):
            def __init__(self):
                self.items = [repro.Variable(1.0), repro.Variable(2.0)]

        h = Holder()
        h.items[1].assign(9.0)
        path = Checkpoint(root=h).save(str(tmp_path / "h"))
        fresh = Holder()
        Checkpoint(root=fresh).restore(path).assert_consumed()
        assert float(fresh.items[1]) == 9.0

    def test_dict_edges_by_key(self, tmp_path):
        class Holder(Trackable):
            def __init__(self):
                self.table = {"a": repro.Variable(1.0), "b": repro.Variable(2.0)}

        h = Holder()
        h.table["b"].assign(5.0)
        path = Checkpoint(root=h).save(str(tmp_path / "h"))
        fresh = Holder()
        Checkpoint(root=fresh).restore(path).assert_consumed()
        assert float(fresh.table["b"]) == 5.0

    def test_shared_objects_saved_once(self, tmp_path):
        shared = repro.Variable([1.0, 2.0])

        class Holder(Trackable):
            def __init__(self):
                self.a = shared
                self.b = shared

        path = Checkpoint(root=Holder()).save(str(tmp_path / "s"))
        import json
        import numpy as np_mod

        with np_mod.load(path) as archive:
            graph = json.loads(bytes(archive["__object_graph__"].tobytes()).decode())
        value_nodes = [n for n in graph["nodes"] if n["value_keys"]]
        assert len(value_nodes) == 1  # one storage for the shared variable


class TestMiscState:
    def test_numpy_state(self, tmp_path):
        """Paper §4.3: NumPy arrays can use graph-based matching."""
        state = NumpyState()
        state.table = np.arange(4.0)
        path = Checkpoint(stats=state).save(str(tmp_path / "np"))
        fresh = NumpyState()
        fresh.table = np.zeros(4)
        Checkpoint(stats=fresh).restore(path).assert_consumed()
        np.testing.assert_array_equal(fresh.table, np.arange(4.0))

    def test_iterator_position_restored(self, tmp_path):
        """Paper §4.3: an iterator's position in a dataset is serialized."""
        ds = nn.Dataset([np.arange(10)], batch_size=2)
        it = ds.make_iterator()
        it.get_next()
        it.get_next()
        path = Checkpoint(iterator=it).save(str(tmp_path / "it"))

        it2 = ds.make_iterator()
        Checkpoint(iterator=it2).restore(path).assert_consumed()
        (batch,) = it2.get_next()
        np.testing.assert_array_equal(batch.numpy(), [4, 5])

    def test_optimizer_slots_roundtrip(self, tmp_path):
        v = repro.Variable([1.0, 2.0])
        opt = nn.SGD(0.1, momentum=0.9)
        with repro.GradientTape() as tape:
            loss = repro.reduce_sum(v * v)
        opt.apply_gradients(zip([tape.gradient(loss, v)], [v]))
        path = Checkpoint(v=v, opt=opt).save(str(tmp_path / "opt"))

        v2 = repro.Variable([0.0, 0.0])
        opt2 = nn.SGD(0.1, momentum=0.9)
        with repro.GradientTape() as tape:
            loss = repro.reduce_sum(v2 * v2)
        opt2.apply_gradients(zip([tape.gradient(loss, v2)], [v2]))
        Checkpoint(v=v2, opt=opt2).restore(path).assert_consumed()
        np.testing.assert_allclose(v2.numpy(), v.numpy())


class TestFailureModes:
    def test_unconsumed_values_detected(self, tmp_path):
        class Big(Trackable):
            def __init__(self):
                self.a = repro.Variable(1.0)
                self.b = repro.Variable(2.0)

        class Small(Trackable):
            def __init__(self):
                self.a = repro.Variable(0.0)

        path = Checkpoint(root=Big()).save(str(tmp_path / "big"))
        status = Checkpoint(root=Small()).restore(path)
        with pytest.raises(FailedPreconditionError):
            status.assert_consumed()

    def test_extra_objects_are_fine(self, tmp_path):
        class Small(Trackable):
            def __init__(self):
                self.a = repro.Variable(3.0)

        class Big(Trackable):
            def __init__(self):
                self.a = repro.Variable(0.0)
                self.extra = repro.Variable(99.0)

        path = Checkpoint(root=Small()).save(str(tmp_path / "small"))
        big = Big()
        Checkpoint(root=big).restore(path).assert_consumed()
        assert float(big.a) == 3.0
        assert float(big.extra) == 99.0  # untouched

    def test_save_appends_extension(self, tmp_path):
        path = Checkpoint(v=repro.Variable(1.0)).save(str(tmp_path / "x"))
        assert path.endswith(".npz")
        assert os.path.exists(path)
