"""Forward-mode AD: ForwardAccumulator, jvp/hvp/jacobian (ISSUE 10).

Forward mode reuses the *reverse-mode* gradient registry through the
double-VJP construction, so these tests are simultaneously a second
transposition check on every VJP rule they touch.  The composition
tests (forward-over-reverse vs reverse-over-reverse vs central
differences) pin the recorder-protocol layering: the accumulator pauses
only itself while computing tangents, the tape pauses only itself
while sweeping, so each sees the other's ops.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.forwardprop import ForwardAccumulator
from repro.ops import nn_ops
from tests.harness.grad_check import check_hvp, check_jvp


class TestForwardAccumulator:
    def test_elementwise_jvp(self):
        x = repro.constant([1.0, 2.0, 3.0], dtype=repro.float64)
        v = repro.constant([1.0, 0.5, -1.0], dtype=repro.float64)
        with ForwardAccumulator([x], [v]) as acc:
            y = x * x
        np.testing.assert_allclose(acc.jvp(y).numpy(), 2 * x.numpy() * v.numpy())

    def test_unwatched_tensor_has_no_tangent(self):
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        other = repro.constant([5.0, 6.0], dtype=repro.float64)
        with ForwardAccumulator([x], [repro.ones_like(x)]) as acc:
            y = other * 3.0
        assert acc.jvp(y) is None

    def test_multi_input_jvp_adds_contributions(self):
        a = repro.constant(2.0, dtype=repro.float64)
        b = repro.constant(3.0, dtype=repro.float64)
        va = repro.constant(1.0, dtype=repro.float64)
        vb = repro.constant(10.0, dtype=repro.float64)
        with ForwardAccumulator([a, b], [va, vb]) as acc:
            y = a * b
        # d(ab) = b*da + a*db = 3*1 + 2*10
        np.testing.assert_allclose(float(acc.jvp(y).numpy()), 23.0)

    def test_variable_jvp_through_read(self):
        w = repro.Variable([1.0, -2.0], dtype=repro.float64)
        v = repro.constant([0.5, 2.0], dtype=repro.float64)
        with ForwardAccumulator([w], [v]) as acc:
            y = w * w
        np.testing.assert_allclose(
            acc.jvp(y).numpy(), 2 * w.numpy() * v.numpy()
        )

    def test_broadcast_tangent_packs_to_primal_shape(self):
        x = repro.constant([[1.0, 2.0], [3.0, 4.0]], dtype=repro.float64)
        with ForwardAccumulator([x], [1.0]) as acc:
            y = repro.reduce_sum(x * x)
        # Tangent broadcast to ones: d/deps sum((x+eps)^2) = sum(2x)
        np.testing.assert_allclose(float(acc.jvp(y).numpy()), 20.0)

    def test_stop_gradient_blocks_tangent(self):
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        with ForwardAccumulator([x], [repro.ones_like(x)]) as acc:
            y = repro.stop_gradient(x) * 2.0
        assert acc.jvp(y) is None

    def test_nondifferentiable_outputs_are_skipped(self):
        x = repro.constant([1.0, 3.0, 2.0], dtype=repro.float64)
        with ForwardAccumulator([x], [repro.ones_like(x)]) as acc:
            idx = repro.argmax(x)  # integer output: no tangent, no error
            y = x * 2.0
        assert acc.jvp(idx) is None
        np.testing.assert_allclose(acc.jvp(y).numpy(), [2.0, 2.0, 2.0])


class TestJvpFunction:
    def test_jvp_matches_central_differences(self):
        check_jvp(lambda x: repro.tanh(x * 1.5 + 0.5), np.linspace(-1, 1, 7))

    def test_jvp_matmul(self):
        rng = np.random.default_rng(3)
        w = repro.constant(rng.normal(size=(4, 2)), dtype=repro.float64)
        check_jvp(lambda x: repro.matmul(x, w), rng.normal(size=(3, 4)))

    def test_jvp_softmax(self):
        check_jvp(
            lambda x: nn_ops.softmax(x),
            np.random.default_rng(5).normal(size=(2, 5)),
        )

    def test_jvp_through_staged_function(self):
        @repro.function
        def seg(x):
            return repro.sin(x) * x

        x = repro.constant([0.3, -0.7, 1.2], dtype=repro.float64)
        v = repro.constant([1.0, 2.0, -0.5], dtype=repro.float64)
        _, t_staged = repro.jvp(seg, [x], [v])
        _, t_eager = repro.jvp(lambda x: repro.sin(x) * x, [x], [v])
        np.testing.assert_allclose(t_staged.numpy(), t_eager.numpy())

    def test_jvp_all_modes_agree(self):
        ref = None
        for mode in ("sync", "async", "lazy"):
            with repro.execution_mode(mode):
                x = repro.constant([0.2, 0.4, 0.8], dtype=repro.float64)
                v = repro.constant([1.0, -1.0, 0.5], dtype=repro.float64)
                _, t = repro.jvp(lambda x: repro.exp(x) * x, [x], [v])
                out = t.numpy()
            if ref is None:
                ref = out
            else:
                np.testing.assert_allclose(out, ref, rtol=1e-12)


class TestHvp:
    def test_hvp_cubic(self):
        x = repro.constant([1.0, 2.0, 3.0], dtype=repro.float64)
        v = repro.constant([1.0, 1.0, 1.0], dtype=repro.float64)
        (h,) = repro.hvp(lambda x: repro.reduce_sum(x * x * x), [x], [v])
        np.testing.assert_allclose(h.numpy(), 6 * x.numpy())

    def test_hvp_cross_checked_three_ways(self):
        check_hvp(
            lambda x: repro.tanh(x) * x, np.linspace(-1.2, 1.2, 6)
        )

    def test_hvp_logsumexp(self):
        check_hvp(
            lambda x: repro.reduce_logsumexp(x),
            np.random.default_rng(9).normal(size=(5,)),
        )

    def test_hvp_of_variable_loss(self):
        w = repro.Variable([0.5, -0.5], dtype=repro.float64)
        v = repro.constant([1.0, 2.0], dtype=repro.float64)
        (h,) = repro.hvp(
            lambda w: repro.reduce_sum(repro.square(w) * w), [w], [v]
        )
        np.testing.assert_allclose(h.numpy(), 6 * w.numpy() * v.numpy())


class TestJacobian:
    def test_jacobian_diagonal(self):
        x = repro.constant([0.1, 0.2, 0.3], dtype=repro.float64)
        jac = repro.jacobian(repro.sin, x)
        np.testing.assert_allclose(jac.numpy(), np.diag(np.cos(x.numpy())))

    def test_jacobian_linear_map_recovers_matrix(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 4))
        at = repro.constant(a, dtype=repro.float64)
        x = repro.constant(rng.normal(size=(4,)), dtype=repro.float64)
        jac = repro.jacobian(
            lambda x: repro.reshape(
                repro.matmul(at, repro.reshape(x, (4, 1))), (3,)
            ),
            x,
        )
        np.testing.assert_allclose(jac.numpy(), a, rtol=1e-12)

    def test_jacobian_matrix_input_shape(self):
        x = repro.constant(
            np.random.default_rng(2).normal(size=(2, 3)), dtype=repro.float64
        )
        jac = repro.jacobian(lambda x: repro.square(x), x)
        assert jac.shape.as_tuple() == (2, 3, 2, 3)
        dense = jac.numpy().reshape(6, 6)
        np.testing.assert_allclose(
            dense, np.diag(2 * x.numpy().reshape(-1)), rtol=1e-12
        )


class TestCorpusConsistency:
    """jvp/hvp over representative corpus programs (satellite 3)."""

    @pytest.mark.parametrize(
        "name",
        [
            "chain_long",
            "polynomial",
            "sigmoid_tanh_mix",
            "normalize_rows",
            "logsumexp_margin",
            "ag_if_scale",
            "ag_while_bound",
            "ag_for_scan",
        ],
    )
    def test_jvp_and_hvp_on_program(self, name):
        from tests.harness.parity import CORPUS

        program = next(p for p in CORPUS if p.name == name)
        arrays = program.make_inputs(np.random.default_rng(0))
        x = np.asarray(arrays[0], dtype=np.float64)
        rest = [
            repro.constant(np.asarray(a, dtype=np.float64), dtype=repro.float64)
            for a in arrays[1:]
        ]
        check_jvp(lambda t: program.fn(t, *rest), x)
        check_hvp(lambda t: program.fn(t, *rest), x)
