"""execution_stats() memory reporting and retrace-warning state resets.

Satellites of ISSUE 10: a symbolic (shape-relaxed) trace's static plan
is only a lower bound over unknown dims, so ``execution_stats`` must
additionally report the concrete per-specialization peak for shapes the
trace has actually run with; and the rate-limited RetraceWarning state
must be resettable between tests.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.core.function import (
    RetraceWarning,
    reset_retrace_warning_state,
)


def _mlp(x):
    w = repro.constant(np.ones((8, 16)), dtype=repro.float64)
    return repro.tanh(repro.matmul(x, w))


class TestSpecializedMemoryReporting:
    def test_static_trace_has_no_specializations(self):
        fn = repro.function(_mlp)
        fn(repro.constant(np.ones((4, 8)), dtype=repro.float64))
        (trace,) = fn.execution_stats()["traces"]
        assert "specializations" not in trace
        assert trace["peak_live_bytes"] > 0
        assert not trace["peak_is_lower_bound"]

    def test_symbolic_trace_reports_per_shape_peaks(self):
        fn = repro.function(
            _mlp, input_signature=[repro.TensorSpec([None, 8], repro.float64)]
        )
        fn(repro.constant(np.ones((2, 8)), dtype=repro.float64))
        fn(repro.constant(np.ones((32, 8)), dtype=repro.float64))
        (trace,) = fn.execution_stats()["traces"]
        # The symbolic plan cannot price the None dim.
        assert trace["peak_is_lower_bound"]
        specs = trace["specializations"]
        assert len(specs) == 2
        by_batch = {s["input_shapes"][0][0]: s for s in specs}
        assert set(by_batch) == {2, 32}
        for s in specs:
            assert s["peak_live_bytes"] > 0
            assert not s["peak_is_lower_bound"]
        # Peak grows with batch, and at least covers the hidden
        # activation ([batch, 16] float64) at each specialization.
        assert by_batch[32]["peak_live_bytes"] > by_batch[2]["peak_live_bytes"]
        assert by_batch[32]["peak_live_bytes"] >= 32 * 16 * 8

    def test_seen_shapes_are_bounded(self):
        from repro.core.function import _SEEN_SHAPE_LIMIT

        fn = repro.function(
            lambda x: x * 2.0,
            input_signature=[repro.TensorSpec([None], repro.float64)],
        )
        for n in range(1, _SEEN_SHAPE_LIMIT + 5):
            fn(repro.constant(np.ones(n), dtype=repro.float64))
        (trace,) = fn.execution_stats()["traces"]
        assert len(trace["specializations"]) == _SEEN_SHAPE_LIMIT

    def test_input_bytes_reported(self):
        fn = repro.function(_mlp)
        fn(repro.constant(np.ones((4, 8)), dtype=repro.float64))
        (trace,) = fn.execution_stats()["traces"]
        assert trace["input_bytes"] == 4 * 8 * 8
        assert not trace["input_bytes_is_lower_bound"]


class TestRetraceWarningReset:
    def _churn(self, fn, start, stop):
        for n in range(start, stop):
            fn(repro.constant(np.ones(n), dtype=repro.float64))

    def test_reset_clears_rate_limit_suppression(self):
        # relax_shapes off so every new shape is a retrace.
        fn = repro.function(lambda x: x + 1.0, experimental_relax_shapes=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RetraceWarning)
            with pytest.raises(RetraceWarning):
                self._churn(fn, 1, 10)
        # Immediately after a warning the interval suppresses the next
        # one...
        with warnings.catch_warnings():
            warnings.simplefilter("error", RetraceWarning)
            self._churn(fn, 10, 14)
        # ...but a reset (what the test harness does between tests)
        # restores a clean slate: fresh churn warns again.
        reset_retrace_warning_state()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RetraceWarning)
            with pytest.raises(RetraceWarning):
                self._churn(fn, 14, 23)

    def test_reset_is_idempotent_and_total(self):
        fn = repro.function(lambda x: x * 1.0)
        self._churn(fn, 1, 4)
        reset_retrace_warning_state()
        reset_retrace_warning_state()
        assert fn._call_index == 0
        assert len(fn._recent_traces) == 0
        assert fn._last_trace_key is None
        assert fn._last_warn_index is None
