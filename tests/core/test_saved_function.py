"""Exporting traced functions (paper §4.3 production workflow)."""

import numpy as np
import pytest

import repro
from repro.core import saved_function
from repro.framework.errors import InvalidArgumentError


class TestSaveLoad:
    def test_roundtrip_pure_function(self, tmp_path):
        @repro.function
        def f(x):
            return repro.tanh(x) * 2.0 + 1.0

        x = repro.constant([0.3, -1.2])
        expected = f(x).numpy()
        path = saved_function.save(f, str(tmp_path / "f"), x)
        loaded = saved_function.load(path)
        np.testing.assert_allclose(loaded(x).numpy(), expected, rtol=1e-6)

    def test_variables_snapshotted(self, tmp_path):
        v = repro.Variable([[2.0]])

        @repro.function
        def f(x):
            return repro.matmul(x, v)

        x = repro.constant([[3.0]])
        path = saved_function.save(f, str(tmp_path / "f"), x)
        v.assign([[100.0]])  # post-save mutation must not leak in
        loaded = saved_function.load(path)
        assert float(loaded(x)[0, 0]) == 6.0
        assert len(loaded.variables) == 1
        assert float(loaded.variables[0].numpy()[0, 0]) == 2.0

    def test_loaded_state_is_independent_and_mutable(self, tmp_path):
        counter = repro.Variable(0.0)

        @repro.function
        def bump(x):
            counter.assign_add(1.0)
            return counter.read_value() + x

        x = repro.constant(0.0)
        bump(x)  # counter -> 1 before saving
        path = saved_function.save(bump, str(tmp_path / "bump"), x)
        loaded = saved_function.load(path)
        assert float(loaded(x)) == 2.0  # loaded counter starts at 1
        assert float(loaded(x)) == 3.0  # loaded graph mutates its own copy
        assert float(counter.read_value()) == 1.0  # original untouched

    def test_structured_outputs(self, tmp_path):
        @repro.function
        def f(x):
            return {"double": x * 2.0, "pair": (x, x + 1.0)}

        x = repro.constant(4.0)
        path = saved_function.save(f, str(tmp_path / "f"), x)
        out = saved_function.load(path)(x)
        assert float(out["double"]) == 8.0
        assert isinstance(out["pair"], tuple)
        assert float(out["pair"][1]) == 5.0

    def test_concrete_function_accepted(self, tmp_path):
        @repro.function
        def f(x):
            return x + 1.0

        concrete = f.get_concrete_function(repro.constant(1.0))
        path = saved_function.save(concrete, str(tmp_path / "c"))
        assert float(saved_function.load(path)(repro.constant(2.0))) == 3.0

    def test_saved_training_step_keeps_training(self, tmp_path):
        """A staged train step exported and resumed elsewhere."""
        from repro import nn

        repro.set_random_seed(0)
        w = repro.Variable([[0.0], [0.0]])
        x_np = np.random.randn(16, 2).astype(np.float32)
        y_np = (x_np @ np.float32([[1.0], [-1.0]])).astype(np.float32)

        @repro.function
        def step(x, y):
            with repro.GradientTape() as tape:
                loss = nn.mean_squared_error(y, repro.matmul(x, w))
            (g,) = tape.gradient(loss, [w])
            w.assign_sub(g * 0.1)
            return loss

        x, y = repro.constant(x_np), repro.constant(y_np)
        step(x, y)
        path = saved_function.save(step, str(tmp_path / "step"), x, y)
        loaded = saved_function.load(path)
        losses = [float(loaded(x, y)) for _ in range(20)]
        assert losses[-1] < losses[0] * 0.5  # it really trains

    def test_polymorphic_requires_example_args(self, tmp_path):
        @repro.function
        def f(x):
            return x

        with pytest.raises(InvalidArgumentError):
            saved_function.save(f, str(tmp_path / "f"))

    def test_arity_checked_at_call(self, tmp_path):
        @repro.function
        def f(x):
            return x * 1.0

        path = saved_function.save(f, str(tmp_path / "f"), repro.constant(1.0))
        loaded = saved_function.load(path)
        with pytest.raises(InvalidArgumentError):
            loaded(repro.constant(1.0), repro.constant(2.0))

    def test_py_func_rejected(self, tmp_path):
        @repro.function
        def f(x):
            return repro.py_func(lambda v: v.numpy(), [x], Tout=repro.float32)

        with pytest.raises(InvalidArgumentError):
            saved_function.save(f, str(tmp_path / "f"), repro.constant(1.0))

    def test_wrong_file_rejected(self, tmp_path):
        bad = tmp_path / "junk.npz"
        np.savez(str(bad), __saved_function__=np.frombuffer(b'{"format":"x"}', dtype=np.uint8))
        with pytest.raises(InvalidArgumentError):
            saved_function.load(str(bad))


class TestProfiler:
    def test_collects_per_op_stats(self):
        x = repro.constant(np.random.randn(64, 64).astype(np.float32))
        with repro.profiler.Profile() as prof:
            # Chained (not repeated-identical) matmuls: lazy mode would
            # CSE four copies of the same op into one dispatch.
            y = x
            for _ in range(4):
                y = repro.matmul(y, x)
            z = repro.tanh(x)
            repro.sync()  # async/lazy modes: run the kernels in-profile
        del y, z
        assert prof.ops["MatMul"].count == 4
        assert prof.ops["Tanh"].count == 1
        assert prof.total_op_seconds > 0
        assert "MatMul" in prof.summary()

    def test_profiles_staged_execution_too(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(repro.exp(x) * x)

        x = repro.constant(np.random.randn(32).astype(np.float32))
        f(x)
        with repro.profiler.Profile() as prof:
            f(x)
        from repro.runtime.context import context

        if context.graph_fusion:
            # The Exp*Mul chain dispatches as one fused region.
            assert "FusedElementwise" in prof.ops
        else:
            assert "Exp" in prof.ops  # inner graph nodes are visible

    def test_inactive_by_default(self):
        x = repro.constant(1.0)
        with repro.profiler.Profile() as prof:
            pass
        repro.add(x, x)  # after exit: not recorded
        assert prof.total_ops == 0

    def test_nested_profilers_rejected(self):
        with repro.profiler.Profile():
            with pytest.raises(RuntimeError):
                with repro.profiler.Profile():
                    pass

    def test_top_is_sorted(self):
        x = repro.constant(np.random.randn(256, 256).astype(np.float32))
        small = repro.constant(1.0)
        with repro.profiler.Profile() as prof:
            big = repro.matmul(x, x)
            tiny = repro.add(small, small)
            repro.sync()  # async/lazy modes: run the kernels in-profile
        del big, tiny
        names = [name for name, _ in prof.top(2)]
        assert names[0] == "MatMul"
