"""GradientTape semantics, including the paper's Listings 1 and 2."""

import numpy as np
import pytest

import repro
from repro.framework.errors import FailedPreconditionError, InvalidArgumentError


class TestListing1:
    """Nested tapes compute higher-order derivatives (paper Listing 1)."""

    def test_second_derivative(self):
        x = repro.constant(3.0)
        with repro.GradientTape() as t1:
            with repro.GradientTape() as t2:
                t1.watch(x)
                t2.watch(x)
                y = x * x
            dy_dx = t2.gradient(y, x)
            d2y_dx2 = t1.gradient(dy_dx, x)
        assert float(dy_dx) == 6.0
        assert float(d2y_dx2) == 2.0

    def test_third_derivative(self):
        x = repro.constant(2.0)
        with repro.GradientTape() as t1:
            with repro.GradientTape() as t2:
                with repro.GradientTape() as t3:
                    t1.watch(x); t2.watch(x); t3.watch(x)
                    y = x * x * x
                g1 = t3.gradient(y, x)      # 3x^2 = 12
            g2 = t2.gradient(g1, x)          # 6x = 12
        g3 = t1.gradient(g2, x)              # 6
        assert float(g1) == 12.0
        assert float(g2) == 12.0
        assert float(g3) == 6.0


class TestListing2:
    """Variables are automatically watched (paper Listing 2)."""

    def test_auto_watch_variables(self):
        x = repro.Variable(3.0)
        with repro.GradientTape() as t1:
            with repro.GradientTape() as t2:
                y = x * x
            dy_dx = t2.gradient(y, x)
            d2y_dx2 = t1.gradient(dy_dx, x)
        assert float(dy_dx) == 6.0
        assert float(d2y_dx2) == 2.0

    def test_watch_accessed_variables_false(self):
        v = repro.Variable(2.0)
        with repro.GradientTape(watch_accessed_variables=False) as tape:
            y = v * v
        assert tape.gradient(y, v) is None

    def test_watched_variables_listed(self):
        v = repro.Variable(1.0)
        w = repro.Variable(2.0)
        with repro.GradientTape() as tape:
            _ = v * 1.0
            _ = w * 1.0
        assert tape.watched_variables() == [v, w]


class TestWatching:
    def test_unwatched_constant_gives_none(self):
        x = repro.constant(1.0)
        with repro.GradientTape() as tape:
            y = x * x
        assert tape.gradient(y, x) is None

    def test_explicit_watch(self):
        x = repro.constant(4.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.sqrt(x)
        assert float(tape.gradient(y, x)) == pytest.approx(0.25)

    def test_watch_non_tensor_raises(self):
        with repro.GradientTape() as tape:
            with pytest.raises(InvalidArgumentError):
                tape.watch("hello")

    def test_unconnected_zero(self):
        x = repro.constant(1.0)
        z = repro.constant(2.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            tape.watch(z)
            y = x * 2.0
        g = tape.gradient(y, z, unconnected_gradients="zero")
        assert float(g) == 0.0

    def test_bad_unconnected_mode(self):
        x = repro.constant(1.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = x * 1.0
        with pytest.raises(InvalidArgumentError):
            tape.gradient(y, x, unconnected_gradients="banana")


class TestLifecycle:
    def test_non_persistent_single_use(self):
        x = repro.constant(1.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = x * x
        tape.gradient(y, x)
        with pytest.raises(FailedPreconditionError):
            tape.gradient(y, x)

    def test_persistent_multi_use(self):
        x = repro.constant(2.0)
        with repro.GradientTape(persistent=True) as tape:
            tape.watch(x)
            y = x * x
            z = x * x * x
        assert float(tape.gradient(y, x)) == 4.0
        assert float(tape.gradient(z, x)) == 12.0

    def test_reentry_rejected(self):
        tape = repro.GradientTape()
        with tape:
            with pytest.raises(FailedPreconditionError):
                tape.__enter__()

    def test_reset(self):
        x = repro.constant(1.0)
        with repro.GradientTape(persistent=True) as tape:
            tape.watch(x)
            y = x * x
            tape.reset()
            tape.watch(x)
            z = x * 3.0
        assert float(tape.gradient(z, x)) == 3.0

    def test_stop_recording(self):
        x = repro.constant(2.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = x * x
            with tape.stop_recording():
                hidden = x * 10.0
            z = y + hidden
        assert float(tape.gradient(z, x)) == 4.0


class TestStructures:
    def test_nested_sources(self):
        a = repro.constant(1.0)
        b = repro.constant(2.0)
        with repro.GradientTape() as tape:
            tape.watch(a)
            tape.watch(b)
            y = a * 2.0 + b * 3.0
        grads = tape.gradient(y, {"first": a, "rest": [b]})
        assert float(grads["first"]) == 2.0
        assert float(grads["rest"][0]) == 3.0

    def test_multiple_targets_accumulate(self):
        x = repro.constant(1.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y1 = x * 2.0
            y2 = x * 3.0
        assert float(tape.gradient([y1, y2], x)) == 5.0

    def test_output_gradients_seed(self):
        x = repro.constant([1.0, 1.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = x * 2.0
        seed = repro.constant([10.0, 0.5])
        g = tape.gradient(y, x, output_gradients=seed)
        np.testing.assert_allclose(g.numpy(), [20.0, 1.0])

    def test_non_differentiable_target_rejected(self):
        x = repro.constant(1.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = repro.cast(x, repro.int32)
        with pytest.raises(InvalidArgumentError):
            tape.gradient(y, x)


class TestJacobian:
    def test_dense_jacobian(self):
        x = repro.constant([1.0, 2.0])
        with repro.GradientTape(persistent=True) as tape:
            tape.watch(x)
            y = x * x
        j = tape.jacobian(y, x)
        np.testing.assert_allclose(j.numpy(), [[2.0, 0.0], [0.0, 4.0]])

    def test_requires_persistent(self):
        x = repro.constant([1.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = x * x
        with pytest.raises(FailedPreconditionError):
            tape.jacobian(y, x)


class TestGradientOfGradientExpressions:
    def test_mixed_order(self):
        """d/dx [x * dy/dx] where y = x^3."""
        x = repro.constant(2.0)
        with repro.GradientTape() as outer:
            outer.watch(x)
            with repro.GradientTape() as inner:
                inner.watch(x)
                y = x * x * x
            dy = inner.gradient(y, x)  # 3x^2
            z = x * dy  # 3x^3
        # dz/dx = 9x^2 = 36
        assert float(outer.gradient(z, x)) == pytest.approx(36.0)
