"""Gradient checkpointing: ``recompute_grad`` in both regimes (ISSUE 10).

Correctness is differential — wrapped and unwrapped segments must give
identical gradients in every execution mode — and the *memory* claim is
checked against the planner's static accounting: for a deep chain, the
checkpointed backward's resident set (its plan's peak plus the caller
-held inputs it consumes) must be strictly smaller than the
uncheckpointed one's.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.recompute import recompute_grad
from repro.graph import optimize
from repro.graph.function import GraphFunction, placeholder
from repro.graph.graph import Graph
from repro.runtime.context import context


def _segment(x):
    return repro.tanh(x * 2.0) * repro.exp(-repro.square(x))


def _grad_of(fn, x):
    with repro.GradientTape() as tape:
        tape.watch(x)
        loss = repro.reduce_sum(fn(x))
    return tape.gradient(loss, x)


class TestEagerRecompute:
    def test_gradient_matches_unwrapped(self):
        x = repro.constant([0.3, -0.8, 1.4], dtype=repro.float64)
        ref = _grad_of(_segment, x)
        got = _grad_of(recompute_grad(_segment), x)
        np.testing.assert_allclose(got.numpy(), ref.numpy(), rtol=1e-12)

    def test_tape_retains_only_boundary(self):
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = recompute_grad(_segment)(x)
            loss = repro.reduce_sum(y)
        ops = [r.op_name for r in tape._records]
        assert "RecomputeGrad" in ops
        # The segment's internals (Tanh, Exp, ...) were suspended away.
        assert "Tanh" not in ops and "Exp" not in ops
        assert tape.gradient(loss, x) is not None

    def test_variable_gradients_via_accessed_watch(self):
        w = repro.Variable([1.0, 2.0, 3.0], dtype=repro.float64)
        x = repro.constant([2.0, 3.0, 4.0], dtype=repro.float64)

        def seg(x):
            return w * x

        with repro.GradientTape() as tape:  # watch_accessed_variables
            loss = repro.reduce_sum(recompute_grad(seg)(x))
        grad = tape.gradient(loss, w)
        np.testing.assert_allclose(grad.numpy(), x.numpy())

    def test_kwargs_and_structure_pass_through(self):
        def seg(x, scale=1.0):
            return {"out": x * scale}

        x = repro.constant([1.0, -1.0], dtype=repro.float64)
        with repro.GradientTape() as tape:
            tape.watch(x)
            out = recompute_grad(seg)(x, scale=3.0)
            loss = repro.reduce_sum(out["out"])
        np.testing.assert_allclose(tape.gradient(loss, x).numpy(), [3.0, 3.0])

    def test_second_order_through_recompute(self):
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        with repro.GradientTape() as outer:
            outer.watch(x)
            with repro.GradientTape() as inner:
                inner.watch(x)
                loss = repro.reduce_sum(recompute_grad(lambda t: t * t * t)(x))
            (g,) = inner.gradient(loss, [x])
            total = repro.reduce_sum(g)
        (h,) = outer.gradient(total, [x])
        np.testing.assert_allclose(h.numpy(), 6 * x.numpy())

    def test_jvp_through_recompute(self):
        x = repro.constant([0.5, -0.25], dtype=repro.float64)
        v = repro.constant([1.0, 2.0], dtype=repro.float64)
        _, ref = repro.jvp(_segment, [x], [v])
        _, got = repro.jvp(recompute_grad(_segment), [x], [v])
        np.testing.assert_allclose(got.numpy(), ref.numpy(), rtol=1e-12)

    def test_no_tape_is_a_plain_call(self):
        x = repro.constant([1.0], dtype=repro.float64)
        y = recompute_grad(_segment)(x)
        np.testing.assert_allclose(y.numpy(), _segment(x).numpy())

    def test_knob_off_disables_checkpointing(self):
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        context.recompute = False
        try:
            with repro.GradientTape() as tape:
                tape.watch(x)
                loss = repro.reduce_sum(recompute_grad(_segment)(x))
            ops = [r.op_name for r in tape._records]
            assert "RecomputeGrad" not in ops
            assert "Tanh" in ops  # internals recorded normally
            ref = _grad_of(_segment, x)
            np.testing.assert_allclose(
                tape.gradient(loss, x).numpy(), ref.numpy(), rtol=1e-12
            )
        finally:
            context.recompute = True

    @pytest.mark.parametrize("mode", ["async", "lazy"])
    def test_parity_in_deferred_modes(self, mode):
        with repro.execution_mode("sync"):
            x = repro.constant([0.4, -1.1, 2.2], dtype=repro.float64)
            ref = _grad_of(recompute_grad(_segment), x).numpy()
        with repro.execution_mode(mode):
            x = repro.constant([0.4, -1.1, 2.2], dtype=repro.float64)
            got = _grad_of(recompute_grad(_segment), x).numpy()
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_lazy_segment_peak_stat_updates(self):
        from repro.runtime import lazy

        with repro.execution_mode("lazy"):
            lazy.reset_lazy_stats(clear_cache=True)
            x = repro.constant(np.ones((8, 8)), dtype=repro.float64)
            g = _grad_of(recompute_grad(_segment), x)
            g.numpy()
            stats = lazy.lazy_stats()
        assert stats["max_segment_peak_bytes"] > 0


class TestStagedRecompute:
    def test_gradient_matches_unstaged(self):
        ckpt = recompute_grad(_segment)

        @repro.function
        def staged(x):
            return ckpt(x) + 1.0

        x = repro.constant([0.7, -0.2, 1.9], dtype=repro.float64)
        ref = _grad_of(lambda t: _segment(t) + 1.0, x)
        got = _grad_of(staged, x)
        np.testing.assert_allclose(got.numpy(), ref.numpy(), rtol=1e-12)

    def test_variable_capture_gradients(self):
        w = repro.Variable([2.0, -1.0], dtype=repro.float64)

        def seg(x):
            return repro.tanh(x * w)

        ckpt = recompute_grad(seg)

        @repro.function
        def staged(x):
            return ckpt(x)

        x = repro.constant([0.5, 0.25], dtype=repro.float64)
        with repro.GradientTape() as tape:
            loss = repro.reduce_sum(staged(x))
        got = tape.gradient(loss, w)
        with repro.GradientTape() as tape:
            loss = repro.reduce_sum(seg(x))
        ref = tape.gradient(loss, w)
        np.testing.assert_allclose(got.numpy(), ref.numpy(), rtol=1e-12)

    def test_forward_emits_single_recompute_call(self):
        ckpt = recompute_grad(_segment)

        fn = repro.function(lambda x: ckpt(x) * 1.5)
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        fn(x)
        concrete = fn.get_concrete_function(x)
        calls = concrete.graph.ops_by_type("RecomputeCall")
        assert len(calls) == 1
        # The segment body is inside the callee, not the caller graph.
        assert not concrete.graph.ops_by_type("Tanh")

    def test_backward_contains_tagged_remat_nodes(self):
        ckpt = recompute_grad(_segment)

        fn = repro.function(lambda x: ckpt(x))
        x = repro.constant([1.0, 2.0], dtype=repro.float64)
        with repro.GradientTape() as tape:
            tape.watch(x)
            loss = repro.reduce_sum(fn(x))
        tape.gradient(loss, x)
        concrete = fn.get_concrete_function(x)
        fb = concrete._forward_backward
        assert fb is not None and not isinstance(fb, Exception)
        remat = [
            n
            for n in fb.backward_fn.graph.nodes
            if n.attrs and "_remat_scope" in n.attrs
        ]
        assert remat, "backward graph lost its rematerialized segment"
        # The forward function must NOT hold the segment internals: the
        # only boundary crossing is the RecomputeCall itself.
        assert not any(
            "_remat_scope" in (n.attrs or {}) for n in fb.forward_fn.graph.nodes
        )

    def test_backward_resident_bytes_drop_on_deep_chain(self):
        """The planner-visible point of checkpointing, on a 6-block chain."""
        rng = np.random.default_rng(0)
        weights = [
            repro.constant(rng.normal(size=(64, 64)) * 0.1, dtype=repro.float64)
            for _ in range(6)
        ]

        def make(checkpoint: bool):
            def block(i):
                def body(h):
                    return repro.tanh(repro.matmul(h, weights[i]))

                return recompute_grad(body) if checkpoint else body

            blocks = [block(i) for i in range(6)]

            def chain(x):
                h = x
                for b in blocks:
                    h = b(h)
                return h

            return repro.function(chain, name=f"chain_ckpt_{checkpoint}")

        def backward_resident_bytes(fn):
            x = repro.constant(rng.normal(size=(4, 64)), dtype=repro.float64)
            with repro.GradientTape() as tape:
                tape.watch(x)
                loss = repro.reduce_sum(fn(x))
            tape.gradient(loss, x)
            stats = fn.execution_stats()
            (trace,) = stats["traces"]
            bwd = trace["staged_backward"]
            return bwd["peak_live_bytes"] + bwd["input_bytes"]

        unckpt = backward_resident_bytes(make(False))
        ckpt = backward_resident_bytes(make(True))
        assert ckpt < unckpt, (ckpt, unckpt)

    def test_memory_plan_counts_callee_peak(self):
        """The forward plan must charge the RecomputeCall's callee."""
        ckpt = recompute_grad(
            lambda x: repro.tanh(repro.matmul(x, repro.transpose(x)))
        )
        fn = repro.function(lambda x: repro.reduce_sum(ckpt(x)))
        x = repro.constant(np.ones((32, 8)), dtype=repro.float64)
        fn(x)
        stats = fn.execution_stats()
        (trace,) = stats["traces"]
        # The callee materializes a 32x32 float64 product: its working
        # set dominates the caller's own scalar output.
        assert trace["peak_live_bytes"] >= 32 * 32 * 8

    def test_knob_off_stages_inline(self):
        ckpt = recompute_grad(_segment)
        context.recompute = False
        try:
            fn = repro.function(lambda x: ckpt(x), name="inline_when_off")
            x = repro.constant([1.0], dtype=repro.float64)
            fn(x)
            concrete = fn.get_concrete_function(x)
            assert not concrete.graph.ops_by_type("RecomputeCall")
            # Inlined internals are visible to the optimizer — either as
            # raw Tanh or already folded into a fused region.
            assert concrete.graph.ops_by_type("Tanh") or concrete.graph.ops_by_type(
                "FusedElementwise"
            )
        finally:
            context.recompute = True


class TestRematScopeCSE:
    """CSE must dedup within a remat region, never across the boundary."""

    def _duplicated(self, scopes):
        g = Graph("remat_cse")
        x = placeholder(g, repro.float64, [4])
        with g.as_default():
            from repro.runtime.executor import execute

            outs = []
            for scope in scopes:
                attrs = {} if scope is None else {"_remat_scope": scope}
                y = execute("Tanh", [x], attrs)
                if isinstance(y, tuple):
                    y = y[0]
                outs.append(y * 1.0)
            total = outs[0]
            for o in outs[1:]:
                total = total + o
        return GraphFunction("remat_cse", g, [x], [total]), g

    def test_same_scope_merges(self):
        fn, g = self._duplicated(["seg#0", "seg#0"])
        optimize.cse(fn)
        optimize.prune(fn)
        assert len(g.ops_by_type("Tanh")) == 1

    def test_scope_vs_untagged_never_merges(self):
        fn, g = self._duplicated([None, "seg#0"])
        optimize.cse(fn)
        optimize.prune(fn)
        assert len(g.ops_by_type("Tanh")) == 2

    def test_distinct_scopes_never_merge(self):
        fn, g = self._duplicated(["seg#0", "seg#1"])
        optimize.cse(fn)
        optimize.prune(fn)
        assert len(g.ops_by_type("Tanh")) == 2
