"""Thread-safety of the Function call path (trace cache, routes, plans).

Regression suite for the serving work: a model server calls the same
:class:`Function` (and :class:`LoadedFunction`) from many threads, which
flushed out races that single-threaded tests never see — most notably
the level-0 fast-route map being read through instance state while
another thread was overwriting it.
"""

import importlib.util
import threading

import numpy as np
import pytest

import repro
from repro.core import saved_function
from repro.runtime.context import context
from repro.tensor import TensorSpec

if importlib.util.find_spec("pytest_timeout") is not None:
    timeout_marker = pytest.mark.timeout(120, method="thread")
else:

    def timeout_marker(cls):
        return cls


def run_threads(n, target):
    errors = []

    def wrap(i):
        try:
            target(i)
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=90.0)
    assert not errors, errors


@timeout_marker
class TestRouteRace:
    def test_shape_specialized_traces_from_many_threads(self):
        # The trace bakes the static leading dimension into a constant,
        # so serving a route cached for another thread's shape returns
        # a *wrong value*, not an exception.  12 threads, each its own
        # size, hammering the same Function.  Relaxation is explicitly
        # off: shape-dependent Python needs exact traces, and the test
        # must pin exact routing under REPRO_RELAX_SHAPES=1 too.
        @repro.function(experimental_relax_shapes=False)
        def scaled(x):
            return x * float(x.shape[0])

        barrier = threading.Barrier(12)

        def worker(i):
            size = i + 1
            x = repro.constant(np.ones(size, dtype=np.float32))
            barrier.wait()
            for _ in range(200):
                out = scaled(x).numpy()
                np.testing.assert_array_equal(
                    out, np.full(size, float(size), dtype=np.float32)
                )

        run_threads(12, worker)

    def test_concurrent_first_calls_same_shape(self):
        # All threads race the very first trace; everyone must get the
        # correct value regardless of who traced.
        @repro.function
        def f(x):
            return repro.tanh(x) * 2.0

        x_np = np.linspace(-1, 1, 16, dtype=np.float32)
        expected = np.tanh(x_np) * 2.0
        barrier = threading.Barrier(8)

        def worker(_):
            x = repro.constant(x_np)
            barrier.wait()
            for _ in range(50):
                np.testing.assert_allclose(f(x).numpy(), expected, rtol=1e-5)

        run_threads(8, worker)

    def test_cache_stats_concurrent_with_calls(self):
        @repro.function
        def f(x):
            return x + 1.0

        stop = threading.Event()

        def reader(_):
            while not stop.is_set():
                stats = f.cache_stats()
                assert stats["size"] >= 0

        def caller(i):
            try:
                for k in range(100):
                    size = 1 + (i * 100 + k) % 7
                    f(repro.constant(np.zeros(size, dtype=np.float32)))
            finally:
                stop.set()

        errors = []

        def wrap(fn, i):
            try:
                fn(i)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
                stop.set()

        threads = [
            threading.Thread(target=wrap, args=(reader, 0)),
            threading.Thread(target=wrap, args=(caller, 1)),
            threading.Thread(target=wrap, args=(caller, 2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90.0)
        assert not errors, errors

    @pytest.mark.filterwarnings("ignore::repro.RetraceWarning")
    def test_lru_eviction_under_concurrency(self):
        # More live shapes than cache slots: constant eviction and
        # retracing while other threads are mid-lookup.
        context.trace_cache_size = 4

        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x * float(x.shape[0])

        def worker(i):
            for k in range(60):
                size = 1 + (i + k) % 10
                x = repro.constant(np.ones(size, dtype=np.float32))
                np.testing.assert_array_equal(
                    f(x).numpy(), np.full(size, float(size), np.float32)
                )

        run_threads(6, worker)


@timeout_marker
class TestPlanRace:
    def test_concurrent_first_runs_of_loaded_function(self, tmp_path):
        # LoadedFunction.run() builds its execution plan on first use;
        # concurrent first calls must agree on one plan and all return
        # correct results.
        w = repro.Variable(np.eye(4, dtype=np.float32) * 3.0)

        @repro.function
        def f(x):
            return repro.matmul(x, w)

        path = saved_function.save(
            f, str(tmp_path / "m"), TensorSpec([None, 4], repro.float32)
        )
        loaded = saved_function.load(path)
        x_np = np.random.default_rng(0).standard_normal((2, 4)).astype(
            np.float32
        )
        expected = x_np @ (np.eye(4, dtype=np.float32) * 3.0)
        x = repro.constant(x_np)
        barrier = threading.Barrier(8)

        def worker(_):
            barrier.wait()
            for _ in range(25):
                np.testing.assert_allclose(
                    loaded(x).numpy(), expected, rtol=1e-5
                )

        run_threads(8, worker)
        runner = loaded.graph_function.plan()
        assert runner is loaded.graph_function.plan()  # one plan, cached
