"""The two-level trace cache: relaxation, LRU bounds, stats, diagnostics.

Covers the shape-relaxation policy (paper §4.6's binding-time analysis,
generalized so shapes can be bound *late*), the LRU bound on the exact
level, `cache_stats()`, the rate-limited `RetraceWarning`, and the
thread-safety of first-call tracing (including the two-trace
state-creation contract under concurrency).
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

import repro
from repro.core.function import RetraceWarning
from repro.runtime.context import context


def _batch(b, n=4):
    return repro.constant(np.arange(b * n, dtype=np.float32).reshape(b, n))


class TestRelaxation:
    def test_shape_only_retraces_collapse_to_one_symbolic_trace(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return repro.reduce_sum(x * 2.0)

        for b in range(1, 20):
            out = f(_batch(b))
            assert float(out) == pytest.approx(float(np.sum(np.arange(b * 4) * 2.0)))
        # Exact trace on the first shape, one relaxed trace on the
        # second; every later batch size hits the symbolic trace.
        assert f.trace_count == 2
        stats = f.cache_stats()
        assert stats["relaxations"] == 1
        assert stats["hits"] == 17

    def test_relaxed_trace_has_symbolic_placeholders(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return x + 1.0

        f(_batch(2))
        concrete = f.get_concrete_function(_batch(3))
        spec = concrete.graph_function.input_specs[0]
        assert spec.shape.dims == (None, 4)
        # The same concrete serves other batch sizes.
        assert f.get_concrete_function(_batch(9)) is concrete

    def test_only_varying_dims_generalize(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return repro.reduce_sum(x)

        f(_batch(2, n=4))
        f(_batch(5, n=4))
        spec = f.get_concrete_function(_batch(7, n=4)).graph_function.input_specs[0]
        assert spec.shape.dims == (None, 4)  # the stable dim stays pinned

    def test_widening_when_a_stable_dim_starts_varying(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return repro.reduce_sum(x)

        f(_batch(2, n=4))
        f(_batch(3, n=4))  # relaxed to [None, 4]
        assert f.trace_count == 2
        out = f(_batch(3, n=6))  # incompatible with [None, 4]: widen
        assert float(out) == pytest.approx(float(np.arange(18).sum()))
        assert f.trace_count == 3
        assert f.cache_stats()["relaxations"] == 2
        spec = f.get_concrete_function(_batch(8, n=9)).graph_function.input_specs[0]
        assert spec.shape.dims == (None, None)
        assert f.trace_count == 3  # [None, None] serves everything 2-D

    def test_dtype_and_rank_changes_still_retrace(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return repro.reduce_sum(x)

        f(_batch(2))
        f(_batch(3))
        traces = f.trace_count
        f(repro.constant(np.ones((2, 4), np.float64)))  # new dtype pattern
        assert f.trace_count == traces + 1
        f(repro.constant(np.ones((2, 4, 1), np.float32)))  # new rank pattern
        assert f.trace_count == traces + 2

    def test_python_value_leaves_are_not_relaxed(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x, k):
            return x * float(k)

        f(_batch(2), 2)
        f(_batch(3), 3)  # different Python value: a different pattern
        f(_batch(4), 4)
        assert f.trace_count == 3
        assert f.cache_stats()["relaxations"] == 0

    def test_relax_retraces_threshold(self):
        context.relax_retraces = 3

        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return x + 1.0

        for b in (1, 2, 3, 4):
            f(_batch(b))
        # Three shape-only misses tolerated before generalizing on the
        # fourth; all exact.  The next distinct shape relaxes.
        assert f.trace_count == 4
        assert f.cache_stats()["relaxations"] == 1
        f(_batch(5))
        f(_batch(6))
        assert f.trace_count == 4

    def test_env_knob_enables_globally(self, monkeypatch):
        context.relax_shapes = True

        @repro.function
        def f(x):
            return x * x

        for b in (1, 2, 3, 4):
            f(_batch(b))
        assert f.trace_count == 2

    def test_explicit_false_overrides_global(self):
        context.relax_shapes = True

        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x * x

        for b in (1, 2, 3, 4):
            f(_batch(b))
        assert f.trace_count == 4

    def test_gradients_through_relaxed_trace(self):
        v = repro.Variable(np.ones((4, 3), np.float32))

        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return repro.reduce_sum(repro.matmul(x, v))

        for b in (2, 5, 7):
            x = _batch(b)
            with repro.GradientTape() as tape:
                y = f(x)
            grad = tape.gradient(y, v)
            expected = x.numpy().sum(axis=0, keepdims=True).T @ np.ones((1, 3))
            np.testing.assert_allclose(grad.numpy(), expected, rtol=1e-5)
        assert f.trace_count == 2

    def test_input_signature_disables_relaxation_policy(self):
        context.relax_shapes = True

        @repro.function(input_signature=[repro.TensorSpec([None, 4])])
        def f(x):
            return x + 1.0

        f(_batch(2))
        f(_batch(3))
        assert f.trace_count == 1  # the signature already pins one trace


class TestLRUCache:
    def test_eviction_past_bound(self):
        context.trace_cache_size = 3

        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x + 1.0

        for b in range(1, 7):
            f(_batch(b))
        stats = f.cache_stats()
        assert stats["size"] == 3
        assert stats["evictions"] == 3

    def test_lru_order_recency(self):
        context.trace_cache_size = 2

        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x * 2.0

        f(_batch(1))
        f(_batch(2))
        f(_batch(1))  # touch: batch-1 becomes most recent
        f(_batch(3))  # evicts batch-2
        traces = f.trace_count
        f(_batch(1))  # still cached
        assert f.trace_count == traces
        f(_batch(2))  # was evicted: retraces
        assert f.trace_count == traces + 1

    def test_eviction_releases_artifacts(self):
        context.trace_cache_size = 1

        @repro.function(jit_compile=True, experimental_relax_shapes=False)
        def f(x):
            return repro.exp(x) * 2.0

        x1 = _batch(2)
        f(x1)
        concrete = f.get_concrete_function(x1)
        assert concrete._compiled is not None
        with repro.GradientTape() as tape:
            tape.watch(x1)
            f(x1)
        assert concrete._forward_backward is not None
        f(_batch(3))  # evicts the batch-2 trace
        assert concrete._compiled is None
        assert concrete._forward_backward is None
        assert concrete.graph_function._runner is None
        # An evicted concrete still works if a caller kept a handle.
        np.testing.assert_allclose(
            concrete(x1).numpy(), np.exp(x1.numpy()) * 2.0, rtol=1e-6
        )

    def test_cache_stats_counters(self):
        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x + 1.0

        f(_batch(1))
        f(_batch(1))
        f(_batch(2))
        stats = f.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["traces"] == 2
        assert stats["relaxations"] == 0
        assert stats["evictions"] == 0
        assert stats["size"] == 2


class TestFastCallPath:
    """Level 0 of the cache: steady-state all-tensor positional calls
    skip flatten/bind/key construction entirely.  The route map points
    into the exact/relaxed levels, so eviction and widening stay
    correct — a dangling route falls back to the slow path."""

    def test_repeat_call_served_without_rekeying(self):
        @repro.function
        def f(a, b):
            return a * b + 1.0

        x, y = repro.constant([1.0, 2.0]), repro.constant([3.0, 4.0])
        f(x, y)
        assert f._fast_keys  # the route was recorded
        before = f.cache_stats()
        out = f(x, y)
        after = f.cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        np.testing.assert_allclose(out.numpy(), [4.0, 9.0])

    def test_kwargs_and_positional_share_one_trace(self):
        @repro.function
        def f(a, b):
            return a - b

        x, y = repro.constant(5.0), repro.constant(2.0)
        assert float(f(x, y)) == 3.0
        assert float(f(b=y, a=x)) == 3.0
        assert f.trace_count == 1

    def test_variable_argument_bypasses_fast_path(self):
        v = repro.Variable([1.0, 2.0])

        @repro.function
        def f(var, x):
            return var * x

        x = repro.constant([3.0, 3.0])
        f(v, x)
        f(v, x)
        assert not f._fast_keys  # no route for variable args
        assert f.cache_stats()["hits"] == 1  # still serves level 1
        np.testing.assert_allclose(f(v, x).numpy(), [3.0, 6.0])

    def test_eviction_invalidates_route(self):
        context.trace_cache_size = 1

        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x + 1.0

        f(_batch(1))
        f(_batch(1))  # primes the fast route
        f(_batch(2))  # evicts the batch-1 trace
        traces = f.trace_count
        out = f(_batch(1))  # dangling route: must retrace, not crash
        assert f.trace_count == traces + 1
        np.testing.assert_allclose(
            out.numpy(), np.arange(4, dtype=np.float32).reshape(1, 4) + 1.0
        )

    def test_fast_path_serves_relaxed_traces(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return repro.reduce_sum(x * 2.0)

        for b in range(1, 6):
            f(_batch(b))
        traces = f.trace_count
        hits = f.cache_stats()["hits"]
        # Repeats of an already-routed shape hit level 0 and still land
        # on the symbolic trace.
        for _ in range(3):
            assert float(f(_batch(3))) == pytest.approx(
                float(np.sum(np.arange(12) * 2.0))
            )
        assert f.trace_count == traces
        assert f.cache_stats()["hits"] == hits + 3

    def test_gradient_tape_records_through_fast_path(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(repro.square(x))

        x = repro.constant([1.5, -2.0])
        f(x)  # primes the route
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = f(x)
        (g,) = tape.gradient(y, [x])
        np.testing.assert_allclose(g.numpy(), [3.0, -4.0], rtol=1e-6)


class TestRetraceWarning:
    def test_warns_on_churn_and_names_the_leaf(self):
        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x + 1.0

        with pytest.warns(RetraceWarning, match="argument leaf #0"):
            for b in range(1, 10):
                f(_batch(b))

    def test_rate_limited(self):
        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x + 1.0

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for b in range(1, 20):
                f(_batch(b))
        assert len([w for w in caught if w.category is RetraceWarning]) == 1

    def test_no_warning_for_stable_signatures(self):
        @repro.function(experimental_relax_shapes=False)
        def f(x):
            return x + 1.0

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(20):
                f(_batch(2))
        assert not [w for w in caught if w.category is RetraceWarning]

    def test_relaxation_quells_the_warning(self):
        @repro.function(experimental_relax_shapes=True)
        def f(x):
            return x + 1.0

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for b in range(1, 20):
                f(_batch(b))
        assert not [w for w in caught if w.category is RetraceWarning]


class TestConcurrentTracing:
    def test_two_threads_one_trace(self):
        @repro.function
        def f(x):
            return repro.matmul(x, repro.transpose(x))

        x = _batch(3)
        barrier = threading.Barrier(2)
        results: list = [None, None]
        errors: list = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = f(x)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert f.trace_count == 1
        expected = x.numpy() @ x.numpy().T
        for r in results:
            np.testing.assert_allclose(r.numpy(), expected, rtol=1e-6)

    def test_concurrent_state_creation_honors_two_trace_contract(self):
        created: dict = {}

        @repro.function
        def f(x):
            if "v" not in created:
                created["v"] = repro.Variable(np.ones((4,), np.float32))
            return x + created["v"]

        x = repro.constant(np.zeros((4,), np.float32))
        barrier = threading.Barrier(2)
        errors: list = []

        def worker():
            try:
                barrier.wait()
                f(x)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # State creation triggers the second trace (§4.6); the lock must
        # ensure the *pair* of traces happens exactly once.
        assert f.trace_count == 2
        assert len(f._created_variables) == 1
        np.testing.assert_allclose(f(x).numpy(), np.ones(4), rtol=1e-6)
