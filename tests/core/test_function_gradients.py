"""Staged gradients (paper §4.2): forward/backward graph functions."""

import numpy as np
import pytest

import repro
from repro import nn


class TestStagedVsEagerParity:
    def test_simple_function(self):
        w = repro.Variable([[1.0, 2.0], [3.0, 4.0]])

        def loss_fn(x):
            return repro.reduce_sum(repro.matmul(x, w) ** 2.0)

        staged = repro.function(loss_fn)
        x = repro.constant([[1.0, 0.5]])

        with repro.GradientTape() as tape:
            loss_e = loss_fn(x)
        g_eager = tape.gradient(loss_e, w)

        with repro.GradientTape() as tape:
            loss_s = staged(x)
        g_staged = tape.gradient(loss_s, w)

        assert float(loss_e) == pytest.approx(float(loss_s))
        np.testing.assert_allclose(g_staged.numpy(), g_eager.numpy(), rtol=1e-6)

    def test_gradient_wrt_explicit_input(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(repro.tanh(x) * x)

        x = repro.constant([0.5, -1.0, 2.0])
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = f(x)
        g = tape.gradient(y, x)

        with repro.GradientTape() as tape:
            tape.watch(x)
            y2 = repro.reduce_sum(repro.tanh(x) * x)
        g2 = tape.gradient(y2, x)
        np.testing.assert_allclose(g.numpy(), g2.numpy(), rtol=1e-6)

    def test_multi_output_function(self):
        @repro.function
        def f(x):
            return x * 2.0, x * x

        x = repro.constant(3.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            a, b = f(x)
        g = tape.gradient([a, b], x)
        assert float(g) == pytest.approx(2.0 + 6.0)

    def test_partial_output_gradient(self):
        @repro.function
        def f(x):
            return x * 2.0, x * 10.0

        x = repro.constant(1.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            a, _b = f(x)
        assert float(tape.gradient(a, x)) == 2.0

    def test_nested_function_gradient(self):
        @repro.function
        def inner(x):
            return x * x

        @repro.function
        def outer(x):
            return inner(x) * 3.0

        x = repro.constant(2.0)
        with repro.GradientTape() as tape:
            tape.watch(x)
            y = outer(x)
        assert float(tape.gradient(y, x)) == pytest.approx(12.0)

    def test_forward_backward_are_staged_once(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(x * x)

        x = repro.constant([1.0, 2.0])
        for _ in range(3):
            with repro.GradientTape() as tape:
                tape.watch(x)
                y = f(x)
            tape.gradient(y, x)
        concrete = f.get_concrete_function(x)
        fb = concrete._forward_backward
        assert fb is not None
        assert fb.forward_fn.num_nodes > 0
        assert fb.backward_fn is not None

    def test_variable_mutation_inside_gradient_function(self):
        v = repro.Variable(1.0)
        counter = repro.Variable(0.0, trainable=False)

        @repro.function
        def f(x):
            counter.assign_add(1.0)
            return x * v

        x = repro.constant(3.0)
        with repro.GradientTape() as tape:
            y = f(x)
        g = tape.gradient(y, v)
        assert float(g) == 3.0
        # Side effect ran exactly once (the forward pass).
        assert float(counter.read_value()) == 1.0


class TestHigherOrderThroughFunctions:
    def test_second_order(self):
        @repro.function
        def f(x):
            return x * x * x

        x = repro.constant(2.0)
        with repro.GradientTape() as t1:
            t1.watch(x)
            with repro.GradientTape() as t2:
                t2.watch(x)
                y = f(x)
            g1 = t2.gradient(y, x)  # 3x^2
        g2 = t1.gradient(g1, x)  # 6x
        assert float(g1) == pytest.approx(12.0)
        assert float(g2) == pytest.approx(12.0)


class TestGradientComputationCanBeStaged:
    """Paper §4.2: 'gradient computation is itself expressed as a
    function which executes primitive operations, so it is possible to
    stage it or not.'"""

    def test_staged_gradient_of_eager_model(self):
        v = repro.Variable(2.0)

        @repro.function
        def grad_step(x):
            with repro.GradientTape() as tape:
                y = x * v * v
            return tape.gradient(y, v)

        g = grad_step(repro.constant(3.0))
        assert float(g) == pytest.approx(12.0)  # d(3v^2)/dv = 6v = 12

    def test_training_step_fully_staged(self):
        model = nn.Dense(1, kernel_initializer=lambda s, dtype=repro.float32: repro.ones(list(s)))
        opt = nn.SGD(0.1)

        @repro.function
        def step(x, y):
            with repro.GradientTape() as tape:
                pred = model(x)
                loss = nn.mean_squared_error(y, pred)
            grads = tape.gradient(loss, model.trainable_variables)
            opt.apply_gradients(zip(grads, model.trainable_variables))
            return loss

        x = repro.constant(np.random.randn(8, 3).astype(np.float32))
        y = repro.constant(np.random.randn(8, 1).astype(np.float32))
        losses = [float(step(x, y)) for _ in range(10)]
        assert losses[-1] < losses[0]
