"""The staged-compilation pipeline: stages, refinement, specialization.

Exercises :mod:`repro.core.pipeline` directly: tracing under symbolic
specs, the shape-refinement sweep, per-shape specialization of a
symbolic trace (no Python re-execution), and the per-shape compiled
cache on ConcreteFunction.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.pipeline import CompilationPipeline, refine_shapes
from repro.core.tracing import TENSOR_MARKER
from repro.framework.errors import UnimplementedError
from repro.graph.function import GraphFunction
from repro.tensor import TensorSpec
from repro.xla.compiler import compile_function


def _trace_symbolic(pipeline=None, n=4):
    """A matmul+relu body traced at a symbolic [None, n] signature."""
    pipeline = pipeline or CompilationPipeline()
    w = np.arange(n * 3, dtype=np.float32).reshape(n, 3)

    def body(x):
        return repro.maximum(repro.matmul(x, repro.constant(w)), 0.0)

    graph, outs, _ = pipeline.trace(
        body,
        [TensorSpec([None, n], repro.float32)],
        name="body",
        structured_args=((TENSOR_MARKER,), {}),
    )
    fn = GraphFunction("body", graph, list(graph.inputs), outs)
    return pipeline, fn, w


class TestStages:
    def test_trace_produces_symbolic_graph(self):
        _, fn, _ = _trace_symbolic()
        assert fn.input_specs[0].shape.dims == (None, 4)
        assert fn.output_specs[0].shape.dims == (None, 3)

    def test_plan_is_shape_polymorphic(self):
        pipeline, fn, w = _trace_symbolic()
        pipeline.finalize(fn)
        plan = pipeline.plan(fn)
        assert pipeline.plan(fn) is plan  # cached
        for b in (2, 6):
            x = np.ones((b, 4), np.float32)
            (out,) = fn.run([repro.constant(x)])
            np.testing.assert_allclose(out.numpy(), np.maximum(x @ w, 0.0), rtol=1e-6)

    def test_plan_rejects_incompatible_feed(self):
        pipeline, fn, _ = _trace_symbolic()
        pipeline.finalize(fn)
        with pytest.raises(repro.framework.errors.InvalidArgumentError, match="symbolic"):
            fn.run([repro.constant(np.ones((2, 5), np.float32))])

    def test_finalize_reports_stage_counts(self):
        pipeline, fn, _ = _trace_symbolic()
        report = pipeline.finalize(fn)
        assert "infer:refined" in report
        assert any(k.endswith("prune") for k in report)


class TestRefineShapes:
    def test_sharpens_after_input_pinning(self):
        pipeline, fn, _ = _trace_symbolic()
        pipeline.finalize(fn)
        # Pin the symbolic input dim and re-run the infer stage: the
        # refinement must flow through matmul and relu to the outputs.
        fn.inputs[0].spec = TensorSpec([8, 4], repro.float32)
        refined = refine_shapes(fn)
        assert refined >= 1
        assert fn.output_specs[0].shape.dims == (8, 3)

    def test_idempotent(self):
        pipeline, fn, _ = _trace_symbolic()
        pipeline.finalize(fn)
        assert refine_shapes(fn) == 0  # nothing new to learn


class TestSpecialize:
    def test_specialized_clone_is_static(self):
        pipeline, fn, w = _trace_symbolic()
        pipeline.finalize(fn)
        spec_fn = pipeline.specialize(fn, [TensorSpec([5, 4], repro.float32)])
        assert spec_fn.input_specs[0].shape.dims == (5, 4)
        assert spec_fn.output_specs[0].shape.dims == (5, 3)
        # The original stays symbolic (specialization clones).
        assert fn.input_specs[0].shape.dims == (None, 4)
        x = np.random.rand(5, 4).astype(np.float32)
        (out,) = spec_fn.run([repro.constant(x)])
        np.testing.assert_allclose(out.numpy(), np.maximum(x @ w, 0.0), rtol=1e-6)

    def test_shape_op_folds_under_specialization(self):
        pipeline = CompilationPipeline()

        def body(x):
            return repro.reshape(x, repro.shape(x))  # dynamic-shape round trip

        graph, outs, _ = pipeline.trace(
            body,
            [TensorSpec([None, 4], repro.float32)],
            name="dyn",
            structured_args=((TENSOR_MARKER,), {}),
        )
        fn = GraphFunction("dyn", graph, list(graph.inputs), outs)
        pipeline.finalize(fn)
        # Symbolically the Shape op must stay dynamic ...
        assert any(n.op_name == "Shape" for n in fn.graph.nodes)
        # ... but at a concrete shape it constant-folds away and the
        # whole round trip collapses to the input.
        spec_fn = pipeline.specialize(fn, [TensorSpec([3, 4], repro.float32)])
        assert not any(n.op_name == "Shape" for n in spec_fn.graph.nodes)

    def test_compile_requires_static_shapes(self):
        pipeline, fn, _ = _trace_symbolic()
        pipeline.finalize(fn)
        with pytest.raises(UnimplementedError, match="static shapes"):
            compile_function(fn)
        # The pipeline route specializes first, so it succeeds.
        exe = pipeline.compile(fn, input_specs=[TensorSpec([2, 4], repro.float32)])
        assert exe.num_launch_instructions >= 1


class TestPerShapeCompiledCache:
    def test_one_executable_per_shape_under_one_trace(self):
        @repro.function(experimental_relax_shapes=True, jit_compile=True)
        def f(x):
            return repro.tanh(x) * 2.0

        def call(b):
            x = np.random.rand(b, 3).astype(np.float32)
            np.testing.assert_allclose(
                f(repro.constant(x)).numpy(), np.tanh(x) * 2.0, rtol=1e-5
            )

        call(2)  # exact trace (static: single executable, key None)
        call(4)  # relaxed trace; per-shape executable
        call(6)
        call(4)  # cache hit: no new executable
        assert f.trace_count == 2
        concrete = f.get_concrete_function(
            repro.constant(np.ones((4, 3), np.float32))
        )
        assert set(concrete._compiled_cache) == {((4, 3),), ((6, 3),)}

    def test_release_clears_per_shape_cache(self):
        @repro.function(experimental_relax_shapes=True, jit_compile=True)
        def f(x):
            return x + 1.0

        f(repro.constant(np.ones((2, 3), np.float32)))
        f(repro.constant(np.ones((4, 3), np.float32)))
        concrete = f.get_concrete_function(
            repro.constant(np.ones((4, 3), np.float32))
        )
        assert concrete._compiled_cache
        concrete.release()
        assert not concrete._compiled_cache
