"""The polymorphic function decorator (paper §4.6, Listings 6–8)."""

import numpy as np
import pytest

import repro
from repro.framework.errors import (
    FailedPreconditionError,
    InvalidArgumentError,
)


class TestBasicStaging:
    def test_same_result_as_eager(self):
        A = repro.constant([[1.0, 0.0]])

        def select(vector):
            return repro.matmul(A, vector)

        staged = repro.function(select)
        x = repro.constant([[2.0], [-2.0]])
        np.testing.assert_allclose(staged(x).numpy(), select(x).numpy())

    def test_decorator_syntax(self):
        @repro.function
        def double(x):
            return x * 2.0

        assert float(double(repro.constant(4.0))) == 8.0

    def test_decorator_with_arguments(self):
        @repro.function(name="renamed")
        def f(x):
            return x + 1.0

        assert float(f(repro.constant(1.0))) == 2.0

    def test_structured_inputs_outputs(self):
        @repro.function
        def f(pair, scale):
            a, b = pair["a"], pair["b"]
            return {"sum": (a + b) * scale, "both": [a, b]}

        out = f({"a": repro.constant(1.0), "b": repro.constant(2.0)}, repro.constant(10.0))
        assert float(out["sum"]) == 30.0
        assert float(out["both"][1]) == 2.0

    def test_none_output(self):
        @repro.function
        def f(x):
            return None

        assert f(repro.constant(1.0)) is None

    def test_python_number_output_becomes_tensor(self):
        @repro.function
        def f(x):
            return 42

        out = f(repro.constant(0.0))
        assert int(out) == 42

    def test_numpy_accepted_as_argument(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(x)

        assert float(f(np.ones((2, 2), np.float32))) == 4.0


class TestTraceCache:
    def test_single_trace_for_repeated_shapes(self):
        @repro.function
        def f(x):
            return x * 2.0

        f(repro.constant([1.0]))
        f(repro.constant([2.0]))
        f(repro.constant([3.0]))
        assert f.trace_count == 1

    def test_retrace_on_new_shape(self):
        @repro.function
        def f(x):
            return x * 2.0

        f(repro.constant([1.0]))
        f(repro.constant([1.0, 2.0]))
        assert f.trace_count == 2

    def test_retrace_on_new_dtype(self):
        @repro.function
        def f(x):
            return repro.reduce_sum(x)

        f(repro.constant([1.0]))
        f(repro.constant([1], dtype=repro.int32))
        assert f.trace_count == 2

    def test_listing6_bool_specialization(self):
        """Python bools parameterize the trace (paper Listing 6)."""
        traced_with = []

        @repro.function
        def lossy_matmul(w, x, training=True):
            traced_with.append(training)
            outputs = repro.matmul(w, x)
            if training:
                outputs = outputs * 0.5
            return outputs

        w = repro.constant(np.ones((2, 2), np.float32))
        x = repro.constant(np.ones((2, 1), np.float32))
        full = lossy_matmul(w, x, training=False)
        lossy = lossy_matmul(w, x, training=True)
        np.testing.assert_allclose(full.numpy() * 0.5, lossy.numpy())
        assert sorted(traced_with) == [False, True]
        assert lossy_matmul.trace_count == 2

    def test_default_and_explicit_kwarg_share_trace(self):
        @repro.function
        def f(x, flag=True):
            return x * (2.0 if flag else 3.0)

        f(repro.constant(1.0))
        f(repro.constant(1.0), flag=True)
        f(repro.constant(1.0), True)
        assert f.trace_count == 1

    def test_device_is_part_of_the_key(self):
        """Cache keys include 'metadata ... such as the requested device'."""

        @repro.function
        def f(x):
            return x + 1.0

        f(repro.constant(1.0))
        with repro.device("/gpu:0"):
            f(repro.constant(1.0))
        assert f.trace_count == 2

    def test_python_string_specialization(self):
        @repro.function
        def f(x, mode):
            return x * (2.0 if mode == "double" else 1.0)

        a = f(repro.constant(1.0), "double")
        b = f(repro.constant(1.0), "other")
        assert (float(a), float(b)) == (2.0, 1.0)
        assert f.trace_count == 2


class TestInputSignature:
    def test_single_trace_across_batch_sizes(self):
        @repro.function(input_signature=[repro.TensorSpec([None, 2])])
        def f(x):
            return repro.reduce_sum(x, axis=1)

        f(repro.constant(np.ones((3, 2), np.float32)))
        f(repro.constant(np.ones((8, 2), np.float32)))
        assert f.trace_count == 1

    def test_incompatible_shape_rejected(self):
        @repro.function(input_signature=[repro.TensorSpec([None, 2])])
        def f(x):
            return x

        with pytest.raises(InvalidArgumentError):
            f(repro.constant(np.ones((3, 3), np.float32)))

    def test_wrong_arity_rejected(self):
        @repro.function(input_signature=[repro.TensorSpec([2])])
        def f(x):
            return x

        with pytest.raises(InvalidArgumentError):
            f(repro.constant(np.ones(2, np.float32)), repro.constant(1.0))


class TestListing7:
    """Closed-over variables are captured by reference (paper Listing 7)."""

    def test_mutation_interleaves_with_eager(self):
        v = repro.Variable(0.0)

        @repro.function
        def mutate():
            v.assign_add(1.0)
            return v.read_value()

        mutate()
        assert float(v.read_value()) == 1.0
        v.assign_add(1.0)
        assert float(v.read_value()) == 2.0
        mutate()
        assert float(v.read_value()) == 3.0

    def test_closure_over_tensor_baked_as_constant(self):
        c = repro.constant(10.0)

        @repro.function
        def f(x):
            return x + c

        assert float(f(repro.constant(1.0))) == 11.0
        # Immutable tensors are interned as constants; only resource
        # handles (variables) are captured by reference.
        concrete = f.get_concrete_function(repro.constant(1.0))
        assert concrete.captured_externals == []

    def test_closure_over_variable_captured_by_reference(self):
        v = repro.Variable(10.0)

        @repro.function
        def f(x):
            return x + v

        assert float(f(repro.constant(1.0))) == 11.0
        concrete = f.get_concrete_function(repro.constant(1.0))
        assert concrete.captured_externals == [v.handle]


class TestStateCreationContract:
    def test_first_call_creates_then_reuses(self):
        created = []

        class Holder:
            v = None

        @repro.function
        def f(x):
            if Holder.v is None:
                Holder.v = repro.Variable(5.0)
                created.append(True)
            return x * Holder.v

        assert float(f(repro.constant(2.0))) == 10.0
        assert float(f(repro.constant(3.0))) == 15.0
        # Two traces happen on the first call (the two-trace contract).
        assert f.trace_count == 2

    def test_creating_variables_every_call_raises(self):
        @repro.function
        def bad(x):
            v = repro.Variable(1.0)  # new state on every trace
            return x * v

        with pytest.raises(FailedPreconditionError):
            bad(repro.constant(1.0))

    def test_creating_variables_on_later_trace_raises(self):
        state = {}

        @repro.function
        def f(x):
            # Creates a fresh variable per distinct input *shape*.
            key = x.shape.rank
            if key not in state:
                state[key] = repro.Variable(1.0)
            return x * state[key]

        f(repro.constant(1.0))
        with pytest.raises(FailedPreconditionError):
            f(repro.constant([1.0, 2.0]))  # new shape -> new trace -> new var


class TestListing8:
    """Nested graph functions compose via call operations (Listing 8)."""

    def test_composition_matches_paper(self):
        @repro.function
        def inner(a):
            from repro.ops import nn_ops

            return nn_ops.relu(a)

        @repro.function
        def outer(a, b):
            return inner(repro.matmul(a, b))

        out = outer(repro.eye(3), repro.diag(repro.constant([-1.0, 1.0, 2.0])))
        np.testing.assert_allclose(
            out.numpy(), np.diag([0.0, 1.0, 2.0]).astype(np.float32)
        )

    def test_outer_graph_contains_call_op(self):
        @repro.function
        def inner(a):
            return a * 2.0

        @repro.function
        def outer(a):
            return inner(a) + 1.0

        outer(repro.constant(1.0))
        concrete = outer.get_concrete_function(repro.constant(1.0))
        call_nodes = concrete.func_graph.ops_by_type("PartitionedCall")
        assert len(call_nodes) == 1


class TestMethods:
    def test_decorated_method_binds(self):
        class Model:
            def __init__(self):
                self.scale = repro.Variable(3.0)

            @repro.function
            def call(self, x):
                return x * self.scale

        m = Model()
        assert float(m.call(repro.constant(2.0))) == 6.0

    def test_instances_get_separate_traces(self):
        class Model:
            @repro.function
            def call(self, x):
                return x * 1.0

        a, b = Model(), Model()
        a.call(repro.constant(1.0))
        b.call(repro.constant(1.0))
        assert Model.call.trace_count == 2  # keyed by instance identity


class TestTracingSemantics:
    def test_python_side_effects_happen_at_trace_time(self):
        """Paper §4.1: non-TensorFlow code runs only while tracing."""
        calls = []

        @repro.function
        def f(x):
            calls.append(1)
            return x + 1.0

        f(repro.constant(1.0))
        f(repro.constant(2.0))
        f(repro.constant(3.0))
        assert len(calls) == 1

    def test_numpy_randomness_baked_in(self):
        """The add_noise example from §4.1: NumPy values become constants."""

        @repro.function
        def add_noise():
            eye = repro.eye(2)
            randn = np.random.randn(2, 2).astype(np.float32)
            return eye + randn

        first = add_noise().numpy()
        second = add_noise().numpy()
        np.testing.assert_array_equal(first, second)

    def test_library_randomness_stays_random(self):
        """Using primitive random ops preserves semantics under tracing."""

        @repro.function
        def add_noise():
            return repro.eye(2) + repro.random_normal([2, 2])

        first = add_noise().numpy()
        second = add_noise().numpy()
        assert not np.array_equal(first, second)

    def test_python_loop_unrolls(self):
        """Paper §4.1: the tracer fully unrolls Python loops."""

        @repro.function
        def f(x):
            for _ in range(5):
                x = x * 2.0
            return x

        concrete = f.get_concrete_function(repro.constant(1.0))
        from repro.runtime.context import context

        if context.graph_fusion:
            # Unrolling still happened — the five Muls now live inside
            # one fused region.
            (fused,) = concrete.func_graph.ops_by_type("FusedElementwise")
            assert fused.attrs["region"].op_names == ("Mul",) * 5
        else:
            assert len(concrete.func_graph.ops_by_type("Mul")) == 5
        assert float(f(repro.constant(1.0))) == 32.0

    def test_symbolic_leak_detected(self):
        leaked = {}

        @repro.function
        def f(x):
            leaked["tensor"] = x * 2.0
            return x

        f(repro.constant(1.0))
        with pytest.raises(FailedPreconditionError):
            leaked["tensor"] + 1.0

    def test_data_dependent_python_branch_lowers_by_default(self):
        # Autograph rewrites the tensor-dependent ``if`` onto ``cond``
        # at trace time: one trace serves both branch outcomes.
        @repro.function
        def f(x):
            if x > 0.0:
                return x
            return -x

        assert float(f(repro.constant(1.0))) == 1.0
        assert float(f(repro.constant(-3.0))) == 3.0
        assert f.trace_count == 1

    def test_data_dependent_python_branch_fails_cleanly_when_opted_out(self):
        @repro.function(autograph=False)
        def f(x):
            if x > 0.0:  # symbolic truth value
                return x
            return -x

        with pytest.raises(FailedPreconditionError, match="repro.cond"):
            f(repro.constant(1.0))
