"""Line-for-line reproductions of every code listing in the paper."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.core.checkpoint import Checkpoint
from repro.ops import nn_ops


class TestSection41Select:
    """The introductory `select` example (paper §4.1)."""

    def test_imperative(self):
        def select(vector):
            A = repro.constant([[1.0, 0.0]])
            return repro.matmul(A, vector)

        x = repro.constant([[2.0], [-2.0]])
        out = select(x)
        assert out.shape.as_list() == [1, 1]
        assert out.dtype is repro.float32
        assert float(out[0, 0]) == 2.0

    def test_staged(self):
        @repro.function
        def select(vector):
            A = repro.constant([[1.0, 0.0]])
            return repro.matmul(A, vector)

        out = select(repro.constant([[2.0], [-2.0]]))
        assert float(out[0, 0]) == 2.0


class TestListing1And2:
    def test_listing1_explicit_watch(self):
        x = repro.constant(3.0)
        with repro.GradientTape() as t1:
            with repro.GradientTape() as t2:
                t1.watch(x)
                t2.watch(x)
                y = x * x
            dy_dx = t2.gradient(y, x)
            d2y_dx2 = t1.gradient(dy_dx, x)
        assert float(dy_dx) == 6.0
        assert float(d2y_dx2) == 2.0

    def test_listing2_variables_auto_watched(self):
        x = repro.Variable(3.0)
        with repro.GradientTape() as t1:
            with repro.GradientTape() as t2:
                y = x * x
            dy_dx = t2.gradient(y, x)
            d2y_dx2 = t1.gradient(dy_dx, x)
        assert float(dy_dx) == 6.0
        assert float(d2y_dx2) == 2.0


class TestListing3:
    def test_net_and_state_matching(self, tmp_path):
        class Net(nn.Model):
            def __init__(self):
                super().__init__()
                self.v = repro.Variable(1.0)
                self.out = nn.Dense(1)

            def call(self, x, training=False):
                return self.out(nn_ops.softplus(x * self.v))

        net = Net()
        y = net(repro.constant([[0.5]]))
        assert y.shape.as_list() == [1, 1]

        net.v.assign(2.0)
        path = Checkpoint(net=net).save(str(tmp_path / "listing3"))
        restored = Net()
        status = Checkpoint(net=restored).restore(path)
        restored(repro.constant([[0.5]]))  # deferred variables created here
        status.assert_consumed()
        assert float(restored.v) == 2.0


class TestListing4And5:
    def test_listing4(self):
        a = repro.constant(1.0)  # stored on CPU
        b = a.gpu()  # stored on GPU
        assert "CPU" in a.device
        assert "GPU" in b.device

    def test_listing5(self):
        a = repro.constant(1.0)
        b = repro.constant(2.0)
        with repro.device("/gpu:0"):
            c = repro.add(a, b)
        assert c.numpy() == 3.0


class TestListing6:
    def test_two_graph_functions(self):
        repro.set_random_seed(0)

        @repro.function
        def lossy_matmul(W, x, training=True):
            outputs = repro.matmul(W, x)
            if training:
                outputs = nn_ops.dropout(outputs, 0.2)
            return outputs

        W = repro.random_normal((3, 5))
        x = repro.random_normal((5, 1))
        lossy_outputs = lossy_matmul(W, x, training=True)
        exact_outputs = lossy_matmul(W, x, training=False)
        np.testing.assert_allclose(
            exact_outputs.numpy(), (W.numpy() @ x.numpy()), rtol=1e-5
        )
        assert lossy_matmul.trace_count == 2  # transparently two functions


class TestListing7:
    def test_verbatim(self):
        v = repro.Variable(0.0)

        @repro.function
        def mutate():
            v.assign_add(1.0)
            return v.read_value()

        mutate()
        assert float(v.read_value()) == 1.0
        v.assign_add(1.0)
        assert float(v.read_value()) == 2.0
        mutate()
        assert float(v.read_value()) == 3.0


class TestListing8:
    def test_verbatim(self):
        @repro.function
        def inner(a):
            return nn_ops.relu(a)

        @repro.function
        def outer(a, b):
            return inner(repro.matmul(a, b))

        out = outer(repro.eye(3), repro.diag(repro.constant([-1.0, 1.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), np.diag([0.0, 1.0, 2.0]))

    def test_figure2_graph_structure(self):
        """Figure 2: outer's graph holds a call op executing inner."""

        @repro.function
        def inner(a):
            return nn_ops.relu(a)

        @repro.function
        def outer(a, b):
            return inner(repro.matmul(a, b))

        outer(repro.eye(2), repro.eye(2))
        concrete = outer.get_concrete_function(repro.eye(2), repro.eye(2))
        ops = {n.op_name for n in concrete.func_graph.nodes}
        assert "MatMul" in ops
        assert "PartitionedCall" in ops
        (call_node,) = concrete.func_graph.ops_by_type("PartitionedCall")
        inner_ops = {n.op_name for n in call_node.attrs["f"].graph.nodes}
        assert "Relu" in inner_ops


class TestSection41AddNoise:
    def test_numpy_noise_is_baked_in_but_op_noise_is_not(self):
        repro.set_random_seed(11)

        @repro.function
        def add_noise_numpy():
            eye = repro.eye(5)
            randn = np.random.randn(5, 5).astype(np.float32)
            return eye + randn

        @repro.function
        def add_noise_ops():
            eye = repro.eye(5)
            randn = repro.random_normal([5, 5])
            return eye + randn

        a, b = add_noise_numpy().numpy(), add_noise_numpy().numpy()
        np.testing.assert_array_equal(a, b)  # constant-folded NumPy value
        c, d = add_noise_ops().numpy(), add_noise_ops().numpy()
        assert not np.array_equal(c, d)  # stateful op stays random
