"""Cross-feature integration: workflows spanning multiple subsystems."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.core import saved_function
from repro.core.checkpoint import Checkpoint


class TestCheckpointedTrainingResume:
    def test_resume_mid_training_is_exact(self, tmp_path):
        """Model + optimizer slots + iterator position all round-trip."""
        repro.set_random_seed(0)
        rng = np.random.default_rng(0)
        x_np = rng.normal(size=(40, 4)).astype(np.float32)
        y_np = (x_np @ rng.normal(size=(4, 1))).astype(np.float32)

        def build():
            repro.set_random_seed(7)
            model = nn.Dense(1)
            model(repro.constant(x_np[:1]))
            optimizer = nn.SGD(0.05, momentum=0.9)
            dataset = nn.Dataset([x_np, y_np], batch_size=10).repeat()
            iterator = dataset.make_iterator()

            @repro.function
            def step(bx, by):
                with repro.GradientTape() as tape:
                    loss = nn.mean_squared_error(by, model(bx))
                grads = tape.gradient(loss, model.trainable_variables)
                optimizer.apply_gradients(zip(grads, model.trainable_variables))
                return loss

            return model, optimizer, iterator, step

        # Train 6 steps straight through.
        model_a, opt_a, it_a, step_a = build()
        losses_straight = []
        for _ in range(6):
            bx, by = it_a.get_next()
            losses_straight.append(float(step_a(bx, by)))

        # Train 3 steps, checkpoint, restore into a fresh program, 3 more.
        model_b, opt_b, it_b, step_b = build()
        losses_resumed = []
        for _ in range(3):
            bx, by = it_b.get_next()
            losses_resumed.append(float(step_b(bx, by)))
        path = Checkpoint(model=model_b, opt=opt_b, it=it_b).save(
            str(tmp_path / "mid")
        )

        model_c, opt_c, it_c, step_c = build()
        # Exercise slot creation so the optimizer graph exists, then restore.
        bx, by = it_c.get_next()
        step_c(bx, by)
        status = Checkpoint(model=model_c, opt=opt_c, it=it_c).restore(path)
        status.assert_consumed()
        for _ in range(3):
            bx, by = it_c.get_next()
            losses_resumed.append(float(step_c(bx, by)))

        np.testing.assert_allclose(losses_resumed, losses_straight, rtol=1e-5)


class TestExportedModelAfterDistributedTraining:
    def test_train_distributed_then_serve_from_export(self, tmp_path):
        from repro.distribute import (
            ClusterSpec,
            DataParallelStrategy,
            connect_to_cluster,
            shutdown_cluster,
        )

        connect_to_cluster(ClusterSpec({"pool": 2}))
        try:
            strategy = DataParallelStrategy(
                ["/job:pool/task:0/device:CPU:0", "/job:pool/task:1/device:CPU:0"]
            )
            rng = np.random.default_rng(1)
            x_np = rng.normal(size=(16, 3)).astype(np.float32)
            y_np = (x_np @ np.float32([[1.0], [0.0], [-1.0]])).astype(np.float32)
            repro.set_random_seed(1)
            model = nn.Dense(1)
            model(repro.constant(x_np))
            opt = nn.SGD(0.2)
            for _ in range(40):
                strategy.gradient_step(
                    lambda bx, by: nn.mean_squared_error(by, model(bx)),
                    (repro.constant(x_np), repro.constant(y_np)),
                    model.trainable_variables,
                    opt,
                )
        finally:
            shutdown_cluster()

        @repro.function
        def serve(x):
            return model(x)

        example = repro.constant(x_np[:4])
        path = saved_function.save(serve, str(tmp_path / "served"), example)
        loaded = saved_function.load(path)
        np.testing.assert_allclose(
            loaded(example).numpy(), serve(example).numpy(), rtol=1e-6
        )
        np.testing.assert_allclose(
            loaded(example).numpy(), y_np[:4], atol=0.2
        )


class TestProfilerGuidedStaging:
    def test_analysis_step_identifies_hot_block(self):
        """The §4.1 workflow: profile, find the hot block, stage it."""
        repro.set_random_seed(2)
        model = nn.Sequential([nn.Dense(64, activation=repro.tanh), nn.Dense(1)])
        x = repro.constant(np.random.randn(32, 16).astype(np.float32))
        model(x)

        def hot_block(v):
            out = model(v)
            for _ in range(20):  # many small ops: the staging sweet spot
                out = repro.tanh(out * 1.1)
            return repro.reduce_sum(out)

        with repro.profiler.Profile() as prof:
            observed = hot_block(x)
            repro.sync()  # async/lazy modes: run the kernels in-profile
        del observed
        # The analysis sees per-op costs; in lazy mode the elementwise
        # chain dispatches as fused regions, so count covered ops too.
        assert prof.total_ops + prof.fused_covered_ops > 20
        staged = repro.function(hot_block)
        assert float(staged(x)) == pytest.approx(float(hot_block(x)), rel=1e-5)


class TestResNetOnSimulatedAccelerators:
    def test_same_model_three_devices(self):
        """One model definition; CPU, simulated GPU, simulated TPU."""
        import repro.xla  # TPU bridge

        repro.set_random_seed(3)
        model = nn.resnet.resnet_tiny(num_classes=4)
        x = repro.constant(np.random.randn(2, 8, 8, 3).astype(np.float32))
        reference = model(x, training=False).numpy()

        with repro.device("/gpu:0"):
            gpu_out = model(x, training=False)
        assert "GPU:0" in gpu_out.device
        np.testing.assert_allclose(gpu_out.cpu().numpy(), reference, rtol=1e-5)

        @repro.function
        def forward(v):
            return model(v, training=False)

        with repro.device("/tpu:0"):
            tpu_out = forward(x)
        np.testing.assert_allclose(tpu_out.cpu().numpy(), reference, rtol=1e-4, atol=1e-5)
