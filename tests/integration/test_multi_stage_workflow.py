"""End-to-end reproduction of the paper's multi-stage workflow (§4.1).

1. Implementation — develop and debug a single-stage imperative program.
2. Analysis — identify performance-critical blocks.
3. Staging — decorate them with ``function``.

These tests verify the *semantic* claim behind the workflow: decorating
is the only change, and results match.
"""

import numpy as np
import pytest

import repro
from repro import nn
from repro.compat import v1


def _make_data(n=64, din=6, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, din)).astype(np.float32)
    w = rng.normal(size=(din, classes))
    labels = (x @ w).argmax(axis=1).astype(np.int64)
    return x, labels


class TestThreeExecutionModes:
    """The same model runs imperatively, staged, and in a classic graph
    (the three lines of Figures 3 and 4)."""

    def _train(self, mode: str, steps: int = 30):
        repro.set_random_seed(42)
        x_np, y_np = _make_data()
        model = nn.Sequential(
            [nn.Dense(16, activation=repro.tanh), nn.Dense(4)]
        )
        opt = nn.SGD(0.5)
        x, y = repro.constant(x_np), repro.constant(y_np)
        model(x)  # build under the fixed seed

        def step_fn(bx, by):
            with repro.GradientTape() as tape:
                logits = model(bx)
                loss = nn.sparse_softmax_cross_entropy(by, logits)
            grads = tape.gradient(loss, model.trainable_variables)
            opt.apply_gradients(zip(grads, model.trainable_variables))
            return loss

        if mode == "eager":
            run = lambda: step_fn(x, y)
        elif mode == "staged":
            staged = repro.function(step_fn)
            run = lambda: staged(x, y)
        elif mode == "v1":
            g = v1.GraphBuilder()
            with g.building():
                px = g.placeholder(repro.float32, [None, 6])
                py = g.placeholder(repro.int64, [None])
                logits = model(px)
                loss = nn.sparse_softmax_cross_entropy(py, logits)
                grads = v1.gradients(loss, model.trainable_variables)
                train_ops = [
                    v.assign_sub(gr * 0.5)
                    for gr, v in zip(grads, model.trainable_variables)
                ]
            sess = v1.Session(g)
            def run():
                out = sess.run([loss] + train_ops, feed_dict={px: x, py: y})
                return out[0]
        else:
            raise AssertionError(mode)

        losses = [float(run()) for _ in range(steps)]
        return losses

    def test_all_modes_converge_identically(self):
        eager = self._train("eager")
        staged = self._train("staged")
        classic = self._train("v1")
        assert eager[-1] < eager[0] * 0.5
        np.testing.assert_allclose(staged, eager, rtol=1e-3, atol=1e-5)
        np.testing.assert_allclose(classic, eager, rtol=1e-3, atol=1e-5)


class TestSelectiveStaging:
    def test_stage_only_the_hot_block(self):
        """Mixing imperative control with a staged inner block."""
        repro.set_random_seed(1)
        model = nn.Dense(1)
        opt = nn.SGD(0.1)
        x_np = np.random.randn(32, 4).astype(np.float32)
        y_np = (x_np.sum(axis=1, keepdims=True)).astype(np.float32)

        @repro.function
        def hot_step(bx, by):  # staged: forward + backward + update
            with repro.GradientTape() as tape:
                loss = nn.mean_squared_error(by, model(bx))
            grads = tape.gradient(loss, model.trainable_variables)
            opt.apply_gradients(zip(grads, model.trainable_variables))
            return loss

        losses = []
        for epoch in range(20):  # imperative outer loop, Python logging
            loss = hot_step(repro.constant(x_np), repro.constant(y_np))
            losses.append(float(loss))
            if losses[-1] < 1e-3:  # imperative, data-dependent control
                break
        assert losses[-1] < losses[0]
        assert hot_step.trace_count <= 2


class TestTrainingWithInputPipeline:
    def test_epochs_over_dataset(self):
        repro.set_random_seed(3)
        x_np, y_np = _make_data(n=120)
        ds = nn.Dataset([x_np, y_np], batch_size=30)
        model = nn.Sequential([nn.Dense(16, activation=repro.tanh), nn.Dense(4)])
        opt = nn.Adam(0.05)

        @repro.function
        def step(bx, by):
            with repro.GradientTape() as tape:
                loss = nn.sparse_softmax_cross_entropy(by, model(bx))
            grads = tape.gradient(loss, model.trainable_variables)
            opt.apply_gradients(zip(grads, model.trainable_variables))
            return loss

        first = last = None
        for _epoch in range(8):
            for bx, by in ds:
                last = float(step(bx, by))
                if first is None:
                    first = last
        assert last < first * 0.5
        assert step.trace_count <= 2

    def test_accuracy_improves(self):
        repro.set_random_seed(5)
        x_np, y_np = _make_data(n=200, seed=2)
        model = nn.Sequential([nn.Dense(32, activation=repro.tanh), nn.Dense(4)])
        opt = nn.Adam(0.05)
        x, y = repro.constant(x_np), repro.constant(y_np)

        def accuracy():
            preds = repro.argmax(model(x), axis=1).numpy()
            return (preds == y_np).mean()

        base = accuracy()

        @repro.function
        def step():
            with repro.GradientTape() as tape:
                loss = nn.sparse_softmax_cross_entropy(y, model(x))
            grads = tape.gradient(loss, model.trainable_variables)
            opt.apply_gradients(zip(grads, model.trainable_variables))
            return loss

        for _ in range(60):
            step()
        assert accuracy() > max(base, 0.8)
