"""Compatibility layers.

:mod:`repro.compat.v1` reimplements classic define-before-run
TensorFlow — the "TF" baseline in the paper's evaluation (§6).
"""

from repro.compat import v1

__all__ = ["v1"]
