"""Classic graph-mode TensorFlow: the paper's "TF" baseline.

"In TensorFlow, the dataflow graph defines the union of all the
computations that the author of the graph might be interested in; the
actual computation to execute is defined when the programmer requests
the runtime to fetch the concrete values of some set of tensors
resident in the graph" (paper §5).

This module provides that workflow over the same graph substrate the
tracer uses: build a default :class:`~repro.graph.graph.Graph` with
placeholders and variables, then repeatedly ``Session.run(fetches,
feed_dict)`` — the session prunes the graph to what the fetches need
(per fetch-set execution plans are cached) and executes it.  Because
both execution paths share one op set and one executor, the TF-vs-
TFE+function comparison in Figures 3–4 measures exactly what the paper
measured: per-step Python overhead, not different kernels.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.framework import dtypes as _dtypes
from repro.framework import nest
from repro.framework.errors import InvalidArgumentError
from repro.tensor import Tensor, TensorBase, convert_to_tensor
from repro.graph.executor import GraphRunner
from repro.graph.function import placeholder as _graph_placeholder
from repro.graph.graph import Graph, SymbolicTensor

__all__ = ["GraphBuilder", "Session", "gradients"]


class GraphBuilder:
    """A classic TF program under construction.

    Usage::

        g = v1.GraphBuilder()
        with g.building():
            x = g.placeholder(repro.float32, [None, 4])
            w = repro.Variable(...)        # variables stay eager objects
            loss = ...
            train_op = ...
        with v1.Session(g) as sess:
            sess.run(train_op, feed_dict={x: batch})
    """

    def __init__(self, name: str = "v1_graph") -> None:
        self.graph = Graph(name=name)

    def building(self):
        """Context manager: ops execute symbolically into this graph."""
        return self.graph.as_default()

    def placeholder(self, dtype, shape=None, name: str = "Placeholder") -> SymbolicTensor:
        """A graph input to be fed at ``Session.run`` time."""
        return _graph_placeholder(self.graph, dtype, shape, name=name)


class Session:
    """Executes fetches from a graph, TensorFlow-1 style.

    Each distinct fetch set gets a cached execution plan (the analogue
    of TF's per-signature executors), so steady-state ``run`` calls do
    no graph analysis.
    """

    def __init__(self, graph_or_builder) -> None:
        self.graph: Graph = (
            graph_or_builder.graph
            if isinstance(graph_or_builder, GraphBuilder)
            else graph_or_builder
        )
        self._runners: dict[tuple, GraphRunner] = {}

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._runners.clear()

    def run(self, fetches, feed_dict: Optional[dict] = None):
        """Compute ``fetches``, feeding placeholders from ``feed_dict``.

        Only the subgraph the fetches depend on executes — the classic
        fetch-driven pruning behaviour.
        """
        from repro.graph.graph import Node

        flat_fetches = nest.flatten(fetches)
        sym_fetches = []
        for f in flat_fetches:
            if f is None:
                continue
            if not isinstance(f, (SymbolicTensor, Node)):
                raise InvalidArgumentError(
                    f"Session.run fetches must be graph tensors or operation "
                    f"nodes, got {f!r}"
                )
            if f.graph is not self.graph:
                raise InvalidArgumentError(
                    f"Fetch {f!r} is not from this session's graph"
                )
            sym_fetches.append(f)

        key = tuple(id(f) for f in sym_fetches)
        runner = self._runners.get(key)
        if runner is None:
            # Classic semantics: run only what the fetches need.
            runner = GraphRunner(self.graph, sym_fetches, include_side_effects=False)
            self._runners[key] = runner

        feeds = []
        if feed_dict:
            for ph, value in feed_dict.items():
                if not isinstance(ph, SymbolicTensor):
                    raise InvalidArgumentError(
                        f"feed_dict keys must be placeholders, got {ph!r}"
                    )
                if not isinstance(value, Tensor):
                    value = convert_to_tensor(value, dtype=ph.dtype)
                feeds.append((ph, value))
        results = runner.run(feeds)

        it = iter(results)
        flat_out = [None if f is None else next(it) for f in flat_fetches]
        return nest.pack_sequence_as(fetches, flat_out)


def gradients(ys, xs, grad_ys=None) -> list:
    """Symbolic gradients inside a graph (``tf.gradients``).

    Replays the graph's construction order through the same reverse-mode
    engine the tape uses; must be called while the graph is still the
    default (so the gradient ops land in it).
    """
    from repro.core.backprop import imperative_grad
    from repro.core.tape import OpRecord
    from repro.runtime.context import context

    graph = context.current_graph()
    if graph is None:
        raise InvalidArgumentError(
            "v1.gradients must be called inside a graph-building context"
        )
    ys_flat = nest.flatten(ys)
    xs_flat = []
    for x in nest.flatten(xs):
        handle = getattr(x, "handle", None)
        if handle is not None and not isinstance(x, TensorBase):
            # A Variable: gradients accumulate on its in-graph handle node.
            sym = graph._const_cache.get(id(handle))
            if sym is None:
                raise InvalidArgumentError(
                    f"Variable {x.name!r} is not used in this graph"
                )
            xs_flat.append(sym)
        else:
            xs_flat.append(x)
    records = [
        OpRecord(n.op_name, n.attrs, list(n.inputs), list(n.outputs))
        for n in graph.nodes
    ]
    if grad_ys is None:
        seeds = [None] * len(ys_flat)
    else:
        seeds = nest.flatten(grad_ys)
    return imperative_grad(records, ys_flat, xs_flat, seeds)
