"""Shape algebra with unknown dimensions.

Graph functions are traced with *abstract* tensor types (paper §4.6:
"tensors are represented as abstract types (numerical type and shape
tuples)").  An abstract shape may have unknown dimensions (``None``) or
be entirely unknown (unknown rank), so the shape class implements the
partial-order operations the tracer and shape-inference functions need:
compatibility, merging, broadcasting, and concatenation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.framework.errors import InvalidArgumentError

__all__ = ["TensorShape", "as_shape", "broadcast_shapes"]

DimValue = Optional[int]


def _check_dim(dim) -> DimValue:
    if dim is None:
        return None
    dim = int(dim)
    if dim < 0:
        raise InvalidArgumentError(f"Shape dimensions must be >= 0, got {dim}")
    return dim


class TensorShape:
    """The (possibly partially known) shape of a tensor.

    ``TensorShape(None)`` is the unknown-rank shape; ``TensorShape([2,
    None])`` is rank 2 with an unknown second dimension.  Instances are
    immutable and hashable so they can key the trace cache.
    """

    __slots__ = ("_dims",)

    def __init__(self, dims: Union[None, int, Iterable] = None) -> None:
        if dims is None:
            self._dims: Optional[tuple[DimValue, ...]] = None
        elif isinstance(dims, TensorShape):
            self._dims = dims._dims
        elif isinstance(dims, (int,)):
            self._dims = (_check_dim(dims),)
        else:
            self._dims = tuple(_check_dim(d) for d in dims)

    # -- basic protocol ------------------------------------------------
    @property
    def rank(self) -> Optional[int]:
        return None if self._dims is None else len(self._dims)

    @property
    def dims(self) -> Optional[tuple[DimValue, ...]]:
        return self._dims

    @property
    def ndims(self) -> Optional[int]:
        return self.rank

    def __len__(self) -> int:
        if self._dims is None:
            raise ValueError("Cannot take len() of a shape with unknown rank")
        return len(self._dims)

    def __iter__(self) -> Iterator[DimValue]:
        if self._dims is None:
            raise ValueError("Cannot iterate a shape with unknown rank")
        return iter(self._dims)

    def __getitem__(self, key):
        if self._dims is None:
            if isinstance(key, slice):
                return TensorShape(None)
            return None
        if isinstance(key, slice):
            return TensorShape(self._dims[key])
        return self._dims[key]

    def __bool__(self) -> bool:
        return self._dims is not None

    # -- predicates ----------------------------------------------------
    @property
    def is_fully_defined(self) -> bool:
        return self._dims is not None and all(d is not None for d in self._dims)

    def num_elements(self) -> Optional[int]:
        """Total element count, or None if not fully defined."""
        if not self.is_fully_defined:
            return None
        n = 1
        for d in self._dims:  # type: ignore[union-attr]
            n *= d  # type: ignore[operator]
        return n

    def is_compatible_with(self, other) -> bool:
        """True if some fully-defined shape satisfies both self and other."""
        other = as_shape(other)
        if self._dims is None or other._dims is None:
            return True
        if len(self._dims) != len(other._dims):
            return False
        return all(
            a is None or b is None or a == b
            for a, b in zip(self._dims, other._dims)
        )

    def is_subtype_of(self, other) -> bool:
        """True if every tensor with this shape also matches ``other``.

        Used by the trace cache: a concrete input shape is a subtype of
        the (possibly relaxed) shape recorded in a signature.
        """
        other = as_shape(other)
        if other._dims is None:
            return True
        if self._dims is None:
            return False
        if len(self._dims) != len(other._dims):
            return False
        return all(b is None or a == b for a, b in zip(self._dims, other._dims))

    # -- algebra ---------------------------------------------------------
    def merge_with(self, other) -> "TensorShape":
        """The most specific shape compatible with both, or raise."""
        other = as_shape(other)
        if self._dims is None:
            return other
        if other._dims is None:
            return self
        if len(self._dims) != len(other._dims):
            raise InvalidArgumentError(
                f"Shapes {self} and {other} have incompatible ranks"
            )
        merged = []
        for a, b in zip(self._dims, other._dims):
            if a is None:
                merged.append(b)
            elif b is None or a == b:
                merged.append(a)
            else:
                raise InvalidArgumentError(f"Shapes {self} and {other} are incompatible")
        return TensorShape(merged)

    def most_general(self, other) -> "TensorShape":
        """The most specific shape that both shapes are subtypes of.

        This drives shape *relaxation* in the trace cache: repeated
        retraces with varying dimensions generalize toward None dims.
        """
        other = as_shape(other)
        if self._dims is None or other._dims is None:
            return TensorShape(None)
        if len(self._dims) != len(other._dims):
            return TensorShape(None)
        return TensorShape(
            a if (a is not None and a == b) else None
            for a, b in zip(self._dims, other._dims)
        )

    def relaxed(self) -> "TensorShape":
        """This shape with every dimension forgotten (rank preserved).

        The fully-symbolic signature the trace cache falls back to when
        repeated widening fails to converge: any same-rank tensor is a
        subtype of the relaxed shape.
        """
        if self._dims is None:
            return self
        return TensorShape([None] * len(self._dims))

    @property
    def num_unknown(self) -> Optional[int]:
        """How many dimensions are unknown (None for unknown rank)."""
        if self._dims is None:
            return None
        return sum(1 for d in self._dims if d is None)

    def concatenate(self, other) -> "TensorShape":
        other = as_shape(other)
        if self._dims is None or other._dims is None:
            return TensorShape(None)
        return TensorShape(self._dims + other._dims)

    def as_list(self) -> list[DimValue]:
        if self._dims is None:
            raise ValueError("Cannot convert unknown-rank shape to a list")
        return list(self._dims)

    def as_tuple(self) -> tuple[DimValue, ...]:
        if self._dims is None:
            raise ValueError("Cannot convert unknown-rank shape to a tuple")
        return self._dims

    # -- hashing / equality ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        try:
            other_shape = as_shape(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented
        return self._dims == other_shape._dims

    def __hash__(self) -> int:
        return hash(self._dims)

    def __repr__(self) -> str:
        if self._dims is None:
            return "TensorShape(None)"
        return f"TensorShape({list(self._dims)})"

    def __str__(self) -> str:
        if self._dims is None:
            return "<unknown>"
        return "(" + ", ".join("?" if d is None else str(d) for d in self._dims) + ")"

    def __add__(self, other) -> "TensorShape":
        return self.concatenate(other)

    def __radd__(self, other) -> "TensorShape":
        return as_shape(other).concatenate(self)


def as_shape(value) -> TensorShape:
    """Convert ``value`` to a TensorShape."""
    if isinstance(value, TensorShape):
        return value
    if value is None or isinstance(value, (int, tuple, list)):
        return TensorShape(value)
    if hasattr(value, "__iter__"):
        return TensorShape(value)
    raise TypeError(f"Cannot convert {value!r} to a TensorShape")


def broadcast_shapes(a, b) -> TensorShape:
    """NumPy-style broadcasting over partially-known shapes."""
    a, b = as_shape(a), as_shape(b)
    if a.dims is None or b.dims is None:
        return TensorShape(None)
    ra, rb = list(a.dims), list(b.dims)
    # Left-pad the shorter shape with 1s.
    if len(ra) < len(rb):
        ra = [1] * (len(rb) - len(ra)) + ra
    else:
        rb = [1] * (len(ra) - len(rb)) + rb
    out: list[DimValue] = []
    for da, db in zip(ra, rb):
        if da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        elif da is None or db is None:
            # One side may still turn out to be 1 at run time.
            if da is None and db is None:
                out.append(None)
            else:
                out.append(da if db is None else db)
        elif da == db:
            out.append(da)
        else:
            raise InvalidArgumentError(f"Shapes {a} and {b} are not broadcastable")
    return TensorShape(out)
