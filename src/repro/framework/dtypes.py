"""Data types for tensors.

Tensors are *typed* multi-dimensional arrays (paper §4, "Terminology").
Each :class:`DType` wraps a NumPy dtype and adds the metadata the rest
of the system needs: whether the type participates in gradient
computation (only floating types do), and how Python scalars promote
when they meet tensors.

The promotion rules are deliberately conservative, mirroring
TensorFlow's: two tensors must agree exactly on dtype (no silent
float32 + float64 upcast), while weakly-typed Python scalars adopt the
dtype of the tensor they are combined with.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DType",
    "float16",
    "float32",
    "float64",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "bool_",
    "complex64",
    "complex128",
    "as_dtype",
    "result_type",
]


class DType:
    """A tensor element type.

    Instances are interned: there is exactly one ``DType`` per name, so
    identity comparison (``is``) and equality coincide.
    """

    _registry: dict[str, "DType"] = {}

    def __init__(self, name: str, np_dtype: np.dtype) -> None:
        if name in DType._registry:
            raise ValueError(f"Duplicate dtype registration: {name!r}")
        self._name = name
        self._np_dtype = np.dtype(np_dtype)
        # Instances are interned, so type classification is computed once
        # here and stored as plain attributes: ``dtype.is_floating`` sits
        # on the operator-dispatch hot path (scalar operand promotion),
        # where a per-access ``np.issubdtype`` probe is measurable.
        self.is_floating = bool(np.issubdtype(self._np_dtype, np.floating))
        self.is_complex = bool(
            np.issubdtype(self._np_dtype, np.complexfloating)
        )
        self.is_integer = bool(np.issubdtype(self._np_dtype, np.integer))
        self.is_bool = self._np_dtype == np.bool_
        #: Whether gradients may flow through tensors of this type.
        self.is_differentiable = self.is_floating or self.is_complex
        #: Size in bytes of one element.
        self.size = int(self._np_dtype.itemsize)
        DType._registry[name] = self

    @property
    def name(self) -> str:
        return self._name

    @property
    def as_numpy_dtype(self) -> np.dtype:
        return self._np_dtype

    @property
    def min(self):
        if self.is_bool:
            return False
        if self.is_floating:
            return float(np.finfo(self._np_dtype).min)
        return int(np.iinfo(self._np_dtype).min)

    @property
    def max(self):
        if self.is_bool:
            return True
        if self.is_floating:
            return float(np.finfo(self._np_dtype).max)
        return int(np.iinfo(self._np_dtype).max)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DType):
            return self._name == other._name
        try:
            return self._np_dtype == np.dtype(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._name)

    def __reduce__(self):
        # DTypes are interned singletons compared by identity in hot
        # paths; pickling (e.g. op attrs crossing a device-worker
        # process boundary) must rehydrate to the interned instance,
        # not a copy.
        return (as_dtype, (self._name,))

    def __repr__(self) -> str:
        return f"repro.{self._name}"

    def __str__(self) -> str:
        return self._name


float16 = DType("float16", np.float16)
float32 = DType("float32", np.float32)
float64 = DType("float64", np.float64)
int8 = DType("int8", np.int8)
int16 = DType("int16", np.int16)
int32 = DType("int32", np.int32)
int64 = DType("int64", np.int64)
uint8 = DType("uint8", np.uint8)
bool_ = DType("bool", np.bool_)
complex64 = DType("complex64", np.complex64)
complex128 = DType("complex128", np.complex128)

_NP_TO_DTYPE = {d.as_numpy_dtype: d for d in DType._registry.values()}

# Opaque handle types. Declared *after* _NP_TO_DTYPE so NumPy object
# arrays never silently convert to them: `resource` tensors (variable
# handles, §4.3) and `variant` tensors (tensor lists backing while-loop
# gradients) are only created deliberately by the runtime.
resource = DType("resource", np.object_)
variant = DType("variant", np.dtype(object))


def as_dtype(value) -> DType:
    """Convert ``value`` (DType, numpy dtype, str, or Python type) to a DType."""
    if isinstance(value, DType):
        return value
    if isinstance(value, str) and value in DType._registry:
        return DType._registry[value]
    if value is float:
        return float32
    if value is int:
        return int32
    if value is bool:
        return bool_
    if value is complex:
        return complex64
    try:
        np_dtype = np.dtype(value)
    except TypeError as exc:
        raise TypeError(f"Cannot convert {value!r} to a repro DType") from exc
    if np_dtype in _NP_TO_DTYPE:
        return _NP_TO_DTYPE[np_dtype]
    raise TypeError(f"NumPy dtype {np_dtype} has no corresponding repro DType")


def default_float() -> DType:
    """The dtype inferred for Python floats (matches TF: float32)."""
    return float32


def default_int() -> DType:
    """The dtype inferred for Python ints (matches TF: int32)."""
    return int32


def result_type(a: DType, b: DType) -> DType:
    """Binary-op result dtype.

    Strict: mixed tensor dtypes are an error, surfaced by the caller.
    ``result_type`` itself only answers the question for *equal* types
    or for the weak-scalar promotions handled in Tensor conversion.
    """
    if a == b:
        return a
    raise TypeError(
        f"Incompatible dtypes {a} and {b}: repro does not implicitly promote "
        "tensor dtypes; cast explicitly with repro.cast()."
    )
