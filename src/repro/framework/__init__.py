"""Framework-level building blocks shared by every subsystem.

This subpackage holds the pieces that the paper's terminology section
(§4) takes for granted: typed multi-dimensional arrays need a dtype
system (:mod:`repro.framework.dtypes`), a shape algebra that tolerates
unknown dimensions (:mod:`repro.framework.tensor_shape`), structured
input/output handling for the tracing machinery
(:mod:`repro.framework.nest`), and a small exception hierarchy
(:mod:`repro.framework.errors`).
"""

from repro.framework import dtypes
from repro.framework import errors
from repro.framework import nest
from repro.framework.tensor_shape import TensorShape

__all__ = ["dtypes", "errors", "nest", "TensorShape"]
