"""Structured (nested) value utilities.

The tracing machinery (paper §4.6) must infer input signatures for
arbitrary Python call conventions: positional/keyword arguments holding
tensors inside tuples, lists, dicts, and namedtuples.  ``nest``
implements the flatten/pack pair that makes structures first-class:

* :func:`flatten` — deterministic left-to-right leaf extraction,
* :func:`pack_sequence_as` — inverse of flatten given a template,
* :func:`map_structure` — apply a function leaf-wise,
* :func:`assert_same_structure` — structural compatibility check.

Dict keys are traversed in sorted order so that two dicts that compare
equal produce identical flat sequences regardless of insertion order —
a requirement for stable trace-cache keys.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = [
    "is_nested",
    "flatten",
    "pack_sequence_as",
    "map_structure",
    "assert_same_structure",
    "flatten_with_paths",
]


def _is_namedtuple(value) -> bool:
    return isinstance(value, tuple) and hasattr(value, "_fields")


def is_nested(value) -> bool:
    """True for the container types nest recurses into."""
    return isinstance(value, (list, tuple, dict))


def _sorted_items(d: dict):
    try:
        keys = sorted(d)
    except TypeError:
        # Unsortable heterogeneous keys: fall back to repr order, still
        # deterministic for equal dicts.
        keys = sorted(d, key=repr)
    return [(k, d[k]) for k in keys]


def flatten(structure) -> list:
    """Flatten an arbitrarily nested structure into a list of leaves."""
    out: list = []
    _flatten_into(structure, out)
    return out


def _flatten_into(structure, out: list) -> None:
    if isinstance(structure, dict):
        for _, v in _sorted_items(structure):
            _flatten_into(v, out)
    elif _is_namedtuple(structure):
        for v in structure:
            _flatten_into(v, out)
    elif isinstance(structure, (list, tuple)):
        for v in structure:
            _flatten_into(v, out)
    else:
        out.append(structure)


def flatten_with_paths(structure, prefix: tuple = ()) -> list[tuple[tuple, Any]]:
    """Like flatten, but each leaf is paired with its access path."""
    out: list[tuple[tuple, Any]] = []
    if isinstance(structure, dict):
        for k, v in _sorted_items(structure):
            out.extend(flatten_with_paths(v, prefix + (k,)))
    elif isinstance(structure, (list, tuple)):
        for i, v in enumerate(structure):
            out.extend(flatten_with_paths(v, prefix + (i,)))
    else:
        out.append((prefix, structure))
    return out


def pack_sequence_as(template, flat: Sequence):
    """Rebuild a structure shaped like ``template`` from flat leaves."""
    flat = list(flat)
    expected = len(flatten(template))
    if len(flat) != expected:
        raise ValueError(
            f"Flat sequence has {len(flat)} leaves but the template "
            f"structure expects {expected}"
        )
    result, consumed = _pack(template, flat, 0)
    assert consumed == len(flat)
    return result


def _pack(template, flat: list, index: int):
    if isinstance(template, dict):
        items = []
        for k, v in _sorted_items(template):
            packed, index = _pack(v, flat, index)
            items.append((k, packed))
        return type(template)(items), index
    if _is_namedtuple(template):
        values = []
        for v in template:
            packed, index = _pack(v, flat, index)
            values.append(packed)
        return type(template)(*values), index
    if isinstance(template, (list, tuple)):
        values = []
        for v in template:
            packed, index = _pack(v, flat, index)
            values.append(packed)
        return type(template)(values), index
    return flat[index], index + 1


def assert_same_structure(a, b) -> None:
    """Raise ValueError unless a and b have identical nesting structure."""
    if is_nested(a) != is_nested(b):
        raise ValueError(f"Structures differ: {a!r} vs {b!r}")
    if isinstance(a, dict):
        if not isinstance(b, dict) or set(a) != set(b):
            raise ValueError(f"Dict structures differ: {a!r} vs {b!r}")
        for k in a:
            assert_same_structure(a[k], b[k])
    elif _is_namedtuple(a) or _is_namedtuple(b):
        if type(a) is not type(b):
            raise ValueError(f"Namedtuple types differ: {type(a)} vs {type(b)}")
        for x, y in zip(a, b):
            assert_same_structure(x, y)
    elif isinstance(a, (list, tuple)):
        if type(a) is not type(b) or len(a) != len(b):
            raise ValueError(f"Sequence structures differ: {a!r} vs {b!r}")
        for x, y in zip(a, b):
            assert_same_structure(x, y)


def map_structure(fn: Callable, *structures):
    """Apply ``fn`` leaf-wise across one or more parallel structures."""
    if not structures:
        raise ValueError("map_structure requires at least one structure")
    first = structures[0]
    for other in structures[1:]:
        assert_same_structure(first, other)
    flats = [flatten(s) for s in structures]
    mapped = [fn(*leaves) for leaves in zip(*flats)]
    return pack_sequence_as(first, mapped)
