"""Exception hierarchy.

A small, flat hierarchy modelled on TensorFlow's ``tf.errors``: every
runtime failure raised by the library derives from :class:`ReproError`
so callers can catch library errors without catching unrelated Python
failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidArgumentError",
    "NotFoundError",
    "AlreadyExistsError",
    "FailedPreconditionError",
    "OutOfRangeError",
    "UnimplementedError",
    "InternalError",
    "UnavailableError",
    "DeadlineExceededError",
    "AbortedError",
    "ResourceExhaustedError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro runtime."""


class InvalidArgumentError(ReproError, ValueError):
    """An operation received an argument with an invalid value or shape."""


class NotFoundError(ReproError, KeyError):
    """A requested entity (op, kernel, device, node) does not exist."""


class AlreadyExistsError(ReproError, ValueError):
    """An entity that must be unique was registered twice."""


class FailedPreconditionError(ReproError, RuntimeError):
    """The system is not in the state required for the operation."""


class OutOfRangeError(ReproError, IndexError):
    """An iterator was exhausted or an index fell outside valid bounds."""


class UnimplementedError(ReproError, NotImplementedError):
    """The requested behaviour is not implemented (e.g. missing gradient)."""


class InternalError(ReproError, RuntimeError):
    """An invariant inside the runtime was violated; indicates a bug."""


class UnavailableError(ReproError, ConnectionError):
    """The service (a worker, a remote device) is currently unavailable.

    Raised when a request targets a worker that is shut down, killed, or
    unreachable.  Maps to gRPC's ``UNAVAILABLE``: the caller may retry
    against a different replica, but retrying the same endpoint is only
    useful if the outage is transient.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A request did not complete within its deadline.

    Maps to gRPC's ``DEADLINE_EXCEEDED``.  The operation may or may not
    have executed on the server; only idempotent operations are safe to
    retry.
    """


class AbortedError(ReproError, RuntimeError):
    """The service aborted the request before completing it.

    Maps to gRPC's ``ABORTED``: a transient server-side condition (a
    conflict, an injected fault) interrupted the request.  Idempotent
    operations are safe to retry.
    """


class ResourceExhaustedError(ReproError, RuntimeError):
    """A bounded resource (a serving queue, a memory budget) is full.

    Maps to gRPC's ``RESOURCE_EXHAUSTED``.  Raised by admission control
    when accepting more work would grow an explicitly bounded resource:
    the caller should shed load or retry after backing off, not simply
    retry immediately.
    """
