"""Exception hierarchy.

A small, flat hierarchy modelled on TensorFlow's ``tf.errors``: every
runtime failure raised by the library derives from :class:`ReproError`
so callers can catch library errors without catching unrelated Python
failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidArgumentError",
    "NotFoundError",
    "AlreadyExistsError",
    "FailedPreconditionError",
    "OutOfRangeError",
    "UnimplementedError",
    "InternalError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro runtime."""


class InvalidArgumentError(ReproError, ValueError):
    """An operation received an argument with an invalid value or shape."""


class NotFoundError(ReproError, KeyError):
    """A requested entity (op, kernel, device, node) does not exist."""


class AlreadyExistsError(ReproError, ValueError):
    """An entity that must be unique was registered twice."""


class FailedPreconditionError(ReproError, RuntimeError):
    """The system is not in the state required for the operation."""


class OutOfRangeError(ReproError, IndexError):
    """An iterator was exhausted or an index fell outside valid bounds."""


class UnimplementedError(ReproError, NotImplementedError):
    """The requested behaviour is not implemented (e.g. missing gradient)."""


class InternalError(ReproError, RuntimeError):
    """An invariant inside the runtime was violated; indicates a bug."""
