"""The NumPy backend: default implementation and universal fallback.

Every kernel in :mod:`repro.ops` is registered against this backend
(``register_kernel``'s default), so it needs no per-op kernels of its
own — the base-class primitives exist for the conformance suite and for
fused-region codegen, which emits against the active backend's
primitives rather than raw ``np.*``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

__all__ = ["NumPyBackend", "NUMPY_BACKEND"]


class NumPyBackend(ArrayBackend):
    name = "numpy"
    supports_inplace = True

    def from_host(self, array: np.ndarray) -> np.ndarray:
        return array

    def to_host(self, array) -> np.ndarray:
        # Strip any ndarray subclass a foreign backend leaked through.
        return np.asarray(array) if type(array) is not np.ndarray else array


NUMPY_BACKEND = register_backend(NumPyBackend())
