"""Pluggable array backends for the kernel/dispatch stack.

Importing this package registers the built-in backends (``numpy``,
``tracked``) and installs the tracked backend's protocol-routed
kernels.  Select with ``context.kernel_backend`` /
``REPRO_KERNEL_BACKEND``.
"""

from repro.backend.base import (
    ArrayBackend,
    backend_of,
    get_backend,
    list_backends,
    register_backend,
)
from repro.backend.kernels import install_backend_kernels
from repro.backend.numpy_backend import NUMPY_BACKEND, NumPyBackend
from repro.backend.tracked import TRACKED_BACKEND, TrackedArray, TrackedBackend

__all__ = [
    "ArrayBackend",
    "NumPyBackend",
    "NUMPY_BACKEND",
    "TrackedBackend",
    "TrackedArray",
    "TRACKED_BACKEND",
    "backend_of",
    "get_backend",
    "list_backends",
    "register_backend",
    "install_backend_kernels",
]

install_backend_kernels(TRACKED_BACKEND)
