"""Generic per-backend kernels routed through the ArrayBackend protocol.

:func:`install_backend_kernels` registers one kernel per supported
primitive under ``(op, device_type, backend.name)``.  Each kernel calls
the backend's primitive (``elementwise``/``matmul``/``reduce``/``cast``)
instead of raw ``np.*``, so a backend accelerates the hot op set by
implementing four methods; every other op resolves to its NumPy
fallback kernel.  Output dtype conventions match the NumPy kernels
exactly (reductions preserve integer input dtypes) so backends are
interchangeable under the conformance suite.
"""

from __future__ import annotations

import numpy as np

from repro.backend import base
from repro.ops import registry

__all__ = ["install_backend_kernels", "BACKEND_ELEMENTWISE_OPS", "BACKEND_REDUCE_OPS"]

#: Elementwise ops with a protocol primitive (subset of
#: ``registry.ELEMENTWISE_OPS``; the rest fall back to NumPy kernels).
BACKEND_ELEMENTWISE_OPS = frozenset(base._ELEMENTWISE_FNS)

#: Reductions with a protocol primitive.
BACKEND_REDUCE_OPS = frozenset(base._REDUCE_FNS)


def _np_axis(attrs):
    axis = attrs.get("axis")
    return None if axis is None else tuple(axis)


def _make_elementwise(backend, op_name):
    def kernel(inputs, attrs, device):
        return backend.elementwise(op_name, inputs, attrs)

    kernel.__name__ = f"{backend.name}_{op_name}"
    return kernel


def _make_reduce(backend, op_name):
    def kernel(inputs, attrs, device):
        (x,) = inputs
        out = backend.reduce(
            op_name, x, axis=_np_axis(attrs), keepdims=attrs.get("keepdims", False)
        )
        # NumPy kernels keep integer reductions in the input dtype (and
        # Mean always casts back); match them so plans stay backend-
        # agnostic.
        out_dtype = np.asarray(x).dtype
        if np.asarray(out).dtype != out_dtype:
            out = out.astype(out_dtype, copy=False)
        return out

    kernel.__name__ = f"{backend.name}_{op_name}"
    return kernel


def install_backend_kernels(backend, device_types=("CPU", "GPU")) -> int:
    """Register protocol-routed kernels for ``backend``; returns count."""
    installed = 0
    for op_name in sorted(BACKEND_ELEMENTWISE_OPS):
        if not registry.has_kernel(op_name, "CPU"):
            continue  # op set may not define every primitive
        registry.register_kernel(op_name, device_types, backend=backend.name)(
            _make_elementwise(backend, op_name)
        )
        installed += 1
    for op_name in sorted(BACKEND_REDUCE_OPS):
        if not registry.has_kernel(op_name, "CPU"):
            continue
        registry.register_kernel(op_name, device_types, backend=backend.name)(
            _make_reduce(backend, op_name)
        )
        installed += 1

    def matmul_kernel(inputs, attrs, device):
        a, b = inputs
        return backend.matmul(
            a,
            b,
            transpose_a=attrs.get("transpose_a", False),
            transpose_b=attrs.get("transpose_b", False),
        )

    registry.register_kernel("MatMul", device_types, backend=backend.name)(
        matmul_kernel
    )
    installed += 1

    def cast_kernel(inputs, attrs, device):
        (x,) = inputs
        return backend.cast(x, attrs["dtype"])

    registry.register_kernel("Cast", device_types, backend=backend.name)(cast_kernel)
    installed += 1
    return installed
