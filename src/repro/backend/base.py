"""The array-backend seam: one kernel API over pluggable array libraries.

Following EagerPy's design of a single array API re-dispatched over many
backends (PAPERS.md, arXiv 2008.04175), an :class:`ArrayBackend` bundles
the primitives a kernel library needs — buffer allocation, host
transfer, elementwise/matmul/reduce compute, and dtype promotion — so
the dispatch stack (:mod:`repro.ops.registry`,
:mod:`repro.runtime.dispatch`) can resolve kernels per backend instead
of hard-wiring NumPy.

The NumPy backend is both the default and the universal fallback: a new
backend only registers kernels for the primitives it accelerates
(:func:`repro.backend.kernels.install_backend_kernels`), and resolution
falls back to the NumPy kernel for everything else.  The active backend
is ``context.kernel_backend`` / ``REPRO_KERNEL_BACKEND``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.framework.errors import AlreadyExistsError, NotFoundError

__all__ = [
    "ArrayBackend",
    "register_backend",
    "get_backend",
    "list_backends",
    "backend_of",
]


class ArrayBackend:
    """Protocol + base implementation for an array backend.

    Subclasses override the primitives they accelerate; the base class
    implements everything in terms of NumPy so a partial backend is
    always complete.  Buffers flowing through the runtime must be (or
    subclass) ``np.ndarray`` — the simulated devices, shared-memory
    marshalling, and fusion codegen all assume NumPy's buffer protocol.
    """

    #: Registry key; subclasses must override.
    name = "abstract"

    #: Whether kernels for this backend accept NumPy's ``out=`` donation
    #: protocol.  The executor's memory plan and fused-region codegen
    #: only donate dying buffers in place when the active backend says
    #: its arrays support it.
    supports_inplace = True

    # -- host transfer / allocation ------------------------------------
    def from_host(self, array: np.ndarray) -> np.ndarray:
        """Adopt a host (NumPy) buffer as a backend buffer."""
        return array

    def to_host(self, array) -> np.ndarray:
        """View a backend buffer as a plain host NumPy array."""
        return np.asarray(array)

    def alloc(self, shape, dtype) -> np.ndarray:
        """An uninitialized backend buffer (kernels write every element)."""
        return self.from_host(np.empty(shape, dtype=np.dtype(dtype.name)))

    # -- dtype semantics -----------------------------------------------
    def promote_types(self, a, b):
        """Binary-op result dtype.  Backends must agree with the
        framework's strict promotion rules (conformance-tested)."""
        from repro.framework.dtypes import result_type

        return result_type(a, b)

    # -- compute primitives --------------------------------------------
    def elementwise(self, op_name: str, inputs: list, attrs: dict):
        """Apply a (broadcasting) elementwise op to backend buffers."""
        fn = _ELEMENTWISE_FNS.get(op_name)
        if fn is None:
            raise NotFoundError(
                f"Backend {self.name!r} has no elementwise primitive for "
                f"{op_name!r}"
            )
        return fn(*inputs, attrs)

    def matmul(self, a, b, transpose_a: bool = False, transpose_b: bool = False):
        if transpose_a:
            a = np.swapaxes(a, -1, -2)
        if transpose_b:
            b = np.swapaxes(b, -1, -2)
        return np.matmul(a, b)

    def reduce(self, op_name: str, x, axis, keepdims: bool = False):
        fn = _REDUCE_FNS.get(op_name)
        if fn is None:
            raise NotFoundError(
                f"Backend {self.name!r} has no reduction primitive for "
                f"{op_name!r}"
            )
        return fn(x, axis=axis, keepdims=keepdims)

    def cast(self, x, dtype):
        return x.astype(np.dtype(dtype.name))

    def __repr__(self) -> str:
        return f"<ArrayBackend {self.name!r}>"


def _bool_out(fn):
    return lambda *args: fn(*args[:-1])


# Elementwise primitive table shared by the base implementation.  Each
# entry takes the input buffers plus the attrs dict (last positional).
_ELEMENTWISE_FNS: dict[str, Callable] = {
    "Add": lambda x, y, a: np.add(x, y),
    "Sub": lambda x, y, a: np.subtract(x, y),
    "Mul": lambda x, y, a: np.multiply(x, y),
    "RealDiv": lambda x, y, a: np.true_divide(x, y),
    "Pow": lambda x, y, a: np.power(x, y),
    "Maximum": lambda x, y, a: np.maximum(x, y),
    "Minimum": lambda x, y, a: np.minimum(x, y),
    "SquaredDifference": lambda x, y, a: np.square(np.subtract(x, y)),
    "Neg": lambda x, a: np.negative(x),
    "Abs": lambda x, a: np.abs(x),
    "Exp": lambda x, a: np.exp(x),
    "Log": lambda x, a: np.log(x),
    "Sqrt": lambda x, a: np.sqrt(x),
    "Rsqrt": lambda x, a: 1.0 / np.sqrt(x),
    "Square": lambda x, a: np.square(x),
    "Sin": lambda x, a: np.sin(x),
    "Cos": lambda x, a: np.cos(x),
    "Tanh": lambda x, a: np.tanh(x),
    "Sigmoid": lambda x, a: 1.0 / (1.0 + np.exp(-x)),
    "Relu": lambda x, a: np.maximum(x, 0),
    "Less": lambda x, y, a: np.less(x, y),
    "LessEqual": lambda x, y, a: np.less_equal(x, y),
    "Greater": lambda x, y, a: np.greater(x, y),
    "GreaterEqual": lambda x, y, a: np.greater_equal(x, y),
    "Equal": lambda x, y, a: np.equal(x, y),
    "NotEqual": lambda x, y, a: np.not_equal(x, y),
}

_REDUCE_FNS: dict[str, Callable] = {
    "Sum": np.sum,
    "Mean": np.mean,
    "Max": np.max,
    "Min": np.min,
    "Prod": np.prod,
}


_BACKENDS: dict[str, ArrayBackend] = {}


def register_backend(backend: ArrayBackend) -> ArrayBackend:
    """Add a backend to the registry (its ``name`` becomes the key)."""
    if backend.name in _BACKENDS:
        raise AlreadyExistsError(
            f"Array backend {backend.name!r} is already registered"
        )
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> ArrayBackend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise NotFoundError(
            f"Unknown array backend {name!r}; registered backends: "
            f"{sorted(_BACKENDS)}"
        ) from None


def list_backends() -> list[str]:
    return sorted(_BACKENDS)


def backend_of(array) -> str:
    """The backend name owning a buffer (tag attribute, NumPy default)."""
    return getattr(array, "__array_backend__", "numpy")
