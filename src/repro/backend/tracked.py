"""The "tracked" backend: a second, dependency-free array backend.

It computes with NumPy but owns its buffers — a ``TrackedArray``
subclass tagged ``__array_backend__ = "tracked"`` — and counts every
primitive call per op.  That makes it the conformance witness for the
pluggable-backend seam: tests assert that per-backend kernels actually
resolve ahead of the NumPy fallback (counter goes up), that the
fallback covers the ops it doesn't register (anything outside the
primitive set still works), and that buffers stay backend-tagged across
dispatch, fusion, and device placement.  Real accelerated backends
(CuPy, Torch, JAX) would plug in the same way with heavier ``alloc`` /
``from_host`` / primitive implementations.
"""

from __future__ import annotations

import threading
from collections import Counter

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

__all__ = ["TrackedArray", "TrackedBackend", "TRACKED_BACKEND"]


class TrackedArray(np.ndarray):
    """An ndarray tagged as owned by the tracked backend.

    The tag propagates through NumPy ufuncs and views (subclass
    propagation), so untagged results only appear where a kernel built a
    fresh array from scratch — exactly the NumPy-fallback paths.
    """

    __array_backend__ = "tracked"


class TrackedBackend(ArrayBackend):
    name = "tracked"
    supports_inplace = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.primitive_calls: Counter[str] = Counter()

    def _count(self, name: str) -> None:
        with self._lock:
            self.primitive_calls[name] += 1

    def reset_stats(self) -> None:
        with self._lock:
            self.primitive_calls.clear()

    def total_calls(self) -> int:
        with self._lock:
            return sum(self.primitive_calls.values())

    # -- host transfer / allocation ------------------------------------
    def from_host(self, array: np.ndarray) -> np.ndarray:
        return array.view(TrackedArray)

    def to_host(self, array) -> np.ndarray:
        return np.asarray(array).view(np.ndarray)

    def alloc(self, shape, dtype) -> np.ndarray:
        return np.empty(shape, dtype=np.dtype(dtype.name)).view(TrackedArray)

    # -- compute primitives --------------------------------------------
    def elementwise(self, op_name: str, inputs: list, attrs: dict):
        self._count(op_name)
        out = super().elementwise(op_name, inputs, attrs)
        return np.asarray(out).view(TrackedArray)

    def matmul(self, a, b, transpose_a: bool = False, transpose_b: bool = False):
        self._count("MatMul")
        out = super().matmul(a, b, transpose_a, transpose_b)
        return np.asarray(out).view(TrackedArray)

    def reduce(self, op_name: str, x, axis, keepdims: bool = False):
        self._count(op_name)
        out = super().reduce(op_name, x, axis, keepdims)
        return np.asarray(out).view(TrackedArray)

    def cast(self, x, dtype):
        self._count("Cast")
        return np.asarray(super().cast(x, dtype)).view(TrackedArray)


TRACKED_BACKEND = register_backend(TrackedBackend())
