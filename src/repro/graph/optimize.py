"""Grappler-style graph optimization passes.

The paper attributes part of staged execution's advantage to "compiler
optimizations and the exploitation of parallelism ... constant-folding
and buffer reuse" (§1, §4.1).  This module implements the classic
passes over our graph IR:

* ``prune`` — drop non-stateful ops unreachable from the outputs (§5).
* ``fold`` — evaluate ops whose inputs are all constants at build time.
* ``arithmetic`` — algebraic identities (x*1, x+0, double negation,
  transpose/reshape collapsing).
* ``cse`` — common-subexpression elimination for stateless ops.
* ``fuse`` — elementwise-fusion (:mod:`repro.graph.fusion`), appended
  to the default pipeline when ``context.graph_fusion`` is on.

Passes rewrite the function's graph in place and report how much work
they did; the ablation benchmark ``abl-opt`` measures their run-time
effect.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.framework import dtypes
from repro.ops import registry
from repro.tensor import Tensor
from repro.graph.graph import Graph, Node, SymbolicTensor

__all__ = ["optimize_function", "DEFAULT_PASSES"]

DEFAULT_PASSES = ("prune", "fold", "arithmetic", "dedup_reads", "cse", "prune")

# Never materialize folded constants bigger than this.
_MAX_FOLD_ELEMENTS = 1 << 20

_NEVER_FOLD = frozenset({"Const", "Placeholder"})


def _attr_key(attrs: dict):
    from repro.framework.dtypes import DType
    from repro.framework.tensor_shape import TensorShape
    from repro.tensor import TensorSpec

    items = []
    for k in sorted(attrs):
        v = attrs[k]
        if k == "_remat_scope":
            # Rematerialization scope (see repro.core.recompute): nodes
            # replayed into a backward section are tagged so CSE can
            # dedup *within* one recomputed region but never merge a
            # recomputed node with its identical forward original (or
            # with another scope's copy) — that would silently undo the
            # checkpoint and re-extend the intermediate's lifetime.
            items.append((k, ("remat", str(v))))
        elif isinstance(v, np.ndarray):
            items.append((k, ("ndarray", v.shape, str(v.dtype), v.tobytes())))
        elif isinstance(v, TensorShape):
            # Explicit encoding so a symbolic shape ([2, None]) can
            # never collide with a repr-equal Python value; two nodes
            # merge only when their (possibly unknown) dims agree
            # exactly — with the same inputs that is sound, since equal
            # symbolic attrs denote the same runtime shapes.
            items.append((k, ("shape", v.dims)))
        elif isinstance(v, TensorSpec):
            items.append((k, ("spec", v.shape.dims, v.dtype.name)))
        elif isinstance(v, DType):
            items.append((k, ("dtype", v.name)))
        elif callable(v) or hasattr(v, "graph"):
            items.append((k, ("object", id(v))))
        else:
            items.append((k, repr(v)))
    return tuple(items)


def _replace_uses(fn, replacements: dict) -> None:
    fn.graph.apply_replacements(replacements)
    fn.outputs = [replacements.get(id(t), t) for t in fn.outputs]
    fn._runner = None


def prune(fn) -> int:
    """Remove ops not reachable from the function outputs."""
    roots = list(fn.outputs) + list(fn.inputs)
    return fn.graph.remove_dead(roots)


def constant_fold(fn) -> int:
    """Evaluate statically-known subgraphs into Const nodes."""
    from repro.runtime.context import context

    graph: Graph = fn.graph
    folded = 0
    const_values: dict[int, np.ndarray] = {}
    for node in list(graph.nodes):
        if node.op_name == "Const":
            const_values[id(node.outputs[0])] = node.attrs["value"]
            continue
        op_def = node.op_def
        if (
            node.op_name in _NEVER_FOLD
            or op_def.is_stateful
            or op_def.has_side_effects
            or not registry.has_kernel(node.op_name, "CPU")
        ):
            continue
        if any(
            t.dtype in (dtypes.resource, dtypes.variant) for t in node.outputs
        ):
            continue
        arrays = []
        ok = True
        for t in node.inputs:
            value = const_values.get(id(t))
            if value is None:
                value = t.constant_value
            if value is None:
                ok = False
                break
            arrays.append(np.asarray(value))
        if not ok:
            continue
        kernel = registry.get_kernel(node.op_name, "CPU")
        try:
            results = kernel(arrays, node.attrs, context.cpu_device())
        except Exception:
            continue
        if results is None:
            continue
        if isinstance(results, (np.ndarray, Tensor)) or np.isscalar(results):
            results = [results]
        if any(isinstance(r, Tensor) for r in results):
            continue
        results = [np.asarray(r) for r in results]
        if any(r.size > _MAX_FOLD_ELEMENTS for r in results):
            continue
        replacements = {}
        with graph.as_default():
            from repro.runtime.executor import execute

            for out_sym, value in zip(node.outputs, results):
                const_out = execute("Const", [], {"value": value})
                replacements[id(out_sym)] = const_out
                const_values[id(const_out)] = value
        _replace_uses(fn, replacements)
        folded += 1
    if folded:
        # New Const nodes were appended; restore topological node order.
        _topological_sort(fn)
    return folded


def _is_scalar_const(t: SymbolicTensor, value: float) -> bool:
    cv = t.constant_value
    if cv is None and t.node.op_name == "Const":
        cv = t.node.attrs["value"]
    if cv is None:
        return False
    cv = np.asarray(cv)
    return cv.size == 1 and float(cv.reshape(())[()]) == value


def arithmetic_simplify(fn) -> int:
    """Apply algebraic identities that remove whole nodes."""
    graph: Graph = fn.graph
    rewrites = 0
    replacements: dict = {}

    def resolve(t):
        while id(t) in replacements:
            t = replacements[id(t)]
        return t

    for node in graph.nodes:
        node.inputs = [resolve(t) for t in node.inputs]
        out = node.outputs[0] if node.outputs else None
        new = None
        if node.op_name == "Add":
            x, y = node.inputs
            if _is_scalar_const(y, 0.0) and x.shape == out.shape and x.dtype == out.dtype:
                new = x
            elif _is_scalar_const(x, 0.0) and y.shape == out.shape and y.dtype == out.dtype:
                new = y
        elif node.op_name == "Sub":
            x, y = node.inputs
            if _is_scalar_const(y, 0.0) and x.shape == out.shape:
                new = x
        elif node.op_name == "Mul":
            x, y = node.inputs
            if _is_scalar_const(y, 1.0) and x.shape == out.shape and x.dtype == out.dtype:
                new = x
            elif _is_scalar_const(x, 1.0) and y.shape == out.shape and y.dtype == out.dtype:
                new = y
        elif node.op_name == "RealDiv":
            x, y = node.inputs
            if _is_scalar_const(y, 1.0) and x.shape == out.shape:
                new = x
        elif node.op_name == "Neg":
            (x,) = node.inputs
            if x.node.op_name == "Neg":
                new = x.node.inputs[0]
        elif node.op_name == "Transpose":
            (x,) = node.inputs
            inner = x.node
            if inner.op_name == "Transpose":
                p_outer = node.attrs.get("perm")
                p_inner = inner.attrs.get("perm")
                if p_outer is not None and p_inner is not None:
                    composed = [p_inner[p] for p in p_outer]
                    if composed == list(range(len(composed))):
                        new = inner.inputs[0]
                elif p_outer is None and p_inner is None:
                    new = inner.inputs[0]
        elif node.op_name == "Reshape":
            x = node.inputs[0]
            if x.node.op_name == "Reshape":
                node.inputs[0] = x.node.inputs[0]
                rewrites += 1
            if node.inputs[0].shape.is_fully_defined and node.inputs[0].shape == out.shape:
                new = node.inputs[0]
        elif node.op_name == "Identity":
            new = node.inputs[0] if node.device is None else None
        if new is not None:
            replacements[id(out)] = new
            rewrites += 1
    _replace_uses(fn, {k: _final(replacements, k) for k in replacements})
    return rewrites


def _final(replacements: dict, key):
    t = replacements[key]
    while id(t) in replacements:
        t = replacements[id(t)]
    return t


def cse(fn) -> int:
    """Merge identical stateless operations.

    Nodes spliced in by gradient checkpointing carry a ``_remat_scope``
    attr that participates in the signature: a recomputed node never
    merges with the forward node it shadows, so the checkpoint's memory
    behavior survives this pass (duplicates *within* one scope still
    merge — they share the tag).
    """
    graph: Graph = fn.graph
    seen: dict = {}
    replacements: dict = {}
    merged = 0

    def resolve(t):
        while id(t) in replacements:
            t = replacements[id(t)]
        return t

    for node in graph.nodes:
        node.inputs = [resolve(t) for t in node.inputs]
        op_def = node.op_def
        if op_def.is_stateful or op_def.has_side_effects or node.op_name == "Placeholder":
            continue
        sig = (
            node.op_name,
            tuple(id(t) for t in node.inputs),
            _attr_key(node.attrs),
            node.device,
        )
        existing = seen.get(sig)
        if existing is None:
            seen[sig] = node
            continue
        for old, new in zip(node.outputs, existing.outputs):
            replacements[id(old)] = new
        merged += 1
    _replace_uses(fn, {k: _final(replacements, k) for k in replacements})
    return merged


def dedup_reads(fn) -> int:
    """Merge repeated variable reads with no intervening write.

    ``ReadVariableOp`` is stateful (so generic CSE must skip it), but
    consecutive reads of the same handle separated by no assignment are
    guaranteed identical — the same read-dedup rewrite TensorFlow's
    grappler applies inside a function body.  Invalidation is
    per-resource: calls and control flow thread every captured handle
    through their explicit inputs, so their writes are confined to the
    resource-dtype tensors they consume.  Only ``EagerPyFunc`` (whose
    Python body can close over a variable directly) invalidates every
    pending read.
    """
    graph: Graph = fn.graph
    current_read: dict[int, SymbolicTensor] = {}
    replacements: dict = {}
    merged = 0

    def resolve(t):
        while id(t) in replacements:
            t = replacements[id(t)]
        return t

    for node in graph.nodes:
        node.inputs = [resolve(t) for t in node.inputs]
        op = node.op_name
        if op == "ReadVariableOp":
            handle = node.inputs[0]
            existing = current_read.get(id(handle))
            if existing is not None:
                replacements[id(node.outputs[0])] = existing
                merged += 1
            else:
                current_read[id(handle)] = node.outputs[0]
        elif op in ("AssignVariableOp", "AssignAddVariableOp", "AssignSubVariableOp"):
            current_read.pop(id(node.inputs[0]), None)
        elif node.op_def.has_side_effects:
            if _may_write_unknown_state(node):
                current_read.clear()
            else:
                for t in node.inputs:
                    if t.dtype == dtypes.resource:
                        current_read.pop(id(t), None)
    _replace_uses(fn, {k: _final(replacements, k) for k in replacements})
    return merged


def _may_write_unknown_state(node: Node) -> bool:
    """Can a side-effecting op touch variables beyond its resource inputs?

    ``EagerPyFunc`` runs arbitrary Python that may close over a variable
    without threading its handle through the node's inputs; the same
    goes for any call / control-flow op whose body contains a py_func.
    Everything else reaches state only through explicit resource-dtype
    inputs (captures become inputs during tracing).
    """
    if node.op_name == "EagerPyFunc":
        return True
    for v in node.attrs.values():
        if getattr(v, "contains_py_func", False):
            return True
    return False


def fuse(fn) -> int:
    """Cluster elementwise chains into FusedElementwise nodes."""
    from repro.graph import fusion

    return fusion.fuse_function(fn)


_PASSES = {
    "prune": prune,
    "fold": constant_fold,
    "arithmetic": arithmetic_simplify,
    "cse": cse,
    "dedup_reads": dedup_reads,
    "fuse": fuse,
}


def _default_passes() -> Sequence[str]:
    """The default pipeline, with ``fuse`` appended when the knob is on.

    Fusion runs last — after CSE has merged duplicates and the final
    prune has dropped dead nodes — so regions are built over the graph
    the executor will actually run.
    """
    from repro.runtime.context import context

    if context.graph_fusion:
        return DEFAULT_PASSES + ("fuse",)
    return DEFAULT_PASSES


def _topological_sort(fn) -> None:
    """Restore producer-before-consumer node order after rewrites.

    Constant folding appends its replacement Const nodes at the end of
    the node list; the executor relies on list order being topological.
    """
    order: list[Node] = []
    visited: set[int] = set()
    for root in fn.graph.nodes:
        if id(root) in visited:
            continue
        stack: list[tuple[Node, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for t in node.inputs:
                if id(t.node) not in visited:
                    stack.append((t.node, False))
            for c in node.control_inputs:
                if id(c) not in visited:
                    stack.append((c, False))
    fn.graph.nodes = order


def optimize_function(fn, passes: Optional[Sequence[str]] = None) -> dict:
    """Run the pass pipeline on a GraphFunction; returns per-pass counts."""
    report: dict[str, int] = {}
    for i, name in enumerate(passes if passes is not None else _default_passes()):
        count = _PASSES[name](fn)
        report[f"{i}:{name}"] = count
    _topological_sort(fn)
    fn._runner = None
    return report
