"""The dataflow graph IR: graphs, nodes, and symbolic tensors.

A :class:`Graph` is an ordered list of :class:`Node` operations whose
construction order is a valid topological order (graphs are only built
by tracing, which executes the Python function front to back).  Inside
a graph-building context, operations return :class:`SymbolicTensor`
objects — "symbolic representations of values to be computed instead of
concrete values" (paper §4.1).

Static analysis metadata rides along at build time: every node gets
output :class:`~repro.tensor.TensorSpec` values from the op's shape
inference, and ops with a ``value_fn`` (``Shape``, ``Const``, ...)
propagate statically-known values so downstream inference can see
through dynamic-shape plumbing.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import (
    FailedPreconditionError,
    InvalidArgumentError,
    NotFoundError,
)
from repro.framework.tensor_shape import TensorShape
from repro.ops import registry
from repro.runtime.context import context
from repro.tensor import Tensor, TensorBase, TensorSpec

__all__ = ["Graph", "Node", "SymbolicTensor"]


class SymbolicTensor(TensorBase):
    """A placeholder for a value that a graph will compute.

    Carries its producing node, output index, inferred spec, and — when
    constant propagation succeeded — the statically-known value.
    """

    __slots__ = ("node", "index", "spec", "_constant_value")

    def __init__(self, node: "Node", index: int, spec: TensorSpec) -> None:
        self.node = node
        self.index = index
        self.spec = spec
        self._constant_value: Optional[np.ndarray] = None

    @property
    def graph(self) -> "Graph":
        return self.node.graph

    @property
    def dtype(self) -> dtypes.DType:
        return self.spec.dtype

    @property
    def shape(self) -> TensorShape:
        return self.spec.shape

    @property
    def name(self) -> str:
        return f"{self.node.name}:{self.index}"

    @property
    def constant_value(self) -> Optional[np.ndarray]:
        return self._constant_value

    def refine_spec(self, spec: TensorSpec) -> bool:
        """Merge ``spec`` into the recorded spec; most specific shape wins.

        The pipeline's shape-refinement stage re-runs inference after
        graph rewrites and sharpens symbolic dims through here.  Returns
        True when the spec became strictly more specific; a dtype
        mismatch or rank conflict is treated conservatively (unchanged).
        """
        if spec.dtype != self.spec.dtype:
            return False
        try:
            merged = self.spec.shape.merge_with(spec.shape)
        except InvalidArgumentError:
            return False
        if merged == self.spec.shape:
            return False
        self.spec = TensorSpec(merged, self.spec.dtype)
        return True

    @property
    def device(self) -> Optional[str]:
        return self.node.device

    def numpy(self):
        raise FailedPreconditionError(
            f"Symbolic tensor {self.name!r} has no concrete value; .numpy() is "
            "only available on eagerly-executed tensors. Return the value from "
            "the staged function to compute it."
        )

    def __bool__(self) -> bool:
        raise FailedPreconditionError(
            f"The truth value of the symbolic tensor {self.name!r} is unknown "
            "during tracing. Python `if`/`while` on tensor values must be "
            "rewritten with repro.cond / repro.while_loop when staging (paper "
            "§4.1), or the function left unstaged."
        )

    def __iter__(self):
        n = self.shape[0] if self.shape.rank else None
        if self.shape.rank is None or n is None:
            raise FailedPreconditionError(
                "Cannot iterate over a symbolic tensor of unknown leading size"
            )
        for i in range(n):
            yield self[i]

    def __len__(self) -> int:
        if self.shape.rank is None or self.shape.rank == 0 or self.shape[0] is None:
            raise FailedPreconditionError("len() of symbolic tensor is not static")
        return self.shape[0]

    # Symbolic tensors are hashable by identity so they can key feed
    # dicts (classic Session.run usage); == stays elementwise.
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"<SymbolicTensor {self.name!r} shape={self.shape} "
            f"dtype={self.dtype.name} op={self.node.op_name!r}>"
        )


class Node:
    """One operation instance inside a graph."""

    __slots__ = (
        "graph",
        "name",
        "op_name",
        "inputs",
        "attrs",
        "device",
        "outputs",
        "control_inputs",
    )

    def __init__(
        self,
        graph: "Graph",
        name: str,
        op_name: str,
        inputs: list[SymbolicTensor],
        attrs: dict,
        device: Optional[str],
        output_specs: Sequence[TensorSpec],
    ) -> None:
        self.graph = graph
        self.name = name
        self.op_name = op_name
        self.inputs = list(inputs)
        self.attrs = dict(attrs)
        self.device = device
        self.control_inputs: list["Node"] = []
        self.outputs = [SymbolicTensor(self, i, spec) for i, spec in enumerate(output_specs)]

    @property
    def op_def(self) -> registry.OpDef:
        return registry.get_op_def(self.op_name)

    def __repr__(self) -> str:
        ins = ", ".join(t.name for t in self.inputs)
        return f"<Node {self.name!r} = {self.op_name}({ins})>"


class Graph:
    """A dataflow graph under construction or awaiting execution.

    This base class implements the classic TensorFlow ("v1") behaviour:
    concrete tensors flowing into staged ops become ``Const`` nodes.
    The tracer's :class:`~repro.core.tracing.FuncGraph` subclass turns
    them into captured inputs instead (paper §4.6, "Lexical closure").
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: list[Node] = []
        self._names: dict[str, int] = {}
        self._device_stack: list[Optional[str]] = []
        self._lock = threading.Lock()
        # Cache: interned Const nodes keyed by (dtype, shape, bytes).
        self._const_cache: dict = {}
        self.contains_py_func = False

    # -- naming ------------------------------------------------------------
    def unique_name(self, base: str) -> str:
        with self._lock:
            count = self._names.get(base, 0)
            self._names[base] = count + 1
        return base if count == 0 else f"{base}_{count}"

    # -- device scoping ------------------------------------------------------
    def push_device(self, name: Optional[str]) -> None:
        self._device_stack.append(name)

    def pop_device(self) -> None:
        self._device_stack.pop()

    def current_device(self) -> Optional[str]:
        for name in reversed(self._device_stack):
            if name is not None:
                return name
        return None

    # -- construction -----------------------------------------------------
    def as_default(self) -> "_GraphContext":
        """Context manager staging subsequent ops into this graph."""
        return _GraphContext(self)

    def add_operation(
        self,
        op_name: str,
        inputs: Sequence,
        attrs: dict,
        name: Optional[str] = None,
    ) -> list[SymbolicTensor]:
        """Stage one operation; returns its symbolic outputs."""
        op_def = registry.get_op_def(op_name)
        resolved = [self._resolve_input(op_name, t) for t in inputs]
        node_name = self.unique_name(name or op_name)
        output_specs = op_def.infer(resolved, attrs)
        node = Node(
            graph=self,
            name=node_name,
            op_name=op_name,
            inputs=resolved,
            attrs=attrs,
            device=self.current_device(),
            output_specs=output_specs,
        )
        self.nodes.append(node)
        if op_name == "EagerPyFunc":
            self.contains_py_func = True
        # Propagate the py_func taint from *any* nested function attr —
        # calls store theirs under "f", control flow under "true_fn" /
        # "false_fn" / "cond_fn" / "body_fn".
        for attr_value in attrs.values():
            if getattr(attr_value, "contains_py_func", False):
                self.contains_py_func = True
                break
        self._propagate_constants(node, op_def)
        return node.outputs

    def _propagate_constants(self, node: Node, op_def: registry.OpDef) -> None:
        if op_def.value_fn is None or op_def.is_stateful:
            return
        try:
            values = op_def.value_fn(node.inputs, node.attrs)
        except Exception:
            return
        if values is None:
            return
        for out, value in zip(node.outputs, values):
            if value is not None:
                out._constant_value = np.asarray(value)

    def _resolve_input(self, op_name: str, t) -> SymbolicTensor:
        if isinstance(t, SymbolicTensor):
            if t.graph is self:
                return t
            return self._capture_symbolic(t)
        if isinstance(t, Tensor):
            return self._capture_concrete(t)
        raise InvalidArgumentError(
            f"Operation {op_name!r} received a non-tensor input {t!r} while "
            "building a graph"
        )

    def _capture_concrete(self, t: Tensor) -> SymbolicTensor:
        """Base graphs intern concrete tensors as Const nodes."""
        if t.dtype in (dtypes.resource, dtypes.variant):
            # Variables in classic graphs: reference the handle by
            # identity (how TF1 graphs name their variables).
            cached = self._const_cache.get(id(t))
            if cached is None:
                cached = self.add_operation(
                    "HandleConst", [], {"handle": t, "dtype": t.dtype}
                )[0]
                self._const_cache[id(t)] = cached
            return cached
        arr = np.asarray(t.numpy())
        key = (t.dtype, arr.shape, arr.tobytes() if arr.nbytes <= 4096 else id(t))
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        out = self.add_operation("Const", [], {"value": arr})[0]
        self._const_cache[key] = out
        return out

    def _capture_symbolic(self, t: SymbolicTensor) -> SymbolicTensor:
        raise FailedPreconditionError(
            f"Tensor {t.name!r} belongs to graph {t.graph.name!r} and cannot "
            f"be used in unrelated graph {self.name!r}"
        )

    # -- rewriting (used by the optimizer) -----------------------------------
    def apply_replacements(self, replacements: dict) -> None:
        """Rewire node inputs according to an id-keyed tensor replacement map."""
        if not replacements:
            return
        for node in self.nodes:
            node.inputs = [replacements.get(id(t), t) for t in node.inputs]

    def remove_dead(self, live_roots: Sequence[SymbolicTensor]) -> int:
        """Drop nodes not reachable from live roots or side effects.

        Mirrors the paper (§5): "non-stateful operations that are not
        reachable from the outputs of a function are pruned".  Returns
        the number of removed nodes.
        """
        live_nodes: set[int] = set()
        stack = [t.node for t in live_roots if isinstance(t, SymbolicTensor)]
        stack.extend(
            n for n in self.nodes if n.op_def.has_side_effects or n.op_name == "Placeholder"
        )
        while stack:
            node = stack.pop()
            if id(node) in live_nodes:
                continue
            live_nodes.add(id(node))
            stack.extend(t.node for t in node.inputs)
            stack.extend(node.control_inputs)
        before = len(self.nodes)
        self.nodes = [n for n in self.nodes if id(n) in live_nodes]
        return before - len(self.nodes)

    # -- inspection -----------------------------------------------------------
    def get_node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise NotFoundError(f"No node named {name!r} in graph {self.name!r}")

    def ops_by_type(self, op_name: str) -> list[Node]:
        return [n for n in self.nodes if n.op_name == op_name]

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"<Graph {self.name!r} with {len(self.nodes)} nodes>"


class _GraphContext:
    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    def __enter__(self) -> Graph:
        context.push_graph(self._graph)
        return self._graph

    def __exit__(self, *exc_info) -> None:
        context.pop_graph()
