"""The dataflow graph executor.

Executes a graph's nodes over concrete tensors.  Per-node kernel
dispatch is NOT implemented here: every node runs through the unified
dispatch core (:data:`repro.runtime.dispatch.core`) — the same device
resolution, kernel cache, interceptor stack (profiler, op records, …),
and :meth:`Device.dispatch` protocol that serves eager execution.
That is the paper's §4.1 claim made structural: imperative and staged
computations "use the same APIs and kernels", and staging wins only by
amortizing per-op Python overhead, not by running different code.

Two execution modes:

* **Serial** (default): one pass over the nodes in topological order.
  This is the low-overhead fast path the staged benchmarks use: the
  :class:`GraphRunner` plan pre-resolves each node's kernel through the
  dispatch core's ``(op, device_kind, input_dtypes)`` cache at plan
  time, so the loop invokes cached kernels directly with no per-op
  registry probing, tape probing, or device-stack walks (which is
  precisely why staged execution outruns the imperative path on small
  ops, reproducing Figures 3–4).  When any ``"graph"``-mode interceptor
  is registered — a single emptiness check per node — the node takes
  the instrumented ``core.dispatch`` path instead, so cross-cutting
  hooks observe graph nodes exactly as they observe eager ops.  To
  observe nodes here, register an interceptor with
  ``dispatch.core.register_interceptor`` (see the
  :mod:`repro.runtime.dispatch` docstring); do not add inline checks to
  the loop.
* **Parallel**: a ready-queue scheduler over a thread pool, modelling
  the real runtime's inter-op parallelism (paper §5: "runs kernels in
  parallel when possible").  Stateful operations are serialized in
  program order through an implicit control edge.  The pool size comes
  from ``context.inter_op_parallelism_threads`` (env var
  ``REPRO_INTER_OP_THREADS``, default 8), and the pool is shut down
  cleanly at interpreter exit.

Both modes free intermediate buffers as soon as their last consumer has
run (reference counting), mirroring the buffer-reuse benefit the paper
attributes to graphs (§4.1).
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import InternalError, InvalidArgumentError
from repro.ops import registry
from repro.runtime import dispatch
from repro.runtime.context import context
from repro.tensor import Tensor
from repro.graph.fusion import FUSED_OP, _spec_bytes
from repro.graph.graph import Graph, Node, SymbolicTensor

__all__ = ["execute_graph", "GraphRunner", "shutdown_thread_pool"]


def _callee_peak_bytes(value) -> Optional[tuple[int, bool]]:
    """(peak_live_bytes, lower_bound) of a graph-function-valued attr.

    Returns None for attr values that are not graph functions.  The
    callee's plan is built on demand and cached on the callee, so this
    costs one plan build per distinct function; a callee whose plan
    cannot be built (e.g. an unexecutable branch under symbolic shapes)
    contributes nothing rather than failing the caller's plan.
    """
    if not (hasattr(value, "plan") and hasattr(value, "graph")):
        return None
    try:
        inner = value.plan().memory_plan or {}
    except Exception:
        return None
    return inner.get("peak_live_bytes", 0), bool(inner.get("lower_bound", False))

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()


def _thread_pool() -> ThreadPoolExecutor:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=context.inter_op_parallelism_threads,
                thread_name_prefix="repro-executor",
            )
        return _POOL


def shutdown_thread_pool(wait: bool = True) -> None:
    """Shut down the inter-op thread pool (it is rebuilt on demand).

    Called automatically at interpreter exit; call it manually after
    changing ``context.inter_op_parallelism_threads`` so the next
    parallel execution picks up the new size.
    """
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=wait)


atexit.register(shutdown_thread_pool)


def _dispatch_node(node: Node, inputs: Sequence[Tensor]) -> list[Tensor]:
    """Run one node through the unified dispatch core."""
    return dispatch.core.dispatch(
        node.op_name,
        inputs,
        node.attrs,
        explicit_device=node.device,
        mode=dispatch.GRAPH,
    )


class GraphRunner:
    """A reusable execution plan for one (graph, fetches) pair.

    Precomputes the executable node schedule, per-tensor consumer
    counts, and placeholder bindings so that repeated executions (the
    common case: a staged training step runs thousands of times) do no
    graph analysis at all.
    """

    def __init__(
        self,
        graph: Graph,
        fetches: Sequence,
        include_side_effects: bool = True,
        label_errors: bool = False,
    ) -> None:
        """Plan execution of ``fetches`` (symbolic tensors, or Nodes for
        pure side-effect operations like variable assignment).

        ``include_side_effects=True`` (traced functions) runs every
        side-effecting node in the graph; ``False`` (classic Session
        semantics) runs only what the fetches reach — fetch-driven
        pruning, paper §5.

        ``label_errors=True`` (flushed lazy segments) attaches the
        failing node's op name to kernel exceptions via
        :func:`~repro.runtime.stream._attach_op_name`, preserving the
        deferred-error contract: an error surfacing long after the op
        was recorded still names the op that raised it.
        """
        self.graph = graph
        self.fetches = list(fetches)
        self._include_side_effects = include_side_effects
        self.label_errors = label_errors
        self._build_schedule()

    def _build_schedule(self) -> None:
        # Live set: reverse reachability from fetches (plus, for traced
        # functions, every side-effecting node).
        live: set[int] = set()
        stack = [t if isinstance(t, Node) else t.node for t in self.fetches]
        if self._include_side_effects:
            stack.extend(n for n in self.graph.nodes if n.op_def.has_side_effects)
        while stack:
            node = stack.pop()
            if id(node) in live:
                continue
            live.add(id(node))
            stack.extend(t.node for t in node.inputs)
            stack.extend(node.control_inputs)
        self.schedule: list[Node] = [n for n in self.graph.nodes if id(n) in live]

        # Consumer counts for buffer freeing.
        self.consumers: dict[int, int] = {}
        for node in self.schedule:
            for t in node.inputs:
                self.consumers[id(t)] = self.consumers.get(id(t), 0) + 1
        for t in self.fetches:
            if not isinstance(t, Node):
                self.consumers[id(t)] = self.consumers.get(id(t), 0) + 1

        self.placeholders = [n for n in self.schedule if n.op_name == "Placeholder"]

        # Symbolic placeholders (unknown dims — a relaxed or
        # input_signature trace): remember their specs so feeds are
        # validated per run.  Exact traces pay nothing (empty dict);
        # feeding a symbolic plan an incompatible shape fails with a
        # clear error here rather than deep inside a kernel.
        self.feed_specs: dict[int, tuple[Node, object]] = {}
        for node in self.placeholders:
            spec = node.outputs[0].spec
            if not spec.shape.is_fully_defined:
                self.feed_specs[id(node)] = (node, spec)

        # Precomputed execution plan: per node, the kernel resolved once
        # through the dispatch core's (op, device_kind, input_dtypes)
        # cache (when one exists and the node is not pinned elsewhere),
        # input tensor ids, and output bookkeeping.  The serial loop
        # then runs with no registry lookups or device-stack walks per
        # node — the low per-op overhead that gives staged execution
        # its edge.
        core = dispatch.core
        # Kernels below resolve under the backend active at plan-build
        # time; `run` rebuilds the plan if the backend has changed since
        # (plans are cached per GraphFunction and must not pin a stale
        # backend's kernels).
        self.plan_backend = context.kernel_backend
        self.plan = []
        for node in self.schedule:
            kernel = None
            if node.device is None:
                in_dtypes = tuple(t.dtype for t in node.inputs)
                kernel = core.resolve_kernel_or_none(node.op_name, "CPU", in_dtypes)
            in_ids = tuple(id(t) for t in node.inputs)
            out_entries = tuple(
                (id(sym), self.consumers.get(id(sym), 0) > 0, sym.dtype)
                for sym in node.outputs
            )
            single = out_entries[0] if len(out_entries) == 1 else None
            self.plan.append(
                [
                    node,
                    node.op_name == "Placeholder",
                    kernel,
                    node.attrs,
                    in_ids,
                    out_entries,
                    single,
                    (),  # dies: filled by last-use analysis below
                    None,  # donation slot: filled below
                ]
            )

        # Last-use analysis: free each intermediate right after its final
        # consumer instead of maintaining per-run reference counts.
        fetched = {id(t) for t in self.fetches if not isinstance(t, Node)}
        last_use: dict[int, int] = {}
        for pos, entry in enumerate(self.plan):
            for i in entry[4]:
                last_use[i] = pos
        dies_at: dict[int, list[int]] = {}
        for tensor_id, pos in last_use.items():
            if tensor_id not in fetched:
                dies_at.setdefault(pos, []).append(tensor_id)
        for pos, dead in dies_at.items():
            self.plan[pos][7] = tuple(dead)

        # In-place donation slots (static): a node may overwrite an input
        # whose buffer dies here, when that input is the node's *only*
        # remaining consumer-reference, was freshly allocated by its
        # producer (never aliases anything), and matches the output's
        # static shape and dtype.  Gated with the fusion knob — the two
        # together are the "static memory plan".  The knob is captured at
        # plan-build time; flipping it later only affects new plans.
        # Donation additionally requires the active backend's buffers to
        # honor NumPy's `out=` protocol.
        if context.graph_fusion and context.array_backend().supports_inplace:
            for pos, entry in enumerate(self.plan):
                node = entry[0]
                if entry[1] or entry[2] is None or entry[6] is None:
                    continue
                inplace = registry.get_inplace_kernel(node.op_name)
                if inplace is None:
                    continue
                out_spec = node.outputs[0].spec
                if not out_spec.shape.is_fully_defined:
                    continue
                for j, t in enumerate(node.inputs):
                    if self.consumers.get(id(t)) != 1 or id(t) in fetched:
                        continue
                    if last_use.get(id(t)) != pos:
                        continue
                    if t.dtype != out_spec.dtype:
                        continue
                    if not t.shape.is_fully_defined or t.shape != out_spec.shape:
                        continue
                    if not self._producer_allocates_fresh(t):
                        continue
                    entry[8] = (j, inplace)
                    break
        self.plan = [tuple(entry) for entry in self.plan]
        self._build_memory_plan()
        self._hoist_constants()
        self._build_parallel_plan()

    def _hoist_constants(self) -> None:
        """Materialize Const nodes once, at plan-build time.

        A Const kernel is pure and hands out the graph-owned array, so
        dispatching it every run only pays per-node overhead.  The plan
        runs each unpinned Const here instead and seeds the run-local
        value store with the result (``self.const_store``).  Pinned
        constants (explicit device placement) keep their plan entry and
        dispatch normally.  Consumers can never donate these buffers —
        Const registers no in-place kernel, so the freshness check in
        the donation planner already rejects them.
        """
        self.const_store: dict[int, Tensor] = {}
        cpu = context.cpu_device()
        kept = []
        for entry in self.plan:
            _n, _ph, kernel, attrs, in_ids, _out, single, _d, _don = entry
            if (
                entry[0].op_name != "Const"
                or kernel is None
                or in_ids
                or single is None
            ):
                kept.append(entry)
                continue
            out_id, keep, out_dtype = single
            if not keep:
                continue  # dead constant: neither consumed nor fetched
            r = kernel([], attrs, cpu)
            arr = r if isinstance(r, np.ndarray) else np.asarray(r)
            if arr.flags.writeable:
                arr.flags.writeable = False
            self.const_store[out_id] = Tensor._from_buffer(arr, out_dtype, cpu)
        self.plan = kept

    @staticmethod
    def _producer_allocates_fresh(t: SymbolicTensor) -> bool:
        """Does ``t``'s producing kernel always return a fresh buffer?

        The in-place kernel registry doubles as the whitelist: an op only
        registers one if its normal kernel never returns (a view of) an
        input.  Fused regions track freshness per output.
        """
        node = t.node
        if node.op_name == FUSED_OP:
            return node.attrs["region"].fresh_outputs[t.index]
        return registry.has_inplace_kernel(node.op_name)

    def _build_memory_plan(self) -> None:
        """Static walk of the schedule, tracking live intermediate bytes.

        Produces ``self.memory_plan``: the peak number of bytes of
        *executor-produced* values live at once (placeholder feeds are
        caller-owned and count zero), assuming every intermediate is
        freed at its planned death.  Unknown dimensions count as 1, so
        symbolic plans report a lower bound (flagged).
        """
        live = 0
        peak = 0
        lower = False
        donated = 0
        fused = 0
        bytes_of: dict[int, int] = {}
        for node, is_ph, _k, attrs, in_ids, out_entries, _s, dies, donate in self.plan:
            if is_ph:
                bytes_of[out_entries[0][0]] = 0
                continue
            if node.op_name == FUSED_OP:
                fused += 1
                region = attrs["region"]
                peak = max(peak, live + region.internal_peak_bytes)
                lower |= region.peak_is_lower_bound
            else:
                # A node that runs a nested graph function (a staged
                # call, a rematerialized segment, a control-flow branch
                # or body) holds that callee's working set live on top
                # of ours while it executes.  Without this, the plan
                # would claim a checkpointed graph has no recompute
                # cost — the peak the planner exists to report.
                for value in (attrs or {}).values():
                    inner = _callee_peak_bytes(value)
                    if inner is not None:
                        peak = max(peak, live + inner[0])
                        lower |= inner[1]
            transferred = 0
            if donate is not None:
                donated += 1
                donated_id = in_ids[donate[0]]
                transferred = bytes_of.get(donated_id, 0)
                bytes_of[donated_id] = 0
            for sym, (out_id, keep, _dt) in zip(node.outputs, out_entries):
                if not keep:
                    continue
                nbytes, lb = _spec_bytes(sym.spec)
                lower |= lb
                if donate is not None and sym.index == 0:
                    bytes_of[out_id] = transferred
                else:
                    bytes_of[out_id] = nbytes
                    live += nbytes
                    if live > peak:
                        peak = live
            for i in dies:
                live -= bytes_of.pop(i, 0)
        self.memory_plan = {
            "peak_live_bytes": peak,
            "lower_bound": lower,
            "donated_nodes": donated,
            "fused_nodes": fused,
            "num_nodes": len(self.plan),
        }

    # -- serial ----------------------------------------------------------
    def run(self, feeds, parallel: bool = False) -> list[Tensor]:
        """Execute with the given feeds.

        ``feeds`` is a sequence of (placeholder, value) pairs (or a dict
        with hashable keys); placeholders may be the symbolic output or
        the Placeholder node itself.
        """
        if self.plan_backend != context._kernel_backend:
            # The active array backend changed after this plan bound its
            # kernels; rebind so cached plans follow the knob.
            self._build_schedule()
        items = feeds.items() if isinstance(feeds, dict) else feeds
        feed_values: dict[int, Tensor] = {}
        for key, value in items:
            node = key.node if isinstance(key, SymbolicTensor) else key
            feed_values[id(node)] = value
        if self.feed_specs:
            self._validate_feeds(feed_values)
        if parallel:
            return self._run_parallel(feed_values)
        return self._run_serial(feed_values)

    def _validate_feeds(self, feed_values: dict[int, Tensor]) -> None:
        """Check fed values against symbolic placeholder specs."""
        for node_id, (node, spec) in self.feed_specs.items():
            value = feed_values.get(node_id)
            if value is None:
                continue  # "not fed" is diagnosed by the run loop
            if value.dtype != spec.dtype or not value.shape.is_subtype_of(
                spec.shape
            ):
                raise InvalidArgumentError(
                    f"Placeholder {node.name!r} expects {spec.dtype.name}"
                    f"{spec.shape}, got {value.dtype.name}{value.shape} "
                    "(incompatible with this trace's symbolic signature)"
                )

    def _run_serial(self, feed_values: dict[int, Tensor]) -> list[Tensor]:
        if not self.label_errors:
            return self._run_serial_loop(feed_values)
        state: list = [None]  # the node being executed, for error labels
        try:
            return self._run_serial_loop(feed_values, state)
        except BaseException as exc:  # noqa: BLE001 - relabelled, re-raised
            node = state[0]
            if node is None:
                raise
            from repro.runtime.stream import _attach_op_name

            labelled = _attach_op_name(exc, node.op_name)
            if labelled is exc:
                raise
            raise labelled

    def _run_serial_loop(
        self, feed_values: dict[int, Tensor], state: Optional[list] = None
    ) -> list[Tensor]:
        store: dict[int, Tensor] = dict(self.const_store)
        cpu = context.cpu_device()
        core = dispatch.core
        from_buffer = Tensor._from_buffer
        as_dtype = dtypes.as_dtype
        ndarray = np.ndarray
        for node, is_placeholder, kernel, attrs, in_ids, out_entries, single, dies, donate in self.plan:
            if state is not None:
                state[0] = node
            if is_placeholder:
                try:
                    value = feed_values[id(node)]
                except KeyError:
                    raise InvalidArgumentError(
                        f"Placeholder {node.name!r} was not fed"
                    ) from None
                store[out_entries[0][0]] = value
                continue
            try:
                inputs = [store[i] for i in in_ids]
            except KeyError:
                missing = [t.name for t in node.inputs if id(t) not in store]
                raise InternalError(
                    f"Value(s) {missing} consumed before being produced"
                ) from None

            # Fast path: unpinned single-output node, inputs on local
            # CPU, no graph-mode interceptor registered.
            arrays = None
            if kernel is not None and not core.graph_interceptors:
                arrays = []
                for t in inputs:
                    if t._device is not cpu:
                        arrays = None
                        break
                    arrays.append(t._array)
            if arrays is not None:
                cpu._kernel_launches += 1
                r = None
                if donate is not None:
                    # Planned buffer donation: overwrite the dying input
                    # in place.  Runtime guards (owned buffer, thawable,
                    # kernel accepts the out= shape) fall back to the
                    # allocating kernel — a polymorphic caller may have
                    # fed shapes the static plan did not anticipate.
                    buf = arrays[donate[0]]
                    if buf.base is None:
                        try:
                            buf.flags.writeable = True
                            r = donate[1](arrays, attrs, cpu, buf)
                        except (ValueError, TypeError):
                            r = None
                if r is None:
                    r = kernel(arrays, attrs, cpu)
                if single is not None and type(r) is ndarray:
                    out_id, keep, out_dtype = single
                    if keep:
                        if r.flags.writeable:
                            base = r.base
                            if base is not None and base.flags.writeable:
                                r = r.copy()
                            r.flags.writeable = False
                        store[out_id] = from_buffer(r, out_dtype, cpu)
                else:
                    if r is None:
                        r = ()
                    elif isinstance(r, (Tensor, ndarray)) or np.isscalar(r):
                        r = (r,)
                    for (out_id, keep, out_dtype), value in zip(out_entries, r):
                        if not keep:
                            continue
                        if isinstance(value, Tensor):
                            store[out_id] = value
                        else:
                            arr = value if isinstance(value, ndarray) else np.asarray(value)
                            store[out_id] = from_buffer(
                                cpu.wrap_output(arr), as_dtype(arr.dtype), cpu
                            )
            else:
                outputs = _dispatch_node(node, inputs)
                for (out_id, keep, _dt), out_val in zip(out_entries, outputs):
                    if keep:
                        store[out_id] = out_val

            # Buffer freeing: drop values after their last consumer.
            for i in dies:
                store.pop(i, None)
        if state is not None:
            state[0] = None  # fetch errors are not any node's fault
        return [self._fetch(store, t) for t in self.fetches]

    def _fetch(self, store: dict[int, Tensor], t) -> Optional[Tensor]:
        if isinstance(t, Node):
            return None  # an operation fetch (e.g. a training op)
        try:
            return store[id(t)]
        except KeyError:
            raise InternalError(f"Fetch {t.name!r} was not computed") from None

    # -- parallel -------------------------------------------------------------

    #: Nodes whose static output-element cost is at or below this bound
    #: are "tiny": scheduling one as its own parallel task costs more
    #: than running it.  Sole-consumer chains of tiny nodes collapse
    #: into one serial-island task.
    TINY_TASK_ELEMENTS = 1 << 14

    def _task_cost(self, node: Node) -> Optional[int]:
        """Static per-dispatch cost estimate in output elements."""
        total = 0
        for sym in node.outputs:
            n = sym.spec.shape.num_elements()
            if n is None:
                return None
            total += n
        if node.op_name == FUSED_OP:
            # A fused dispatch runs the whole region.
            total *= node.attrs["region"].size
        return total

    def _is_tiny(self, node: Node) -> bool:
        if node.op_name == "Placeholder":
            return False
        if node.device is not None or node.control_inputs:
            return False
        op_def = node.op_def
        if op_def.is_stateful or op_def.has_side_effects:
            return False
        cost = self._task_cost(node)
        return cost is not None and cost <= self.TINY_TASK_ELEMENTS

    def _build_parallel_plan(self) -> None:
        """Contract the schedule into parallel tasks.

        A fused region is already one task.  Beyond that, a tiny node
        whose single output is consumed by exactly one (tiny) node melts
        into that consumer's task — the resulting serial islands are
        in-trees, so contraction can never create a cycle, and the task
        graph is emitted in topological index order.  Dependency counts
        and dependent lists are precomputed; each run copies the counts.
        """
        schedule = self.schedule
        pos_of = {id(n): i for i, n in enumerate(schedule)}

        consumer_positions: dict[int, set[int]] = {}
        for i, node in enumerate(schedule):
            for t in node.inputs:
                p = pos_of.get(id(t.node))
                if p is not None:
                    consumer_positions.setdefault(p, set()).add(i)
        fetched_nodes = {
            id(t.node) for t in self.fetches if not isinstance(t, Node)
        }

        # position -> the position of the consumer it melts into.
        melt: dict[int, int] = {}
        for i, node in enumerate(schedule):
            if id(node) in fetched_nodes or not self._is_tiny(node):
                continue
            cons = consumer_positions.get(i)
            if cons is None or len(cons) != 1:
                continue
            (j,) = cons
            if j > i and self._is_tiny(schedule[j]):
                melt[i] = j

        def island_root(i: int) -> int:
            while i in melt:
                i = melt[i]
            return i

        groups: dict[int, list[int]] = {}
        for i in range(len(schedule)):
            groups.setdefault(island_root(i), []).append(i)

        self.par_tasks: list[list[Node]] = []
        task_of: dict[int, int] = {}
        for root in sorted(groups):
            members = sorted(groups[root])
            for i in members:
                task_of[i] = len(self.par_tasks)
            self.par_tasks.append([schedule[i] for i in members])

        n_tasks = len(self.par_tasks)
        self.par_deps: list[int] = [0] * n_tasks
        self.par_dependents: list[list[int]] = [[] for _ in range(n_tasks)]
        edges: set[tuple[int, int]] = set()

        def add_edge(src: int, dst: int) -> None:
            if src != dst and (src, dst) not in edges:
                edges.add((src, dst))
                self.par_deps[dst] += 1
                self.par_dependents[src].append(dst)

        prev_stateful_task: Optional[int] = None
        for i, node in enumerate(schedule):
            ti = task_of[i]
            for t in node.inputs:
                p = pos_of.get(id(t.node))
                if p is not None:
                    add_edge(task_of[p], ti)
            if node.op_def.is_stateful:
                # Stateful operations serialize in program order.
                if prev_stateful_task is not None:
                    add_edge(prev_stateful_task, ti)
                prev_stateful_task = ti

    def _run_parallel(self, feed_values: dict[int, Tensor]) -> list[Tensor]:
        deps = list(self.par_deps)
        counts = dict(self.consumers)

        store: dict[int, Tensor] = {}
        store_lock = threading.Lock()
        done = threading.Event()
        errors: list[BaseException] = []
        pending = len(self.par_tasks)
        pool = _thread_pool()

        def finish_task(index: int) -> None:
            nonlocal pending
            ready: list[int] = []
            with store_lock:
                pending -= 1
                if pending == 0:
                    done.set()
                for dep in self.par_dependents[index]:
                    deps[dep] -= 1
                    if deps[dep] == 0:
                        ready.append(dep)
            for dep in ready:
                pool.submit(run_task, dep)

        def run_task(index: int) -> None:
            if errors:
                done.set()
                return
            try:
                for node in self.par_tasks[index]:
                    if node.op_name == "Placeholder":
                        value = feed_values[id(node)]
                        out_id = id(node.outputs[0])
                        with store_lock:
                            if out_id in counts:
                                store[out_id] = value
                        continue
                    with store_lock:
                        inputs = [store[id(t)] for t in node.inputs]
                    outputs = _dispatch_node(node, inputs)
                    with store_lock:
                        for out_sym, out_val in zip(node.outputs, outputs):
                            if id(out_sym) in counts:
                                store[id(out_sym)] = out_val
                        # Per-run reference counts: free a buffer as its
                        # last consumer retires (fetches hold an extra
                        # reference, so they can never hit zero here).
                        for t in node.inputs:
                            tid = id(t)
                            c = counts.get(tid)
                            if c is None:
                                continue
                            if c == 1:
                                del counts[tid]
                                store.pop(tid, None)
                            else:
                                counts[tid] = c - 1
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                errors.append(exc)
                done.set()
                return
            finish_task(index)

        if not self.par_tasks:
            done.set()
        roots = [i for i, d in enumerate(deps) if d == 0]
        for index in roots:
            pool.submit(run_task, index)
        done.wait()
        if errors:
            raise errors[0]
        return [self._fetch(store, t) for t in self.fetches]


def execute_graph(
    graph: Graph,
    feeds: dict,
    fetches: Sequence[SymbolicTensor],
    parallel: bool = False,
) -> list[Tensor]:
    """One-shot graph execution (builds a fresh GraphRunner).

    Long-lived callers (ConcreteFunction, Session) should build a
    :class:`GraphRunner` once and call ``run`` repeatedly.
    """
    return GraphRunner(graph, fetches).run(feeds, parallel=parallel)
