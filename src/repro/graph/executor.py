"""The dataflow graph executor.

Executes a graph's nodes over concrete tensors.  Per-node kernel
dispatch is NOT implemented here: every node runs through the unified
dispatch core (:data:`repro.runtime.dispatch.core`) — the same device
resolution, kernel cache, interceptor stack (profiler, op records, …),
and :meth:`Device.dispatch` protocol that serves eager execution.
That is the paper's §4.1 claim made structural: imperative and staged
computations "use the same APIs and kernels", and staging wins only by
amortizing per-op Python overhead, not by running different code.

Two execution modes:

* **Serial** (default): one pass over the nodes in topological order.
  This is the low-overhead fast path the staged benchmarks use: the
  :class:`GraphRunner` plan pre-resolves each node's kernel through the
  dispatch core's ``(op, device_kind, input_dtypes)`` cache at plan
  time, so the loop invokes cached kernels directly with no per-op
  registry probing, tape probing, or device-stack walks (which is
  precisely why staged execution outruns the imperative path on small
  ops, reproducing Figures 3–4).  When any ``"graph"``-mode interceptor
  is registered — a single emptiness check per node — the node takes
  the instrumented ``core.dispatch`` path instead, so cross-cutting
  hooks observe graph nodes exactly as they observe eager ops.  To
  observe nodes here, register an interceptor with
  ``dispatch.core.register_interceptor`` (see the
  :mod:`repro.runtime.dispatch` docstring); do not add inline checks to
  the loop.
* **Parallel**: a ready-queue scheduler over a thread pool, modelling
  the real runtime's inter-op parallelism (paper §5: "runs kernels in
  parallel when possible").  Stateful operations are serialized in
  program order through an implicit control edge.  The pool size comes
  from ``context.inter_op_parallelism_threads`` (env var
  ``REPRO_INTER_OP_THREADS``, default 8), and the pool is shut down
  cleanly at interpreter exit.

Both modes free intermediate buffers as soon as their last consumer has
run (reference counting), mirroring the buffer-reuse benefit the paper
attributes to graphs (§4.1).
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import InternalError, InvalidArgumentError
from repro.runtime import dispatch
from repro.runtime.context import context
from repro.tensor import Tensor
from repro.graph.graph import Graph, Node, SymbolicTensor

__all__ = ["execute_graph", "GraphRunner", "shutdown_thread_pool"]

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()


def _thread_pool() -> ThreadPoolExecutor:
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=context.inter_op_parallelism_threads,
                thread_name_prefix="repro-executor",
            )
        return _POOL


def shutdown_thread_pool(wait: bool = True) -> None:
    """Shut down the inter-op thread pool (it is rebuilt on demand).

    Called automatically at interpreter exit; call it manually after
    changing ``context.inter_op_parallelism_threads`` so the next
    parallel execution picks up the new size.
    """
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=wait)


atexit.register(shutdown_thread_pool)


def _dispatch_node(node: Node, inputs: Sequence[Tensor]) -> list[Tensor]:
    """Run one node through the unified dispatch core."""
    return dispatch.core.dispatch(
        node.op_name,
        inputs,
        node.attrs,
        explicit_device=node.device,
        mode=dispatch.GRAPH,
    )


class GraphRunner:
    """A reusable execution plan for one (graph, fetches) pair.

    Precomputes the executable node schedule, per-tensor consumer
    counts, and placeholder bindings so that repeated executions (the
    common case: a staged training step runs thousands of times) do no
    graph analysis at all.
    """

    def __init__(
        self,
        graph: Graph,
        fetches: Sequence,
        include_side_effects: bool = True,
    ) -> None:
        """Plan execution of ``fetches`` (symbolic tensors, or Nodes for
        pure side-effect operations like variable assignment).

        ``include_side_effects=True`` (traced functions) runs every
        side-effecting node in the graph; ``False`` (classic Session
        semantics) runs only what the fetches reach — fetch-driven
        pruning, paper §5.
        """
        self.graph = graph
        self.fetches = list(fetches)
        self._include_side_effects = include_side_effects
        self._build_schedule()

    def _build_schedule(self) -> None:
        # Live set: reverse reachability from fetches (plus, for traced
        # functions, every side-effecting node).
        live: set[int] = set()
        stack = [t if isinstance(t, Node) else t.node for t in self.fetches]
        if self._include_side_effects:
            stack.extend(n for n in self.graph.nodes if n.op_def.has_side_effects)
        while stack:
            node = stack.pop()
            if id(node) in live:
                continue
            live.add(id(node))
            stack.extend(t.node for t in node.inputs)
            stack.extend(node.control_inputs)
        self.schedule: list[Node] = [n for n in self.graph.nodes if id(n) in live]

        # Consumer counts for buffer freeing.
        self.consumers: dict[int, int] = {}
        for node in self.schedule:
            for t in node.inputs:
                self.consumers[id(t)] = self.consumers.get(id(t), 0) + 1
        for t in self.fetches:
            if not isinstance(t, Node):
                self.consumers[id(t)] = self.consumers.get(id(t), 0) + 1

        self.placeholders = [n for n in self.schedule if n.op_name == "Placeholder"]

        # Symbolic placeholders (unknown dims — a relaxed or
        # input_signature trace): remember their specs so feeds are
        # validated per run.  Exact traces pay nothing (empty dict);
        # feeding a symbolic plan an incompatible shape fails with a
        # clear error here rather than deep inside a kernel.
        self.feed_specs: dict[int, tuple[Node, object]] = {}
        for node in self.placeholders:
            spec = node.outputs[0].spec
            if not spec.shape.is_fully_defined:
                self.feed_specs[id(node)] = (node, spec)

        # Precomputed execution plan: per node, the kernel resolved once
        # through the dispatch core's (op, device_kind, input_dtypes)
        # cache (when one exists and the node is not pinned elsewhere),
        # input tensor ids, and output bookkeeping.  The serial loop
        # then runs with no registry lookups or device-stack walks per
        # node — the low per-op overhead that gives staged execution
        # its edge.
        core = dispatch.core
        self.plan = []
        for node in self.schedule:
            kernel = None
            if node.device is None:
                in_dtypes = tuple(t.dtype for t in node.inputs)
                kernel = core.resolve_kernel_or_none(node.op_name, "CPU", in_dtypes)
            in_ids = tuple(id(t) for t in node.inputs)
            out_entries = tuple(
                (id(sym), self.consumers.get(id(sym), 0) > 0, sym.dtype)
                for sym in node.outputs
            )
            single = out_entries[0] if len(out_entries) == 1 else None
            self.plan.append(
                [
                    node,
                    node.op_name == "Placeholder",
                    kernel,
                    node.attrs,
                    in_ids,
                    out_entries,
                    single,
                    (),  # dies: filled by last-use analysis below
                ]
            )

        # Last-use analysis: free each intermediate right after its final
        # consumer instead of maintaining per-run reference counts.
        fetched = {id(t) for t in self.fetches if not isinstance(t, Node)}
        last_use: dict[int, int] = {}
        for pos, entry in enumerate(self.plan):
            for i in entry[4]:
                last_use[i] = pos
        dies_at: dict[int, list[int]] = {}
        for tensor_id, pos in last_use.items():
            if tensor_id not in fetched:
                dies_at.setdefault(pos, []).append(tensor_id)
        for pos, dead in dies_at.items():
            self.plan[pos][7] = tuple(dead)
        self.plan = [tuple(entry) for entry in self.plan]

    # -- serial ----------------------------------------------------------
    def run(self, feeds, parallel: bool = False) -> list[Tensor]:
        """Execute with the given feeds.

        ``feeds`` is a sequence of (placeholder, value) pairs (or a dict
        with hashable keys); placeholders may be the symbolic output or
        the Placeholder node itself.
        """
        items = feeds.items() if isinstance(feeds, dict) else feeds
        feed_values: dict[int, Tensor] = {}
        for key, value in items:
            node = key.node if isinstance(key, SymbolicTensor) else key
            feed_values[id(node)] = value
        if self.feed_specs:
            self._validate_feeds(feed_values)
        if parallel:
            return self._run_parallel(feed_values)
        return self._run_serial(feed_values)

    def _validate_feeds(self, feed_values: dict[int, Tensor]) -> None:
        """Check fed values against symbolic placeholder specs."""
        for node_id, (node, spec) in self.feed_specs.items():
            value = feed_values.get(node_id)
            if value is None:
                continue  # "not fed" is diagnosed by the run loop
            if value.dtype != spec.dtype or not value.shape.is_subtype_of(
                spec.shape
            ):
                raise InvalidArgumentError(
                    f"Placeholder {node.name!r} expects {spec.dtype.name}"
                    f"{spec.shape}, got {value.dtype.name}{value.shape} "
                    "(incompatible with this trace's symbolic signature)"
                )

    def _run_serial(self, feed_values: dict[int, Tensor]) -> list[Tensor]:
        store: dict[int, Tensor] = {}
        cpu = context.cpu_device()
        core = dispatch.core
        from_buffer = Tensor._from_buffer
        as_dtype = dtypes.as_dtype
        ndarray = np.ndarray
        for node, is_placeholder, kernel, attrs, in_ids, out_entries, single, dies in self.plan:
            if is_placeholder:
                try:
                    value = feed_values[id(node)]
                except KeyError:
                    raise InvalidArgumentError(
                        f"Placeholder {node.name!r} was not fed"
                    ) from None
                store[out_entries[0][0]] = value
                continue
            try:
                inputs = [store[i] for i in in_ids]
            except KeyError:
                missing = [t.name for t in node.inputs if id(t) not in store]
                raise InternalError(
                    f"Value(s) {missing} consumed before being produced"
                ) from None

            # Fast path: unpinned single-output node, inputs on local
            # CPU, no graph-mode interceptor registered.
            arrays = None
            if kernel is not None and not core.graph_interceptors:
                arrays = []
                for t in inputs:
                    if t._device is not cpu:
                        arrays = None
                        break
                    arrays.append(t._array)
            if arrays is not None:
                cpu._kernel_launches += 1
                r = kernel(arrays, attrs, cpu)
                if single is not None and type(r) is ndarray:
                    out_id, keep, out_dtype = single
                    if keep:
                        if r.flags.writeable:
                            base = r.base
                            if base is not None and base.flags.writeable:
                                r = r.copy()
                            r.flags.writeable = False
                        store[out_id] = from_buffer(r, out_dtype, cpu)
                else:
                    if r is None:
                        r = ()
                    elif isinstance(r, (Tensor, ndarray)) or np.isscalar(r):
                        r = (r,)
                    for (out_id, keep, out_dtype), value in zip(out_entries, r):
                        if not keep:
                            continue
                        if isinstance(value, Tensor):
                            store[out_id] = value
                        else:
                            arr = value if isinstance(value, ndarray) else np.asarray(value)
                            store[out_id] = from_buffer(
                                cpu.wrap_output(arr), as_dtype(arr.dtype), cpu
                            )
            else:
                outputs = _dispatch_node(node, inputs)
                for (out_id, keep, _dt), out_val in zip(out_entries, outputs):
                    if keep:
                        store[out_id] = out_val

            # Buffer freeing: drop values after their last consumer.
            for i in dies:
                store.pop(i, None)
        return [self._fetch(store, t) for t in self.fetches]

    def _fetch(self, store: dict[int, Tensor], t) -> Optional[Tensor]:
        if isinstance(t, Node):
            return None  # an operation fetch (e.g. a training op)
        try:
            return store[id(t)]
        except KeyError:
            raise InternalError(f"Fetch {t.name!r} was not computed") from None

    # -- parallel -------------------------------------------------------------
    def _run_parallel(self, feed_values: dict[int, Tensor]) -> list[Tensor]:
        # Dependency counts; stateful nodes chain in program order.
        deps: dict[int, int] = {}
        dependents: dict[int, list[Node]] = {}
        prev_stateful: Optional[Node] = None
        node_index = {id(n): n for n in self.schedule}
        for node in self.schedule:
            count = 0
            seen: set[int] = set()
            for t in node.inputs:
                if id(t.node) in node_index and id(t.node) not in seen:
                    seen.add(id(t.node))
                    count += 1
                    dependents.setdefault(id(t.node), []).append(node)
            if node.op_def.is_stateful:
                if prev_stateful is not None and id(prev_stateful) not in seen:
                    count += 1
                    dependents.setdefault(id(prev_stateful), []).append(node)
                prev_stateful = node
            deps[id(node)] = count

        store: dict[int, Tensor] = {}
        store_lock = threading.Lock()
        done = threading.Event()
        errors: list[BaseException] = []
        pending = len(self.schedule)
        pending_lock = threading.Lock()
        pool = _thread_pool()

        def finish_node(node: Node) -> None:
            nonlocal pending
            with pending_lock:
                pending -= 1
                if pending == 0:
                    done.set()
            ready: list[Node] = []
            with store_lock:
                for dep in dependents.get(id(node), []):
                    deps[id(dep)] -= 1
                    if deps[id(dep)] == 0:
                        ready.append(dep)
            for dep in ready:
                pool.submit(run_one, dep)

        def run_one(node: Node) -> None:
            if errors:
                done.set()
                return
            try:
                if node.op_name == "Placeholder":
                    value = feed_values[id(node)]
                    with store_lock:
                        store[id(node.outputs[0])] = value
                else:
                    with store_lock:
                        inputs = [store[id(t)] for t in node.inputs]
                    outputs = _dispatch_node(node, inputs)
                    with store_lock:
                        for out_sym, out_val in zip(node.outputs, outputs):
                            store[id(out_sym)] = out_val
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                errors.append(exc)
                done.set()
                return
            finish_node(node)

        roots = [n for n in self.schedule if deps[id(n)] == 0]
        if not self.schedule:
            done.set()
        for node in roots:
            pool.submit(run_one, node)
        done.wait()
        if errors:
            raise errors[0]
        return [self._fetch(store, t) for t in self.fetches]


def execute_graph(
    graph: Graph,
    feeds: dict,
    fetches: Sequence[SymbolicTensor],
    parallel: bool = False,
) -> list[Tensor]:
    """One-shot graph execution (builds a fresh GraphRunner).

    Long-lived callers (ConcreteFunction, Session) should build a
    :class:`GraphRunner` once and call ``run`` repeatedly.
    """
    return GraphRunner(graph, fetches).run(feeds, parallel=parallel)
