"""Graph functions: graphs with named inputs and outputs.

"TensorFlow Eager represents each staged computation as a graph
function, i.e., a graph with named inputs and outputs, representing the
exact computation of interest" (paper §5).  A :class:`GraphFunction`
bundles a graph, its placeholder inputs (in calling order, including
lexically-captured values appended at the end), and its output tensors.
It is the unit of execution (via the ``PartitionedCall`` op), of
optimization (the grappler-style passes run per function), and of
compilation (XLA compiles one function into one accelerator program).
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.framework.errors import InvalidArgumentError
from repro.framework.tensor_shape import TensorShape
from repro.ops.registry import register_gradient, register_op
from repro.tensor import Tensor, TensorSpec
from repro.graph.graph import Graph, Node, SymbolicTensor

__all__ = ["GraphFunction", "placeholder"]


def _placeholder_infer(inputs, attrs):
    return [TensorSpec(TensorShape(attrs["shape"]), attrs["dtype"])]


register_op("Placeholder", infer_fn=_placeholder_infer)
register_gradient("Placeholder")(lambda op, grad: [])


def placeholder(graph: Graph, dtype, shape=None, name: str = "Placeholder") -> SymbolicTensor:
    """Add a graph input node and return its symbolic output."""
    from repro.framework import dtypes as _dtypes

    with graph.as_default():
        from repro.runtime.executor import execute

        out = execute(
            "Placeholder",
            [],
            {"dtype": _dtypes.as_dtype(dtype), "shape": TensorShape(shape)},
            name=name,
        )
    return out


class GraphFunction:
    """An executable dataflow graph with a fixed, typed signature.

    Unlike Python functions, graph functions are monomorphic: "they
    have a fixed number of inputs, which are statically typed" (paper
    §4.6).  The polymorphic ``function`` decorator maintains a cache of
    these.
    """

    def __init__(
        self,
        name: str,
        graph: Graph,
        inputs: Sequence[SymbolicTensor],
        outputs: Sequence[SymbolicTensor],
    ) -> None:
        self.name = name
        self.graph = graph
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.input_specs = [TensorSpec(t.shape, t.dtype) for t in self.inputs]
        self.output_specs = [TensorSpec(t.shape, t.dtype) for t in self.outputs]
        self._runner = None
        self._plan_lock = threading.Lock()

    @property
    def contains_py_func(self) -> bool:
        return self.graph.contains_py_func

    @property
    def num_nodes(self) -> int:
        return len(self.graph.nodes)

    def plan(self):
        """The cached :class:`~repro.graph.executor.GraphRunner` plan.

        Plans are *shape-polymorphic*: kernels derive output shapes from
        the actual buffers, so a single plan serves every concrete shape
        a symbolic (relaxed) trace admits.  The pipeline's plan stage
        (:meth:`repro.core.pipeline.CompilationPipeline.plan`) routes
        here; rewriting the graph invalidates the plan via
        :meth:`release_plan`.
        """
        from repro.graph.executor import GraphRunner

        runner = self._runner
        if runner is None:
            # Double-checked: concurrent first callers (serving worker
            # threads sharing one LoadedFunction) must agree on a single
            # plan rather than racing two half-built ones.
            with self._plan_lock:
                runner = self._runner
                if runner is None:
                    runner = self._runner = GraphRunner(self.graph, self.outputs)
        return runner

    def release_plan(self) -> None:
        """Drop the cached execution plan (rebuilt on next use)."""
        self._runner = None

    def run(self, args: Sequence[Tensor], parallel: bool = False) -> list[Tensor]:
        """Execute the graph on concrete inputs; returns concrete outputs.

        The execution plan (schedule, refcounts) is built once and
        cached; repeated calls dispatch kernels with no graph analysis.
        """
        if len(args) != len(self.inputs):
            raise InvalidArgumentError(
                f"Graph function {self.name!r} takes {len(self.inputs)} inputs, "
                f"got {len(args)}"
            )
        return self.plan().run(list(zip(self.inputs, args)), parallel=parallel)

    def optimize(self, passes: Optional[Sequence[str]] = None) -> dict:
        """Run grappler-style optimization passes in place.

        Returns a per-pass report (nodes removed/rewritten), used by the
        ablation benchmarks.
        """
        from repro.graph.optimize import optimize_function

        self._runner = None  # plan must be rebuilt after rewriting
        return optimize_function(self, passes)

    def definition(self) -> dict:
        """GraphDef-like serializable structure (see serialization module)."""
        from repro.graph.serialization import function_to_def

        return function_to_def(self)

    def __repr__(self) -> str:
        return (
            f"<GraphFunction {self.name!r}: {len(self.inputs)} inputs -> "
            f"{len(self.outputs)} outputs, {len(self.graph.nodes)} nodes>"
        )
