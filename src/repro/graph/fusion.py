"""Graph-native elementwise fusion.

Staged execution amortizes Python overhead, but the interpreter still
pays one dispatch (kernel resolution, buffer wrapping, scheduling) per
node.  For elementwise-heavy programs — activation chains, optimizer
update rules, most of a backward pass — that per-node cost dominates,
and every intermediate is materialized as a full tensor.

The ``fuse`` pass collapses maximal DAG-shaped regions of elementwise
operations into single ``FusedElementwise`` nodes.  Each fused node
carries a :class:`FusionRegion`: a precompiled closure that runs the
member kernels back-to-back over a local value stack, dropping dead
intermediates eagerly and writing into dying buffers in place (via the
registry's in-place kernel variants) when shapes are static.  The
executor dispatches the whole region as one operation.

Fusion is a *pure scheduling* rewrite: the region replays back into its
member primitives for anything that needs per-op structure —
differentiation, per-shape specialization, XLA lowering, serialization
(:func:`defuse_function`).  Forward and backward graph functions each
run their own optimization pipeline, so both re-fuse independently.

Clustering is greedy over the topologically-ordered node list.  A node
joins the cluster of the first eligible input producer, subject to an
exact cycle check: every input produced *outside* the cluster must have
no ancestor *inside* it (ancestor sets are bitmasks over node
positions).  Because clusters only grow downward from a seed along real
edges and the node list is topological, this local check is sufficient
to keep the contracted graph acyclic; a final Kahn sweep verifies that
invariant and abandons fusion entirely if it ever fails.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.framework import dtypes
from repro.ops import registry
from repro.runtime.stream import _attach_op_name
from repro.tensor import TensorSpec
from repro.graph.graph import Graph, Node, SymbolicTensor

__all__ = [
    "FUSED_OP",
    "FusionRegion",
    "fuse_function",
    "defuse_function",
    "has_fused_nodes",
]

FUSED_OP = "FusedElementwise"

#: Candidate member set — shared with the XLA-sim fusion heuristics.
FUSABLE_OPS = registry.ELEMENTWISE_OPS

#: Don't emit a fused node for fewer than this many members (a region
#: of one is just an op with extra indirection).
MIN_REGION_SIZE = 2

# Ops whose kernel may return an input array (or a view of it) instead
# of a fresh allocation.  Their outputs can never donate their buffer,
# and anything they alias is pinned.
_ALIAS_OPS = frozenset({"Identity", "StopGradient"})


class _SpecView:
    """Minimal symbolic-input stand-in for re-running shape inference."""

    __slots__ = ("shape", "dtype", "constant_value")

    def __init__(self, shape, dtype) -> None:
        self.shape = shape
        self.dtype = dtype
        self.constant_value = None


def _spec_bytes(spec: TensorSpec) -> tuple[int, bool]:
    """(byte estimate, is_lower_bound) for one tensor spec.

    Unknown dimensions count as 1, making the estimate a lower bound.
    """
    dims = spec.shape.dims
    if dims is None:
        return spec.dtype.size, True
    n = 1
    lower = False
    for d in dims:
        if d is None:
            lower = True
        else:
            n *= d
    return max(n, 1) * spec.dtype.size, lower


class FusionRegion:
    """A precompiled cluster of elementwise operations.

    Values live on a flat slot list: slots ``0..num_inputs-1`` are the
    region's external inputs, slot ``num_inputs + k`` is the output of
    step ``k``.  Each step is a tuple

        ``(op_name, kernel, inplace_kernel, attrs, in_refs, donate, dies)``

    where ``donate`` is the slot whose (dying, fresh, exclusively-owned)
    buffer the step overwrites via its in-place kernel, or -1, and
    ``dies`` lists internal slots whose last use is this step.
    """

    __slots__ = (
        "steps",
        "out_refs",
        "num_inputs",
        "op_names",
        "fresh_outputs",
        "internal_peak_bytes",
        "peak_is_lower_bound",
        "donated_steps",
        "backend",
        "_compiled",
    )

    def __init__(
        self,
        steps: Sequence[tuple],
        out_refs: Sequence[int],
        num_inputs: int,
        op_names: Sequence[str],
        fresh_outputs: Sequence[bool],
        internal_peak_bytes: int,
        peak_is_lower_bound: bool,
        donated_steps: int,
        backend: str = "numpy",
    ) -> None:
        self.steps = tuple(steps)
        self.out_refs = tuple(out_refs)
        self.num_inputs = num_inputs
        self.op_names = tuple(op_names)
        self.fresh_outputs = tuple(fresh_outputs)
        self.internal_peak_bytes = internal_peak_bytes
        self.peak_is_lower_bound = peak_is_lower_bound
        self.donated_steps = donated_steps
        self.backend = backend
        try:
            self._compiled = self._compile()
        except Exception:  # pragma: no cover - codegen is deterministic
            self._compiled = None

    @property
    def size(self) -> int:
        """Number of primitive operations the region covers."""
        return len(self.steps)

    def _compile(self):
        """Specialize the step loop into one generated Python function.

        The region's structure is static, so the slot indirection, the
        per-step tuple unpacking, and the free-list walk can all be
        resolved at build time: each slot becomes a local, each step a
        single kernel call with its arguments named inline.  Semantics
        are identical to the interpreted loop in :meth:`__call__`
        (which remains as the fallback), including the in-place
        donation fallback for polymorphic callers.
        """
        n = self.num_inputs
        env = {"ValueError": ValueError, "TypeError": TypeError}
        lines = ["def _run(inputs, device):"]
        if n == 1:
            lines.append("    v0, = inputs")
        elif n:
            lines.append(
                "    " + ", ".join(f"v{i}" for i in range(n)) + " = inputs"
            )
        for k, (_op, kernel, inplace, attrs, in_refs, donate, dies) in enumerate(
            self.steps
        ):
            out = f"v{n + k}"
            env[f"K{k}"] = kernel
            env[f"A{k}"] = attrs
            args = (
                "("
                + ", ".join(f"v{r}" for r in in_refs)
                + ("," if len(in_refs) == 1 else "")
                + ")"
            )
            if donate >= 0:
                env[f"P{k}"] = inplace
                lines.append("    try:")
                lines.append(f"        {out} = P{k}({args}, A{k}, device, v{donate})")
                lines.append("    except (ValueError, TypeError):")
                lines.append(f"        {out} = K{k}({args}, A{k}, device)")
            else:
                lines.append(f"    {out} = K{k}({args}, A{k}, device)")
            # Match the interpreter's free list: drop dead internals so
            # the planned internal peak holds for compiled runs too.
            for d in dies:
                lines.append(f"    v{d} = None")
        outs = [f"v{r}" for r in self.out_refs]
        lines.append(
            "    return "
            + (outs[0] if len(outs) == 1 else "(" + ", ".join(outs) + ")")
        )
        exec(compile("\n".join(lines), "<fusion-region>", "exec"), env)
        return env["_run"]

    def __call__(self, inputs, device):
        """Run the region's kernels over concrete arrays."""
        run = self._compiled
        if run is not None:
            try:
                return run(inputs, device)
            except BaseException:  # noqa: BLE001 - diagnosed by the replay
                # Fall through to the interpreter, which attributes the
                # error to the member op that raised it rather than to
                # the fused region.  External input buffers are never
                # donated, so the replay from them is deterministic;
                # internal buffers half-written by the failed compiled
                # run are simply recomputed.
                pass
        vals = list(inputs)
        for op_name, kernel, inplace, attrs, in_refs, donate, dies in self.steps:
            args = [vals[r] for r in in_refs]
            try:
                if donate >= 0:
                    # Static shape/dtype checks made this safe at build
                    # time; a ufunc still raises if a polymorphic caller
                    # fed mismatched buffers — fall back to allocating.
                    try:
                        out = inplace(args, attrs, device, vals[donate])
                    except (ValueError, TypeError):
                        out = kernel(args, attrs, device)
                else:
                    out = kernel(args, attrs, device)
            except BaseException as exc:  # noqa: BLE001 - relabelled
                # Deferred-error contract: the error names the member
                # op, not the FusedElementwise region it fused into.
                raise _attach_op_name(exc, op_name)
            vals.append(out)
            for d in dies:
                vals[d] = None
        out_refs = self.out_refs
        if len(out_refs) == 1:
            return vals[out_refs[0]]
        return tuple(vals[r] for r in out_refs)

    def infer(self, inputs, attrs=None):
        """Re-run member shape inference; one spec per region output."""
        specs = [_SpecView(t.shape, t.dtype) for t in inputs]
        for op_name, _k, _ik, step_attrs, in_refs, _d, _dies in self.steps:
            op_def = registry.get_op_def(op_name)
            out = op_def.infer([specs[r] for r in in_refs], step_attrs)
            specs.append(_SpecView(out[0].shape, out[0].dtype))
        return [TensorSpec(specs[r].shape, specs[r].dtype) for r in self.out_refs]

    def replay(self, inputs):
        """Re-stage the member primitives (symbolic expansion).

        Used wherever per-op structure matters again: differentiation,
        specialization, XLA lowering, serialization.  Must run inside a
        graph-building context; returns one symbolic tensor per region
        output.
        """
        from repro.runtime.executor import execute

        vals = list(inputs)
        for op_name, _k, _ik, step_attrs, in_refs, _d, _dies in self.steps:
            vals.append(execute(op_name, [vals[r] for r in in_refs], step_attrs))
        return tuple(vals[r] for r in self.out_refs)

    def __repr__(self) -> str:
        return (
            f"<FusionRegion {'+'.join(self.op_names)}: {self.num_inputs} inputs "
            f"-> {len(self.out_refs)} outputs, {self.donated_steps} in-place>"
        )


# ---------------------------------------------------------------------------
# The FusedElementwise operation
# ---------------------------------------------------------------------------

def _fused_infer(inputs, attrs):
    return attrs["region"].infer(inputs)


registry.register_op(FUSED_OP, infer_fn=_fused_infer)


@registry.register_kernel(FUSED_OP, ("CPU", "GPU"))
def _fused_kernel(inputs, attrs, device):
    return attrs["region"](inputs, device)


# No gradient is registered for FusedElementwise on purpose: gradient
# construction replays the region into primitives first (see
# ``repro.core.tracing.replay_into``), so the tape only ever sees ops
# with real gradient rules.


# ---------------------------------------------------------------------------
# Clustering
# ---------------------------------------------------------------------------

def _fusable(node: Node) -> bool:
    if node.op_name not in FUSABLE_OPS:
        return False
    if node.device is not None or node.control_inputs:
        return False
    if len(node.outputs) != 1:
        return False
    if node.outputs[0].dtype in (dtypes.resource, dtypes.variant):
        return False
    op_def = node.op_def
    if op_def.is_stateful or op_def.has_side_effects:
        return False
    return registry.has_kernel(node.op_name, "CPU")


def _ancestor_masks(nodes: list[Node], pos_of: dict[int, int]) -> list[int]:
    """Per-node ancestor sets as bitmasks over node-list positions."""
    masks = [0] * len(nodes)
    for i, node in enumerate(nodes):
        a = 0
        for t in node.inputs:
            p = pos_of.get(id(t.node))
            if p is not None:
                a |= masks[p] | (1 << p)
        for c in node.control_inputs:
            p = pos_of.get(id(c))
            if p is not None:
                a |= masks[p] | (1 << p)
        masks[i] = a
    return masks


def _cluster(nodes: list[Node], pos_of: dict[int, int]) -> tuple[dict, list]:
    """Greedy downward clustering with the exact acyclicity check.

    Returns ``(cluster_of, members)``: position -> cluster id, and the
    member-position lists (ascending, i.e. topological).
    """
    ancestors = _ancestor_masks(nodes, pos_of)
    cluster_of: dict[int, int] = {}
    members: list[list[int]] = []
    masks: list[int] = []

    def can_union(src: int, dst: int) -> bool:
        """Is contracting clusters ``src`` + ``dst`` still acyclic?

        Exact condition: no external input producer of the combined set
        may have an ancestor inside it (such a producer would sit on a
        path that leaves the set and comes back).
        """
        combined = masks[src] | masks[dst]
        for m in members[src] + members[dst]:
            for t in nodes[m].inputs:
                w = pos_of.get(id(t.node))
                if w is None or (combined >> w) & 1:
                    continue
                if ancestors[w] & combined:
                    return False
        return True

    def union(src: int, dst: int) -> None:
        for m in members[src]:
            cluster_of[m] = dst
        merged = sorted(members[dst] + members[src])
        members[dst] = merged
        masks[dst] |= masks[src]
        members[src] = []
        masks[src] = 0

    for i, node in enumerate(nodes):
        if not _fusable(node):
            continue
        joined = -1
        for t in node.inputs:
            p = pos_of.get(id(t.node))
            if p is None:
                continue
            cid = cluster_of.get(p, -1)
            if cid < 0:
                continue
            cmask = masks[cid]
            ok = True
            for t2 in node.inputs:
                q = pos_of.get(id(t2.node))
                if q is None or cluster_of.get(q, -1) == cid:
                    continue
                if ancestors[q] & cmask:
                    # Joining would route a path out of the cluster and
                    # back in — a cycle once contracted.
                    ok = False
                    break
            if ok:
                joined = cid
                break
        if joined >= 0:
            cluster_of[i] = joined
            members[joined].append(i)
            masks[joined] |= 1 << i
            # A join point may connect further clusters (the other
            # operands of a DAG merge node): union them in when the
            # contracted result stays acyclic.
            for t in node.inputs:
                q = pos_of.get(id(t.node))
                if q is None:
                    continue
                other = cluster_of.get(q, -1)
                if other < 0 or other == joined:
                    continue
                if can_union(other, joined):
                    union(other, joined)
        else:
            cluster_of[i] = len(members)
            members.append([i])
            masks.append(1 << i)
    return cluster_of, members


def _contracted_is_acyclic(
    nodes: list[Node], pos_of: dict[int, int], kept_cluster_of: dict[int, int]
) -> bool:
    """Kahn sweep over the cluster-contracted graph (safety net)."""
    def key_of(p: int):
        cid = kept_cluster_of.get(p)
        return ("c", cid) if cid is not None else ("n", p)

    adj: dict = {}
    indeg: dict = {}
    for i, node in enumerate(nodes):
        kv = key_of(i)
        adj.setdefault(kv, set())
        indeg.setdefault(kv, 0)
        preds = [t.node for t in node.inputs] + list(node.control_inputs)
        for pn in preds:
            p = pos_of.get(id(pn))
            if p is None:
                continue
            ku = key_of(p)
            if ku == kv:
                continue
            succs = adj.setdefault(ku, set())
            indeg.setdefault(ku, 0)
            if kv not in succs:
                succs.add(kv)
                indeg[kv] += 1
    queue = deque(k for k in adj if indeg[k] == 0)
    seen = 0
    while queue:
        u = queue.popleft()
        seen += 1
        for v in adj[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    return seen == len(adj)


# ---------------------------------------------------------------------------
# Region construction
# ---------------------------------------------------------------------------

def _build_region(
    member_nodes: list[Node], escaping: set[int]
) -> tuple[FusionRegion, list[SymbolicTensor], list[SymbolicTensor]]:
    """Compile one cluster; returns (region, ext inputs, escaping outs)."""
    from repro.runtime.context import context

    # Member kernels bind per-backend at build time, so the generated
    # step loop emits against the active backend's kernels (with the
    # NumPy registration as the fallback) rather than raw np.* calls.
    # In-place donation relies on NumPy's `out=` protocol; backends
    # whose buffers don't honor it opt out via `supports_inplace`.
    region_backend = context.kernel_backend
    backend_inplace_ok = context.array_backend().supports_inplace
    member_ids = {id(n) for n in member_nodes}

    ext_tensors: list[SymbolicTensor] = []
    ext_index: dict[int, int] = {}
    for node in member_nodes:
        for t in node.inputs:
            if id(t.node) in member_ids or id(t) in ext_index:
                continue
            ext_index[id(t)] = len(ext_tensors)
            ext_tensors.append(t)
    num_ext = len(ext_tensors)

    slot_of: dict[int, int] = {
        id(node.outputs[0]): num_ext + k for k, node in enumerate(member_nodes)
    }
    step_in_refs = [
        tuple(
            slot_of[id(t)] if id(t.node) in member_ids else ext_index[id(t)]
            for t in node.inputs
        )
        for node in member_nodes
    ]

    out_members = [
        k for k, node in enumerate(member_nodes) if id(node.outputs[0]) in escaping
    ]
    out_refs = [num_ext + k for k in out_members]
    out_ref_set = set(out_refs)

    # Last internal use per slot (a slot in out_refs never dies).
    last_use: dict[int, int] = {}
    for k, refs in enumerate(step_in_refs):
        for r in refs:
            if r >= num_ext:
                last_use[r] = k

    # Buffer aliasing: alias-op outputs share their input's buffer.
    root = list(range(num_ext))
    for k, node in enumerate(member_nodes):
        if node.op_name in _ALIAS_OPS:
            root.append(root[step_in_refs[k][0]])
        else:
            root.append(num_ext + k)
    owner_count: dict[int, int] = {}
    for r in root:
        owner_count[r] = owner_count.get(r, 0) + 1
    shared_roots = {r for r, c in owner_count.items() if c > 1}

    # Pick at most one in-place donation per step: a dying, fresh,
    # exclusively-owned internal input with matching static shape/dtype.
    donates: list[int] = []
    for k, node in enumerate(member_nodes):
        donate = -1
        inplace = (
            registry.get_inplace_kernel(node.op_name) if backend_inplace_ok else None
        )
        out_spec = node.outputs[0].spec
        if inplace is not None and out_spec.shape.is_fully_defined:
            for r in step_in_refs[k]:
                if r < num_ext or r in out_ref_set:
                    continue
                if last_use.get(r) != k:
                    continue
                if root[r] != r or r in shared_roots:
                    continue
                src = member_nodes[r - num_ext].outputs[0]
                if src.dtype != out_spec.dtype:
                    continue
                if not src.shape.is_fully_defined or src.shape != out_spec.shape:
                    continue
                donate = r
                break
        donates.append(donate)

    # Assemble steps + static transient-memory accounting.
    steps = []
    slot_bytes: dict[int, int] = {}
    live = 0
    peak = 0
    lower_bound = False
    for k, node in enumerate(member_nodes):
        s = num_ext + k
        dies = tuple(
            r
            for r in set(step_in_refs[k])
            if r >= num_ext and last_use.get(r) == k and r not in out_ref_set
        )
        nbytes, lb = _spec_bytes(node.outputs[0].spec)
        lower_bound |= lb
        donate = donates[k]
        if donate >= 0:
            slot_bytes[s] = slot_bytes.get(donate, nbytes)
            slot_bytes[donate] = 0
        elif node.op_name in _ALIAS_OPS:
            slot_bytes[s] = 0  # a view; the root slot owns the bytes
        else:
            slot_bytes[s] = nbytes
            live += nbytes
            peak = max(peak, live)
        for d in dies:
            live -= slot_bytes.get(d, 0)
            slot_bytes[d] = 0
        steps.append(
            (
                node.op_name,
                registry.resolve_kernel(
                    node.op_name,
                    "CPU",
                    allow_soft_placement=False,
                    backend=region_backend,
                ),
                registry.get_inplace_kernel(node.op_name) if donate >= 0 else None,
                node.attrs,
                step_in_refs[k],
                donate,
                dies,
            )
        )

    fresh_outputs = [
        root[r] == r and r not in shared_roots for r in out_refs
    ]
    region = FusionRegion(
        steps=steps,
        out_refs=out_refs,
        num_inputs=num_ext,
        op_names=[n.op_name for n in member_nodes],
        fresh_outputs=fresh_outputs,
        internal_peak_bytes=peak,
        peak_is_lower_bound=lower_bound,
        donated_steps=sum(1 for d in donates if d >= 0),
        backend=region_backend,
    )
    escaping_outs = [member_nodes[k].outputs[0] for k in out_members]
    return region, ext_tensors, escaping_outs


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------

def fuse_function(fn) -> int:
    """Fuse elementwise regions of ``fn``'s graph in place.

    Returns the number of fused nodes created, and records
    ``fn._fusion_stats`` (node counts before/after and region sizes).
    """
    graph: Graph = fn.graph
    nodes = graph.nodes
    before = len(nodes)
    if before < MIN_REGION_SIZE:
        return 0
    pos_of = {id(node): i for i, node in enumerate(nodes)}

    cluster_of, members = _cluster(nodes, pos_of)
    kept = [cid for cid, ms in enumerate(members) if len(ms) >= MIN_REGION_SIZE]
    if not kept:
        fn._fusion_stats = {
            "nodes_before": before,
            "nodes_after": before,
            "regions": [],
            "fused_ops": 0,
        }
        return 0
    kept_set = set(kept)
    kept_cluster_of = {
        p: cid for p, cid in cluster_of.items() if cid in kept_set
    }
    if not _contracted_is_acyclic(nodes, pos_of, kept_cluster_of):
        # Should be unreachable given the merge-time check; abandon
        # fusion for this graph rather than risk an unschedulable plan.
        return 0

    # Which member outputs escape their cluster (or are fetched)?
    escaping = {id(t) for t in fn.outputs}
    for i, node in enumerate(nodes):
        ci = kept_cluster_of.get(i)
        for t in node.inputs:
            p = pos_of.get(id(t.node))
            if p is None:
                continue
            cp = kept_cluster_of.get(p)
            if cp is not None and cp != ci:
                escaping.add(id(t))

    replacements: dict[int, SymbolicTensor] = {}
    removed: set[int] = set()
    fused_at: dict[int, Node] = {}
    region_sizes: list[int] = []
    for cid in kept:
        positions = members[cid]
        member_nodes = [nodes[p] for p in positions]
        region, ext_tensors, escaping_outs = _build_region(member_nodes, escaping)
        fused = Node(
            graph=graph,
            name=graph.unique_name("fused"),
            op_name=FUSED_OP,
            inputs=ext_tensors,
            attrs={"region": region},
            device=None,
            output_specs=[t.spec for t in escaping_outs],
        )
        for old, new in zip(escaping_outs, fused.outputs):
            new._constant_value = old._constant_value
            replacements[id(old)] = new
        # The fused node takes the last member's list position; the
        # closing topological sort repairs any consumer that sat
        # between members (safe — the merge check ruled out cycles).
        fused_at[positions[-1]] = fused
        removed.update(positions[:-1])
        region_sizes.append(region.size)

    graph.nodes = [
        fused_at.get(i, node)
        for i, node in enumerate(nodes)
        if i not in removed
    ]
    graph.apply_replacements(replacements)
    fn.outputs = [replacements.get(id(t), t) for t in fn.outputs]
    fn._runner = None

    from repro.graph.optimize import _topological_sort

    _topological_sort(fn)
    fn._fusion_stats = {
        "nodes_before": before,
        "nodes_after": len(graph.nodes),
        "regions": sorted(region_sizes, reverse=True),
        "fused_ops": sum(region_sizes),
    }
    return len(region_sizes)


def has_fused_nodes(fn) -> bool:
    return any(n.op_name == FUSED_OP for n in fn.graph.nodes)


def defuse_function(fn):
    """A clone of ``fn`` with fused nodes expanded back to primitives.

    Symbolic replay (:func:`repro.core.tracing.replay_into`) expands
    ``FusedElementwise`` nodes as it goes; no optimization passes run on
    the clone, so the result is plain primitives — what serialization
    and cross-process transport need.
    """
    from repro.core.tracing import ReplayGraph, replay_into
    from repro.graph.function import GraphFunction

    graph = ReplayGraph(name=f"{fn.name}_defused")
    new_inputs, _, new_outputs = replay_into(fn, graph)
    return GraphFunction(
        name=fn.name, graph=graph, inputs=new_inputs, outputs=new_outputs
    )
