"""GraphDef-style serialization.

Staging "enables serializing the program for use without a Python
interpreter" (paper §4.3): a graph function round-trips through a plain
JSON-compatible dict.  The one documented exception matches §4.7 —
"graphs with py_funcs are not in general serializable" — attempting to
serialize one raises with a pointer to that limitation.
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import InvalidArgumentError
from repro.framework.tensor_shape import TensorShape
from repro.graph.graph import Graph, SymbolicTensor

__all__ = ["function_to_def", "function_from_def", "graph_to_def"]


def _encode_attr(value) -> Any:
    from repro.graph.function import GraphFunction

    if isinstance(value, dtypes.DType):
        return {"_kind": "dtype", "name": value.name}
    if isinstance(value, TensorShape):
        return {"_kind": "shape", "dims": None if value.dims is None else list(value.dims)}
    if isinstance(value, np.ndarray):
        return {
            "_kind": "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode("ascii"),
        }
    if isinstance(value, GraphFunction):
        return {"_kind": "function", "def": function_to_def(value)}
    if isinstance(value, (tuple, list)):
        return {"_kind": "list", "items": [_encode_attr(v) for v in value]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if callable(value):
        raise InvalidArgumentError(
            "Graphs containing py_func (or other Python callables) are not "
            "serializable (paper §4.7)"
        )
    raise InvalidArgumentError(f"Cannot serialize attr value {value!r}")


def _decode_attr(value) -> Any:
    if isinstance(value, dict) and "_kind" in value:
        kind = value["_kind"]
        if kind == "dtype":
            return dtypes.as_dtype(value["name"])
        if kind == "shape":
            return TensorShape(value["dims"])
        if kind == "ndarray":
            arr = np.frombuffer(
                base64.b64decode(value["data"]), dtype=np.dtype(value["dtype"])
            ).reshape(value["shape"])
            arr = arr.copy()
            arr.flags.writeable = False
            return arr
        if kind == "function":
            return function_from_def(value["def"])
        if kind == "list":
            return tuple(_decode_attr(v) for v in value["items"])
        raise InvalidArgumentError(f"Unknown serialized attr kind {kind!r}")
    return value


def graph_to_def(graph: Graph) -> dict:
    """Serialize a graph to a JSON-compatible dict."""
    tensor_names: dict[int, str] = {}
    node_defs = []
    for node in graph.nodes:
        for out in node.outputs:
            tensor_names[id(out)] = out.name
        node_defs.append(
            {
                "name": node.name,
                "op": node.op_name,
                "inputs": [tensor_names[id(t)] for t in node.inputs],
                "device": node.device,
                "attrs": {k: _encode_attr(v) for k, v in node.attrs.items()},
            }
        )
    return {"name": graph.name, "nodes": node_defs}


def function_to_def(fn) -> dict:
    """Serialize a GraphFunction (graph + signature) to a dict."""
    from repro.graph import fusion

    if fusion.has_fused_nodes(fn):
        # Fused regions are precompiled closures — a scheduling artifact
        # of this process.  Serialize the expanded primitive graph; the
        # loading side re-fuses under its own knob.
        fn = fusion.defuse_function(fn)
    graph_def = graph_to_def(fn.graph)
    names: dict[int, str] = {}
    for node in fn.graph.nodes:
        for out in node.outputs:
            names[id(out)] = out.name
    return {
        "function_name": fn.name,
        "graph": graph_def,
        "inputs": [names[id(t)] for t in fn.inputs],
        "outputs": [names[id(t)] for t in fn.outputs],
    }


def _graph_from_def(graph_def: dict) -> tuple[Graph, dict[str, SymbolicTensor]]:
    graph = Graph(graph_def["name"])
    by_name: dict[str, SymbolicTensor] = {}
    for node_def in graph_def["nodes"]:
        attrs = {k: _decode_attr(v) for k, v in node_def["attrs"].items()}
        inputs = [by_name[name] for name in node_def["inputs"]]
        graph.push_device(node_def.get("device"))
        try:
            outputs = graph.add_operation(
                node_def["op"], inputs, attrs, name=node_def["name"]
            )
        finally:
            graph.pop_device()
        for out in outputs:
            by_name[out.name] = out
    return graph, by_name


def function_from_def(fn_def: dict):
    """Rebuild a GraphFunction from its serialized form."""
    from repro.graph.function import GraphFunction

    graph, by_name = _graph_from_def(fn_def["graph"])
    return GraphFunction(
        name=fn_def["function_name"],
        graph=graph,
        inputs=[by_name[name] for name in fn_def["inputs"]],
        outputs=[by_name[name] for name in fn_def["outputs"]],
    )
