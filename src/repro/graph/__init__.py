"""The dataflow-graph substrate.

TensorFlow proper — the system the paper extends — represents
computations as dataflow graphs executed by a C++ runtime (paper §2,
§5).  This subpackage rebuilds that substrate: the graph IR
(:mod:`repro.graph.graph`), graph functions with named inputs and
outputs (:mod:`repro.graph.function`), a topological/parallel executor
with reference-counted buffer freeing (:mod:`repro.graph.executor`), a
grappler-style optimizer (:mod:`repro.graph.optimize`), and GraphDef
serialization (:mod:`repro.graph.serialization`).
"""

from repro.graph.graph import Graph, Node, SymbolicTensor
from repro.graph.function import GraphFunction

__all__ = ["Graph", "Node", "SymbolicTensor", "GraphFunction"]
