"""The multi-tenant model server: per-model queues, workers, and SLOs.

Architecture (DESIGN.md §12): a :class:`ModelServer` is a registry of
:class:`ServedModel` instances.  Each served model owns

* a **bounded FIFO queue** of pending requests (admission control:
  :class:`~repro.framework.errors.ResourceExhaustedError` past the
  bound),
* one **worker thread** that drains the queue, coalescing up to
  ``max_batch`` compatible requests per staged call
  (:mod:`repro.serving.batching`), and
* a **latency histogram** fed at settle time (queue wait + execution),
  the per-model p50/p99 the SLO gates read.

Isolation is structural: nothing a model's worker does — stall, fail,
die — touches another model's queue or thread.  Transient failures
(:class:`UnavailableError`, :class:`DeadlineExceededError`,
:class:`AbortedError`) retry under the module retry policy from
:mod:`repro.distribute.worker`; a batch that still fails is re-executed
per request so one poisoned input cannot fail its batch neighbors.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Callable, Optional, Sequence, Union

from repro.framework.errors import (
    AlreadyExistsError,
    DeadlineExceededError,
    InvalidArgumentError,
    NotFoundError,
    ResourceExhaustedError,
    UnavailableError,
)
from repro.core.saved_function import LoadedFunction, load
from repro.distribute.worker import DROP_REQUEST, get_retry_policy
from repro.runtime import profiler
from repro.runtime.context import context
from repro.tensor import TensorBase, convert_to_tensor
from repro.serving import batching

__all__ = ["ModelServer", "ServedModel", "ServingFuture"]

#: Sentinel distinguishing "use the module retry policy" from None.
_DEFAULT_RETRY = object()


class _DroppedRequest(Exception):
    """Internal control flow: an injected DROP_REQUEST — never answer."""


class ServingFuture:
    """The settled-later result of one submitted request.

    ``result()`` blocks until the worker settles the future or the
    request's deadline passes — the deadline covers queue wait *and*
    execution, so a dropped or stalled request surfaces as
    :class:`~repro.framework.errors.DeadlineExceededError` rather than
    a hang.  Futures settle exactly once; ``result()`` may be called
    from any thread, any number of times.
    """

    __slots__ = (
        "_lock",
        "_done",
        "_event",
        "_result",
        "_error",
        "enqueued_at",
        "deadline",
        "size",
    )

    def __init__(self, deadline: Optional[float], size: int) -> None:
        # The wake-up Event is allocated lazily, only by a result()
        # call that actually has to block: at saturation most futures
        # are settled before anyone waits, and Event construction is a
        # measurable per-request cost.  The (cheap, C-level) lock makes
        # the settle/create-event handoff race-free.
        self._lock = threading.Lock()
        self._done = False
        self._event: Optional[threading.Event] = None
        self._result = None
        self._error: Optional[BaseException] = None
        self.enqueued_at = time.perf_counter()
        self.deadline = deadline  # absolute perf_counter time, or None
        self.size = size  # this request's leading-dim contribution

    def _settle(self, result) -> None:
        with self._lock:
            self._result = result
            self._done = True
            event = self._event
        if event is not None:
            event.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._done = True
            event = self._event
        if event is not None:
            event.set()

    def done(self) -> bool:
        return self._done

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.perf_counter() if now is None else now) > self.deadline

    def result(self, timeout: Optional[float] = None):
        """The request's output structure (or its raised failure)."""
        if not self._done:
            with self._lock:
                settled = self._done
                if not settled:
                    event = self._event
                    if event is None:
                        event = self._event = threading.Event()
            if not settled:
                if timeout is not None:
                    wait = timeout
                elif self.deadline is not None:
                    wait = max(self.deadline - time.perf_counter(), 0.0)
                else:
                    wait = None
                if not event.wait(wait):
                    raise DeadlineExceededError(
                        "Serving request did not complete within its deadline"
                    )
        if self._error is not None:
            raise self._error
        return self._result


class _Request:
    __slots__ = ("args", "signature", "future")

    def __init__(self, args, signature, future: ServingFuture) -> None:
        self.args = args
        self.signature = signature
        self.future = future


class ServedModel:
    """One loaded model: its queue, its worker thread, its SLO books.

    Exposes the same fault surface as a
    :class:`~repro.distribute.worker.WorkerServer`
    (``install_fault_hook`` / ``kill`` / ``address``), so
    :class:`~repro.distribute.fault_injection.FaultInjector` injects
    delay/drop/fail/kill faults against a served model unchanged; hook
    rules match on the model name.
    """

    def __init__(
        self,
        name: str,
        fn: LoadedFunction,
        *,
        max_batch: Optional[int] = None,
        queue_depth: Optional[int] = None,
        timeout_ms: Optional[float] = _DEFAULT_RETRY,  # sentinel: context default
        batch_window_ms: float = 0.0,
        device: Optional[str] = None,
        retry_policy=_DEFAULT_RETRY,
    ) -> None:
        self.name = name
        self.fn = fn
        self._max_batch = max_batch or context.serving_max_batch
        self._queue_depth = queue_depth or context.serving_queue_depth
        self._timeout_ms = (
            context.serving_timeout_ms if timeout_ms is _DEFAULT_RETRY else timeout_ms
        )
        self._batch_window = max(batch_window_ms, 0.0) / 1000.0
        self._device = device
        self._retry_policy = retry_policy
        self._queue: collections.deque[_Request] = collections.deque()
        self._cond = threading.Condition()
        self._fault_hook: Optional[Callable] = None
        self._alive = True
        self._stopping = False
        self.latency = profiler.LatencyHistogram()
        self._stats_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "rejected": 0,
            "expired": 0,
            "failed": 0,
            "dropped": 0,
            "batches": 0,
            "coalesced": 0,
            "max_batch_seen": 0,
            "retries": 0,
            "fallback_splits": 0,
        }
        self._worker = threading.Thread(
            target=self._serve_loop, name=f"serving-{name}", daemon=True
        )
        self._worker.start()

    # -- the WorkerServer-compatible fault surface -------------------------
    @property
    def address(self) -> str:
        return f"serving://{self.name}"

    def install_fault_hook(self, hook: Optional[Callable]) -> None:
        """Install ``hook(model_name)`` ahead of every batch execution.

        The hook may return ``None`` (proceed), return
        :data:`~repro.distribute.worker.DROP_REQUEST` (the batch is
        never answered; request deadlines fire), or raise (the batch
        fails with that error — retried when the type is retryable).
        """
        self._fault_hook = hook

    def kill(self) -> None:
        """Crash the model: fail queued and future requests immediately."""
        with self._cond:
            self._alive = False
            pending = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for request in pending:
            request.future._fail(
                UnavailableError(f"Model {self.name!r} was killed")
            )
        self._count("failed", len(pending))

    @property
    def alive(self) -> bool:
        return self._alive

    # -- submission --------------------------------------------------------
    def submit(self, *args) -> ServingFuture:
        """Enqueue one request; returns immediately with its future."""
        tensors = [convert_to_tensor(a) for a in args]
        if len(tensors) != self.fn.num_explicit_inputs:
            raise InvalidArgumentError(
                f"Model {self.name!r} takes {self.fn.num_explicit_inputs} "
                f"inputs, got {len(tensors)}"
            )
        signature = batching.request_signature(tensors)
        deadline = None
        if self._timeout_ms is not None:
            deadline = time.perf_counter() + self._timeout_ms / 1000.0
        size = batching.leading_size(tensors) if signature is not None else 1
        future = ServingFuture(deadline, size)
        with self._cond:
            if not self._alive or self._stopping:
                raise UnavailableError(
                    f"Model {self.name!r} is not serving"
                )
            if len(self._queue) >= self._queue_depth:
                self._count("rejected")
                raise ResourceExhaustedError(
                    f"Model {self.name!r} queue is full "
                    f"({self._queue_depth} pending); shed load or retry later"
                )
            self._queue.append(_Request(tensors, signature, future))
            self._count("submitted")
            self._cond.notify()
        return future

    def predict(self, *args):
        """Submit and block for the result."""
        return self.submit(*args).result()

    # -- the worker loop ---------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            if batch:
                self._execute_batch(batch)

    def _next_batch(self) -> Optional[list]:
        """Dequeue the next coalesced batch (None: worker should exit)."""
        with self._cond:
            while not self._queue:
                if self._stopping or not self._alive:
                    return None
                self._cond.wait(0.1)
            first = self._queue.popleft()
            now = time.perf_counter()
            if first.future.expired(now):
                self._expire(first)
                return []
            batch = [first]
            if first.signature is None or self._max_batch == 1:
                return batch
            deadline = now + self._batch_window
            while True:
                self._gather_compatible(batch)
                if len(batch) >= self._max_batch:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return batch

    def _gather_compatible(self, batch: list) -> None:
        """Pull queued requests matching ``batch[0]`` (caller holds lock)."""
        signature = batch[0].signature
        budget = self._max_batch - sum(r.future.size for r in batch)
        kept: list[_Request] = []
        now = time.perf_counter()
        while self._queue and budget > 0:
            request = self._queue.popleft()
            if request.future.expired(now):
                self._expire(request)
            elif request.signature == signature and request.future.size <= budget:
                batch.append(request)
                budget -= request.future.size
            else:
                kept.append(request)
        for request in reversed(kept):
            self._queue.appendleft(request)

    def _expire(self, request: _Request) -> None:
        request.future._fail(
            DeadlineExceededError(
                f"Request to model {self.name!r} expired in queue "
                f"(deadline {self._timeout_ms} ms)"
            )
        )
        self._count("expired")

    def _execute_batch(self, batch: list) -> None:
        self._count("batches")
        if len(batch) > 1:
            self._count("coalesced", len(batch))
        with self._stats_lock:
            self._counters["max_batch_seen"] = max(
                self._counters["max_batch_seen"], len(batch)
            )
        if len(batch) == 1:
            self._run_single(batch[0])
            return
        merged, sizes = batching.coalesce_requests([r.args for r in batch])
        try:
            result = self._call(merged)
        except _DroppedRequest:
            # Never answer: each request's own deadline fires at its
            # result() call, exactly like a dropped RPC.
            self._count("dropped", len(batch))
            return
        except BaseException as exc:
            self._fail_or_split(batch, exc)
            return
        try:
            per_request = batching.split_results(result, sizes)
        except batching.NotSplittableError:
            # The model's outputs do not carry the batch dim (e.g. a
            # scalar reduction): serve each request on its own.
            self._count("fallback_splits")
            for request in batch:
                self._run_single(request)
            return
        for request, value in zip(batch, per_request):
            self._settle(request, value)

    def _call(self, args: Sequence[TensorBase]):
        """One staged call, retried for transient (retryable) failures.

        Every attempt — the first and each retry — passes through the
        installed fault hook, matching the worker-server convention:
        consumable injected rules (``fail(times=2)``) are spent by
        retries, so a transient injected fault recovers via the policy
        while a persistent one fails after ``max_attempts``.
        """
        policy = (
            get_retry_policy()
            if self._retry_policy is _DEFAULT_RETRY
            else self._retry_policy
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                hook = self._fault_hook
                if hook is not None:
                    if hook(self.name) is DROP_REQUEST:
                        raise _DroppedRequest()
                if not self._alive:  # the hook killed us mid-request
                    raise UnavailableError(f"Model {self.name!r} was killed")
                if self._device is not None:
                    from repro.runtime.context import device as device_scope

                    with device_scope(self._device):
                        return self.fn(*args)
                return self.fn(*args)
            except _DroppedRequest:
                raise
            except BaseException as exc:
                retryable = (
                    self._alive
                    and policy is not None
                    and isinstance(exc, policy.retryable)
                )
                if not retryable or attempt >= policy.max_attempts:
                    raise
                self._count("retries")
                prof = profiler.active
                if prof is not None:
                    prof.add_retry(f"serving/{self.name}")
                time.sleep(policy.backoff_seconds(attempt))

    def _run_single(self, request: _Request) -> None:
        try:
            result = self._call(request.args)
        except _DroppedRequest:
            self._count("dropped")
            return
        except BaseException as exc:
            request.future._fail(exc)
            self._count("failed")
            return
        self._settle(request, result)

    def _fail_or_split(self, batch: list, exc: BaseException) -> None:
        """A batch failed terminally: isolate the blast radius.

        A coalesced batch is re-executed per request so one poisoned
        input only fails its own future; a single request just fails.
        """
        if len(batch) == 1:
            batch[0].future._fail(exc)
            self._count("failed")
            return
        for request in batch:
            self._run_single(request)

    def _settle(self, request: _Request, value) -> None:
        request.future._settle(value)
        elapsed = time.perf_counter() - request.future.enqueued_at
        self.latency.add(elapsed)
        profiler.record(f"serving/{self.name}", elapsed)
        self._count("completed")

    # -- lifecycle / observability ----------------------------------------
    def stop(self, drain: bool = True) -> None:
        """Stop the worker; by default serve out the queued requests."""
        with self._cond:
            self._stopping = True
            if not drain:
                pending = list(self._queue)
                self._queue.clear()
            else:
                pending = []
            self._cond.notify_all()
        for request in pending:
            request.future._fail(
                UnavailableError(f"Model {self.name!r} is shutting down")
            )
        if threading.current_thread() is not self._worker:
            self._worker.join(timeout=30.0)

    def _count(self, key: str, by: int = 1) -> None:
        with self._stats_lock:
            self._counters[key] += by

    def stats(self) -> dict:
        """Counters plus the latency snapshot (p50/p99 in milliseconds)."""
        with self._stats_lock:
            stats = dict(self._counters)
        stats["queue_depth"] = len(self._queue)
        batches = stats["batches"]
        stats["mean_batch_size"] = (
            (stats["completed"] + stats["failed"]) / batches if batches else 0.0
        )
        stats.update(self.latency.snapshot())
        return stats

    def __repr__(self) -> str:
        return (
            f"<ServedModel {self.name!r}: max_batch={self._max_batch}, "
            f"queue_depth={self._queue_depth}, alive={self._alive}>"
        )


class ModelServer:
    """A registry of concurrently served models behind one process.

    ``load()`` accepts a saved-artifact path (anything
    :func:`repro.saved_function.load` reads) or an already-loaded
    :class:`LoadedFunction`; per-model keyword overrides win over the
    server-wide defaults, which in turn win over the context knobs
    (``REPRO_SERVING_MAX_BATCH`` / ``REPRO_SERVING_QUEUE_DEPTH`` /
    ``REPRO_SERVING_TIMEOUT_MS``).
    """

    def __init__(
        self,
        *,
        max_batch: Optional[int] = None,
        queue_depth: Optional[int] = None,
        timeout_ms: Optional[float] = _DEFAULT_RETRY,
        batch_window_ms: float = 0.0,
    ) -> None:
        self._defaults = {
            "max_batch": max_batch,
            "queue_depth": queue_depth,
            "timeout_ms": timeout_ms,
            "batch_window_ms": batch_window_ms,
        }
        self._models: dict[str, ServedModel] = {}
        self._lock = threading.Lock()

    def load(
        self,
        name: str,
        source: Union[str, LoadedFunction],
        **overrides,
    ) -> ServedModel:
        """Load and start serving a model under ``name``."""
        fn = load(source) if isinstance(source, str) else source
        if not isinstance(fn, LoadedFunction):
            raise InvalidArgumentError(
                f"load() takes a saved-artifact path or LoadedFunction, "
                f"got {source!r}"
            )
        options = {k: v for k, v in self._defaults.items() if v is not None}
        if self._defaults["timeout_ms"] is _DEFAULT_RETRY:
            options.pop("timeout_ms", None)
        options.update(overrides)
        with self._lock:
            if name in self._models:
                raise AlreadyExistsError(f"Model {name!r} is already served")
            model = ServedModel(name, fn, **options)
            self._models[name] = model
        return model

    def model(self, name: str) -> ServedModel:
        with self._lock:
            model = self._models.get(name)
        if model is None:
            raise NotFoundError(f"No served model named {name!r}")
        return model

    def models(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def submit(self, name: str, *args) -> ServingFuture:
        return self.model(name).submit(*args)

    def predict(self, name: str, *args):
        return self.model(name).predict(*args)

    def unload(self, name: str, drain: bool = True) -> None:
        with self._lock:
            model = self._models.pop(name, None)
        if model is None:
            raise NotFoundError(f"No served model named {name!r}")
        model.stop(drain=drain)

    def stats(self) -> dict:
        with self._lock:
            models = dict(self._models)
        return {name: model.stats() for name, model in models.items()}

    def stop(self, drain: bool = True) -> None:
        with self._lock:
            models = list(self._models.values())
            self._models.clear()
        for model in models:
            model.stop(drain=drain)

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"<ModelServer serving {len(self._models)} models>"
