"""Cross-request coalescing: concat on the leading dim, split back.

The batching contract is structural, not semantic: two requests are
*compatible* when every argument pair agrees on dtype and on all
dimensions past the leading one, and every argument is at least rank 1
(there is no leading dimension to concatenate a scalar along).  The
serving worker concatenates compatible requests into one call on the
shape-polymorphic trace and splits each output leaf back by the
recorded per-request sizes.

Outputs that do not carry the batch dimension — a scalar reduction, a
weight readout — make the result unsplittable; the worker detects this
(:class:`NotSplittableError`) and falls back to per-request execution,
so such models still serve correctly, just without coalescing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework import nest
from repro.framework.errors import InvalidArgumentError
from repro.tensor import Tensor, TensorBase, convert_to_tensor

__all__ = [
    "NotSplittableError",
    "request_signature",
    "coalesce_requests",
    "split_results",
]


class NotSplittableError(Exception):
    """An output leaf does not carry the coalesced leading dimension."""


def request_signature(tensors: Sequence[TensorBase]):
    """The compatibility key for one request's converted arguments.

    Returns ``None`` when the request cannot be coalesced at all (no
    arguments, a rank-0 argument, or arguments that disagree on the
    leading size); otherwise ``(leading, ((dtype, trailing), ...))``
    minus the leading size — requests coalesce iff their signatures
    compare equal.
    """
    if not tensors:
        return None
    parts = []
    leading = None
    for t in tensors:
        shape = t.shape.as_tuple()
        if len(shape) == 0 or shape[0] is None:
            return None
        if leading is None:
            leading = shape[0]
        elif shape[0] != leading:
            # Arguments sized differently along axis 0 (e.g. a lookup
            # table passed per request): no single batch dim to extend.
            return None
        parts.append((t.dtype, shape[1:]))
    return tuple(parts)


def leading_size(tensors: Sequence[TensorBase]) -> int:
    """The shared leading dimension of one coalescible request."""
    return int(tensors[0].shape.as_tuple()[0])


def coalesce_requests(request_args: Sequence[Sequence[TensorBase]]):
    """Concatenate compatible requests' arguments along axis 0.

    Args:
        request_args: one argument list per request; all must share a
            :func:`request_signature`.

    Returns:
        ``(merged_args, sizes)`` — the coalesced tensor arguments and
        each request's contribution to the leading dimension, in order.
    """
    if not request_args:
        raise InvalidArgumentError("coalesce_requests needs at least one request")
    if len(request_args) == 1:
        return list(request_args[0]), [leading_size(request_args[0])]
    sizes = [leading_size(args) for args in request_args]
    merged = []
    for pos in range(len(request_args[0])):
        column = [np.asarray(args[pos].numpy()) for args in request_args]
        stacked = np.concatenate(column, axis=0)
        merged.append(convert_to_tensor(stacked, dtype=request_args[0][pos].dtype))
    return merged, sizes


def split_results(result, sizes: Sequence[int]):
    """Split one batched result structure back into per-request results.

    Every tensor leaf must have the summed leading dimension; the
    per-request structures mirror the batched structure.  Raises
    :class:`NotSplittableError` when any leaf lacks the batch dim —
    the caller re-executes per request instead.
    """
    total = sum(sizes)
    flat = nest.flatten(result) if nest.is_nested(result) else [result]
    offsets = np.cumsum([0] + list(sizes))
    split_leaves = []
    for leaf in flat:
        if leaf is None:
            split_leaves.append([None] * len(sizes))
            continue
        if not isinstance(leaf, TensorBase):
            raise NotSplittableError(f"non-tensor output leaf {leaf!r}")
        arr = np.asarray(leaf.numpy())
        if arr.ndim == 0 or arr.shape[0] != total:
            raise NotSplittableError(
                f"output leaf of shape {arr.shape} does not carry the "
                f"coalesced leading dimension {total}"
            )
        # Axis-0 slices of a C-contiguous buffer are contiguous views:
        # wrap them without copying (the batched buffer outlives the
        # responses that reference it).
        device = leaf.device_object
        dtype = leaf.dtype
        split_leaves.append(
            [
                Tensor._from_buffer(arr[offsets[i] : offsets[i + 1]], dtype, device)
                for i in range(len(sizes))
            ]
        )
    per_request = []
    for i in range(len(sizes)):
        leaves_i = iter(sl[i] for sl in split_leaves)
        if nest.is_nested(result):
            per_request.append(nest.map_structure(lambda _: next(leaves_i), result))
        else:
            per_request.append(next(leaves_i))
    return per_request
