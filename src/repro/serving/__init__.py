"""Multi-tenant model serving over exported SavedFunctions.

The paper's production story (§4.3) ends at "serializing a trace for
use in a production environment"; this package is the environment.  A
:class:`ModelServer` loads any number of saved artifacts concurrently
and serves them from one long-lived process:

* **Per-model queues and workers** — each served model owns a bounded
  request queue drained by its own worker thread, so a slow or failing
  model cannot starve its neighbors.
* **Cross-request dynamic batching** — compatible pending requests
  (same dtypes, same trailing dimensions) are coalesced into a single
  staged call on the shape-polymorphic trace, concatenated along the
  leading dimension and split back per request.  One trace serves
  every batch size (PR 4's relaxed shapes), so coalescing is free.
* **Admission control** — submissions past the queue bound are
  rejected with :class:`~repro.framework.errors.ResourceExhaustedError`
  instead of growing memory; per-request deadlines turn dropped or
  stalled work into :class:`~repro.framework.errors.DeadlineExceededError`.
* **SLO accounting** — per-model p50/p99 latency via
  :class:`~repro.runtime.profiler.LatencyHistogram`, with every settle
  also reported to the active profiler as a ``serving/<model>`` op.
* **Fault tolerance** — transient failures retry under the
  :mod:`repro.distribute.worker` retry policy, and a served model
  exposes the same fault-hook surface as a worker, so
  :class:`~repro.distribute.fault_injection.FaultInjector` drives
  chaos tests against it unchanged.

Quickstart::

    import repro
    from repro.serving import ModelServer

    repro.saved_function.save(step, "model_a", repro.TensorSpec([None, 8]))
    with ModelServer() as server:
        server.load("a", "model_a.saved.npz")
        future = server.submit("a", example)        # non-blocking
        print(server.predict("a", example))         # blocking
        print(server.stats()["a"]["p99_ms"])
"""

from repro.serving.batching import coalesce_requests, split_results
from repro.serving.server import ModelServer, ServedModel, ServingFuture

__all__ = [
    "ModelServer",
    "ServedModel",
    "ServingFuture",
    "coalesce_requests",
    "split_results",
]
