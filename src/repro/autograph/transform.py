"""Source-to-source lowering of Python control flow (AutoGraph-style).

:func:`convert` takes a Python function and returns an equivalent one
whose ``if``/``while``/``for`` statements, ``break``/``continue``, and
early ``return`` have been rewritten into calls to the runtime
operators in :mod:`repro.autograph.operators`.  Those operators decide
*at run time* whether to stage (tensor predicate inside a trace) or to
fall back to ordinary Python control flow, so conversion is safe to
apply to every function handed to ``repro.function``.

The rewrite happens in passes over the function's AST:

1. **Return lowering** — early ``return``s become assignments to a
   return-value slot plus a definedness flag; trailing statements are
   lifted into the ``else`` branch of a definitely-returning ``if`` so
   both branches assign the slot (what a staged ``Cond`` needs).
2. **Break/continue canonicalization** — ``break`` becomes a loop-local
   flag threaded into the loop test, ``continue`` a flag guarding the
   remainder of the body; both guards are themselves ``if`` statements
   the next pass lowers.
3. **Control-flow lowering** — each ``if``/``while``/``for`` becomes a
   call to ``if_stmt``/``while_stmt``/``for_stmt`` with nested
   body/state closures over the symbols the statement assigns
   (``nonlocal`` cells preserve Python's mutation semantics).
4. **Boolean-op rewriting** — ``and``/``or``/``not`` inside the lowered
   tests become short-circuit-preserving ``and_``/``or_``/``not_``
   calls that lower to ``logical_*`` for staged tensors.

Conversion preserves closures (original cells are re-attached, so
``nonlocal`` mutation still hits the same cells), default values, and
line numbers (statements keep their original source positions and the
code object is compiled against the original filename, so tracebacks
point at the user's file).  Functions that cannot be converted —
generators, coroutines, lambdas, code without retrievable source —
are returned unchanged.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from typing import Callable, Optional

from repro.autograph import operators

__all__ = ["convert", "converted_code", "is_converted"]

#: The name generated code uses for the operators module.  Unusual on
#: purpose: a user function that already binds it is returned unconverted.
AG_NAME = "_ag__"

_CONVERTED_MARKER = "__autograph_converted__"

_CONTROL_NODES = (ast.If, ast.While, ast.For)


def is_converted(fn: Callable) -> bool:
    return bool(getattr(fn, _CONVERTED_MARKER, False))


# ---------------------------------------------------------------------------
# Symbol analysis
# ---------------------------------------------------------------------------


class _ScopedVisitor(ast.NodeVisitor):
    """A visitor that does not descend into nested scopes."""

    def visit_FunctionDef(self, node):  # noqa: N802
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef


class _AssignedNames(_ScopedVisitor):
    """Names a statement list binds (this scope only)."""

    def __init__(self) -> None:
        self.names: list[str] = []

    def _add(self, name: str) -> None:
        if name not in self.names:
            self.names.append(name)

    def _add_target(self, target) -> None:
        # Only Store-context names are bindings: ``x.attr = v`` and
        # ``x[i] = v`` mutate an object reached through a *read* of
        # ``x`` — they do not bind ``x`` in this scope.
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self._add(node.id)

    def visit_Assign(self, node):  # noqa: N802
        for t in node.targets:
            self._add_target(t)
        self.visit(node.value)

    def visit_AugAssign(self, node):  # noqa: N802
        self._add_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node):  # noqa: N802
        if node.value is not None:
            self._add_target(node.target)
            self.visit(node.value)

    def visit_NamedExpr(self, node):  # noqa: N802
        self._add_target(node.target)
        self.visit(node.value)

    def visit_For(self, node):  # noqa: N802
        self._add_target(node.target)
        for child in node.body + node.orelse:
            self.visit(child)
        self.visit(node.iter)

    def visit_With(self, node):  # noqa: N802
        for item in node.items:
            if item.optional_vars is not None:
                self._add_target(item.optional_vars)
        for child in node.body:
            self.visit(child)

    def visit_FunctionDef(self, node):  # noqa: N802
        self._add(node.name)  # the def itself binds its name

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node):  # noqa: N802
        self._add(node.name)

    def visit_Lambda(self, node):  # noqa: N802
        pass


#: Prefix for generated *machinery* (state accessors, body closures);
#: never treated as program state by symbol analysis.  Generated state
#: symbols (return/break/continue flags) use the plain ``_ag_`` prefix
#: and thread like any user variable.
MACHINERY_PREFIX = "_agfn_"


def _assigned_names(stmts, excluded: frozenset) -> list[str]:
    visitor = _AssignedNames()
    for stmt in stmts:
        visitor.visit(stmt)
    return [
        n
        for n in visitor.names
        if n not in excluded and not n.startswith(MACHINERY_PREFIX)
    ]


class _DeclaredNames(_ScopedVisitor):
    """Names declared ``global``/``nonlocal`` anywhere in this scope."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.globals_: set[str] = set()
        self.nonlocals_: set[str] = set()

    def visit_Global(self, node):  # noqa: N802
        self.names.update(node.names)
        self.globals_.update(node.names)

    def visit_Nonlocal(self, node):  # noqa: N802
        self.names.update(node.names)
        self.nonlocals_.update(node.names)


def _contains(stmts, node_types) -> bool:
    """Whether any statement (this scope only) contains a node type."""

    class Finder(_ScopedVisitor):
        found = False

        def generic_visit(self, node):
            if isinstance(node, node_types):
                self.found = True
            if not self.found:
                super().generic_visit(node)

    f = Finder()
    for stmt in stmts:
        f.visit(stmt)
    return f.found


# ---------------------------------------------------------------------------
# AST construction helpers
# ---------------------------------------------------------------------------


def _load(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Load())


def _store(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Store())


def _assign(name: str, value: ast.expr) -> ast.Assign:
    return ast.Assign(targets=[_store(name)], value=value)


def _ag_attr(name: str) -> ast.Attribute:
    return ast.Attribute(value=_load(AG_NAME), attr=name, ctx=ast.Load())


def _ag_call(name: str, args: list) -> ast.Call:
    return ast.Call(func=_ag_attr(name), args=args, keywords=[])


def _const(value) -> ast.Constant:
    return ast.Constant(value=value)


def _str_tuple(names) -> ast.Tuple:
    return ast.Tuple(elts=[_const(n) for n in names], ctx=ast.Load())


def _undefined(symbol: str, loc: Optional[str] = None) -> ast.Call:
    args = [_const(symbol)]
    if loc is not None:
        args.append(_const(loc))
    return _ag_call("Undefined", args)


def _thunk(name: str, body_expr: ast.expr) -> ast.FunctionDef:
    """``def name(): return <expr>`` (reads outer locals by closure)."""
    return ast.FunctionDef(
        name=name,
        args=_no_args(),
        body=[ast.Return(value=body_expr)],
        decorator_list=[],
        returns=None,
    )


def _no_args(params: Optional[list[str]] = None) -> ast.arguments:
    return ast.arguments(
        posonlyargs=[],
        args=[ast.arg(arg=p) for p in (params or [])],
        vararg=None,
        kwonlyargs=[],
        kw_defaults=[],
        kwarg=None,
        defaults=[],
    )


def _lambda(expr: ast.expr) -> ast.Lambda:
    return ast.Lambda(args=_no_args(), body=expr)


def _opts_dict(node: ast.stmt, filename: str) -> ast.Dict:
    return ast.Dict(
        keys=[_const("filename"), _const("lineno")],
        values=[_const(filename), _const(getattr(node, "lineno", 0))],
    )


# ---------------------------------------------------------------------------
# Pass 1: return lowering
# ---------------------------------------------------------------------------


class _ReturnLowering:
    """Rewrite early returns into flag/slot assignments.

    Only applied when the function has a return that is not simply the
    last top-level statement; straight-line functions keep their AST.
    """

    def __init__(self, do_return: str, retval: str) -> None:
        self.do_return = do_return
        self.retval = retval

    def needs_lowering(self, fnode: ast.FunctionDef) -> bool:
        returns = _count_returns(fnode.body)
        if returns == 0:
            return False
        if returns == 1 and isinstance(fnode.body[-1], ast.Return):
            return False
        return True

    def apply(self, fnode: ast.FunctionDef) -> None:
        body = self._process(list(fnode.body), in_loop=False)
        prelude = [
            _assign(self.do_return, _const(False)),
            _assign(self.retval, _undefined("return value")),
        ]
        epilogue = [ast.Return(value=_ag_call("retval", [_load(self.retval)]))]
        fnode.body = prelude + body + epilogue

    def _lower_return(self, node: ast.Return, in_loop: bool) -> list:
        value = node.value if node.value is not None else _const(None)
        out = [
            _assign(self.do_return, _const(True)),
            _assign(self.retval, value),
        ]
        if in_loop:
            out.append(ast.Break())
        for stmt in out:
            ast.copy_location(stmt, node)
        return out

    def _process(self, stmts: list, in_loop: bool) -> list:
        out: list = []
        for idx, stmt in enumerate(stmts):
            rest = stmts[idx + 1 :]
            if isinstance(stmt, ast.Return):
                out.extend(self._lower_return(stmt, in_loop))
                return out  # anything after a return is unreachable
            if isinstance(stmt, ast.If) and _count_returns([stmt]):
                stmt.body = self._process(stmt.body, in_loop)
                stmt.orelse = self._process(stmt.orelse, in_loop)
                if rest and self._definitely_returns(stmt.body) and not in_loop:
                    # Balanced-branch form: the fallthrough code becomes
                    # the else branch, so both paths assign the slot.
                    stmt.orelse = stmt.orelse + self._process(rest, in_loop)
                    out.append(stmt)
                    return out
                out.append(stmt)
                if rest:
                    out.extend(self._guard(self._process(rest, in_loop), stmt))
                    return out
                return out
            if isinstance(stmt, (ast.While, ast.For)) and _count_returns([stmt]):
                stmt.body = self._process(stmt.body, in_loop=True)
                stmt.orelse = self._process(stmt.orelse, in_loop)
                out.append(stmt)
                if rest:
                    out.extend(self._guard(self._process(rest, in_loop), stmt))
                    return out
                return out
            if isinstance(stmt, ast.Try) and _count_returns([stmt]):
                stmt.body = self._process(stmt.body, in_loop)
                stmt.orelse = self._process(stmt.orelse, in_loop)
                stmt.finalbody = self._process(stmt.finalbody, in_loop)
                for handler in stmt.handlers:
                    handler.body = self._process(handler.body, in_loop)
                out.append(stmt)
                if rest:
                    out.extend(self._guard(self._process(rest, in_loop), stmt))
                    return out
                return out
            out.append(stmt)
        return out

    def _guard(self, rest: list, anchor: ast.stmt) -> list:
        if not rest:
            return []
        guard = ast.If(
            test=_ag_call("not_", [_load(self.do_return)]),
            body=rest,
            orelse=[],
        )
        ast.copy_location(guard, anchor)
        return [guard]

    def _definitely_returns(self, stmts: list) -> bool:
        """The block always sets the return flag (ends in return-lowered code)."""
        if not stmts:
            return False
        last = stmts[-1]
        if (
            isinstance(last, ast.Assign)
            and len(last.targets) == 1
            and isinstance(last.targets[0], ast.Name)
            and last.targets[0].id == self.retval
        ):
            return True
        if isinstance(last, ast.If):
            return self._definitely_returns(last.body) and self._definitely_returns(
                last.orelse
            )
        return False


def _count_returns(stmts) -> int:
    class Counter(_ScopedVisitor):
        count = 0

        def visit_Return(self, node):  # noqa: N802
            self.count += 1

    c = Counter()
    for stmt in stmts:
        c.visit(stmt)
    return c.count


# ---------------------------------------------------------------------------
# Pass 2: break / continue canonicalization
# ---------------------------------------------------------------------------


class _LoopCanonicalizer:
    """Replace ``break``/``continue`` with guarded flags, innermost-first."""

    def __init__(self, namer: "_Namer") -> None:
        self.namer = namer

    def apply(self, fnode: ast.FunctionDef) -> None:
        fnode.body = self._process_block(fnode.body)

    def _process_block(self, stmts: list) -> list:
        out = []
        for stmt in stmts:
            out.extend(self._process_stmt(stmt))
        return out

    def _process_stmt(self, stmt: ast.stmt) -> list:
        # Recurse into nested blocks first (innermost loops canonicalize
        # before their enclosing loop inspects its own body).
        for field in ("body", "orelse", "finalbody"):
            if hasattr(stmt, field) and getattr(stmt, field):
                setattr(stmt, field, self._process_block(getattr(stmt, field)))
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                handler.body = self._process_block(handler.body)
        if isinstance(stmt, (ast.While, ast.For)) and not stmt.orelse:
            return self._canonicalize_loop(stmt)
        return [stmt]

    def _canonicalize_loop(self, loop) -> list:
        prelude: list = []
        has_break = _contains_own_loop(loop.body, ast.Break)
        has_continue = _contains_own_loop(loop.body, ast.Continue)
        if has_continue:
            flag = self.namer.fresh("continue")
            loop.body = [
                ast.copy_location(_assign(flag, _const(False)), loop)
            ] + _replace_jumps(loop.body, ast.Continue, flag)
        if has_break:
            flag = self.namer.fresh("break")
            prelude.append(ast.copy_location(_assign(flag, _const(False)), loop))
            loop.body = _replace_jumps(loop.body, ast.Break, flag)
            if isinstance(loop, ast.While):
                # while (not break_) and (orig_test) — the original test
                # gets its boolean ops rewritten *now*, because once it
                # is inside the lambda the lowering pass won't descend.
                loop.test = ast.copy_location(
                    _ag_call(
                        "and_",
                        [
                            _lambda(_ag_call("not_", [_load(flag)])),
                            _lambda(_BoolOpRewriter().visit(loop.test)),
                        ],
                    ),
                    loop.test,
                )
            else:
                # Stash the extra test on the node; the lowering pass
                # forwards it to for_stmt's extra_test.
                loop._ag_extra_test = _lambda(_ag_call("not_", [_load(flag)]))
        return prelude + [loop]


def _contains_own_loop(stmts, jump_type) -> bool:
    """Whether a break/continue belongs to *this* loop (not a nested one)."""

    class Finder(_ScopedVisitor):
        found = False

        def visit_While(self, node):  # noqa: N802
            pass  # a jump inside a nested loop binds to that loop

        visit_For = visit_While

        def generic_visit(self, node):
            if isinstance(node, jump_type):
                self.found = True
            if not self.found:
                super().generic_visit(node)

    f = Finder()
    for stmt in stmts:
        f.visit(stmt)
    return f.found


def _replace_jumps(stmts: list, jump_type, flag: str) -> list:
    """Replace this loop's jumps with flag sets, guarding the remainder."""
    out: list = []
    for idx, stmt in enumerate(stmts):
        rest = stmts[idx + 1 :]
        if isinstance(stmt, jump_type):
            out.append(ast.copy_location(_assign(flag, _const(True)), stmt))
            return out  # code after an unconditional jump is unreachable
        if isinstance(stmt, ast.If) and _contains_own_loop([stmt], jump_type):
            stmt.body = _replace_jumps(stmt.body, jump_type, flag)
            stmt.orelse = _replace_jumps(stmt.orelse, jump_type, flag)
            out.append(stmt)
            if rest:
                guard = ast.If(
                    test=_ag_call("not_", [_load(flag)]),
                    body=_replace_jumps(rest, jump_type, flag),
                    orelse=[],
                )
                ast.copy_location(guard, stmt)
                out.append(guard)
                return out
            return out
        if isinstance(stmt, (ast.Try, ast.With)) and _contains_own_loop(
            [stmt], jump_type
        ):
            stmt.body = _replace_jumps(stmt.body, jump_type, flag)
            if isinstance(stmt, ast.Try):
                stmt.orelse = _replace_jumps(stmt.orelse, jump_type, flag)
                stmt.finalbody = _replace_jumps(stmt.finalbody, jump_type, flag)
                for handler in stmt.handlers:
                    handler.body = _replace_jumps(handler.body, jump_type, flag)
            out.append(stmt)
            if rest:
                guard = ast.If(
                    test=_ag_call("not_", [_load(flag)]),
                    body=_replace_jumps(rest, jump_type, flag),
                    orelse=[],
                )
                ast.copy_location(guard, stmt)
                out.append(guard)
                return out
            return out
        out.append(stmt)
    return out


# ---------------------------------------------------------------------------
# Pass 3 + 4: control-flow lowering (with boolean-op rewriting in tests)
# ---------------------------------------------------------------------------


class _BoolOpRewriter(ast.NodeTransformer):
    """``and``/``or``/``not`` -> short-circuit-preserving operator calls.

    Applied to test expressions only; elsewhere Python semantics stand.
    Does not descend into nested lambdas/defs.
    """

    def visit_Lambda(self, node):  # noqa: N802
        return node

    def visit_FunctionDef(self, node):  # noqa: N802
        return node

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_BoolOp(self, node):  # noqa: N802
        self.generic_visit(node)
        op = "and_" if isinstance(node.op, ast.And) else "or_"
        result = node.values[-1]
        for value in reversed(node.values[:-1]):
            result = ast.copy_location(
                _ag_call(op, [_lambda(value), _lambda(result)]), node
            )
        return result

    def visit_UnaryOp(self, node):  # noqa: N802
        self.generic_visit(node)
        if isinstance(node.op, ast.Not):
            return ast.copy_location(_ag_call("not_", [node.operand]), node)
        return node


class _Namer:
    """Fresh generated names that cannot collide with user symbols."""

    def __init__(self, taken: set[str]) -> None:
        self._taken = set(taken)
        self._counter = 0

    def fresh(self, hint: str) -> str:
        while True:
            self._counter += 1
            name = f"_ag_{hint}_{self._counter}"
            if name not in self._taken:
                self._taken.add(name)
                return name

    def machinery(self, hint: str) -> str:
        """A name symbol analysis will never treat as program state."""
        while True:
            self._counter += 1
            name = f"{MACHINERY_PREFIX}{hint}_{self._counter}"
            if name not in self._taken:
                self._taken.add(name)
                return name


class _ControlFlowLowering:
    def __init__(
        self,
        namer: _Namer,
        excluded: frozenset,
        filename: str,
        declared_globals: frozenset = frozenset(),
        declared_nonlocals: frozenset = frozenset(),
    ) -> None:
        self.namer = namer
        self.excluded = excluded
        self.filename = filename
        self.declared_globals = declared_globals
        self.declared_nonlocals = declared_nonlocals
        self.bool_rewriter = _BoolOpRewriter()

    def apply(self, fnode: ast.FunctionDef) -> None:
        fnode.body = self._process_block(fnode.body)

    def _process_block(self, stmts: list) -> list:
        out: list = []
        for stmt in stmts:
            out.extend(self._process_stmt(stmt))
        return out

    def _process_stmt(self, stmt: ast.stmt) -> list:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt)
        if isinstance(stmt, ast.While) and not stmt.orelse:
            return self._lower_while(stmt)
        if isinstance(stmt, ast.For) and not stmt.orelse:
            return self._lower_for(stmt)
        # Recurse into other compound statements (try/with, loop-else
        # loops we leave interpreted, nested defs stay untouched).
        if isinstance(stmt, (ast.While, ast.For, ast.With, ast.Try)):
            for field in ("body", "orelse", "finalbody"):
                if hasattr(stmt, field) and getattr(stmt, field):
                    setattr(stmt, field, self._process_block(getattr(stmt, field)))
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    handler.body = self._process_block(handler.body)
        return [stmt]

    # -- shared pieces ----------------------------------------------------

    def _state_functions(self, symbols, anchor) -> tuple:
        """Build the binder, ``get_state``, and ``set_state`` for symbols."""
        get_name = self.namer.machinery("get_state")
        set_name = self.namer.machinery("set_state")
        loc = f"{self.filename}:{getattr(anchor, 'lineno', '?')}"
        binders = []
        for sym in symbols:
            # `sym = sym` is a no-op when bound; unbound becomes the
            # Undefined sentinel.  Either way the function now has a
            # top-level binding, which `nonlocal` in the nested state
            # functions requires.
            bind = ast.Try(
                body=[_assign(sym, _load(sym))],
                handlers=[
                    ast.ExceptHandler(
                        type=_load("UnboundLocalError"),
                        name=None,
                        body=[_assign(sym, _undefined(sym, loc))],
                    )
                ],
                orelse=[],
                finalbody=[],
            )
            binders.append(ast.copy_location(bind, anchor))
        get_fn = ast.FunctionDef(
            name=get_name,
            args=_no_args(),
            body=[
                ast.Return(
                    value=ast.Tuple(
                        elts=[_load(s) for s in symbols], ctx=ast.Load()
                    )
                )
            ],
            decorator_list=[],
            returns=None,
        )
        values_param = self.namer.machinery("values")
        set_body: list = []
        if symbols:
            set_body.append(ast.Nonlocal(names=list(symbols)))
            set_body.append(
                ast.Assign(
                    targets=[
                        ast.Tuple(
                            elts=[_store(s) for s in symbols], ctx=ast.Store()
                        )
                    ],
                    value=_load(values_param),
                )
            )
        else:
            set_body.append(ast.Pass())
        set_fn = ast.FunctionDef(
            name=set_name,
            args=_no_args([values_param]),
            body=set_body,
            decorator_list=[],
            returns=None,
        )
        for fn in (get_fn, set_fn):
            ast.copy_location(fn, anchor)
        return binders, get_fn, set_fn, get_name, set_name

    def _body_function(self, name_hint, stmts, symbols, anchor, params=None):
        body_name = self.namer.machinery(name_hint)
        body: list = []
        # Statements the user wrote at function level move into this
        # nested def; any assignment to a ``global``/``nonlocal``-
        # declared name needs the declaration replicated here, or the
        # assignment would silently create a fresh local instead.
        assigned = _assigned_names(stmts, frozenset())
        globals_here = [n for n in assigned if n in self.declared_globals]
        nonlocals_here = [
            n
            for n in assigned
            if n in self.declared_nonlocals and n not in symbols
        ]
        if globals_here:
            body.append(ast.Global(names=globals_here))
        nl = list(symbols) + nonlocals_here
        if nl:
            body.append(ast.Nonlocal(names=nl))
        body.extend(stmts if stmts else [ast.Pass()])
        fn = ast.FunctionDef(
            name=body_name,
            args=_no_args(params or []),
            body=body,
            decorator_list=[],
            returns=None,
        )
        ast.copy_location(fn, anchor)
        return fn, body_name

    def _rewrite_test(self, test: ast.expr) -> ast.expr:
        return self.bool_rewriter.visit(test)

    # -- if ----------------------------------------------------------------

    def _lower_if(self, node: ast.If) -> list:
        body = self._process_block(node.body)
        orelse = self._process_block(node.orelse)
        body_vars = _assigned_names(body, self.excluded)
        orelse_vars = _assigned_names(orelse, self.excluded)
        symbols = list(dict.fromkeys(body_vars + orelse_vars))
        if not symbols:
            # No state to thread: branches are effect-only (calls,
            # assert-style raises).  Still lowered, with empty state.
            pass
        binders, get_fn, set_fn, get_name, set_name = self._state_functions(
            symbols, node
        )
        body_fn, body_name = self._body_function("if_body", body, symbols, node)
        orelse_fn, orelse_name = self._body_function(
            "else_body", orelse, symbols, node
        )
        call = ast.Expr(
            value=_ag_call(
                "if_stmt",
                [
                    self._rewrite_test(node.test),
                    _load(body_name),
                    _load(orelse_name),
                    _load(get_name),
                    _load(set_name),
                    _str_tuple(symbols),
                    _str_tuple(body_vars),
                    _str_tuple(orelse_vars),
                    _opts_dict(node, self.filename),
                ],
            )
        )
        ast.copy_location(call, node)
        return binders + [get_fn, set_fn, body_fn, orelse_fn, call]

    # -- while -------------------------------------------------------------

    def _lower_while(self, node: ast.While) -> list:
        body = self._process_block(node.body)
        symbols = _assigned_names(body, self.excluded)
        binders, get_fn, set_fn, get_name, set_name = self._state_functions(
            symbols, node
        )
        test_fn = _thunk(
            self.namer.machinery("loop_test"), self._rewrite_test(node.test)
        )
        ast.copy_location(test_fn, node)
        body_fn, body_name = self._body_function("loop_body", body, symbols, node)
        call = ast.Expr(
            value=_ag_call(
                "while_stmt",
                [
                    _load(test_fn.name),
                    _load(body_name),
                    _load(get_name),
                    _load(set_name),
                    _str_tuple(symbols),
                    _opts_dict(node, self.filename),
                ],
            )
        )
        ast.copy_location(call, node)
        return binders + [get_fn, set_fn, test_fn, body_fn, call]

    # -- for ---------------------------------------------------------------

    def _lower_for(self, node: ast.For) -> list:
        body = self._process_block(node.body)
        target_names = _assigned_names([ast.Assign(targets=[node.target],
                                                   value=_const(None))],
                                       frozenset())
        # The loop target is re-bound every iteration from the iterate;
        # it is body-local, not loop-carried state.
        symbols = [
            n
            for n in _assigned_names(body, self.excluded)
            if n not in target_names
        ]
        nonlocals = list(dict.fromkeys(symbols + [
            n for n in target_names if n not in self.excluded
        ]))
        binders, get_fn, set_fn, get_name, set_name = self._state_functions(
            symbols, node
        )
        # Bind the target too, so the nested body may declare it nonlocal
        # (after the loop it holds the last element, as in Python).
        target_binders, _tg, _ts, _tgn, _tsn = self._state_functions(
            [n for n in target_names if n not in self.excluded], node
        )
        value_param = self.namer.machinery("itervalue")
        assign_target = ast.Assign(
            targets=[node.target], value=_load(value_param)
        )
        ast.copy_location(assign_target, node)
        body_fn, body_name = self._body_function(
            "for_body", [assign_target] + body, nonlocals, node, [value_param]
        )
        extra = getattr(node, "_ag_extra_test", None)
        call = ast.Expr(
            value=_ag_call(
                "for_stmt",
                [
                    node.iter,
                    _load(body_name),
                    _load(get_name),
                    _load(set_name),
                    _str_tuple(symbols),
                    extra if extra is not None else _const(None),
                    _opts_dict(node, self.filename),
                ],
            )
        )
        ast.copy_location(call, node)
        return binders + target_binders + [get_fn, set_fn, body_fn, call]


# ---------------------------------------------------------------------------
# Driver: source -> transformed function object
# ---------------------------------------------------------------------------


def converted_code(fn: Callable) -> Optional[str]:
    """The transformed source of ``fn`` (for inspection/tests), or None."""
    prepared = _prepare(fn)
    if prepared is None:
        return None
    fnode, _ = prepared
    return ast.unparse(fnode)


def _prepare(fn: Callable):
    """Parse and transform; returns (function AST, source filename)."""
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        return None
    source = textwrap.dedent(source)
    if AG_NAME in source or MACHINERY_PREFIX in source:
        return None  # would collide with generated names
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        return None
    fnode = tree.body[0]
    fnode.decorator_list = []
    # Keep original line numbers for error attribution.
    try:
        firstlineno = fn.__code__.co_firstlineno
    except AttributeError:
        firstlineno = 1
    ast.increment_lineno(tree, firstlineno - 1)

    # Nothing to lower?  Leave the function alone entirely.
    if not _contains(fnode.body, _CONTROL_NODES):
        return None

    declared = _DeclaredNames()
    for stmt in fnode.body:
        declared.visit(stmt)
    excluded = frozenset(declared.names)

    taken = {n.id for n in ast.walk(fnode) if isinstance(n, ast.Name)}
    namer = _Namer(taken)

    ret = _ReturnLowering(namer.fresh("do_return"), namer.fresh("retval"))
    if ret.needs_lowering(fnode):
        ret.apply(fnode)
    _LoopCanonicalizer(namer).apply(fnode)

    filename = getattr(getattr(fn, "__code__", None), "co_filename", "<autograph>")
    _ControlFlowLowering(
        namer,
        excluded,
        filename,
        declared_globals=frozenset(declared.globals_),
        declared_nonlocals=frozenset(declared.nonlocals_),
    ).apply(fnode)
    ast.fix_missing_locations(tree)
    return fnode, filename


def convert(fn: Callable) -> Callable:
    """Return ``fn`` rewritten for staged control flow, or ``fn`` itself.

    The returned function is call-compatible: same signature, defaults,
    closure cells (``nonlocal`` mutation reaches the original cells),
    globals, and name.  Functions that cannot or need not be converted
    — generators, coroutines, lambdas, no retrievable source, no
    control flow — are returned unchanged.
    """
    if isinstance(fn, types.MethodType):
        converted = convert(fn.__func__)
        if converted is fn.__func__:
            return fn
        return types.MethodType(converted, fn.__self__)
    if not isinstance(fn, types.FunctionType):
        return fn
    if is_converted(fn):
        return fn
    if (
        inspect.isgeneratorfunction(fn)
        or inspect.iscoroutinefunction(fn)
        or inspect.isasyncgenfunction(fn)
        or fn.__name__ == "<lambda>"
    ):
        return fn
    prepared = _prepare(fn)
    if prepared is None:
        return fn
    fnode, filename = prepared

    # Default expressions were evaluated at the original def site; strip
    # them from the AST and re-attach the evaluated objects below.
    fnode.args.defaults = []
    fnode.args.kw_defaults = [None] * len(fnode.args.kwonlyargs)
    for arg in (
        fnode.args.posonlyargs
        + fnode.args.args
        + fnode.args.kwonlyargs
        + [a for a in (fnode.args.vararg, fnode.args.kwarg) if a]
    ):
        arg.annotation = None
    fnode.returns = None

    # Wrap in a factory whose parameters are the free variables (plus
    # the operators module), so the compiled inner function has matching
    # co_freevars; the original closure cells are re-attached afterwards.
    freevars = list(fn.__code__.co_freevars)
    factory = ast.FunctionDef(
        name="_ag_factory__",
        args=_no_args([AG_NAME] + freevars),
        body=[fnode, ast.Return(value=_load(fnode.name))],
        decorator_list=[],
        returns=None,
    )
    module = ast.Module(body=[factory], type_ignores=[])
    ast.fix_missing_locations(module)

    try:
        code = compile(module, filename, "exec")
    except (SyntaxError, ValueError):
        return fn

    namespace: dict = {}
    exec(code, {"__name__": fn.__module__}, namespace)
    template = namespace["_ag_factory__"](
        operators, *([None] * len(freevars))
    )

    cell_by_name = dict(zip(fn.__code__.co_freevars, fn.__closure__ or ()))
    cell_by_name[AG_NAME] = types.CellType(operators)
    closure = tuple(
        cell_by_name[name]
        if name in cell_by_name
        else types.CellType(None)
        for name in template.__code__.co_freevars
    )
    new_fn = types.FunctionType(
        template.__code__,
        fn.__globals__,
        fn.__name__,
        fn.__defaults__,
        closure,
    )
    new_fn.__kwdefaults__ = fn.__kwdefaults__
    new_fn.__dict__.update(fn.__dict__)
    new_fn.__doc__ = fn.__doc__
    new_fn.__module__ = fn.__module__
    new_fn.__qualname__ = fn.__qualname__
    setattr(new_fn, _CONVERTED_MARKER, True)
    setattr(new_fn, "__autograph_original__", fn)
    return new_fn
