"""AutoGraph-style lowering of Python control flow (PAPERS.md: arXiv 1810.08061).

``repro.function`` applies :func:`convert` to the Python function it is
about to trace (default on; opt out per-function with
``autograph=False`` or globally with ``REPRO_AUTOGRAPH=0``).  The
converted function runs identically under eager execution and lowers
tensor-dependent ``if``/``while``/``for``/``break``/``continue``/early-
``return`` onto the staged ``cond``/``while_loop`` ops when traced —
so data-dependent imperative code stages without manual rewrites,
closing the gap paper §4.1 left open ("conditionals that depend on the
value of tensors will need to be written using ``tf.cond`` ...").
"""

from repro.autograph.operators import AutographError, Undefined
from repro.autograph.transform import convert, converted_code, is_converted

__all__ = [
    "AutographError",
    "Undefined",
    "convert",
    "converted_code",
    "is_converted",
]
