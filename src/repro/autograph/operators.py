"""Runtime operators targeted by the autograph transform.

The source-to-source transform (:mod:`repro.autograph.transform`)
rewrites Python control flow into calls to the functions here.  Each
operator makes the *staging decision at run time*: when the predicate
(or loop iterate) is a tensor flowing through an active trace, the
statement lowers onto the staged control-flow ops
(:func:`repro.ops.control_flow.cond` / ``while_loop``); otherwise it
falls back to ordinary Python control flow with exactly the original
semantics — evaluation order, short-circuiting, and mutation through
``nonlocal`` cells included.

This split is what makes the transform safe to apply to *every* staged
function: code whose predicates are plain Python values behaves as if
it had never been rewritten, and only tensor-dependent control flow
pays the lowering.  Under the deferred eager modes (async / lazy) the
Python fallback is also the synchronization seam: forcing the truth
value of a pending tensor drains its stream or flushes the recorded
lazy segment, so a lowered-in-source but eagerly-executed loop gets
its flush boundary exactly at the conditional.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.framework import dtypes
from repro.framework.errors import InvalidArgumentError, ReproError
from repro.runtime.context import context
from repro.tensor import TensorBase, convert_to_tensor

__all__ = [
    "AutographError",
    "Undefined",
    "and_",
    "for_stmt",
    "if_stmt",
    "not_",
    "or_",
    "retval",
    "while_stmt",
]


class AutographError(ReproError, RuntimeError):
    """A Python construct could not be lowered to staged control flow.

    Raised with the symbol name and original source location so the
    failure points at the user's ``if``/``while`` line, not at
    generated code.
    """


class Undefined:
    """Sentinel for a variable with no binding yet.

    The transform materializes possibly-unbound symbols as ``Undefined``
    so state snapshots always succeed; any *use* of one raises a clear
    error naming the symbol instead of a bare ``NameError`` deep inside
    generated code.
    """

    __slots__ = ("symbol_name", "loc")

    def __init__(self, symbol_name: str, loc: Optional[str] = None) -> None:
        self.symbol_name = symbol_name
        self.loc = loc

    def __repr__(self) -> str:
        return f"<undefined symbol {self.symbol_name!r}>"

    def _complain(self):
        where = f" (control flow at {self.loc})" if self.loc else ""
        raise AutographError(
            f"Symbol {self.symbol_name!r} is used but may be undefined: it is "
            "only assigned inside tensor-dependent control flow that staging "
            "cannot prove executes. Assign it a value before the "
            f"`if`/`while` statement{where}."
        )

    # Any attempt to *use* the sentinel is an error worth explaining.
    def __getattr__(self, name):
        self._complain()

    def __bool__(self):
        self._complain()

    def __call__(self, *args, **kwargs):
        self._complain()

    def __iter__(self):
        self._complain()

    def __add__(self, other):
        self._complain()

    __radd__ = __sub__ = __rsub__ = __mul__ = __rmul__ = __add__
    __truediv__ = __rtruediv__ = __getitem__ = __lt__ = __gt__ = __add__


def _loc(opts: Optional[dict]) -> str:
    if not opts:
        return "<unknown location>"
    return f"{opts.get('filename', '<unknown>')}:{opts.get('lineno', '?')}"


def _should_stage(value) -> bool:
    """Lower onto graph ops iff ``value`` is a tensor inside a trace.

    Symbolic tensors always stage (their truth value does not exist).
    Concrete tensors stage only while a graph is being built — boolean-
    testing one there would silently specialize the trace to this
    call's value, the exact footgun autograph exists to remove.  In
    pure eager execution (sync, async, lazy) every predicate falls back
    to Python.
    """
    if not isinstance(value, TensorBase):
        return False
    from repro.graph.graph import SymbolicTensor

    if isinstance(value, SymbolicTensor):
        return True
    return context.current_graph() is not None


def retval(value):
    """Unwrap the return-value slot: an untouched slot means ``return None``."""
    if isinstance(value, Undefined):
        return None
    return value


# ---------------------------------------------------------------------------
# Boolean operators (short-circuit preserved for Python operands)
# ---------------------------------------------------------------------------


def and_(a_fn: Callable, b_fn: Callable):
    """``a and b`` that lowers to ``logical_and`` for staged tensors."""
    a = a_fn()
    if _should_stage(a):
        from repro.ops import math_ops

        b = b_fn()
        if not isinstance(b, TensorBase):
            b = convert_to_tensor(b, dtype=dtypes.bool_)
        return math_ops.logical_and(a, b)
    return a and b_fn()


def or_(a_fn: Callable, b_fn: Callable):
    """``a or b`` that lowers to ``logical_or`` for staged tensors."""
    a = a_fn()
    if _should_stage(a):
        from repro.ops import math_ops

        b = b_fn()
        if not isinstance(b, TensorBase):
            b = convert_to_tensor(b, dtype=dtypes.bool_)
        return math_ops.logical_or(a, b)
    return a or b_fn()


def not_(a):
    """``not a`` that lowers to ``logical_not`` for staged tensors."""
    if _should_stage(a):
        from repro.ops import math_ops

        return math_ops.logical_not(a)
    return not a


# ---------------------------------------------------------------------------
# if / elif / else
# ---------------------------------------------------------------------------


def if_stmt(
    pred,
    body: Callable,
    orelse: Callable,
    get_state: Callable,
    set_state: Callable,
    symbol_names: Sequence[str],
    body_vars: Sequence[str],
    orelse_vars: Sequence[str],
    opts: Optional[dict] = None,
):
    """Functional form of an ``if`` statement.

    ``symbol_names`` is the ordered union of symbols either branch
    assigns; ``get_state``/``set_state`` snapshot and restore them
    through ``nonlocal`` cells.  With a Python predicate the matching
    branch simply runs in place.  With a staged tensor predicate both
    branches are traced from the same pre-``if`` state and the modified
    symbols are threaded through a single ``Cond`` op.
    """
    if not _should_stage(pred):
        if pred:
            body()
        else:
            orelse()
        return

    from repro.framework import nest
    from repro.ops import control_flow

    init_state = tuple(get_state())
    body_set = frozenset(body_vars)
    orelse_set = frozenset(orelse_vars)
    # A symbol can ride the Cond only if it has a value on *both* paths:
    # either it was defined before the `if`, or both branches assign it.
    threaded = [
        not isinstance(init, Undefined)
        or (name in body_set and name in orelse_set)
        for name, init in zip(symbol_names, init_state)
    ]
    threaded_names = [n for n, t in zip(symbol_names, threaded) if t]
    # Per-branch nest templates: each threaded symbol may hold a
    # structure (tuple/list/dict of tensors); it rides the Cond as its
    # flattened leaves and is repacked afterwards.
    templates: dict = {}

    def make_branch(branch_fn, branch_label):
        def run_branch():
            set_state(list(init_state))
            branch_fn()
            out = get_state()
            results = []
            packed = []
            for name, value, thread in zip(symbol_names, out, threaded):
                if not thread:
                    continue
                if isinstance(value, Undefined):
                    raise AutographError(
                        f"Symbol {name!r} may be undefined after the "
                        f"conditional at {_loc(opts)}: the {branch_label} "
                        "branch did not assign it. Tensor-dependent `if` "
                        "statements must give every live symbol a value on "
                        "both paths."
                    )
                try:
                    flat = [convert_to_tensor(v) for v in nest.flatten(value)]
                except (TypeError, ValueError, ReproError) as exc:
                    raise AutographError(
                        f"Symbol {name!r} holds a non-tensor value "
                        f"({type(value).__name__}) after the {branch_label} "
                        f"branch of the conditional at {_loc(opts)}; values "
                        "threaded through a staged conditional must be "
                        "convertible to tensors."
                    ) from exc
                packed.append(nest.pack_sequence_as(value, flat))
                results.extend(flat)
            templates[branch_label] = packed
            return tuple(results)

        return run_branch

    try:
        results = control_flow.cond(
            pred, make_branch(body, "true"), make_branch(orelse, "false")
        )
    except InvalidArgumentError as exc:
        raise AutographError(
            f"Could not lower the conditional at {_loc(opts)} to a staged "
            f"Cond: {exc}"
        ) from exc
    tmpl_true = templates.get("true")
    tmpl_false = templates.get("false")
    if tmpl_true is not None and tmpl_false is not None:
        for name, a, b in zip(threaded_names, tmpl_true, tmpl_false):
            try:
                nest.assert_same_structure(a, b)
            except (TypeError, ValueError, ReproError) as exc:
                raise AutographError(
                    f"Symbol {name!r} has mismatched structures across the "
                    f"branches of the conditional at {_loc(opts)}: {exc}"
                ) from exc
    template = tmpl_true if tmpl_true is not None else tmpl_false
    if not isinstance(results, (list, tuple)):
        results = (results,)
    flat_results = list(results)
    merged = []
    idx = 0
    t_iter = iter(template)
    for init, thread in zip(init_state, threaded):
        if not thread:
            merged.append(init)
            continue
        tmpl = next(t_iter)
        n_leaves = len(nest.flatten(tmpl))
        merged.append(nest.pack_sequence_as(tmpl, flat_results[idx : idx + n_leaves]))
        idx += n_leaves
    set_state(merged)


# ---------------------------------------------------------------------------
# while
# ---------------------------------------------------------------------------


def _stage_while(test, body, get_state, set_state, symbol_names, opts, init_state):
    from repro.framework import nest
    from repro.ops import control_flow

    # Only symbols live before the loop are loop-carried state; symbols
    # first assigned inside the body are per-iteration temporaries (as
    # in Python, where reading one before assignment is an error).
    threaded = [not isinstance(v, Undefined) for v in init_state]
    loop_names = [n for n, t in zip(symbol_names, threaded) if t]
    # Each loop-carried symbol may hold a nest structure (tuple/list/
    # dict of tensors); its leaves become While loop variables and the
    # structure is repacked on every state hand-off.
    loop_init = []
    for name, value, thread in zip(symbol_names, init_state, threaded):
        if not thread:
            continue
        try:
            flat = [convert_to_tensor(v) for v in nest.flatten(value)]
        except (TypeError, ValueError, ReproError) as exc:
            raise AutographError(
                f"Symbol {name!r} holds a non-tensor value "
                f"({type(value).__name__}) entering the tensor-dependent "
                f"loop at {_loc(opts)}; loop-carried state must be "
                "convertible to tensors."
            ) from exc
        loop_init.append(nest.pack_sequence_as(value, flat))
    templates = dict(zip(loop_names, loop_init))

    def merge(state_vals):
        merged = []
        it = iter(state_vals)
        for init, thread in zip(init_state, threaded):
            merged.append(next(it) if thread else init)
        return merged

    def cond_fn(*state):
        set_state(merge(state))
        return test()

    def body_fn(*state):
        set_state(merge(state))
        body()
        out = get_state()
        results = []
        for name, value, thread in zip(symbol_names, out, threaded):
            if not thread:
                continue
            if isinstance(value, Undefined):
                raise AutographError(
                    f"Symbol {name!r} lost its value inside the loop at "
                    f"{_loc(opts)}; loop-carried state must stay defined "
                    "on every iteration."
                )
            try:
                nest.assert_same_structure(templates[name], value)
            except (TypeError, ValueError, ReproError) as exc:
                raise AutographError(
                    f"Symbol {name!r} changed structure inside the loop at "
                    f"{_loc(opts)}: loop-carried state must keep the same "
                    f"nested shape on every iteration ({exc})."
                ) from exc
            try:
                flat = [convert_to_tensor(v) for v in nest.flatten(value)]
            except (TypeError, ValueError, ReproError) as exc:
                raise AutographError(
                    f"Symbol {name!r} holds a non-tensor value "
                    f"({type(value).__name__}) inside the loop at "
                    f"{_loc(opts)}; loop-carried state must be convertible "
                    "to tensors."
                ) from exc
            results.append(nest.pack_sequence_as(value, flat))
        return tuple(results)

    try:
        final = control_flow.while_loop(cond_fn, body_fn, tuple(loop_init))
    except InvalidArgumentError as exc:
        raise AutographError(
            f"Could not lower the loop at {_loc(opts)} to a staged While "
            f"(loop-carried symbols: {loop_names}): {exc}"
        ) from exc
    if not isinstance(final, (list, tuple)):
        final = (final,)
    set_state(merge(final))


def while_stmt(
    test: Callable,
    body: Callable,
    get_state: Callable,
    set_state: Callable,
    symbol_names: Sequence[str],
    opts: Optional[dict] = None,
):
    """Functional form of a ``while`` statement.

    The loop test is evaluated once from the initial state to pick the
    dispatch: a tensor result inside a trace stages the whole loop as a
    single ``While`` op (loop-carried symbols become loop variables); a
    Python result runs the ordinary interpreted loop, reusing that
    first evaluation as iteration one's test.
    """
    init_state = tuple(get_state())
    first = test()
    if _should_stage(first):
        set_state(list(init_state))
        _stage_while(test, body, get_state, set_state, symbol_names, opts, init_state)
        return
    while first:
        body()
        first = test()


# ---------------------------------------------------------------------------
# for
# ---------------------------------------------------------------------------


def for_stmt(
    iterated,
    body: Callable,
    get_state: Callable,
    set_state: Callable,
    symbol_names: Sequence[str],
    extra_test: Optional[Callable] = None,
    opts: Optional[dict] = None,
):
    """Functional form of a ``for`` statement.

    ``body`` receives each element (it assigns the loop target through
    its ``nonlocal`` cell).  A tensor iterated inside a trace lowers to
    a counted ``While`` over ``gather(iterated, i)``; anything else —
    lists, ranges, generators, zips — runs the ordinary Python loop.
    ``extra_test`` carries a canonicalized ``break`` condition.
    """
    if not _should_stage(iterated):
        if extra_test is None:
            for value in iterated:
                body(value)
            return
        # Test the (canonicalized break) condition *before* advancing the
        # iterator, so generators are not drained one element past the
        # break — exactly where a real ``break`` would have stopped.
        source = iter(iterated)
        while extra_test():
            try:
                value = next(source)
            except StopIteration:
                break
            body(value)
        return

    from repro.ops import array_ops, math_ops

    init_state = tuple(get_state())

    def get_loop_state():
        return get_state()

    n = array_ops.gather(array_ops.shape(iterated), 0)
    index = [convert_to_tensor(0, dtype=dtypes.int32)]

    def test():
        keep = math_ops.less(index[0], n)
        if extra_test is not None:
            extra = extra_test()
            if isinstance(extra, TensorBase):
                keep = math_ops.logical_and(keep, extra)
            elif not extra:
                keep = convert_to_tensor(False, dtype=dtypes.bool_)
        return keep

    def run_body():
        body(array_ops.gather(iterated, index[0], axis=0))
        index[0] = index[0] + convert_to_tensor(1, dtype=dtypes.int32)

    # The loop index rides along as hidden state via the `index` cell.
    def get_full_state():
        return [index[0]] + list(get_loop_state())

    def set_full_state(values):
        index[0] = values[0]
        set_state(list(values[1:]))

    _stage_while(
        test,
        run_body,
        get_full_state,
        set_full_state,
        ["<loop index>"] + list(symbol_names),
        opts,
        tuple([index[0]] + list(init_state)),
    )
