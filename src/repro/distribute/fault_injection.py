"""Chaos-testing hooks for worker servers.

The fault-tolerance layer is only trustworthy if it can be exercised:
this module installs controlled faults on a :class:`WorkerServer` so
tests and the chaos benchmark can prove that deadlines fire, retries
recover, and strategy steps degrade instead of hanging.

A :class:`FaultInjector` wraps one worker and applies an ordered list
of rules on the worker's serve thread, one request at a time::

    from repro.distribute.fault_injection import FaultInjector

    with FaultInjector(worker) as chaos:
        chaos.delay(0.2, times=1)          # stall the next request
        chaos.fail(times=2)                # abort the next two (retryable)
        chaos.drop(ops={"Add"}, times=1)   # never answer one Add
        chaos.kill_worker(ops={"Mul"})     # crash on the next Mul
        ...

Rules are consumed in installation order; each applies to the first
``times`` matching requests (``times=None``: forever).  Health-check
pings pass through the same rules, so an injected stall makes
:meth:`WorkerServer.ping` report unhealthy — the property the health
check exists to detect.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional, Set

from repro.framework.errors import AbortedError, InvalidArgumentError
from repro.distribute.worker import DROP_REQUEST, WorkerServer

__all__ = ["FaultInjector"]


@dataclass
class _Rule:
    kind: str  # "delay" | "drop" | "fail" | "kill"
    ops: Optional[Set[str]]  # None: match every op
    times: Optional[int]  # None: never expires
    seconds: float = 0.0
    error_type: type = AbortedError

    def matches(self, op_name: str) -> bool:
        return self.ops is None or op_name in self.ops


class FaultInjector:
    """Installable drop / delay / fail / kill faults for one worker."""

    def __init__(self, worker: WorkerServer) -> None:
        self._worker = worker
        self._rules: list[_Rule] = []
        self._lock = threading.Lock()
        # Counters for assertions in tests/benchmarks.
        self.injected: dict[str, int] = {"delay": 0, "drop": 0, "fail": 0, "kill": 0}
        worker.install_fault_hook(self._hook)

    # -- rule installation ---------------------------------------------------
    def _add(self, rule: _Rule) -> "FaultInjector":
        if rule.times is not None and rule.times < 1:
            raise InvalidArgumentError(f"times must be >= 1, got {rule.times}")
        with self._lock:
            self._rules.append(rule)
        return self

    def delay(
        self,
        seconds: float,
        ops: Optional[Set[str]] = None,
        times: Optional[int] = None,
    ) -> "FaultInjector":
        """Stall matching requests for ``seconds`` before serving them."""
        return self._add(_Rule("delay", ops and set(ops), times, seconds=seconds))

    def drop(
        self, ops: Optional[Set[str]] = None, times: Optional[int] = None
    ) -> "FaultInjector":
        """Never answer matching requests (the client's deadline fires)."""
        return self._add(_Rule("drop", ops and set(ops), times))

    def fail(
        self,
        ops: Optional[Set[str]] = None,
        times: Optional[int] = None,
        error_type: type = AbortedError,
    ) -> "FaultInjector":
        """Fail matching requests with ``error_type`` (default: the
        retryable :class:`~repro.framework.errors.AbortedError`)."""
        return self._add(_Rule("fail", ops and set(ops), times, error_type=error_type))

    def kill_worker(
        self, ops: Optional[Set[str]] = None, times: Optional[int] = 1
    ) -> "FaultInjector":
        """Crash the worker when a matching request arrives.

        The triggering request fails with ``UnavailableError``; queued
        requests are drained with the same error; later submissions are
        rejected immediately.
        """
        return self._add(_Rule("kill", ops and set(ops), times))

    def remove(self) -> None:
        """Uninstall the injector; the worker serves normally again."""
        self._worker.install_fault_hook(None)

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()

    # -- the hook (runs on the worker's serve thread) ------------------------
    def _claim(self, op_name: str) -> Optional[_Rule]:
        with self._lock:
            for rule in self._rules:
                if not rule.matches(op_name):
                    continue
                if rule.times is not None:
                    rule.times -= 1
                    if rule.times == 0:
                        self._rules.remove(rule)
                self.injected[rule.kind] += 1
                return rule
        return None

    def _hook(self, op_name: str) -> Optional[str]:
        rule = self._claim(op_name)
        if rule is None:
            return None
        if rule.kind == "delay":
            time.sleep(rule.seconds)
            return None
        if rule.kind == "drop":
            return DROP_REQUEST
        if rule.kind == "fail":
            raise rule.error_type(
                f"Injected fault: {op_name!r} aborted on worker "
                f"{self._worker.address!r}"
            )
        # kind == "kill": the worker's serve loop notices `_running` is
        # now False and fails the triggering request with
        # UnavailableError, exactly like a crash mid-request.
        self._worker.kill()
        return None
