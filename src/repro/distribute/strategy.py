"""Data-parallel training helpers.

The paper's conclusion names "an out-of-the-box solution for
imperatively-driven distributed training" as ongoing work; this module
implements the natural first cut on top of the §4.5 primitives: a
mirrored data-parallel strategy where each replica device runs the same
step on its shard concurrently (one Python thread per worker — §4.5:
"developers need to start these computations concurrently, e.g. using
Python threads") and gradients are reduced on the coordinator.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

import numpy as np

from repro.framework import nest
from repro.framework.errors import (
    DeadlineExceededError,
    InvalidArgumentError,
    UnavailableError,
)
from repro.runtime.context import context, device as device_scope
from repro.ops import array_ops, math_ops
from repro.tensor import Tensor, TensorBase, convert_to_tensor

__all__ = ["DataParallelStrategy", "PerReplica"]


class PerReplica:
    """A tuple of per-replica values, one per strategy device."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence) -> None:
        self.values = tuple(values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    def __repr__(self) -> str:
        return f"PerReplica({list(self.values)!r})"


class DataParallelStrategy:
    """Run a step function on shards across devices; reduce the results.

    Usage::

        strategy = DataParallelStrategy([
            "/job:training/task:0/device:CPU:0",
            "/job:training/task:1/device:CPU:0",
        ])
        per_replica = strategy.split_batch((images, labels))
        losses = strategy.run(step_fn, per_replica)
        loss = strategy.reduce_mean(losses)
    """

    #: Exceptions that mean "this replica's worker is gone or stalled",
    #: triggering degradation instead of plain propagation.
    _REPLICA_FAILURES = (UnavailableError, DeadlineExceededError)

    def __init__(
        self, devices: Sequence[str], on_replica_failure: str = "fail"
    ) -> None:
        """Args:
            devices: replica device names (local or remote).
            on_replica_failure: what :meth:`run` does when a replica's
                worker dies or stalls mid-step (``UnavailableError`` /
                ``DeadlineExceededError``).  ``"fail"`` (default) raises
                a clear ``UnavailableError`` naming the dead task;
                ``"reshard"`` re-runs the failed replicas' shards on the
                surviving replicas so the step still completes.  Either
                way the step never hangs.
        """
        if not devices:
            raise InvalidArgumentError("A strategy needs at least one device")
        if on_replica_failure not in ("fail", "reshard"):
            raise InvalidArgumentError(
                "on_replica_failure must be 'fail' or 'reshard', "
                f"got {on_replica_failure!r}"
            )
        # Validate now so typos fail at construction.
        for name in devices:
            context.get_device(name)
        self.devices = list(devices)
        self.on_replica_failure = on_replica_failure
        self._reshard_events = 0

    @property
    def num_replicas(self) -> int:
        return len(self.devices)

    # -- input distribution --------------------------------------------------
    def split_batch(self, batch) -> PerReplica:
        """Shard every tensor leaf of ``batch`` along axis 0."""
        flat = nest.flatten(batch)
        n = self.num_replicas
        shards_per_leaf = []
        for leaf in flat:
            leaf = convert_to_tensor(leaf)
            size = leaf.shape[0]
            if size is None or size % n != 0:
                raise InvalidArgumentError(
                    f"Batch dimension {size} is not divisible by "
                    f"{n} replicas"
                )
            shards_per_leaf.append(array_ops.split(leaf, n, axis=0))
        replicas = []
        for r in range(n):
            replicas.append(
                nest.pack_sequence_as(batch, [s[r] for s in shards_per_leaf])
            )
        return PerReplica(replicas)

    # -- execution ---------------------------------------------------------
    def run(self, fn: Callable, per_replica_args: Optional[PerReplica] = None) -> PerReplica:
        """Invoke ``fn`` once per replica, concurrently, on its device.

        ``fn`` receives the replica's argument structure (or nothing).
        Returns the per-replica results; exceptions from any replica
        propagate.

        When a replica's worker dies or stalls mid-step the strategy
        degrades instead of hanging: with ``on_replica_failure="fail"``
        it raises ``UnavailableError`` naming the dead task, with
        ``"reshard"`` it re-runs the failed shards on the surviving
        replicas (see :attr:`reshard_events`).
        """
        results, errors = self._run_on(
            list(range(self.num_replicas)), self.devices, fn, per_replica_args
        )
        failed = [i for i in range(self.num_replicas) if errors[i] is not None]
        if not failed:
            return PerReplica(results)

        # Non-availability errors (a bug in fn, bad shapes, ...) are not
        # degradation cases; propagate the first as before.
        for i in failed:
            if not isinstance(errors[i], self._REPLICA_FAILURES):
                raise errors[i]

        survivors = [
            i
            for i in range(self.num_replicas)
            if errors[i] is None and self._replica_alive(i)
        ]
        if self.on_replica_failure == "fail" or not survivors:
            first = failed[0]
            raise UnavailableError(
                f"Replica {first} ({self.devices[first]}) became unavailable "
                f"during DataParallelStrategy.run ({len(failed)} of "
                f"{self.num_replicas} replicas failed)"
            ) from errors[first]

        # Re-shard: run each failed replica's arguments on a surviving
        # device (round-robin).  A failure here is no longer transient —
        # it propagates as a clear UnavailableError.
        self._reshard_events += 1
        retry_devices = [
            self.devices[survivors[k % len(survivors)]] for k in range(len(failed))
        ]
        retry_results, retry_errors = self._run_on(
            failed, retry_devices, fn, per_replica_args
        )
        for k, i in enumerate(failed):
            if retry_errors[k] is not None:
                raise UnavailableError(
                    f"Replica {i} ({self.devices[i]}) failed and its shard "
                    f"could not be re-run on surviving device "
                    f"{retry_devices[k]}"
                ) from retry_errors[k]
            results[i] = retry_results[k]
        return PerReplica(results)

    @property
    def reshard_events(self) -> int:
        """How many :meth:`run` calls degraded onto surviving replicas."""
        return self._reshard_events

    def _replica_alive(self, index: int) -> bool:
        """Whether the replica's device can still accept work."""
        try:
            device = context.get_device(self.devices[index])
        except Exception:  # noqa: BLE001 - resolver may be gone entirely
            return False
        server = getattr(device, "server", None)
        return server is None or server.is_running

    def _run_on(
        self,
        indices: Sequence[int],
        devices: Sequence[str],
        fn: Callable,
        per_replica_args: Optional[PerReplica],
    ) -> tuple[list, list]:
        """Run replica ``indices`` on ``devices`` (parallel positions);
        returns (results, errors) aligned with ``indices``."""
        results: list = [None] * len(indices)
        errors: list = [None] * len(indices)

        def worker(pos: int) -> None:
            try:
                with device_scope(devices[pos]):
                    if per_replica_args is None:
                        out = fn()
                    else:
                        args = per_replica_args[indices[pos]]
                        if isinstance(args, tuple):
                            out = fn(*args)
                        else:
                            out = fn(args)
                    # Async eager: force pending outputs *inside* the
                    # replica, so a worker that died mid-step surfaces
                    # here — where the degradation logic can reshard —
                    # not at some later observation of the value.
                    for leaf in nest.flatten(out):
                        materialize = getattr(leaf, "_materialize", None)
                        if materialize is not None:
                            materialize()
                    results[pos] = out
            except BaseException as exc:  # noqa: BLE001 - handled by caller
                errors[pos] = exc

        if len(indices) == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(p,), daemon=True)
                for p in range(len(indices))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return results, errors

    # -- reductions --------------------------------------------------------------
    def _fetch_all(self, values: PerReplica) -> list:
        out = []
        for v in values:
            if isinstance(v, Tensor) and "localhost" not in v.device:
                v = v.cpu()
            out.append(v)
        return out

    def reduce_sum(self, values: PerReplica):
        """Sum per-replica structures onto the coordinator."""
        fetched = self._fetch_all(values)
        flats = [nest.flatten(v) for v in fetched]
        summed = [
            math_ops.add_n([self._to_local(f[i]) for f in flats])
            for i in range(len(flats[0]))
        ]
        return nest.pack_sequence_as(fetched[0], summed)

    def reduce_mean(self, values: PerReplica):
        """Average per-replica structures onto the coordinator."""
        total = self.reduce_sum(values)
        n = float(self.num_replicas)
        return nest.map_structure(lambda t: t / n, total) if nest.is_nested(total) else total / n

    @staticmethod
    def _to_local(t):
        if isinstance(t, Tensor) and "localhost" not in t.device:
            return t.cpu()
        return t

    # -- convenience: a full data-parallel gradient step -----------------------------
    def gradient_step(self, loss_fn: Callable, batch, variables, optimizer) -> object:
        """Shard ``batch``, compute per-replica gradients of ``loss_fn``,
        average them, and apply once on the coordinator.

        Returns the mean loss.  ``loss_fn(shard) -> loss`` must use only
        ``variables`` as trainable state.
        """
        from repro.core.tape import GradientTape

        shards = self.split_batch(batch)

        def replica_step(*args):
            with GradientTape() as tape:
                loss = loss_fn(*args) if args else loss_fn()
            grads = tape.gradient(loss, list(variables))
            return loss, grads

        outcomes = self.run(replica_step, shards)
        losses = PerReplica([loss for loss, _ in outcomes])
        grad_lists = [grads for _, grads in outcomes]
        averaged = []
        for i in range(len(variables)):
            parts = [self._to_local(g[i]) for g in grad_lists if g[i] is not None]
            if not parts:
                averaged.append(None)
                continue
            averaged.append(math_ops.add_n(parts) / float(len(parts)))
        optimizer.apply_gradients(zip(averaged, variables))
        return self.reduce_mean(losses)
