"""Data-parallel training helpers.

The paper's conclusion names "an out-of-the-box solution for
imperatively-driven distributed training" as ongoing work; this module
implements the natural first cut on top of the §4.5 primitives: a
mirrored data-parallel strategy where each replica device runs the same
step on its shard concurrently (one Python thread per worker — §4.5:
"developers need to start these computations concurrently, e.g. using
Python threads") and gradients are reduced on the coordinator.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

import numpy as np

from repro.framework import nest
from repro.framework.errors import InvalidArgumentError
from repro.runtime.context import context, device as device_scope
from repro.ops import array_ops, math_ops
from repro.tensor import Tensor, TensorBase, convert_to_tensor

__all__ = ["DataParallelStrategy", "PerReplica"]


class PerReplica:
    """A tuple of per-replica values, one per strategy device."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence) -> None:
        self.values = tuple(values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    def __repr__(self) -> str:
        return f"PerReplica({list(self.values)!r})"


class DataParallelStrategy:
    """Run a step function on shards across devices; reduce the results.

    Usage::

        strategy = DataParallelStrategy([
            "/job:training/task:0/device:CPU:0",
            "/job:training/task:1/device:CPU:0",
        ])
        per_replica = strategy.split_batch((images, labels))
        losses = strategy.run(step_fn, per_replica)
        loss = strategy.reduce_mean(losses)
    """

    def __init__(self, devices: Sequence[str]) -> None:
        if not devices:
            raise InvalidArgumentError("A strategy needs at least one device")
        # Validate now so typos fail at construction.
        for name in devices:
            context.get_device(name)
        self.devices = list(devices)

    @property
    def num_replicas(self) -> int:
        return len(self.devices)

    # -- input distribution --------------------------------------------------
    def split_batch(self, batch) -> PerReplica:
        """Shard every tensor leaf of ``batch`` along axis 0."""
        flat = nest.flatten(batch)
        n = self.num_replicas
        shards_per_leaf = []
        for leaf in flat:
            leaf = convert_to_tensor(leaf)
            size = leaf.shape[0]
            if size is None or size % n != 0:
                raise InvalidArgumentError(
                    f"Batch dimension {size} is not divisible by "
                    f"{n} replicas"
                )
            shards_per_leaf.append(array_ops.split(leaf, n, axis=0))
        replicas = []
        for r in range(n):
            replicas.append(
                nest.pack_sequence_as(batch, [s[r] for s in shards_per_leaf])
            )
        return PerReplica(replicas)

    # -- execution ---------------------------------------------------------
    def run(self, fn: Callable, per_replica_args: Optional[PerReplica] = None) -> PerReplica:
        """Invoke ``fn`` once per replica, concurrently, on its device.

        ``fn`` receives the replica's argument structure (or nothing).
        Returns the per-replica results; exceptions from any replica
        propagate.
        """
        results: list = [None] * self.num_replicas
        errors: list = [None] * self.num_replicas

        def worker(index: int) -> None:
            try:
                with device_scope(self.devices[index]):
                    if per_replica_args is None:
                        results[index] = fn()
                    else:
                        args = per_replica_args[index]
                        if isinstance(args, tuple):
                            results[index] = fn(*args)
                        else:
                            results[index] = fn(args)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[index] = exc

        if self.num_replicas == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(self.num_replicas)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for exc in errors:
            if exc is not None:
                raise exc
        return PerReplica(results)

    # -- reductions --------------------------------------------------------------
    def _fetch_all(self, values: PerReplica) -> list:
        out = []
        for v in values:
            if isinstance(v, Tensor) and "localhost" not in v.device:
                v = v.cpu()
            out.append(v)
        return out

    def reduce_sum(self, values: PerReplica):
        """Sum per-replica structures onto the coordinator."""
        fetched = self._fetch_all(values)
        flats = [nest.flatten(v) for v in fetched]
        summed = [
            math_ops.add_n([self._to_local(f[i]) for f in flats])
            for i in range(len(flats[0]))
        ]
        return nest.pack_sequence_as(fetched[0], summed)

    def reduce_mean(self, values: PerReplica):
        """Average per-replica structures onto the coordinator."""
        total = self.reduce_sum(values)
        n = float(self.num_replicas)
        return nest.map_structure(lambda t: t / n, total) if nest.is_nested(total) else total / n

    @staticmethod
    def _to_local(t):
        if isinstance(t, Tensor) and "localhost" not in t.device:
            return t.cpu()
        return t

    # -- convenience: a full data-parallel gradient step -----------------------------
    def gradient_step(self, loss_fn: Callable, batch, variables, optimizer) -> object:
        """Shard ``batch``, compute per-replica gradients of ``loss_fn``,
        average them, and apply once on the coordinator.

        Returns the mean loss.  ``loss_fn(shard) -> loss`` must use only
        ``variables`` as trainable state.
        """
        from repro.core.tape import GradientTape

        shards = self.split_batch(batch)

        def replica_step(*args):
            with GradientTape() as tape:
                loss = loss_fn(*args) if args else loss_fn()
            grads = tape.gradient(loss, list(variables))
            return loss, grads

        outcomes = self.run(replica_step, shards)
        losses = PerReplica([loss for loss, _ in outcomes])
        grad_lists = [grads for _, grads in outcomes]
        averaged = []
        for i in range(len(variables)):
            parts = [self._to_local(g[i]) for g in grad_lists if g[i] is not None]
            if not parts:
                averaged.append(None)
                continue
            averaged.append(math_ops.add_n(parts) / float(len(parts)))
        optimizer.apply_gradients(zip(averaged, variables))
        return self.reduce_mean(losses)
