"""Distributed execution (paper §4.5).

"The current system supports distributed execution with a single
central server running the main (typically Python) program and several
worker servers running on remote hosts.  Each worker server adds its
locally available devices ... to the pool of devices available to the
main program."

Workers here are in-process servers: each owns a set of devices named
``/job:<job>/task:<n>/device:<TYPE>:<i>`` and a request loop on its own
thread.  The *control plane* is message passing (every remote operation
is a request/response over the worker's queue); the *data plane* is
shared memory (tensors produced remotely stay resident on the remote
device until explicitly copied to the coordinator), a substitution
documented in DESIGN.md.  The user-facing semantics match the paper:
remote devices appear in ``list_devices``-style resolution, ops placed
with the same ``device`` context manager as local ones, results staying
remote until fetched, and whole graph functions executable remotely.

The remote boundary is fault-tolerant (DESIGN.md, "Fault tolerance"):
requests carry deadlines, idempotent ops retry with backoff + jitter,
workers expose queue-crossing health checks, shutdown drains pending
requests with ``UnavailableError`` instead of hanging clients, and
:class:`~repro.distribute.fault_injection.FaultInjector` provides
drop/delay/fail/kill chaos hooks to prove all of the above.
"""

from repro.distribute.cluster import ClusterSpec
from repro.distribute.fault_injection import FaultInjector
from repro.distribute.strategy import DataParallelStrategy, PerReplica
from repro.distribute.worker import (
    RetryPolicy,
    WorkerServer,
    connect_to_cluster,
    get_retry_policy,
    set_retry_policy,
    shutdown_cluster,
)

__all__ = [
    "ClusterSpec",
    "DataParallelStrategy",
    "FaultInjector",
    "PerReplica",
    "RetryPolicy",
    "WorkerServer",
    "connect_to_cluster",
    "get_retry_policy",
    "set_retry_policy",
    "shutdown_cluster",
]
