"""Distributed execution (paper §4.5).

"The current system supports distributed execution with a single
central server running the main (typically Python) program and several
worker servers running on remote hosts.  Each worker server adds its
locally available devices ... to the pool of devices available to the
main program."

Workers here are in-process servers: each owns a set of devices named
``/job:<job>/task:<n>/device:<TYPE>:<i>`` and a request loop on its own
thread.  The *control plane* is message passing (every remote operation
is a request/response over the worker's queue); the *data plane* is
shared memory (tensors produced remotely stay resident on the remote
device until explicitly copied to the coordinator), a substitution
documented in DESIGN.md.  The user-facing semantics match the paper:
remote devices appear in ``list_devices``-style resolution, ops placed
with the same ``device`` context manager as local ones, results staying
remote until fetched, and whole graph functions executable remotely.
"""

from repro.distribute.cluster import ClusterSpec
from repro.distribute.strategy import DataParallelStrategy, PerReplica
from repro.distribute.worker import (
    WorkerServer,
    connect_to_cluster,
    shutdown_cluster,
)

__all__ = [
    "ClusterSpec",
    "DataParallelStrategy",
    "PerReplica",
    "WorkerServer",
    "connect_to_cluster",
    "shutdown_cluster",
]
