"""Worker servers, remote devices, and the fault-tolerance layer.

A :class:`WorkerServer` owns the devices of one cluster task and
processes operation requests on a dedicated thread.  Placing an op on a
remote device name routes it through :meth:`RemoteDevice.execute_op`:
the request (op name, inputs, attrs) crosses the worker's queue, the
worker dispatches the kernel on its own thread, and the outputs come
back as tensors *resident on the remote device* — "tensors produced as
the result of running an operation on a remote device stay on the
remote device.  Users can then either perform more operations on these
tensors or copy them to the central server" (paper §4.5).

Whole graph functions execute remotely the same way, because a graph
function call is just the ``PartitionedCall`` operation.  Concurrent
computations on different workers proceed in parallel (each worker has
its own request loop), matching §4.5's note that developers start
communicating computations concurrently, e.g. with Python threads.

The remote-execution boundary is also where robustness lives (the same
stance as gRPC-based TensorFlow):

* every request carries a **deadline** (``context.rpc_deadline_ms``,
  overridable per call); a request that does not complete in time
  raises :class:`~repro.framework.errors.DeadlineExceededError` on the
  client, never hangs;
* **idempotent** ops (ops not marked stateful in the registry) are
  retried with exponential backoff + jitter under the module's
  :class:`RetryPolicy`; each retry is announced through
  ``dispatch.core.notify_retry`` so interceptors (the profiler) observe
  it;
* ``shutdown()`` / ``kill()`` **drain** the request queue and fail
  pending futures with :class:`~repro.framework.errors.UnavailableError`
  — a request racing a shutdown gets a clear error instead of waiting
  on a future nobody will complete;
* :meth:`WorkerServer.ping` is a queue-crossing **health check**: a
  stalled or dead worker reports unhealthy within the ping timeout;
* a fault hook (see :mod:`repro.distribute.fault_injection`) lets tests
  and chaos benchmarks drop, delay, or fail requests and kill workers.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import CancelledError, Future, InvalidStateError
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import (
    AbortedError,
    DeadlineExceededError,
    InternalError,
    InvalidArgumentError,
    NotFoundError,
    UnavailableError,
)
from repro.ops import registry
from repro.runtime import dispatch
from repro.runtime.context import context
from repro.runtime.device import Device, DeviceSpec
from repro.tensor import Tensor

__all__ = [
    "WorkerServer",
    "RemoteDevice",
    "RetryPolicy",
    "connect_to_cluster",
    "shutdown_cluster",
    "get_retry_policy",
    "set_retry_policy",
]

#: Pseudo-op name used by health-check requests.  Fault hooks see it
#: like any other op, so an injected stall makes pings fail too.
HEALTH_CHECK_OP = "__health_check__"

#: Sentinel returned by a fault hook to drop the request (the future is
#: never completed; the client's deadline converts that into
#: DeadlineExceededError).
DROP_REQUEST = "drop"


# -- retry policy -----------------------------------------------------------

_jitter_rng = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient remote failures.

    Applied only to idempotent ops — ops whose registry definition is
    not stateful.  Variable mutations, random ops, and graph-function
    calls (conservatively stateful) are never retried: a retry after a
    deadline could apply their side effect twice.

    Attributes:
        max_attempts: total attempts, including the first.
        initial_backoff_ms: sleep before the first retry.
        multiplier: backoff growth factor per attempt.
        max_backoff_ms: backoff ceiling.
        jitter: each backoff is scaled by a uniform factor in
            ``[1 - jitter, 1 + jitter]`` to decorrelate retry storms.
        retryable: exception types worth retrying.
    """

    max_attempts: int = 3
    initial_backoff_ms: float = 2.0
    multiplier: float = 2.0
    max_backoff_ms: float = 1000.0
    jitter: float = 0.25
    retryable: tuple = (UnavailableError, DeadlineExceededError, AbortedError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidArgumentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0 <= self.jitter <= 1:
            raise InvalidArgumentError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_seconds(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        base = min(
            self.initial_backoff_ms * self.multiplier ** (attempt - 1),
            self.max_backoff_ms,
        )
        scale = 1.0 + self.jitter * _jitter_rng.uniform(-1.0, 1.0)
        return base * scale / 1000.0


_retry_policy: Optional[RetryPolicy] = RetryPolicy()


def get_retry_policy() -> Optional[RetryPolicy]:
    """The retry policy applied to idempotent remote ops (None: no retries)."""
    return _retry_policy


def set_retry_policy(policy: Optional[RetryPolicy]) -> Optional[RetryPolicy]:
    """Install ``policy`` for remote-op retries; returns the previous one."""
    global _retry_policy
    previous, _retry_policy = _retry_policy, policy
    return previous


def _is_idempotent(op_name: str) -> bool:
    try:
        return not registry.get_op_def(op_name).is_stateful
    except NotFoundError:
        return False


# -- remote devices ---------------------------------------------------------


def _remote_op_runner(device: "RemoteDevice", op_name: str, inputs, attrs: dict):
    """The Device.dispatch protocol hook shipping ops to the worker."""
    return device.execute_op(op_name, list(inputs), attrs)


class RemoteDevice(Device):
    """A device owned by a worker; operations are shipped to its server."""

    def __init__(self, spec: DeviceSpec, server: "WorkerServer") -> None:
        super().__init__(spec)
        self._server = server
        self.set_op_runner(_remote_op_runner)

    @property
    def server(self) -> "WorkerServer":
        return self._server

    def execute_op(self, op_name: str, inputs: Sequence[Tensor], attrs: dict):
        """Ship the op to the owning worker and wait for its outputs.

        Ops issued *from* the worker's own thread (the body of a remote
        graph-function call) dispatch directly — re-enqueueing would
        deadlock the single-threaded request loop.

        Idempotent ops are retried under the module retry policy when
        the worker is still up and the failure was transient; each
        retry is reported to the dispatch core's interceptors.
        """
        server = self._server
        if threading.current_thread() is server._thread:
            return server._dispatch(self, op_name, list(inputs), attrs)
        inputs = list(inputs)
        policy = _retry_policy
        if policy is None or policy.max_attempts <= 1 or not _is_idempotent(op_name):
            return server.run_op(self, op_name, inputs, attrs)
        attempt = 1
        while True:
            try:
                return server.run_op(self, op_name, inputs, attrs)
            except policy.retryable as exc:
                # Retrying a worker that is gone for good cannot help;
                # surface the failure to the caller (e.g. the strategy's
                # degradation logic) immediately.
                if attempt >= policy.max_attempts or not server.is_running:
                    raise
                dispatch.core.notify_retry(op_name, attrs, inputs, self, attempt, exc)
                time.sleep(policy.backoff_seconds(attempt))
                attempt += 1

    def execute_op_async(self, op_name: str, inputs: Sequence[Tensor], attrs: dict):
        """Ship the op to the worker without waiting for the reply.

        The async eager dispatcher calls this instead of
        :meth:`execute_op`: remote execution pipelines the same way
        local streams do, with the worker's reply future wrapped in the
        shared :class:`~repro.runtime.stream.PendingHandle` type (the
        paper's §4.5 remote tensors stay on the remote device either
        way).  Returns ``None`` when pipelining is not possible — the
        caller then falls back to the synchronous path, which produces
        the proper error or direct dispatch.

        Deadline and retry semantics match :meth:`execute_op`: the
        deadline clock starts at submission, and when the reply is an
        error the handle's recovery callback re-runs idempotent ops
        synchronously under the module retry policy (reporting each
        retry through ``dispatch.core.notify_retry``).
        """
        from repro.runtime.stream import PendingHandle

        server = self._server
        if threading.current_thread() is server._thread:
            # A nested remote call on the single-threaded request loop
            # must dispatch directly; queueing would deadlock it.
            return None
        inputs = list(inputs)
        try:
            future = server.submit_op(self, op_name, inputs, attrs)
        except UnavailableError:
            return None  # the synchronous path raises the clean error

        def recover(exc: BaseException):
            policy = _retry_policy
            if (
                policy is None
                or policy.max_attempts <= 1
                or not _is_idempotent(op_name)
                or not isinstance(exc, policy.retryable)
                or not server.is_running
            ):
                raise exc
            attempt = 1
            while True:
                dispatch.core.notify_retry(op_name, attrs, inputs, self, attempt, exc)
                time.sleep(policy.backoff_seconds(attempt))
                attempt += 1
                try:
                    return server.run_op(self, op_name, inputs, attrs)
                except policy.retryable as retry_exc:
                    exc = retry_exc
                    if attempt >= policy.max_attempts or not server.is_running:
                        raise

        return PendingHandle.from_future(
            op_name, future, deadline_ms=context.rpc_deadline_ms, recover=recover
        )


# -- worker servers ---------------------------------------------------------


@dataclass
class _Request:
    """One queue-crossing request: a thunk plus its reply future."""

    op_name: str
    fn: Callable
    future: Future = field(default_factory=Future)


def _fail_future(future: Future, exc: BaseException) -> None:
    """Complete ``future`` with ``exc``, tolerating a client that already
    cancelled it (its deadline fired while the request sat in the queue)."""
    if future.cancelled():
        return
    try:
        future.set_exception(exc)
    except InvalidStateError:
        pass  # lost the race with a concurrent cancel


class WorkerServer:
    """One cluster task: a device set plus a request-processing thread."""

    def __init__(
        self,
        job: str,
        task: int,
        num_gpus: int = 0,
        address: Optional[str] = None,
    ) -> None:
        self.job = job
        self.task = task
        self.address = address or f"local://{job}/{task}"
        self.devices: dict[str, RemoteDevice] = {}
        self._add_device("CPU", 0)
        for i in range(num_gpus):
            self._add_device("GPU", i)
        self._requests: queue.Queue = queue.Queue()
        self._ops_served = 0
        self._stats_lock = threading.Lock()
        # Serializes submissions against shutdown: `_running` may only
        # flip to False under this lock, so a request admitted under it
        # is either served or failed by the shutdown drain — never left
        # on the queue with nobody to complete its future.
        self._lifecycle_lock = threading.Lock()
        self._fault_hook: Optional[Callable[[str], Optional[str]]] = None
        self._shutdown_reason: Optional[str] = None
        self._thread = threading.Thread(
            target=self._serve, name=f"worker-{job}-{task}", daemon=True
        )
        self._running = True
        self._thread.start()

    def _add_device(self, device_type: str, index: int) -> None:
        spec = DeviceSpec(
            job=self.job,
            replica=0,
            task=self.task,
            device_type=device_type,
            device_index=index,
        )
        self.devices[spec.to_string()] = RemoteDevice(spec, self)

    # -- request loop -------------------------------------------------------
    def _serve(self) -> None:
        while True:
            item = self._requests.get()
            if item is None:
                return
            if not item.future.set_running_or_notify_cancel():
                continue  # the client's deadline fired; skip the work
            if not self._running:
                # Picked up while a kill/shutdown drain is in progress.
                item.future.set_exception(self._unavailable_error())
                continue
            hook = self._fault_hook
            if hook is not None:
                try:
                    action = hook(item.op_name)
                except BaseException as exc:  # noqa: BLE001 - crosses threads
                    item.future.set_exception(exc)
                    continue
                if action == DROP_REQUEST:
                    continue  # never answered; the client's deadline fires
                if not self._running:
                    # The hook killed this worker (chaos testing).
                    item.future.set_exception(self._unavailable_error())
                    continue
            try:
                item.future.set_result(item.fn())
            except BaseException as exc:  # noqa: BLE001 - crosses threads
                item.future.set_exception(exc)

    def _submit(self, op_name: str, fn: Callable) -> Future:
        request = _Request(op_name, fn)
        with self._lifecycle_lock:
            if not self._running:
                raise self._unavailable_error()
            self._requests.put(request)
        return request.future

    def submit_op(
        self,
        device: RemoteDevice,
        op_name: str,
        inputs: list[Tensor],
        attrs: dict,
    ) -> Future:
        """Enqueue one operation and return its reply future immediately.

        The non-blocking half of :meth:`run_op`, used directly by the
        async eager dispatcher (via
        :meth:`RemoteDevice.execute_op_async`) to pipeline remote ops.
        Raises :class:`~repro.framework.errors.UnavailableError` when
        the worker is shut down.
        """
        return self._submit(
            op_name, lambda: self._dispatch(device, op_name, inputs, attrs)
        )

    def run_op(
        self,
        device: RemoteDevice,
        op_name: str,
        inputs: list[Tensor],
        attrs: dict,
        deadline_ms: Optional[float] = None,
    ) -> list[Tensor]:
        """Enqueue one operation; blocks until the worker replies.

        Args:
            deadline_ms: per-request deadline; defaults to
                ``context.rpc_deadline_ms``.  When the worker does not
                answer in time, raises
                :class:`~repro.framework.errors.DeadlineExceededError`
                instead of hanging.  Pass ``0`` (or set the context
                default to ``None``) to wait without a deadline.
        """
        if deadline_ms is None:
            deadline_ms = context.rpc_deadline_ms
        elif deadline_ms <= 0:
            deadline_ms = None
        future = self.submit_op(device, op_name, inputs, attrs)
        timeout = None if deadline_ms is None else deadline_ms / 1000.0
        try:
            return future.result(timeout)
        except DeadlineExceededError:
            raise  # a nested remote call timed out; keep its message
        except _FutureTimeoutError:
            future.cancel()
            raise DeadlineExceededError(
                f"Operation {op_name!r} on worker {self.address!r} did not "
                f"complete within its {deadline_ms:g} ms deadline"
            ) from None
        except CancelledError:
            raise self._unavailable_error() from None

    def _dispatch(
        self, device: RemoteDevice, op_name: str, inputs: list[Tensor], attrs: dict
    ) -> list[Tensor]:
        with self._stats_lock:
            self._ops_served += 1
        if registry.has_kernel(op_name, device.device_type):
            kernel = registry.get_kernel(op_name, device.device_type)
        elif registry.has_kernel(op_name, "CPU"):
            kernel = registry.get_kernel(op_name, "CPU")
        else:
            raise NotFoundError(
                f"Worker {self.address!r} has no kernel for {op_name!r}"
            )
        arrays = []
        for t in inputs:
            if t.device_object is not device and t.dtype not in (
                dtypes.resource,
                dtypes.variant,
            ):
                # Input transfer onto the worker's device.
                buf = device.allocate(np.asarray(t.numpy()))
                t = Tensor._from_buffer(buf, t.dtype, device)
            arrays.append(t._array)
        device.count_kernel_launch()
        results = kernel(arrays, attrs, device)
        if results is None:
            results = []
        elif isinstance(results, (Tensor, np.ndarray)) or np.isscalar(results):
            results = [results]
        outputs = []
        for r in results:
            if isinstance(r, Tensor):
                outputs.append(r)
            else:
                arr = r if isinstance(r, np.ndarray) else np.asarray(r)
                buf = device.wrap_output(arr)
                outputs.append(
                    Tensor._from_buffer(buf, dtypes.as_dtype(arr.dtype), device)
                )
        return outputs

    @property
    def ops_served(self) -> int:
        with self._stats_lock:
            return self._ops_served

    @property
    def is_running(self) -> bool:
        return self._running

    # -- health -------------------------------------------------------------
    def ping(self, timeout_ms: float = 1000.0) -> bool:
        """Round-trip a no-op request through the worker's queue.

        Returns False when the worker is shut down, killed, stalled, or
        otherwise unable to answer within ``timeout_ms``.  The ping
        passes through any installed fault hook, so injected stalls and
        drops make the worker report unhealthy — exactly what a health
        check is for.
        """
        if not self._running:
            return False
        try:
            future = self._submit(HEALTH_CHECK_OP, lambda: True)
            return future.result(timeout_ms / 1000.0) is True
        except BaseException:  # noqa: BLE001 - health checks never raise
            return False

    # -- fault injection ----------------------------------------------------
    def install_fault_hook(
        self, hook: Optional[Callable[[str], Optional[str]]]
    ) -> None:
        """Install (or with ``None`` remove) a per-request fault hook.

        The hook runs on the worker thread before each request with the
        op name; it may sleep (inject latency), raise (fail the
        request), return :data:`DROP_REQUEST` (never answer), or call
        :meth:`kill` (simulate a crash).  See
        :mod:`repro.distribute.fault_injection` for the high-level API.
        """
        self._fault_hook = hook

    # -- lifecycle ----------------------------------------------------------
    def _unavailable_error(self) -> UnavailableError:
        reason = self._shutdown_reason or "shut down"
        return UnavailableError(f"Worker {self.address!r} is {reason}")

    def _terminate(self, reason: str) -> bool:
        """Stop accepting work and fail everything pending.

        Returns True for the call that performed the termination, False
        for idempotent repeats.
        """
        with self._lifecycle_lock:
            if not self._running:
                return False
            self._running = False
            self._shutdown_reason = reason
            # Drain pending requests: each future gets a clear error
            # instead of waiting forever on a dead server.  The serve
            # thread may race us for individual items; whichever side
            # gets an item completes its future (for the serve thread,
            # also with UnavailableError once `_running` is False).
            while True:
                try:
                    item = self._requests.get_nowait()
                except queue.Empty:
                    break
                if item is not None:
                    _fail_future(item.future, self._unavailable_error())
            self._requests.put(None)  # stop the serve loop
        return True

    def shutdown(self) -> None:
        """Stop the worker; idempotent, and never leaves callers hanging.

        Pending and concurrently-submitted requests fail with
        :class:`~repro.framework.errors.UnavailableError`.  Raises
        :class:`~repro.framework.errors.InternalError` if the serve
        thread does not terminate within 5 seconds (e.g. a wedged
        kernel), so deadlocks surface instead of leaking threads.
        """
        self._terminate("shut down")
        if threading.current_thread() is self._thread:
            return  # self-shutdown from a served op; the loop exits next
        self._thread.join(timeout=5)
        if self._thread.is_alive():
            raise InternalError(
                f"Worker {self.address!r} serve thread did not terminate "
                "within 5 s of shutdown; a kernel is likely wedged"
            )

    def kill(self) -> None:
        """Simulate an abrupt worker crash (fault injection).

        Like :meth:`shutdown` but does not wait for the serve thread:
        pending requests fail with ``UnavailableError`` and in-flight
        clients see their deadline expire or an error, the same
        observable behaviour as a remote task dying.
        """
        self._terminate("dead (killed)")

    def __repr__(self) -> str:
        return f"<WorkerServer /job:{self.job}/task:{self.task} ({len(self.devices)} devices)>"


# -- cluster wiring ---------------------------------------------------------

_active_workers: list[WorkerServer] = []
_worker_lock = threading.Lock()


def connect_to_cluster(cluster_spec, gpus_per_worker: int = 0) -> list[WorkerServer]:
    """Bring up a worker server per task and expose their devices.

    After this call, remote device names like
    ``/job:training/task:2/device:GPU:0`` resolve through the runtime's
    device lookup, so ``with repro.device(name):`` places operations on
    the worker (paper §4.5: "the user uses the same syntax as for local
    devices").
    """
    workers: list[WorkerServer] = []
    for job in cluster_spec.jobs:
        for task in range(cluster_spec.num_tasks(job)):
            workers.append(
                WorkerServer(
                    job,
                    task,
                    num_gpus=gpus_per_worker,
                    address=cluster_spec.task_address(job, task),
                )
            )
    with _worker_lock:
        _active_workers.extend(workers)
    context.set_remote_device_resolver(_resolve_remote_device)
    return workers


def _resolve_remote_device(full_name: str) -> Optional[Device]:
    with _worker_lock:
        for worker in _active_workers:
            device = worker.devices.get(full_name)
            if device is not None:
                return device
    return None


def shutdown_cluster(workers: Optional[Sequence[WorkerServer]] = None) -> None:
    """Stop workers and remove their devices from the runtime.

    Args:
        workers: the servers to stop (e.g. one ``connect_to_cluster``
            result when several clusters are up); ``None`` stops every
            active worker.  The remote-device resolver stays installed
            until the last active worker is gone, so other clusters keep
            resolving.
    """
    with _worker_lock:
        if workers is None:
            stopping = list(_active_workers)
            _active_workers.clear()
        else:
            stopping = [w for w in workers if w in _active_workers]
            for w in stopping:
                _active_workers.remove(w)
        last_cluster_gone = not _active_workers
    for worker in stopping:
        worker.shutdown()
    if last_cluster_gone:
        context.set_remote_device_resolver(None)
