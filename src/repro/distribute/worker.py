"""Worker servers and remote devices.

A :class:`WorkerServer` owns the devices of one cluster task and
processes operation requests on a dedicated thread.  Placing an op on a
remote device name routes it through :meth:`RemoteDevice.execute_op`:
the request (op name, inputs, attrs) crosses the worker's queue, the
worker dispatches the kernel on its own thread, and the outputs come
back as tensors *resident on the remote device* — "tensors produced as
the result of running an operation on a remote device stay on the
remote device.  Users can then either perform more operations on these
tensors or copy them to the central server" (paper §4.5).

Whole graph functions execute remotely the same way, because a graph
function call is just the ``PartitionedCall`` operation.  Concurrent
computations on different workers proceed in parallel (each worker has
its own request loop), matching §4.5's note that developers start
communicating computations concurrently, e.g. with Python threads.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Optional, Sequence

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import FailedPreconditionError, NotFoundError
from repro.ops import registry
from repro.runtime.context import context
from repro.runtime.device import Device, DeviceSpec
from repro.tensor import Tensor

__all__ = ["WorkerServer", "RemoteDevice", "connect_to_cluster", "shutdown_cluster"]


def _remote_op_runner(device: "RemoteDevice", op_name: str, inputs, attrs: dict):
    """The Device.dispatch protocol hook shipping ops to the worker."""
    return device.execute_op(op_name, list(inputs), attrs)


class RemoteDevice(Device):
    """A device owned by a worker; operations are shipped to its server."""

    def __init__(self, spec: DeviceSpec, server: "WorkerServer") -> None:
        super().__init__(spec)
        self._server = server
        self.set_op_runner(_remote_op_runner)

    @property
    def server(self) -> "WorkerServer":
        return self._server

    def execute_op(self, op_name: str, inputs: Sequence[Tensor], attrs: dict):
        """Ship the op to the owning worker and wait for its outputs.

        Ops issued *from* the worker's own thread (the body of a remote
        graph-function call) dispatch directly — re-enqueueing would
        deadlock the single-threaded request loop.
        """
        if threading.current_thread() is self._server._thread:
            return self._server._dispatch(self, op_name, list(inputs), attrs)
        return self._server.run_op(self, op_name, list(inputs), attrs)


class WorkerServer:
    """One cluster task: a device set plus a request-processing thread."""

    def __init__(
        self,
        job: str,
        task: int,
        num_gpus: int = 0,
        address: Optional[str] = None,
    ) -> None:
        self.job = job
        self.task = task
        self.address = address or f"local://{job}/{task}"
        self.devices: dict[str, RemoteDevice] = {}
        self._add_device("CPU", 0)
        for i in range(num_gpus):
            self._add_device("GPU", i)
        self._requests: queue.Queue = queue.Queue()
        self._ops_served = 0
        self._thread = threading.Thread(
            target=self._serve, name=f"worker-{job}-{task}", daemon=True
        )
        self._running = True
        self._thread.start()

    def _add_device(self, device_type: str, index: int) -> None:
        spec = DeviceSpec(
            job=self.job,
            replica=0,
            task=self.task,
            device_type=device_type,
            device_index=index,
        )
        self.devices[spec.to_string()] = RemoteDevice(spec, self)

    # -- request loop -------------------------------------------------------
    def _serve(self) -> None:
        while True:
            item = self._requests.get()
            if item is None:
                return
            fn, future = item
            try:
                future.set_result(fn())
            except BaseException as exc:  # noqa: BLE001 - crosses threads
                future.set_exception(exc)

    def run_op(
        self, device: RemoteDevice, op_name: str, inputs: list[Tensor], attrs: dict
    ) -> list[Tensor]:
        """Enqueue one operation; blocks until the worker replies."""
        if not self._running:
            raise FailedPreconditionError(
                f"Worker {self.address!r} has been shut down"
            )
        future: Future = Future()
        self._requests.put((lambda: self._dispatch(device, op_name, inputs, attrs), future))
        return future.result()

    def _dispatch(
        self, device: RemoteDevice, op_name: str, inputs: list[Tensor], attrs: dict
    ) -> list[Tensor]:
        self._ops_served += 1
        if registry.has_kernel(op_name, device.device_type):
            kernel = registry.get_kernel(op_name, device.device_type)
        elif registry.has_kernel(op_name, "CPU"):
            kernel = registry.get_kernel(op_name, "CPU")
        else:
            raise NotFoundError(
                f"Worker {self.address!r} has no kernel for {op_name!r}"
            )
        arrays = []
        for t in inputs:
            if t.device_object is not device and t.dtype not in (
                dtypes.resource,
                dtypes.variant,
            ):
                # Input transfer onto the worker's device.
                buf = device.allocate(np.asarray(t.numpy()))
                t = Tensor._from_buffer(buf, t.dtype, device)
            arrays.append(t._array)
        device.count_kernel_launch()
        results = kernel(arrays, attrs, device)
        if results is None:
            results = []
        elif isinstance(results, (Tensor, np.ndarray)) or np.isscalar(results):
            results = [results]
        outputs = []
        for r in results:
            if isinstance(r, Tensor):
                outputs.append(r)
            else:
                arr = r if isinstance(r, np.ndarray) else np.asarray(r)
                buf = device.wrap_output(arr)
                outputs.append(
                    Tensor._from_buffer(buf, dtypes.as_dtype(arr.dtype), device)
                )
        return outputs

    @property
    def ops_served(self) -> int:
        return self._ops_served

    def shutdown(self) -> None:
        if self._running:
            self._running = False
            self._requests.put(None)
            self._thread.join(timeout=5)

    def __repr__(self) -> str:
        return f"<WorkerServer /job:{self.job}/task:{self.task} ({len(self.devices)} devices)>"


_active_workers: list[WorkerServer] = []
_worker_lock = threading.Lock()


def connect_to_cluster(cluster_spec, gpus_per_worker: int = 0) -> list[WorkerServer]:
    """Bring up a worker server per task and expose their devices.

    After this call, remote device names like
    ``/job:training/task:2/device:GPU:0`` resolve through the runtime's
    device lookup, so ``with repro.device(name):`` places operations on
    the worker (paper §4.5: "the user uses the same syntax as for local
    devices").
    """
    workers: list[WorkerServer] = []
    for job in cluster_spec.jobs:
        for task in range(cluster_spec.num_tasks(job)):
            workers.append(
                WorkerServer(
                    job,
                    task,
                    num_gpus=gpus_per_worker,
                    address=cluster_spec.task_address(job, task),
                )
            )
    with _worker_lock:
        _active_workers.extend(workers)
    context.set_remote_device_resolver(_resolve_remote_device)
    return workers


def _resolve_remote_device(full_name: str) -> Optional[Device]:
    with _worker_lock:
        for worker in _active_workers:
            device = worker.devices.get(full_name)
            if device is not None:
                return device
    return None


def shutdown_cluster() -> None:
    """Stop all workers and remove their devices from the runtime."""
    with _worker_lock:
        workers = list(_active_workers)
        _active_workers.clear()
    for worker in workers:
        worker.shutdown()
    context.set_remote_device_resolver(None)
