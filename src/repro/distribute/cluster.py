"""Cluster specifications.

"The remote devices are identified by application-level names.  The
names contain the job name, task inside the job, as well as the
specific device available for the task.  For example,
``/job:training/task:2/device:GPU:0``.  When a server is brought up to
be a part of a cluster, it is given the mapping from the
application-level names to specific server instances identified by DNS
names or IP addresses" (paper §4.5).

Our servers are in-process, so the "address" of a task is a symbolic
endpoint string; the mapping machinery (job -> task -> endpoint) is the
same shape a gRPC deployment would use.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.framework.errors import InvalidArgumentError

__all__ = ["ClusterSpec"]


class ClusterSpec:
    """A mapping from job names to task endpoints."""

    def __init__(self, jobs: Mapping[str, Union[int, Sequence[str]]]) -> None:
        """Args:
            jobs: dict mapping a job name to either a task count (int,
                synthesizing local endpoints) or an explicit list of
                endpoint strings.
        """
        self._jobs: dict[str, list[str]] = {}
        for job, tasks in jobs.items():
            if isinstance(tasks, int):
                self._jobs[job] = [f"local://{job}/{i}" for i in range(tasks)]
            else:
                self._jobs[job] = list(tasks)
            if not self._jobs[job]:
                raise InvalidArgumentError(f"Job {job!r} has no tasks")

    @property
    def jobs(self) -> list[str]:
        return sorted(self._jobs)

    def num_tasks(self, job: str) -> int:
        return len(self._task_list(job))

    def task_address(self, job: str, task: int) -> str:
        tasks = self._task_list(job)
        if not 0 <= task < len(tasks):
            raise InvalidArgumentError(
                f"Job {job!r} has {len(tasks)} tasks; task {task} does not exist"
            )
        return tasks[task]

    def _task_list(self, job: str) -> list[str]:
        try:
            return self._jobs[job]
        except KeyError:
            raise InvalidArgumentError(f"Unknown job {job!r}") from None

    def device_name(self, job: str, task: int, device_type: str = "CPU", index: int = 0) -> str:
        """The application-level device name for a task's device."""
        self.task_address(job, task)
        return f"/job:{job}/replica:0/task:{task}/device:{device_type.upper()}:{index}"

    def as_dict(self) -> dict[str, list[str]]:
        return {job: list(tasks) for job, tasks in self._jobs.items()}

    def __repr__(self) -> str:
        return f"ClusterSpec({self.as_dict()!r})"
