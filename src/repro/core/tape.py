"""Gradient tapes (paper §4.2).

"The main user-visible concept in the gradient API is a tape.  If a
tape watches a value, operations taking this value as an input will be
recorded. ... Tapes are composable data structures: multiple tapes can
be active simultaneously, and higher-order gradients can [be] computed
by having one tape recording while another tape computes a gradient."

Recording is mode-agnostic: entries hold whatever tensors the executor
produced — concrete ones under imperative execution, symbolic ones
inside a trace — so the gradient computation (itself a composition of
primitive ops) can run eagerly or be staged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.framework import nest
from repro.framework.errors import FailedPreconditionError, InvalidArgumentError
from repro.framework import dtypes
from repro.runtime import records
from repro.tensor import Tensor, TensorBase

__all__ = ["GradientTape", "OpRecord"]


@dataclass
class OpRecord:
    """One recorded operation: what ran, on what, producing what."""

    op_name: str
    attrs: dict
    inputs: list
    outputs: list
    backward_function: Optional[Callable] = None


def _tensor_id(value) -> int:
    """Identity key for watching: variables key by their handle."""
    handle = getattr(value, "handle", None)
    if handle is not None and not isinstance(value, TensorBase):
        return id(handle)
    return id(value)


class GradientTape:
    """Records operations for reverse-mode differentiation.

    Args:
        persistent: allow multiple ``gradient()`` calls (default: the
            tape is consumed by its first use).
        watch_accessed_variables: automatically watch any variable read
            while the tape is active (paper Listing 2), so model code
            needs no explicit ``watch`` calls.
    """

    def __init__(
        self,
        persistent: bool = False,
        watch_accessed_variables: bool = True,
    ) -> None:
        self._persistent = persistent
        self._watch_accessed_variables = watch_accessed_variables
        self._watched: set[int] = set()
        self._records: list[OpRecord] = []
        self._watched_variables: dict[int, object] = {}
        self._recording = False
        self._paused = 0
        self._used = False

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "GradientTape":
        if self._recording:
            raise FailedPreconditionError("Tape is already recording")
        records.push_recorder(self)
        self._recording = True
        return self

    def __exit__(self, *exc_info) -> None:
        records.pop_recorder(self)
        self._recording = False

    # -- recorder protocol (called by the executor) ----------------------------
    def should_record(self, inputs: Sequence) -> bool:
        if self._paused:
            return False
        for t in inputs:
            if id(t) in self._watched:
                return True
            if (
                self._watch_accessed_variables
                and isinstance(t, TensorBase)
                and t.dtype == dtypes.resource
            ):
                return True
        return False

    def record(
        self,
        op_name: str,
        attrs: dict,
        inputs: Sequence,
        outputs: Sequence,
        backward_function: Optional[Callable] = None,
    ) -> None:
        if self._paused:
            return
        if op_name == "ReadVariableOp":
            self._note_variable_read(inputs[0])
        differentiable = [
            t for t in outputs if isinstance(t, TensorBase) and t.dtype.is_differentiable
        ]
        handles = [
            t
            for t in outputs
            if isinstance(t, TensorBase) and t.dtype in (dtypes.resource, dtypes.variant)
        ]
        if not differentiable and not handles:
            return
        self._records.append(
            OpRecord(op_name, attrs, list(inputs), list(outputs), backward_function)
        )
        for t in differentiable:
            self._watched.add(id(t))
        for t in handles:
            self._watched.add(id(t))

    def _note_variable_read(self, handle) -> None:
        self._watched.add(id(handle))
        var = None
        if isinstance(handle, Tensor) and handle.dtype == dtypes.resource:
            var = handle.resource_value()
        if var is not None:
            self._watched_variables[id(handle)] = var

    # -- user API ------------------------------------------------------------
    def watch(self, value) -> None:
        """Start tracking ``value`` (a tensor or variable) on this tape."""
        if not isinstance(value, TensorBase) and not hasattr(value, "handle"):
            raise InvalidArgumentError(f"Cannot watch non-tensor value {value!r}")
        self._watched.add(_tensor_id(value))
        handle = getattr(value, "handle", None)
        if handle is not None and not isinstance(value, TensorBase):
            self._watched_variables[id(handle)] = value

    def watched_variables(self) -> list:
        """Variables the tape is watching, in first-read order."""
        return list(self._watched_variables.values())

    class _StopRecording:
        def __init__(self, tape: "GradientTape") -> None:
            self._tape = tape

        def __enter__(self):
            self._tape._paused += 1
            return self

        def __exit__(self, *exc_info) -> None:
            self._tape._paused -= 1

    def stop_recording(self):
        """Context manager suspending recording on this tape only."""
        return GradientTape._StopRecording(self)

    def reset(self) -> None:
        """Discard everything recorded so far."""
        self._records.clear()
        self._watched.clear()
        self._watched_variables.clear()
        self._used = False

    def gradient(
        self,
        target,
        sources,
        output_gradients=None,
        unconnected_gradients: str = "none",
    ):
        """Differentiate ``target`` with respect to ``sources``.

        Both arguments may be arbitrary nests of tensors/variables; the
        result matches the structure of ``sources``.  May be called
        while the tape is still recording (the computation pauses this
        tape but is visible to *outer* tapes, enabling higher-order
        gradients — paper Listing 1).
        """
        if self._used and not self._persistent:
            raise FailedPreconditionError(
                "A non-persistent GradientTape can only be used to compute "
                "one set of gradients; create it with persistent=True"
            )
        self._used = True
        from repro.core import backprop

        target_flat = [t for t in nest.flatten(target)]
        if output_gradients is None:
            out_grads_flat = [None] * len(target_flat)
        else:
            out_grads_flat = list(nest.flatten(output_gradients))
            if len(out_grads_flat) != len(target_flat):
                raise InvalidArgumentError(
                    "output_gradients must match the structure of target"
                )
        source_flat = nest.flatten(sources)
        # Gradient computation is a synchronization point of the async
        # and lazy eager modes: the forward ops this tape recorded may
        # still be pending on execution streams or in an unflushed lazy
        # trace, and a deferred forward error must surface here rather
        # than mid-backward-sweep.
        from repro.runtime.context import context as _runtime_context

        if _runtime_context.executor_mode != "sync" and _runtime_context.executing_eagerly():
            _runtime_context.sync()
        with self.stop_recording():
            result_flat = backprop.imperative_grad(
                self._records,
                target_flat,
                source_flat,
                out_grads_flat,
                unconnected_gradients=unconnected_gradients,
            )
        if not self._persistent:
            self._records = []
            self._watched = set()
        return nest.pack_sequence_as(sources, result_flat)

    def jacobian(self, target, source):
        """Dense Jacobian of a vector ``target`` w.r.t. ``source``.

        Computed row by row with repeated backward passes (requires a
        persistent tape).
        """
        from repro.ops import array_ops

        if not self._persistent:
            raise FailedPreconditionError("jacobian() requires a persistent tape")
        n = target.shape.num_elements()
        if n is None:
            raise InvalidArgumentError("jacobian() requires a static target shape")
        flat_target = target if target.shape.rank == 1 else None
        rows = []
        import numpy as np

        for i in range(n):
            seed = np.zeros(n, dtype=target.dtype.as_numpy_dtype)
            seed[i] = 1.0
            seed_t = array_ops.constant(seed.reshape(tuple(target.shape.as_list())))
            rows.append(self.gradient(target, source, output_gradients=seed_t))
        return array_ops.stack(rows, axis=0)
