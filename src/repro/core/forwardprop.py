"""Forward-mode automatic differentiation (dual numbers over the tape seam).

Reverse mode records now and differentiates later; forward mode pushes a
*tangent* (directional derivative) through every operation as it runs.
`ForwardAccumulator` is a recorder on the same stack the `GradientTape`
uses, so the two compose freely: running an accumulator *outside* a tape
whose `gradient()` call it can observe yields forward-over-reverse
Hessian-vector products without ever materializing a Jacobian (the
tape-as-delimited-continuation formulation of PAPERS.md: *Demystifying
Differentiable Programming*).

Rather than duplicating a rule table, the Jacobian-vector product of an
op is derived from the existing *reverse* registry: the VJP is linear in
its seed, so differentiating ``<vjp(u), v>`` with respect to ``u`` on an
inner tape recovers ``J v`` exactly (double-backward trick).  Ops with a
custom ``backward_function`` (staged calls, rematerialized segments) go
through the same path, which is what makes ``jvp`` work across the
eager/staged boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.framework import dtypes, nest
from repro.framework.errors import (
    FailedPreconditionError,
    InvalidArgumentError,
    UnimplementedError,
)
from repro.runtime import records
from repro.tensor import TensorBase
from repro.core.tape import OpRecord, _tensor_id

__all__ = ["ForwardAccumulator", "jvp", "hvp", "jacobian"]


def _pack_tangent(tangent, primal):
    """Broadcast a tangent up to the primal's shape when they differ.

    Direct rules can hand back an operand-shaped tangent for a
    broadcasting op; downstream consumers expect output shape.
    """
    from repro.ops import array_ops

    if tangent is None:
        return None
    if tangent.shape == primal.shape:
        return tangent
    return tangent + array_ops.zeros_like(primal)


def _jvp_identity(rec, tangents):
    return [_pack_tangent(tangents[0], rec.outputs[0])]


def _jvp_addn(rec, tangents):
    from repro.ops import math_ops

    live = [t for t in tangents if t is not None]
    if not live:
        return [None]
    out = live[0] if len(live) == 1 else math_ops.add_n(live)
    return [_pack_tangent(out, rec.outputs[0])]


# Direct rules for trivially-linear ops where the double-backward detour
# is pure overhead.  Everything else derives its JVP from the reverse
# registry (see _generic_jvp).
_DIRECT_JVP = {
    "Identity": _jvp_identity,
    "StopGradient": lambda rec, tangents: [None],
    "AddN": _jvp_addn,
}


class ForwardAccumulator:
    """Computes Jacobian-vector products as the forward pass runs.

    Args:
        primals: tensor(s)/variable(s) to differentiate with respect to.
        tangents: matching structure of direction vectors.

    Usage::

        acc = ForwardAccumulator(x, v)
        with acc:
            y = f(x)
        dy = acc.jvp(y)   # = J_f(x) @ v

    Accumulators nest with tapes in either order; ``tape.gradient``
    pauses only the tape, so an *enclosing* accumulator sees the
    backward sweep and ``acc.jvp(grads)`` is a Hessian-vector product.
    """

    def __init__(self, primals=None, tangents=None) -> None:
        self._tangents: dict[int, TensorBase] = {}
        # Keep every tensor whose id() appears as a key alive: a
        # recycled id must never alias a dead tangent.
        self._retained: list = []
        self._paused = 0
        self._recording = False
        if primals is not None or tangents is not None:
            flat_p = nest.flatten(primals)
            flat_t = nest.flatten(tangents)
            if len(flat_p) != len(flat_t):
                raise InvalidArgumentError(
                    "primals and tangents must have matching structures; got "
                    f"{len(flat_p)} primals and {len(flat_t)} tangents"
                )
            for p, t in zip(flat_p, flat_t):
                self.watch(p, t)

    # -- context manager ------------------------------------------------------
    def __enter__(self) -> "ForwardAccumulator":
        if self._recording:
            raise FailedPreconditionError("ForwardAccumulator is already active")
        records.push_recorder(self)
        self._recording = True
        return self

    def __exit__(self, *exc_info) -> None:
        records.pop_recorder(self)
        self._recording = False

    # -- user API -------------------------------------------------------------
    def watch(self, primal, tangent) -> None:
        """Associate ``tangent`` as the directional derivative of ``primal``."""
        from repro.ops import array_ops

        if not isinstance(primal, TensorBase) and not hasattr(primal, "handle"):
            raise InvalidArgumentError(f"Cannot watch non-tensor value {primal!r}")
        if not isinstance(tangent, TensorBase):
            dtype = getattr(primal, "dtype", None)
            if dtype is not None and not dtype.is_differentiable:
                dtype = None  # resource handles etc.: let constant() infer
            tangent = array_ops.constant(tangent, dtype=dtype)
        self._tangents[_tensor_id(primal)] = tangent
        self._retained.append(primal)
        self._retained.append(tangent)

    def jvp(self, value, unconnected_gradients: str = "none"):
        """The accumulated tangent of ``value`` (same nest structure).

        Unconnected values map to ``None``, or to zeros with
        ``unconnected_gradients="zero"``.
        """
        from repro.ops import array_ops

        if unconnected_gradients not in ("none", "zero"):
            raise InvalidArgumentError(
                f"Unknown unconnected_gradients: {unconnected_gradients!r}"
            )

        def lookup(v):
            t = self._tangents.get(_tensor_id(v))
            if t is None and unconnected_gradients == "zero":
                read = v.read_value() if hasattr(v, "read_value") else v
                return array_ops.zeros_like(read)
            return t

        return nest.map_structure(lookup, value)

    # -- recorder protocol (called by the executor) ----------------------------
    def should_record(self, inputs: Sequence) -> bool:
        if self._paused:
            return False
        return any(id(t) in self._tangents for t in inputs)

    def record(
        self,
        op_name: str,
        attrs: dict,
        inputs: Sequence,
        outputs: Sequence,
        backward_function=None,
    ) -> None:
        if self._paused:
            return
        in_tangents = [self._tangents.get(id(t)) for t in inputs]
        if not any(t is not None for t in in_tangents):
            return
        if op_name == "ReadVariableOp":
            # Tangent of the read value is the tangent watched on the
            # variable's handle; no arithmetic needed.
            if outputs and in_tangents[0] is not None:
                self._set_tangent(outputs[0], in_tangents[0])
            return
        diff_outputs = [
            t
            for t in outputs
            if isinstance(t, TensorBase)
            and (t.dtype.is_differentiable or t.dtype == dtypes.variant)
        ]
        if not diff_outputs:
            return
        rec = OpRecord(op_name, attrs, list(inputs), list(outputs), backward_function)
        self._paused += 1
        try:
            rule = _DIRECT_JVP.get(op_name) if backward_function is None else None
            if rule is not None:
                out_tangents = rule(rec, in_tangents)
            else:
                out_tangents = self._generic_jvp(rec, in_tangents)
        finally:
            self._paused -= 1
        for out, tangent in zip(outputs, out_tangents):
            if tangent is not None:
                self._set_tangent(out, tangent)

    def _set_tangent(self, primal, tangent) -> None:
        self._tangents[id(primal)] = tangent
        self._retained.append(primal)
        self._retained.append(tangent)

    def _generic_jvp(self, rec: OpRecord, in_tangents: list):
        """Derive the JVP from the op's reverse-mode rule.

        The VJP ``u -> backward(u)`` is linear, so with zero seeds ``u``
        watched on an inner tape, ``d/du <backward(u), v> = J v``.  The
        inner tape pauses nothing else: outer tapes and accumulators see
        these ops, which is what makes higher-order mixes work.
        """
        from repro.core.tape import GradientTape
        from repro.ops import array_ops, math_ops, registry

        diff_idx = [
            j
            for j, t in enumerate(rec.outputs)
            if isinstance(t, TensorBase) and t.dtype.is_differentiable
        ]
        if not diff_idx:
            return [None] * len(rec.outputs)
        if rec.backward_function is None and not registry.has_gradient(rec.op_name):
            raise UnimplementedError(
                f"No gradient registered for op {rec.op_name!r}; cannot derive "
                "a forward-mode JVP for it"
            )
        with GradientTape(persistent=False, watch_accessed_variables=False) as tape:
            seeds = [array_ops.zeros_like(rec.outputs[j]) for j in diff_idx]
            for s in seeds:
                tape.watch(s)
            aligned = [None] * len(rec.outputs)
            for j, s in zip(diff_idx, seeds):
                aligned[j] = s
            if rec.backward_function is not None:
                vjps = rec.backward_function(*aligned)
            else:
                vjps = registry.get_gradient_function(rec.op_name)(rec, *aligned)
            terms = []
            for w, v in zip(vjps, in_tangents):
                if w is None or v is None:
                    continue
                if not isinstance(w, TensorBase) or not w.dtype.is_differentiable:
                    continue
                terms.append(math_ops.reduce_sum(w * v))
            if not terms:
                return [None] * len(rec.outputs)
            total = terms[0] if len(terms) == 1 else math_ops.add_n(terms)
        # Not tape.gradient(): that is a sync point, and this sweep runs
        # once per recorded op — it must not flush pending lazy traces.
        from repro.core import backprop

        grads = backprop.imperative_grad(
            tape._records,
            [total],
            seeds,
            [None],
            unconnected_gradients="zero",
            sync=False,
        )
        out = [None] * len(rec.outputs)
        for j, g in zip(diff_idx, grads):
            out[j] = g
        return out


def jvp(f, primals, tangents):
    """Jacobian-vector product of ``f`` at ``primals`` along ``tangents``.

    Returns ``(outputs, output_tangents)`` with matching structures.
    """
    primals = list(primals) if isinstance(primals, (list, tuple)) else [primals]
    tangents = list(tangents) if isinstance(tangents, (list, tuple)) else [tangents]
    acc = ForwardAccumulator(primals, tangents)
    with acc:
        outputs = f(*primals)
    return outputs, acc.jvp(outputs)


def hvp(f, primals, vectors):
    """Hessian-vector product of the scalar objective ``f`` (forward-over-reverse).

    ``f(*primals)`` is reduced to a scalar with ``reduce_sum`` if needed;
    returns the list ``[H @ v for each primal]`` (``None`` where
    unconnected).
    """
    from repro.core.tape import GradientTape
    from repro.ops import math_ops

    primals = list(primals) if isinstance(primals, (list, tuple)) else [primals]
    vectors = list(vectors) if isinstance(vectors, (list, tuple)) else [vectors]
    acc = ForwardAccumulator(primals, vectors)
    with acc:
        with GradientTape(persistent=False, watch_accessed_variables=False) as tape:
            for p in primals:
                tape.watch(p)
            out = f(*primals)
            objective = math_ops.reduce_sum(out)
        # The tape pauses only itself here; the accumulator observes the
        # backward sweep, so the gradients carry tangents = H @ v.
        grads = tape.gradient(objective, primals)
    return [acc.jvp(g) if g is not None else None for g in grads]


def jacobian(f, primal):
    """Dense Jacobian of ``f`` at ``primal``, one forward pass per column.

    Returns a tensor of shape ``[*f(x).shape, *x.shape]``.  The
    reverse-mode counterpart (`GradientTape.jacobian`) runs one backward
    pass per *output* element; this one runs a forward pass per *input*
    element — pick whichever side is smaller.
    """
    from repro.ops import array_ops

    if not isinstance(primal, TensorBase):
        primal = array_ops.constant(primal)
    n = primal.shape.num_elements()
    if n is None:
        raise InvalidArgumentError("jacobian() requires a static input shape")
    cols = []
    out_shape = None
    for i in range(n):
        basis = np.zeros(n, dtype=primal.dtype.as_numpy_dtype)
        basis[i] = 1.0
        tangent = array_ops.constant(basis.reshape(tuple(primal.shape.as_list())))
        acc = ForwardAccumulator([primal], [tangent])
        with acc:
            out = f(primal)
        out_shape = out.shape
        col = acc.jvp(out, unconnected_gradients="zero")
        cols.append(array_ops.reshape(col, [-1]))
    stacked = array_ops.stack(cols, axis=1)  # [out_elems, in_elems]
    return array_ops.reshape(
        stacked, list(out_shape.as_list()) + list(primal.shape.as_list())
    )
