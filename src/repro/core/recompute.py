"""Gradient checkpointing (rematerialization).

``recompute_grad(f)`` trades compute for peak memory: the wrapped
function's intermediates are *not* saved for the backward pass.  Only
the segment's boundary values (its inputs, and the variables it reads)
stay live; the backward pass re-runs the forward segment to regenerate
what the gradient rules need, then sweeps it.

Two regimes, matching the library's two stages:

* **Imperative (sync/async/lazy eager):** the forward runs with all
  recorders suspended, so the tape holds a single ``RecomputeGrad``
  entry — boundary tensors only.  In lazy mode the dropped
  intermediates lose their last strong reference, so the flush planner
  dead-code-eliminates them from the segment's fetch set: checkpointing
  composes with implicit staging for free.  The backward function
  replays the Python callable under a fresh tape and sweeps it; replay
  ops are visible to outer tapes, so higher-order gradients work.

* **Staged (inside a trace):** the segment is traced once into its own
  :class:`~repro.graph.function.GraphFunction` and staged as a single
  ``RecomputeCall`` node (stateful, so no optimization pass folds,
  merges, or prunes it).  Its gradient rule *inline-replays* the callee
  into the graph being built — under ``build_forward_backward`` that is
  the backward section, so only the call's inputs become checkpoint
  boundaries (extra forward outputs) and the memory planner's last-use
  analysis frees each rematerialized region as soon as its gradients
  are done.  Replayed nodes carry a ``_remat_scope`` attr so CSE
  dedups *within* a recomputed region but never merges it back into
  the forward section (which would silently undo the checkpoint).
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.framework import dtypes, nest
from repro.framework.errors import FailedPreconditionError, InvalidArgumentError
from repro.ops.registry import register_gradient, register_kernel, register_op
from repro.runtime import records
from repro.runtime.context import context
from repro.tensor import Tensor, TensorBase, TensorSpec

__all__ = ["recompute_grad"]

_SCOPE_COUNTER = itertools.count()


# ---------------------------------------------------------------------------
# The staged call op
# ---------------------------------------------------------------------------

def _recompute_call_infer(inputs, attrs):
    fn = attrs["f"]
    return [TensorSpec(spec.shape, spec.dtype) for spec in fn.output_specs]


# Stateful + side-effecting for the same reason PartitionedCall is, and
# additionally so no pass can elide the checkpoint boundary itself.
register_op(
    "RecomputeCall",
    infer_fn=_recompute_call_infer,
    is_stateful=True,
    has_side_effects=True,
)


@register_kernel("RecomputeCall", device_types=("CPU", "GPU"))
def _recompute_call_kernel(inputs, attrs, device):
    fn = attrs["f"]
    tensors = [
        Tensor._from_buffer(arr, spec.dtype, device)
        for arr, spec in zip(inputs, fn.input_specs)
    ]
    return list(fn.run(tensors))


def _inline_replay(fn, inputs, scope):
    """Re-stage (or re-run) ``fn``'s body in the *current* context.

    Unlike ``PartitionedCall``'s backward — which calls a separate
    staged function — checkpointing wants the recomputed nodes spliced
    directly into the graph under construction, so the memory planner
    sees their lifetimes.  When staging, every replayed node is tagged
    with the ``_remat_scope`` attr to keep CSE from merging it back
    into identical forward nodes.
    """
    from repro.runtime.executor import execute

    if len(inputs) != len(fn.inputs):
        raise InvalidArgumentError(
            f"Recompute replay of {fn.name!r} got {len(inputs)} inputs for "
            f"{len(fn.inputs)} placeholders"
        )
    staging = not context.executing_eagerly()
    mapping: dict[int, object] = {}
    for old, new in zip(fn.inputs, inputs):
        mapping[id(old)] = new
    for node in fn.graph.nodes:
        if node.op_name == "Placeholder":
            if id(node.outputs[0]) not in mapping:
                raise FailedPreconditionError(
                    f"Recompute replay of {fn.name!r}: placeholder "
                    f"{node.name!r} is not bound to a call input"
                )
            continue
        node_inputs = [mapping[id(t)] for t in node.inputs]
        if node.op_name == "FusedElementwise":
            outs = node.attrs["region"].replay(node_inputs)
        else:
            attrs = node.attrs
            if staging:
                attrs = dict(attrs)
                attrs["_remat_scope"] = scope
            outs = execute(node.op_name, node_inputs, attrs)
        if not isinstance(outs, tuple):
            outs = (outs,) if outs is not None else ()
        for old, new in zip(node.outputs, outs):
            mapping[id(old)] = new
    return [mapping[id(t)] for t in fn.outputs]


@register_gradient("RecomputeCall")
def _recompute_call_grad(op, *grads):
    """Rematerialize the segment, then sweep it.

    Runs during backward construction (symbolically, into the graph
    being built) or during an eager sweep over a replayed graph; either
    way the recomputed nodes land *after* the forward section, so the
    only forward-section tensors the backward consumes are the call's
    own inputs — the checkpoint boundary.
    """
    from repro.core import backprop
    from repro.core.tape import GradientTape

    fn = op.attrs["f"]
    scope = f"{fn.name}#{next(_SCOPE_COUNTER)}"
    tape = GradientTape(persistent=True, watch_accessed_variables=False)
    with tape:
        for t in op.inputs:
            if isinstance(t, TensorBase):
                tape.watch(t)
        replay_outs = _inline_replay(fn, list(op.inputs), scope)
    targets, seeds = [], []
    for t, g in zip(replay_outs, grads):
        if g is not None:
            targets.append(t)
            seeds.append(g)
    if not targets:
        return [None] * len(op.inputs)
    return backprop.imperative_grad(
        tape._records, targets, list(op.inputs), seeds, sync=False
    )


# ---------------------------------------------------------------------------
# The user-facing transform
# ---------------------------------------------------------------------------

class _VariableWatcher:
    """A recorder that notes which variable handles a segment reads."""

    def __init__(self) -> None:
        self.handles: dict[int, TensorBase] = {}

    def __enter__(self) -> "_VariableWatcher":
        records.push_recorder(self)
        return self

    def __exit__(self, *exc_info) -> None:
        records.pop_recorder(self)

    def should_record(self, inputs) -> bool:
        return any(
            isinstance(t, TensorBase) and t.dtype == dtypes.resource for t in inputs
        )

    def record(self, op_name, attrs, inputs, outputs, backward_function=None) -> None:
        for t in inputs:
            if isinstance(t, TensorBase) and t.dtype == dtypes.resource:
                self.handles.setdefault(id(t), t)


def _split_tensors(args, kwargs):
    """Flatten the call structure, extracting tensor leaves.

    Returns (tensor leaves in flatten order, marked structure for
    re-binding placeholders at trace time).
    """
    from repro.core.tracing import TENSOR_MARKER

    template = (list(args), kwargs)
    flat = nest.flatten(template)
    tensors = [t for t in flat if isinstance(t, TensorBase)]
    marked = nest.pack_sequence_as(
        template,
        [TENSOR_MARKER if isinstance(t, TensorBase) else t for t in flat],
    )
    return tensors, (tuple(marked[0]), marked[1])


def _eager_checkpoint(f, args, kwargs):
    tensor_inputs, _ = _split_tensors(args, kwargs)
    watcher = _VariableWatcher()
    # Suspend every active recorder: the tape must not see (and thus
    # must not retain) the segment's intermediates.  The watcher is
    # pushed inside the suspension, so it alone observes the segment.
    with records.suspend():
        with watcher:
            outputs = f(*args, **kwargs)
    flat_outputs = [t for t in nest.flatten(outputs) if isinstance(t, TensorBase)]
    handles = list(watcher.handles.values())
    # Let watch_accessed_variables tapes mark the variables this segment
    # read — the record offer below only reaches tapes already watching
    # one of its inputs.
    for h in handles:
        records.record_operation("ReadVariableOp", {}, [h], [])
    all_inputs = list(tensor_inputs) + handles

    def backward(*out_grads):
        from repro.core import backprop
        from repro.core.tape import GradientTape

        tape = GradientTape(persistent=True, watch_accessed_variables=True)
        with tape:
            for t in tensor_inputs:
                tape.watch(t)
            replayed = f(*args, **kwargs)
        replay_flat = [
            t for t in nest.flatten(replayed) if isinstance(t, TensorBase)
        ]
        targets, seeds = [], []
        for t, g in zip(replay_flat, out_grads):
            if g is not None:
                targets.append(t)
                seeds.append(g)
        if not targets:
            return [None] * len(all_inputs)
        return backprop.imperative_grad(tape._records, targets, all_inputs, seeds)

    records.record_operation("RecomputeGrad", {}, all_inputs, flat_outputs, backward)
    return outputs


def _staged_checkpoint(f, args, kwargs):
    from repro.core.tracing import trace_into_graph
    from repro.graph.function import GraphFunction
    from repro.runtime.executor import execute

    tensor_inputs, marked = _split_tensors(args, kwargs)
    specs = [TensorSpec(t.shape, t.dtype) for t in tensor_inputs]
    seg_name = f"{getattr(f, '__name__', type(f).__name__)}_ckpt_{next(_SCOPE_COUNTER)}"
    graph, flat_outputs, structure = trace_into_graph(
        f, specs, name=seg_name, structured_args=marked
    )
    # Deliberately *not* optimized: the callee is a recipe for replay,
    # and the replayed nodes are optimized in whichever graph they are
    # spliced into.
    gf = GraphFunction(
        name=seg_name,
        graph=graph,
        inputs=list(graph.inputs) + list(graph.capture_placeholders),
        outputs=flat_outputs,
    )
    call_inputs = list(tensor_inputs) + list(graph.captured_externals)
    outs = execute("RecomputeCall", call_inputs, {"f": gf})
    if not isinstance(outs, tuple):
        outs = (outs,) if outs is not None else ()

    def unpack(index):
        return outs[index] if isinstance(index, int) else None

    return nest.map_structure(unpack, structure)


def recompute_grad(f: Callable) -> Callable:
    """Wrap ``f`` so its intermediates are recomputed, not stored.

    Under a gradient tape the wrapped call saves only its boundary
    (inputs and accessed variables); the backward pass re-runs ``f`` to
    rebuild intermediate activations.  Inside a staged trace the segment
    becomes a single ``RecomputeCall`` node whose gradient splices a
    tagged recompute subgraph into the backward function.  With the
    ``REPRO_RECOMPUTE=0`` knob (or ``context.recompute = False``) the
    wrapper is a no-op, which is the cheap way to A/B the memory/compute
    trade.

    Caveat: ``f`` runs once forward and once per backward sweep, so any
    side effects inside it (variable updates such as batch-norm moving
    statistics in training mode) execute more than once.
    """

    def wrapper(*args, **kwargs):
        if not context.recompute:
            return f(*args, **kwargs)
        if not context.executing_eagerly():
            return _staged_checkpoint(f, args, kwargs)
        if not records.active_recorders():
            return f(*args, **kwargs)
        return _eager_checkpoint(f, args, kwargs)

    wrapper.__name__ = getattr(f, "__name__", type(f).__name__) + "_recompute"
    wrapper.__doc__ = getattr(f, "__doc__", None)
    wrapper.__wrapped__ = f
    return wrapper
