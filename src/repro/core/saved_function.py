"""Export traced functions for use outside the defining program.

"Staging enables serializing the program for use without a Python
interpreter ... A typical development workflow involves using
graph-based state matching while writing and tweaking a [...] program,
then serializing a trace for use in a production environment" (paper
§4.3).

:func:`save` writes a concrete function's graph (GraphDef JSON) plus a
snapshot of every captured variable into one ``.npz`` artifact;
:func:`load` rebuilds an executable :class:`LoadedFunction` in a fresh
process, with new variable objects bound to the graph's captures.
Graphs containing ``py_func`` are rejected, matching §4.7.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import InvalidArgumentError
from repro.core.function import ConcreteFunction, Function
from repro.core.variables import Variable
from repro.graph.serialization import function_from_def, function_to_def
from repro.tensor import Tensor, convert_to_tensor

__all__ = ["save", "load", "LoadedFunction"]


def save(fn, path: str, *example_args) -> str:
    """Serialize a traced function (and its variable state) to ``path``.

    Args:
        fn: a :class:`ConcreteFunction`, or a polymorphic ``function``
            (in which case ``example_args`` select/force the trace).
        path: output file; ``.saved.npz`` is appended unless present.
        example_args: inputs used to pick the concrete trace when ``fn``
            is polymorphic.

    Returns:
        The path written.
    """
    if isinstance(fn, Function):
        if not example_args:
            raise InvalidArgumentError(
                "Saving a polymorphic function requires example arguments "
                "to select a concrete trace"
            )
        concrete = fn.get_concrete_function(*example_args)
    elif isinstance(fn, ConcreteFunction):
        concrete = fn
    else:
        raise InvalidArgumentError(
            f"save() takes a repro.function or ConcreteFunction, got {fn!r}"
        )

    capture_meta = []
    arrays: dict[str, np.ndarray] = {}
    for i, external in enumerate(concrete.captured_externals):
        if external.dtype != dtypes.resource:
            raise InvalidArgumentError(
                f"Cannot serialize a function capturing a {external.dtype} "
                "handle"
            )
        variable = external.resource_value()
        capture_meta.append(
            {
                "index": i,
                "dtype": variable.dtype.name,
                "trainable": variable.trainable,
                "name": variable.name,
            }
        )
        arrays[f"capture_{i}"] = np.asarray(variable.numpy())

    payload = {
        "format": "repro.saved_function.v1",
        "function": function_to_def(concrete.graph_function),
        "num_explicit_inputs": concrete.num_explicit_inputs,
        "output_structure": _encode_structure(concrete.output_structure),
        "captures": capture_meta,
    }
    if not path.endswith(".npz"):
        path = path + ".saved.npz"
    blob = json.dumps(payload).encode()
    np.savez(path, __saved_function__=np.frombuffer(blob, dtype=np.uint8), **arrays)
    return path


def _encode_structure(structure):
    """Output structures are ints/None in (possibly nested) containers —
    JSON-representable except for tuples, which we tag."""
    if isinstance(structure, tuple):
        return {"__tuple__": [_encode_structure(v) for v in structure]}
    if isinstance(structure, list):
        return [_encode_structure(v) for v in structure]
    if isinstance(structure, dict):
        return {k: _encode_structure(v) for k, v in structure.items()}
    return structure


def _decode_structure(structure):
    if isinstance(structure, dict):
        if "__tuple__" in structure and len(structure) == 1:
            return tuple(_decode_structure(v) for v in structure["__tuple__"])
        return {k: _decode_structure(v) for k, v in structure.items()}
    if isinstance(structure, list):
        return [_decode_structure(v) for v in structure]
    return structure


class LoadedFunction:
    """An executable function restored from a saved artifact.

    Holds its own :class:`Variable` objects (snapshotted at save time)
    bound to the graph's captures; mutations made by the graph (e.g. a
    saved training step) persist across calls, exactly as in the
    original program.
    """

    def __init__(self, graph_function, num_explicit_inputs, output_structure,
                 variables: list[Variable]) -> None:
        self.graph_function = graph_function
        self.num_explicit_inputs = num_explicit_inputs
        self.output_structure = output_structure
        self.variables = variables

    @property
    def input_specs(self):
        return self.graph_function.input_specs[: self.num_explicit_inputs]

    def __call__(self, *args):
        if len(args) != self.num_explicit_inputs:
            raise InvalidArgumentError(
                f"Loaded function takes {self.num_explicit_inputs} inputs, "
                f"got {len(args)}"
            )
        tensors = [convert_to_tensor(a) for a in args]
        full = tensors + [v.handle for v in self.variables]
        results = self.graph_function.run(full)
        return self._pack(results)

    def _pack(self, flat_results):
        structure = self.output_structure
        if structure is None:
            return None
        from repro.framework import nest

        def restore(leaf):
            return None if leaf is None else flat_results[leaf]

        if not nest.is_nested(structure):
            return restore(structure)
        return nest.map_structure(restore, structure)

    def __repr__(self) -> str:
        return (
            f"<LoadedFunction {self.graph_function.name!r}: "
            f"{self.num_explicit_inputs} inputs, "
            f"{len(self.variables)} variables>"
        )


def load(path: str) -> LoadedFunction:
    """Restore a function saved with :func:`save`."""
    with np.load(path, allow_pickle=False) as archive:
        payload = json.loads(bytes(archive["__saved_function__"].tobytes()).decode())
        if payload.get("format") != "repro.saved_function.v1":
            raise InvalidArgumentError(f"{path!r} is not a saved function")
        capture_values = {
            meta["index"]: archive[f"capture_{meta['index']}"]
            for meta in payload["captures"]
        }
    graph_function = function_from_def(payload["function"])
    variables = []
    for meta in payload["captures"]:
        variables.append(
            Variable(
                capture_values[meta["index"]],
                trainable=meta["trainable"],
                name=meta["name"],
                dtype=dtypes.as_dtype(meta["dtype"]),
            )
        )
    return LoadedFunction(
        graph_function=graph_function,
        num_explicit_inputs=payload["num_explicit_inputs"],
        output_structure=_decode_structure(payload["output_structure"]),
        variables=variables,
    )
