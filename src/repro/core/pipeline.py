"""The staged-compilation pipeline: trace → infer → optimize → plan → compile.

Before this module existed, the path from a Python function to
executable code was an ad-hoc chain of calls buried in
:mod:`repro.core.function`: trace into a graph, optimize in place,
lazily build an execution plan, lazily compile for XLA.  The pipeline
makes those stages explicit, ordered, and reusable:

* **trace** — run the Python function under a graph-building context,
  producing a :class:`~repro.core.tracing.FuncGraph` (paper §4.6).  The
  trace's input signature may be *symbolic*: `TensorSpec`s with unknown
  (``None``) dimensions, produced either by an explicit
  ``input_signature`` or by the trace cache's relaxation policy.
* **infer** — re-propagate shape information through the graph
  (:func:`refine_shapes`).  Shape inference first runs node-by-node at
  trace time; this stage re-runs it after rewrites so sharpened input
  specs flow through the whole body.
* **optimize** — the grappler-style passes of
  :mod:`repro.graph.optimize`, which are conservative under unknown
  dimensions (a ``Shape`` op over a symbolic tensor stays dynamic).
* **plan** — the :class:`~repro.graph.executor.GraphRunner` execution
  schedule.  Plans are shape-polymorphic: kernels compute output shapes
  from the actual buffers, so one symbolic trace needs only one plan.
* **compile** — the XLA-sim executable.  Compilation *does* require
  static shapes (the roofline cost model and fusion heuristics consume
  byte counts), so a symbolic trace is **specialized** per concrete
  shape first: :func:`CompilationPipeline.specialize` replays the traced
  graph under concrete input specs — re-running shape inference and
  constant propagation, *without* re-executing any Python — and the
  caller keeps a per-shape executable cache under the one symbolic
  trace.

This is the binding-time structure LazyTensor-style systems converge
on: bind Python early (one trace), bind shapes late (per-shape
artifacts only where a backend demands them).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.tensor import TensorSpec

__all__ = ["CompilationPipeline", "refine_shapes"]


def refine_shapes(fn) -> int:
    """Re-run shape inference over a graph function, sharpening specs.

    Walks the nodes in topological order, re-invokes each op's inference
    function on its (possibly rewritten) inputs, and merges the result
    into the recorded output specs — the *most specific* shape
    compatible with both wins.  Inference failures and inconsistencies
    are treated conservatively: the existing spec is kept.

    Returns the number of tensors whose spec became more specific.
    """
    refined = 0
    for node in fn.graph.nodes:
        if node.op_name == "Placeholder":
            continue
        op_def = node.op_def
        if op_def.infer_fn is None:
            continue
        try:
            new_specs = op_def.infer(node.inputs, node.attrs)
        except Exception:
            continue  # conservative: inference may not handle unknown dims
        if len(new_specs) != len(node.outputs):
            continue
        for out, spec in zip(node.outputs, new_specs):
            if out.refine_spec(spec):
                refined += 1
    if refined:
        fn.input_specs = [TensorSpec(t.shape, t.dtype) for t in fn.inputs]
        fn.output_specs = [TensorSpec(t.shape, t.dtype) for t in fn.outputs]
        fn.release_plan()
    return refined


class CompilationPipeline:
    """Orchestrates the stages that turn a trace into executable code.

    One pipeline is shared by all of a ``Function``'s concrete traces;
    it is stateless apart from configuration (the optimization pass
    list), so stages can also be invoked individually — the ablation
    benchmarks and the specialization cache both do.
    """

    #: Stage names, in execution order (introspection / reporting).
    STAGES = ("trace", "infer", "optimize", "plan", "compile")

    def __init__(self, passes: Optional[Sequence[str]] = None) -> None:
        self.passes = None if passes is None else tuple(passes)

    # -- stage 1: trace ---------------------------------------------------
    def trace(
        self,
        python_fn: Callable,
        input_specs: Sequence[TensorSpec],
        name: str,
        structured_args=None,
    ):
        """Trace ``python_fn`` into a fresh FuncGraph (paper §4.6).

        Returns ``(func_graph, flat_outputs, output_structure)`` exactly
        as :func:`repro.core.tracing.trace_into_graph` does.
        """
        from repro.core import tracing

        return tracing.trace_into_graph(
            python_fn, input_specs, name=name, structured_args=structured_args
        )

    # -- stages 2+3: infer + optimize -------------------------------------
    def finalize(self, fn) -> dict:
        """Run the post-trace analysis stages on a graph function.

        Optimization first (rewrites may replace symbolic chains with
        constants), then a shape-refinement sweep so the sharpened specs
        are visible to later stages.  Returns the merged report.
        """
        report = self.optimize(fn)
        report["infer:refined"] = refine_shapes(fn)
        return report

    def optimize(self, fn) -> dict:
        from repro.graph.optimize import optimize_function

        return optimize_function(fn, self.passes)

    # -- stage 4: plan -----------------------------------------------------
    def plan(self, fn):
        """The (cached) shape-polymorphic execution plan for ``fn``."""
        return fn.plan()

    # -- stage 5: compile (with per-shape specialization) ------------------
    def specialize(self, fn, input_specs: Sequence[TensorSpec]):
        """Clone ``fn`` with its inputs refined to ``input_specs``.

        The graph is symbolically replayed node-by-node
        (:func:`repro.core.tracing.replay_into`), which re-runs shape
        inference and constant propagation: ``Shape`` ops over
        now-static tensors become foldable again, and the optimization
        passes then clean up behind them.  No Python is re-executed —
        specialization is cheap relative to a retrace, which is the
        whole point of keeping one symbolic trace.
        """
        from repro.core.tracing import ReplayGraph, replay_into
        from repro.graph.function import GraphFunction

        graph = ReplayGraph(name=f"{fn.name}_spec")
        new_inputs, _, new_outputs = replay_into(fn, graph, input_specs=input_specs)
        specialized = GraphFunction(
            name=f"{fn.name}_spec",
            graph=graph,
            inputs=new_inputs,
            outputs=new_outputs,
        )
        self.finalize(specialized)
        return specialized

    # -- lazy segments -----------------------------------------------------
    def compile_segment(
        self,
        name: str,
        input_specs: Sequence[TensorSpec],
        ops: Sequence[tuple],
        fetches: Sequence[tuple],
    ):
        """Lower one recorded lazy-trace segment to a planned graph function.

        The lazy executor (:mod:`repro.runtime.lazy`) hands over the
        recorded segment in a graph-free form and gets back an
        executable artifact that went through the same pipeline stages
        as a traced ``function``: build → optimize (incl. the ``fuse``
        pass when ``context.graph_fusion`` is on) → shape refinement →
        plan (with the static memory plan and in-place donation).

        Args:
            name: artifact name (diagnostics only).
            input_specs: one :class:`TensorSpec` per external input, in
                feed order.  Relaxed (``None``-dimension) specs produce
                a shape-polymorphic artifact.
            ops: recorded operations in program order, each a tuple
                ``(op_name, attrs, in_refs)`` where every input ref is
                ``("e", i)`` (external input ``i``) or ``("o", k, j)``
                (output ``j`` of recorded op ``k``).
            fetches: ``(k, j)`` pairs selecting the live outputs, in the
                order the caller wants them back from ``run()``.

        Returns:
            A planned :class:`~repro.graph.function.GraphFunction` whose
            runner labels kernel errors with the failing op's name (the
            deferred-error contract of the lazy mode).
        """
        from repro.framework.tensor_shape import TensorShape
        from repro.graph.function import GraphFunction
        from repro.graph.graph import Graph

        graph = Graph(name=name)
        inputs = [
            graph.add_operation(
                "Placeholder",
                [],
                {"dtype": spec.dtype, "shape": TensorShape(spec.shape)},
                name=f"seg_arg_{i}",
            )[0]
            for i, spec in enumerate(input_specs)
        ]
        produced: list = []
        for op_name, attrs, in_refs in ops:
            sym_inputs = [
                inputs[ref[1]] if ref[0] == "e" else produced[ref[1]][ref[2]]
                for ref in in_refs
            ]
            produced.append(graph.add_operation(op_name, sym_inputs, attrs))
        outputs = [produced[k][j] for k, j in fetches]
        fn = GraphFunction(name=name, graph=graph, inputs=inputs, outputs=outputs)
        self.finalize(fn)
        self.plan(fn).label_errors = True
        return fn

    def compile(
        self,
        fn,
        input_specs: Optional[Sequence[TensorSpec]] = None,
        fuse: bool = True,
    ):
        """Compile ``fn`` to an XLA-sim executable.

        When ``input_specs`` is given and the function's own signature
        is not fully static, the function is specialized to those
        concrete shapes first.  Callers cache the result per shape
        tuple; see :class:`repro.core.function.ConcreteFunction`.
        """
        from repro.xla.compiler import compile_function

        target = fn
        if input_specs is not None and not all(
            spec.is_fully_defined for spec in fn.input_specs
        ):
            target = self.specialize(fn, input_specs)
        return compile_function(target, fuse=fuse)
