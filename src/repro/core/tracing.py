"""Graph-building contexts for the tracing JIT.

A :class:`FuncGraph` is the graph a Python function is traced into.
It differs from a plain :class:`~repro.graph.graph.Graph` in how it
treats values from outside the trace: concrete (eager) tensors and
symbolic tensors from *enclosing* traces become **captures** — silent
extra inputs threaded through placeholders (paper §4.6, "Lexical
closure: ``function`` is capable of tracing Python functions that
lexically close over tensors or variables").

:func:`init_scope` implements the trace escape of §4.7: it pauses all
active traces so that code inside runs eagerly.  The ``function``
decorator uses it for its state-creation contract; it is exposed to
users as well.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.framework import dtypes, nest
from repro.framework.errors import FailedPreconditionError, InvalidArgumentError
from repro.framework.tensor_shape import TensorShape
from repro.runtime.context import context
from repro.tensor import Tensor, TensorBase, TensorSpec, convert_to_tensor
from repro.graph.function import GraphFunction, placeholder
from repro.graph.graph import Graph, SymbolicTensor

__all__ = [
    "FuncGraph",
    "ReplayGraph",
    "init_scope",
    "replay_into",
    "trace_into_graph",
]


class FuncGraph(Graph):
    """A graph under construction by tracing, with capture support."""

    def __init__(self, name: str = "func_graph") -> None:
        super().__init__(name=name)
        self.inputs: list[SymbolicTensor] = []  # explicit placeholders, in order
        # id(external tensor) -> (external tensor, internal placeholder)
        self.captures: dict[int, tuple] = {}

    # -- inputs ------------------------------------------------------------
    def add_input(self, spec: TensorSpec, name: str = "input") -> SymbolicTensor:
        ph = placeholder(self, spec.dtype, spec.shape, name=name)
        self.inputs.append(ph)
        return ph

    @property
    def captured_externals(self) -> list:
        """External tensors captured so far, in capture order."""
        return [ext for ext, _ in self.captures.values()]

    @property
    def capture_placeholders(self) -> list[SymbolicTensor]:
        return [ph for _, ph in self.captures.values()]

    # -- capture ----------------------------------------------------------
    def capture(self, external) -> SymbolicTensor:
        """Map an outside value to an internal placeholder (creating it once)."""
        entry = self.captures.get(id(external))
        if entry is not None:
            return entry[1]
        ph = placeholder(
            self, external.dtype, external.shape, name="captured"
        )
        # Concrete constants keep their value visible to shape inference.
        cv = getattr(external, "constant_value", None)
        if cv is not None and external.dtype not in (dtypes.resource, dtypes.variant):
            ph._constant_value = np.asarray(cv)
        self.captures[id(external)] = (external, ph)
        return ph

    def _capture_concrete(self, t: Tensor) -> SymbolicTensor:
        # Resource/variant handles are captured *by reference* as silent
        # inputs (Listing 7: "variables are captured by reference and
        # not by value").  Ordinary tensors are immutable, so they are
        # interned as constants — keeping traced graphs self-contained
        # (serializable) and visible to constant folding.
        if t.dtype in (dtypes.resource, dtypes.variant):
            return self.capture(t)
        from repro.graph.graph import Graph

        return Graph._capture_concrete(self, t)

    def _capture_symbolic(self, t: SymbolicTensor) -> SymbolicTensor:
        # A symbolic tensor from an enclosing trace: legal only if its
        # graph is below us on the stack (lexical nesting).
        for g in context.graph_stack():
            if g is t.graph:
                return self.capture(t)
        raise FailedPreconditionError(
            f"Symbolic tensor {t.name!r} (from graph {t.graph.name!r}) used in "
            f"trace {self.name!r}, but its graph is not an enclosing trace. "
            "Symbolic tensors cannot outlive their graph-building context."
        )


class ReplayGraph(FuncGraph):
    """A scratch graph for symbolic re-execution of an existing graph.

    Concrete tensors reaching a replay (scalar factors and shape vectors
    materialized by gradient rules, constants re-staged by
    specialization) are interned as ``Const`` nodes rather than captured
    as hidden placeholders, so functions extracted from the replay are
    self-contained.  Used by the forward/backward builder
    (:mod:`repro.core.backprop`) and by the compilation pipeline's
    shape-specialization stage (:mod:`repro.core.pipeline`).
    """

    def _capture_concrete(self, t: Tensor) -> SymbolicTensor:
        from repro.graph.graph import Graph

        return Graph._capture_concrete(self, t)


def replay_into(
    fn,
    graph: FuncGraph,
    input_specs: Optional[Sequence[TensorSpec]] = None,
    on_input: Optional[Callable] = None,
):
    """Symbolically re-execute a graph function's nodes into ``graph``.

    Every node is re-staged through :func:`~repro.runtime.executor.execute`,
    which re-runs shape inference and constant propagation — so a replay
    under *refined* input specs (``input_specs``) propagates the sharper
    shapes through the whole body.  That is the heart of per-shape
    specialization: one symbolic trace, many cheap shape-refined clones,
    and no Python re-execution.

    Args:
        fn: the :class:`~repro.graph.function.GraphFunction` to replay.
        graph: the (already-created) destination graph.  Must be a
            :class:`FuncGraph`; callers wanting self-contained results
            use a :class:`ReplayGraph`.
        input_specs: optional replacement specs for ``fn``'s inputs (one
            per input, dtypes must match).  Defaults to the originals.
        on_input: optional callback invoked with each new input
            placeholder as it is created (e.g. ``tape.watch``).

    Returns:
        ``(new_inputs, mapping, new_outputs)`` where ``mapping`` maps
        ``id(old tensor) -> new tensor``.
    """
    from repro.runtime.executor import execute

    specs = list(input_specs) if input_specs is not None else list(fn.input_specs)
    if len(specs) != len(fn.inputs):
        raise InvalidArgumentError(
            f"Replay of {fn.name!r} got {len(specs)} input specs for "
            f"{len(fn.inputs)} inputs"
        )
    for old, spec in zip(fn.inputs, specs):
        if spec.dtype != old.dtype:
            raise InvalidArgumentError(
                f"Replay of {fn.name!r}: input spec dtype {spec.dtype} does "
                f"not match traced dtype {old.dtype}"
            )
    new_inputs = [
        graph.add_input(spec, name=f"x_{i}") for i, spec in enumerate(specs)
    ]
    mapping: dict[int, object] = {}
    for old, new in zip(fn.inputs, new_inputs):
        mapping[id(old)] = new
        if on_input is not None:
            on_input(new)
    with graph.as_default():
        for node in fn.graph.nodes:
            if node.op_name == "Placeholder":
                out = node.outputs[0]
                if id(out) not in mapping:
                    raise FailedPreconditionError(
                        f"Placeholder {node.name!r} is not among the inputs of "
                        f"function {fn.name!r}"
                    )
                continue
            inputs = [mapping[id(t)] for t in node.inputs]
            graph.push_device(node.device)
            try:
                if node.op_name == "FusedElementwise":
                    # Fusion is a scheduling artifact; replay expands the
                    # region back into its member primitives so gradients,
                    # specialization, and lowering see real ops.
                    outputs = node.attrs["region"].replay(inputs)
                else:
                    outputs = execute(node.op_name, inputs, node.attrs, name=node.name)
            finally:
                graph.pop_device()
            if not isinstance(outputs, tuple):
                outputs = (outputs,) if outputs is not None else ()
            if outputs == () and node.outputs:
                raise FailedPreconditionError(
                    f"Replay of {node.op_name!r} lost its outputs"
                )
            for old, new in zip(node.outputs, outputs):
                mapping[id(old)] = new
    new_outputs = [mapping[id(t)] for t in fn.outputs]
    return new_inputs, mapping, new_outputs


class init_scope:
    """Escape the current trace: run the enclosed code eagerly (§4.7).

    "We provide a Python context manager, ``tf.init_scope``, that pauses
    the trace and jumps into the imperative context. We use this scope
    to implement ``function``'s state-creation contract."
    """

    def __enter__(self) -> "init_scope":
        context.enter_init_scope()
        return self

    def __exit__(self, *exc_info) -> None:
        context.exit_init_scope()


def trace_into_graph(
    fn: Callable,
    input_specs: Sequence[TensorSpec],
    name: str = "traced",
    structured_args=None,
):
    """Trace ``fn`` in a graph-building context.

    Args:
        fn: Python function taking flat tensors (already bound to the
            caller's structure by the polymorphic wrapper).
        input_specs: abstract types of the explicit inputs.
        name: graph name.
        structured_args: optional (args, kwargs) template whose tensor
            leaves are replaced by the created placeholders before
            calling ``fn``; when None, ``fn`` receives the placeholders
            positionally.

    Returns:
        (func_graph, flat_outputs, output_structure) where
        ``output_structure`` is the original nest with tensors replaced
        by integer indices into ``flat_outputs`` (None outputs stay
        None).
    """
    graph = FuncGraph(name=name)
    with graph.as_default():
        placeholders = [
            graph.add_input(spec, name=spec.name or f"arg_{i}")
            for i, spec in enumerate(input_specs)
        ]
        if structured_args is not None:
            args, kwargs = _bind_placeholders(structured_args, placeholders)
            outputs = fn(*args, **kwargs)
        else:
            outputs = fn(*placeholders)
        flat_outputs, structure = _canonicalize_outputs(graph, outputs)
    return graph, flat_outputs, structure


def _bind_placeholders(structured_args, placeholders: list[SymbolicTensor]):
    args, kwargs = structured_args
    it = iter(placeholders)

    def swap(leaf):
        if isinstance(leaf, _TensorMarker):
            return next(it)
        return leaf

    new_args = nest.map_structure(swap, list(args))
    new_kwargs = nest.map_structure(swap, kwargs)
    return tuple(new_args), new_kwargs


class _TensorMarker:
    """Placeholder leaf marking where a tensor sat in the arg structure."""

    __slots__ = ()


TENSOR_MARKER = _TensorMarker()


def _canonicalize_outputs(graph: FuncGraph, outputs):
    """Convert traced outputs to graph tensors; build an index structure."""
    from repro.graph.graph import Node

    flat = nest.flatten(outputs)
    flat_tensors: list[SymbolicTensor] = []
    indices: list = []
    for leaf in flat:
        if leaf is None or isinstance(leaf, Node):
            # Side-effect-only results (e.g. a staged assignment op)
            # carry no value out of the trace.
            indices.append(None)
            continue
        if hasattr(leaf, "read_value") and not isinstance(leaf, TensorBase):
            # A Variable returned from the trace: yield its value.
            leaf = leaf.read_value()
        if isinstance(leaf, Tensor):
            # An eager tensor returned from a trace (e.g. computed in an
            # init_scope): bake it in as a capture so the value flows out.
            leaf = graph.capture(leaf)
        elif not isinstance(leaf, TensorBase):
            # Python numbers / numpy arrays become constants.
            from repro.ops import array_ops

            with graph.as_default():
                leaf = array_ops.constant(leaf)
        if isinstance(leaf, SymbolicTensor) and leaf.graph is not graph:
            leaf = graph.capture(leaf)
        indices.append(len(flat_tensors))
        flat_tensors.append(leaf)
    structure = nest.pack_sequence_as(outputs, indices) if flat else outputs
    return flat_tensors, structure
