"""Checkpointing via graph-based state matching (paper §4.3).

"TensorFlow Eager uses a graph-based matching system, where a directed
graph with named edges between objects is serialized along with the
program state.  On restore, a greedy matching determines a
correspondence between serialized Python state and the objects being
restored.  This matching is local in that it depends only on the
objects being saved and restored, not on other parts of the program."

* :class:`Trackable` — base class whose attribute assignments build the
  named-edge object graph automatically (lists and dicts of trackables
  are wrapped so their elements get numbered/named edges, as in the
  paper's Figure 1).
* :class:`Checkpoint` — saves the reachable object graph (topology as
  JSON, variable values as arrays) into a single ``.npz`` file, and
  restores by breadth-first greedy matching.  Restoration is
  **deferred-safe**: values for objects that do not exist yet (layers
  that create variables on first call) are held and applied the moment
  the matching attribute is attached — the workflow Listing 3 relies
  on.
* :class:`NumpyState` — miscellaneous Python state (NumPy arrays)
  participating in the same matching ("outside of traced code even
  miscellaneous Python state such as NumPy arrays can use graph-based
  state matching").
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from repro.framework.errors import FailedPreconditionError, InvalidArgumentError
from repro.core.variables import Variable

__all__ = ["Trackable", "Checkpoint", "NumpyState", "CheckpointStatus"]


def _is_trackable_value(value) -> bool:
    return isinstance(value, (Trackable, Variable))


def _maybe_wrap(value):
    """Wrap containers of trackables so their elements become edges."""
    if isinstance(value, _ListWrapper) or isinstance(value, _DictWrapper):
        return value
    if isinstance(value, (list, tuple)) and any(_is_trackable_value(v) for v in value):
        return _ListWrapper(value)
    if isinstance(value, dict) and any(_is_trackable_value(v) for v in value.values()):
        return _DictWrapper(value)
    return value


class Trackable:
    """An object participating in the named-edge dependency graph.

    Assigning a trackable value to an attribute creates an edge named
    after the attribute (paper Figure 1: ``self.v = tf.Variable(1.)``
    creates the edge ``v``).
    """

    def __setattr__(self, name: str, value) -> None:
        value = _maybe_wrap(value)
        object.__setattr__(self, name, value)
        if _is_trackable_value(value) and not name.startswith("__"):
            deferred = self.__dict__.get("_deferred_dependencies")
            if deferred and name in deferred:
                _restore_subtree(value, *deferred.pop(name))

    def _checkpoint_dependencies(self) -> list[tuple[str, object]]:
        """(edge name, child) pairs, sorted by name for determinism."""
        deps = []
        for name in sorted(self.__dict__):
            if name.startswith("_deferred"):
                continue
            value = self.__dict__[name]
            if _is_trackable_value(value):
                deps.append((name, value))
        return deps

    # Leaf-state hooks (overridden by value-bearing trackables).
    def _serialize_to_checkpoint(self) -> Optional[dict[str, np.ndarray]]:
        return None

    def _restore_from_checkpoint(self, values: dict[str, np.ndarray]) -> None:
        raise NotImplementedError


class _ListWrapper(Trackable):
    """A list whose elements are edges named by their index."""

    def __init__(self, values) -> None:
        object.__setattr__(self, "_values", list(values))

    def __getitem__(self, index):
        return self._values[index]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def append(self, value) -> None:
        self._values.append(_maybe_wrap(value))

    def _checkpoint_dependencies(self):
        return [
            (str(i), v) for i, v in enumerate(self._values) if _is_trackable_value(v)
        ]


class _DictWrapper(Trackable):
    """A dict whose trackable values are edges named by their keys."""

    def __init__(self, values: dict) -> None:
        object.__setattr__(self, "_values", dict(values))

    def __getitem__(self, key):
        return self._values[key]

    def __setitem__(self, key, value) -> None:
        self._values[key] = _maybe_wrap(value)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def items(self):
        return self._values.items()

    def _checkpoint_dependencies(self):
        return [
            (str(k), v)
            for k, v in sorted(self._values.items(), key=lambda kv: str(kv[0]))
            if _is_trackable_value(v)
        ]


class NumpyState(Trackable):
    """Miscellaneous NumPy state matched like any other object (§4.3)."""

    def _checkpoint_dependencies(self):
        return []

    def _serialize_to_checkpoint(self):
        out = {}
        for name in sorted(self.__dict__):
            value = self.__dict__[name]
            if isinstance(value, np.ndarray) and not name.startswith("_"):
                out[name] = value
        return out or None

    def _restore_from_checkpoint(self, values) -> None:
        for name, value in values.items():
            object.__setattr__(self, name, value)


def _dependencies_of(obj) -> list[tuple[str, object]]:
    if isinstance(obj, Variable):
        return []
    return obj._checkpoint_dependencies()


def _serialize_leaf(obj) -> Optional[dict[str, np.ndarray]]:
    if isinstance(obj, Variable):
        return {"VALUE": np.asarray(obj.numpy())}
    return obj._serialize_to_checkpoint()


def _restore_leaf(obj, values: dict[str, np.ndarray]) -> None:
    if isinstance(obj, Variable):
        obj.assign(values["VALUE"])
    else:
        obj._restore_from_checkpoint(values)


class CheckpointStatus:
    """Tracks which saved state has been applied (supports deferral)."""

    def __init__(self) -> None:
        self._pending: set[int] = set()
        self._restored: set[int] = set()

    def _mark_pending(self, node_id: int) -> None:
        self._pending.add(node_id)

    def _mark_restored(self, node_id: int) -> None:
        self._pending.discard(node_id)
        self._restored.add(node_id)

    @property
    def num_restored(self) -> int:
        return len(self._restored)

    def assert_consumed(self) -> "CheckpointStatus":
        """Raise unless every value in the checkpoint has been applied."""
        if self._pending:
            raise FailedPreconditionError(
                f"{len(self._pending)} checkpointed values were never matched "
                "to Python objects (were all layers/variables re-created?)"
            )
        return self


def _restore_subtree(obj, node_id: int, data: dict, status: CheckpointStatus) -> None:
    """Greedy local matching from (obj, saved node) downward."""
    queue = [(obj, node_id)]
    while queue:
        current, nid = queue.pop()
        node = data["nodes"][nid]
        values = {
            key[len(f"node{nid}/") :]: data["arrays"][key]
            for key in node["value_keys"]
        }
        if values:
            _restore_leaf(current, values)
            status._mark_restored(nid)
        deps = dict(_dependencies_of(current))
        for name, child_id in node["children"].items():
            child = deps.get(name)
            if child is None:
                # Defer: apply when the attribute appears (Listing 3
                # models create variables on first call).
                if isinstance(current, (Trackable,)):
                    deferred = current.__dict__.setdefault(
                        "_deferred_dependencies", {}
                    )
                    deferred[name] = (child_id, data, status)
                continue
            queue.append((child, child_id))


class Checkpoint(Trackable):
    """Saves and restores an object graph of trackable state.

    Usage::

        ckpt = Checkpoint(model=model, optimizer=opt)
        path = ckpt.save("/tmp/model")
        ...
        status = Checkpoint(model=new_model, optimizer=new_opt).restore(path)
        status.assert_consumed()
    """

    def __init__(self, **kwargs) -> None:
        for name, value in kwargs.items():
            if not _is_trackable_value(value) and not isinstance(
                _maybe_wrap(value), (Trackable,)
            ):
                raise InvalidArgumentError(
                    f"Checkpoint arguments must be trackable; {name!r} is "
                    f"{type(value).__name__}"
                )
            setattr(self, name, value)

    # -- save -----------------------------------------------------------------
    def save(self, file_prefix: str) -> str:
        """Serialize the reachable object graph; returns the saved path."""
        nodes: list[dict] = []
        ids: dict[int, int] = {}
        arrays: dict[str, np.ndarray] = {}

        def visit(obj) -> int:
            if id(obj) in ids:
                return ids[id(obj)]
            nid = len(nodes)
            ids[id(obj)] = nid
            node = {"children": {}, "value_keys": []}
            nodes.append(node)
            values = _serialize_leaf(obj)
            if values:
                for key, arr in values.items():
                    full = f"node{nid}/{key}"
                    node["value_keys"].append(full)
                    arrays[full] = np.asarray(arr)
            for name, child in _dependencies_of(obj):
                node["children"][name] = visit(child)
            return nid

        visit(self)
        path = file_prefix if file_prefix.endswith(".npz") else file_prefix + ".ckpt.npz"
        graph_json = json.dumps({"nodes": nodes})
        np.savez(path, __object_graph__=np.frombuffer(graph_json.encode(), dtype=np.uint8), **arrays)
        return path

    # -- restore ----------------------------------------------------------------
    def restore(self, path: str) -> CheckpointStatus:
        """Greedy, local, deferred-capable restoration from a saved file."""
        with np.load(path, allow_pickle=False) as archive:
            graph_json = bytes(archive["__object_graph__"].tobytes()).decode()
            arrays = {k: archive[k] for k in archive.files if k != "__object_graph__"}
        nodes = json.loads(graph_json)["nodes"]
        status = CheckpointStatus()
        for nid, node in enumerate(nodes):
            if node["value_keys"]:
                status._mark_pending(nid)
        data = {"nodes": nodes, "arrays": arrays}
        _restore_subtree(self, 0, data, status)
        return status
