"""Reverse-mode automatic differentiation over tape records.

Two layers live here:

* :func:`imperative_grad` — the reverse sweep over a tape's recorded
  operations.  It executes gradient rules as ordinary primitive ops, so
  the computation it performs is itself recordable (higher-order
  gradients) and stageable (paper §4.2).

* The **staged forward/backward machinery** for graph functions.
  "The first time a graph function is called when a tape is both active
  and watching one of its inputs, we build a 'forward' version of this
  function that returns any intermediate values needed for the backward
  step, in addition to its named outputs" (§4.2).
  :func:`build_forward_backward` performs that construction by
  symbolically replaying the function's graph under a tape and
  splitting the result into a forward function (outputs + needed
  intermediates) and a backward graph function — so a staged forward
  pass implies a staged backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.framework import dtypes
from repro.framework.errors import InternalError, InvalidArgumentError, UnimplementedError
from repro.ops import registry
from repro.tensor import Tensor, TensorBase, TensorSpec
from repro.graph.function import GraphFunction, placeholder
from repro.graph.graph import SymbolicTensor

__all__ = [
    "imperative_grad",
    "build_forward_backward",
    "graph_function_backward",
    "ForwardBackward",
]


def _tensor_id(value) -> int:
    handle = getattr(value, "handle", None)
    if handle is not None and not isinstance(value, TensorBase):
        return id(handle)
    return id(value)


def _ones_like(t):
    from repro.ops import array_ops

    return array_ops.ones_like(t)


def zero_seed(t):
    """A zero gradient seed matching ``t``: zeros, or an empty tensor
    list for variant-typed values (per-element gradients of lists)."""
    from repro.ops import array_ops, list_ops

    if isinstance(t, TensorBase) and t.dtype == dtypes.variant:
        return list_ops.empty_tensor_list()
    return array_ops.zeros_like(t)


def _zeros_for_source(source):
    from repro.ops import array_ops

    if isinstance(source, TensorBase):
        return array_ops.zeros_like(source)
    # A variable: zeros shaped like its value.
    read = getattr(source, "read_value", None)
    if read is not None:
        return array_ops.zeros_like(read())
    raise InvalidArgumentError(f"Cannot build zero gradient for {source!r}")


class _GradAccumulator:
    """Accumulates per-tensor adjoints, summing lazily with add_n."""

    def __init__(self) -> None:
        self._partials: dict[int, list] = {}

    def add(self, key: int, grad) -> None:
        self._partials.setdefault(key, []).append(grad)

    def has(self, key: int) -> bool:
        return key in self._partials

    def get(self, key: int):
        parts = self._partials.get(key)
        if parts is None:
            return None
        if len(parts) > 1:
            from repro.ops import math_ops

            parts = [math_ops.add_n(parts)]
            self._partials[key] = parts
        return parts[0]


def imperative_grad(
    op_records: Sequence,
    targets: Sequence,
    sources: Sequence,
    output_gradients: Sequence,
    unconnected_gradients: str = "none",
    sync: bool = True,
) -> list:
    """Reverse sweep over recorded operations.

    Args:
        op_records: tape records in execution order.
        targets: tensors to differentiate (flat).
        sources: tensors/variables to differentiate with respect to (flat).
        output_gradients: seed gradients aligned with targets (None
            entries seed with ones).
        unconnected_gradients: "none" or "zero" for sources the targets
            do not depend on.

    Returns:
        One gradient (or None) per source.
    """
    if unconnected_gradients not in ("none", "zero"):
        raise InvalidArgumentError(
            f"unconnected_gradients must be 'none' or 'zero', got "
            f"{unconnected_gradients!r}"
        )
    # Async/lazy eager modes: the recorded forward ops may still be in
    # flight (or merely recorded).  Replay must not start until they
    # (and any deferred error) have landed — gradient computation is a
    # synchronization point.  Internal callers that sweep a short,
    # self-contained record list (the forward accumulator deriving a
    # JVP per op) opt out: forcing a lazy flush per recorded op would
    # shred pending traces into single-op segments.
    if sync:
        from repro.runtime.context import context as _runtime_context

        if _runtime_context.executor_mode != "sync" and _runtime_context.executing_eagerly():
            _runtime_context.sync()
    acc = _GradAccumulator()
    for target, seed in zip(targets, output_gradients):
        if target is None:
            continue
        if not isinstance(target, TensorBase):
            raise InvalidArgumentError(
                f"Gradient target must be a tensor, got {target!r}"
            )
        if not target.dtype.is_differentiable:
            # Variant targets (tensor lists) are legal when an explicit
            # list-valued seed is supplied (the While backward does this).
            if not (target.dtype == dtypes.variant and seed is not None):
                raise InvalidArgumentError(
                    f"Gradient target has non-differentiable dtype {target.dtype}"
                )
        acc.add(id(target), seed if seed is not None else _ones_like(target))

    for rec in reversed(op_records):
        out_grads = [
            acc.get(id(o)) if isinstance(o, TensorBase) else None for o in rec.outputs
        ]
        if not any(g is not None for g in out_grads):
            continue
        if rec.backward_function is not None:
            in_grads = rec.backward_function(*out_grads)
        else:
            if not registry.has_gradient(rec.op_name):
                raise UnimplementedError(
                    f"Operation {rec.op_name!r} has no registered gradient"
                )
            grad_fn = registry.get_gradient_function(rec.op_name)
            in_grads = grad_fn(rec, *out_grads)
        if len(in_grads) != len(rec.inputs):
            raise InternalError(
                f"Gradient of {rec.op_name!r} returned {len(in_grads)} values "
                f"for {len(rec.inputs)} inputs"
            )
        for inp, g in zip(rec.inputs, in_grads):
            if g is None or not isinstance(inp, TensorBase):
                continue
            acc.add(id(inp), g)

    results = []
    for source in sources:
        grad = acc.get(_tensor_id(source))
        if grad is None and unconnected_gradients == "zero":
            grad = _zeros_for_source(source)
        results.append(grad)
    return results


# ---------------------------------------------------------------------------
# Staged forward/backward construction
# ---------------------------------------------------------------------------

@dataclass
class ForwardBackward:
    """Forward-with-intermediates and backward functions for one callee.

    Attributes:
        forward_fn: returns the callee's outputs followed by the
            intermediate values the backward step needs.
        backward_fn: maps (intermediates..., output gradients for the
            differentiable outputs...) to gradients for the inputs that
            have one.
        num_outputs: arity of the original function.
        diff_output_indices: which outputs receive seed gradients.
        input_grad_mask: per original input, whether backward_fn
            produces a gradient for it (None inputs get None).
        boundary_indices: for each of backward_fn's leading inputs, the
            index into forward_fn's outputs holding its value.  A
            boundary tensor that is *also* a user output is not
            duplicated as an extra forward output — a duplicated slot
            would receive the incoming gradient twice and double the
            result — so the indices may point into the user outputs.
    """

    forward_fn: GraphFunction
    backward_fn: Optional[GraphFunction]
    num_outputs: int
    diff_output_indices: list[int]
    input_grad_mask: list[bool]
    boundary_indices: list[int]


def _replay(fn: GraphFunction, scratch, tape) -> tuple[list, dict, list]:
    """Re-execute fn's nodes symbolically into ``scratch`` under ``tape``.

    Thin wrapper over the shared :func:`repro.core.tracing.replay_into`
    (also used by the pipeline's shape-specialization stage) that
    watches every replayed input on the tape.

    Returns (new input placeholders, old->new tensor map, new outputs).
    """
    from repro.core.tracing import replay_into

    return replay_into(fn, scratch, on_input=tape.watch)


def _extract(nodes: Sequence, inputs: Sequence, outputs: Sequence, name: str) -> GraphFunction:
    """Copy a node span into a fresh graph, with ``inputs`` as placeholders."""
    from repro.core.tracing import FuncGraph
    from repro.runtime.executor import execute

    graph = FuncGraph(name=name)
    mapping: dict[int, object] = {}
    with graph.as_default():
        for i, t in enumerate(inputs):
            ph = graph.add_input(TensorSpec(t.shape, t.dtype), name=f"in_{i}")
            mapping[id(t)] = ph
        for node in nodes:
            if all(id(o) in mapping for o in node.outputs) and node.outputs:
                continue  # already provided as an input (e.g. placeholders)
            if node.op_name == "Placeholder":
                continue
            node_inputs = []
            ok = True
            for t in node.inputs:
                m = mapping.get(id(t))
                if m is None:
                    ok = False
                    break
                node_inputs.append(m)
            if not ok:
                raise InternalError(
                    f"Extraction of {name!r}: node {node.name!r} depends on a "
                    "tensor outside the extracted span"
                )
            graph.push_device(node.device)
            try:
                outs = execute(node.op_name, node_inputs, node.attrs, name=node.name)
            finally:
                graph.pop_device()
            if not isinstance(outs, tuple):
                outs = (outs,) if outs is not None else ()
            for old, new in zip(node.outputs, outs):
                mapping.setdefault(id(old), new)
        out_tensors = [mapping[id(t)] for t in outputs]
    return GraphFunction(name=name, graph=graph, inputs=list(graph.inputs), outputs=out_tensors)


def build_forward_backward(fn: GraphFunction, optimize: bool = True) -> ForwardBackward:
    """Construct the forward-with-intermediates and backward functions."""
    from repro.core.tape import GradientTape
    from repro.core.tracing import ReplayGraph

    scratch = ReplayGraph(name=f"{fn.name}_fb")
    tape = GradientTape(persistent=True, watch_accessed_variables=False)
    with scratch.as_default():
        with tape:
            new_inputs, mapping, new_outputs = _replay(fn, scratch, tape)
        marker = len(scratch.nodes)
        diff_indices = [
            i
            for i, t in enumerate(new_outputs)
            if t.dtype.is_differentiable or t.dtype == dtypes.variant
        ]
        out_grad_phs = [
            placeholder(
                scratch,
                new_outputs[i].dtype,
                new_outputs[i].shape,
                name=f"grad_out_{i}",
            )
            for i in diff_indices
        ]
        in_grads = imperative_grad(
            tape._records,
            [new_outputs[i] for i in diff_indices],
            new_inputs,
            out_grad_phs,
            unconnected_gradients="none",
        )

    backward_nodes = scratch.nodes[marker:]
    backward_node_ids = {id(n) for n in backward_nodes}
    out_grad_ids = {id(t) for t in out_grad_phs}

    # Boundary: forward-section tensors the backward section consumes.
    # A boundary tensor that is already a user output (tanh, sqrt, ...
    # gradients read the forward *output*) must not occupy a second
    # forward-output slot: the tape would deliver the incoming gradient
    # to both slots and the gradient would double.
    output_pos: dict[int, int] = {}
    for i, t in enumerate(new_outputs):
        output_pos.setdefault(id(t), i)
    boundary: list = []
    extra_outputs: list = []
    boundary_indices: list[int] = []
    seen: set[int] = set()

    def note_boundary(t) -> None:
        if id(t) in out_grad_ids or id(t) in seen:
            return
        if id(t.node) in backward_node_ids:
            return
        seen.add(id(t))
        boundary.append(t)
        pos = output_pos.get(id(t))
        if pos is None:
            boundary_indices.append(len(new_outputs) + len(extra_outputs))
            extra_outputs.append(t)
        else:
            boundary_indices.append(pos)

    for node in backward_nodes:
        for t in node.inputs:
            note_boundary(t)
    for g in in_grads:
        if g is not None:
            note_boundary(g)

    forward_fn = _extract(
        scratch.nodes[:marker],
        inputs=new_inputs,
        outputs=list(new_outputs) + extra_outputs,
        name=f"{fn.name}_forward",
    )

    input_grad_mask = [g is not None for g in in_grads]
    if any(input_grad_mask):
        backward_fn = _extract(
            backward_nodes,
            inputs=list(boundary) + list(out_grad_phs),
            outputs=[g for g in in_grads if g is not None],
            name=f"{fn.name}_backward",
        )
    else:
        backward_fn = None

    if optimize:
        forward_fn.optimize()
        if backward_fn is not None:
            backward_fn.optimize()

    return ForwardBackward(
        forward_fn=forward_fn,
        backward_fn=backward_fn,
        num_outputs=len(fn.outputs),
        diff_output_indices=diff_indices,
        input_grad_mask=input_grad_mask,
        boundary_indices=boundary_indices,
    )


def build_rematerializing_backward(fn: GraphFunction) -> tuple[GraphFunction, list[bool], list[int]]:
    """A single backward function that recomputes the forward internally.

    Used when differentiating a call node *after the fact* (no saved
    intermediates are available): the returned function takes the
    original inputs plus output gradients and recomputes what it needs.
    """
    from repro.core.tape import GradientTape
    from repro.core.tracing import ReplayGraph

    scratch = ReplayGraph(name=f"{fn.name}_remat")
    tape = GradientTape(persistent=True, watch_accessed_variables=False)
    with scratch.as_default():
        with tape:
            new_inputs, _, new_outputs = _replay(fn, scratch, tape)
        diff_indices = [
            i
            for i, t in enumerate(new_outputs)
            if t.dtype.is_differentiable or t.dtype == dtypes.variant
        ]
        out_grad_phs = [
            placeholder(
                scratch, new_outputs[i].dtype, new_outputs[i].shape, name=f"grad_out_{i}"
            )
            for i in diff_indices
        ]
        in_grads = imperative_grad(
            tape._records,
            [new_outputs[i] for i in diff_indices],
            new_inputs,
            out_grad_phs,
            unconnected_gradients="none",
        )
    mask = [g is not None for g in in_grads]
    backward = _extract(
        scratch.nodes,
        inputs=list(new_inputs) + list(out_grad_phs),
        outputs=[g for g in in_grads if g is not None],
        name=f"{fn.name}_remat_backward",
    )
    backward.optimize()
    return backward, mask, diff_indices


def graph_function_backward(fn: GraphFunction, inputs, outputs, grads):
    """Registry gradient for raw ``PartitionedCall`` records.

    The normal path (a ``ConcreteFunction`` called under a tape) records
    a custom backward that reuses saved intermediates; this fallback —
    reached when a call node is differentiated without them — pays for
    rematerialization instead.
    """
    from repro.ops import array_ops
    from repro.ops.functional_ops import call_graph_function

    cached = getattr(fn, "_remat_backward", None)
    if cached is None:
        cached = build_rematerializing_backward(fn)
        fn._remat_backward = cached
    backward, mask, diff_indices = cached
    seed = []
    for i in diff_indices:
        g = grads[i]
        if g is None:
            g = zero_seed(outputs[i])
        seed.append(g)
    produced = call_graph_function(backward, list(inputs) + seed)
    produced = list(produced)
    result = []
    it = iter(produced)
    for has_grad in mask:
        result.append(next(it) if has_grad else None)
    return result
