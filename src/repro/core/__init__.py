"""The paper's primary contribution: a multi-stage programming model.

* :mod:`repro.core.tracing` — graph-building contexts (``FuncGraph``)
  and the ``init_scope`` escape (paper §4.6–4.7).
* :mod:`repro.core.function` — the polymorphic ``function`` decorator:
  two-level trace cache (exact + shape-relaxed), binding-time analysis,
  input signatures, lexical closure capture, state-creation contract
  (§4.6).
* :mod:`repro.core.pipeline` — the staged-compilation pipeline
  (trace → infer → optimize → plan → compile) with symbolic-shape
  specialization.
* :mod:`repro.core.tape` / :mod:`repro.core.backprop` — tape-based
  reverse-mode automatic differentiation with staged forward/backward
  functions (§4.2).
* :mod:`repro.core.forwardprop` — forward-mode AD (``jvp``/``hvp``/
  ``jacobian``) composing with the reverse tape.
* :mod:`repro.core.recompute` — gradient checkpointing
  (``recompute_grad``) in both eager and staged regimes.
* :mod:`repro.core.variables` — program state as Python objects (§4.3).
* :mod:`repro.core.checkpoint` — graph-based state matching (§4.3).
"""

from repro.core.forwardprop import ForwardAccumulator, hvp, jacobian, jvp
from repro.core.function import function, ConcreteFunction, RetraceWarning
from repro.core.pipeline import CompilationPipeline
from repro.core.recompute import recompute_grad
from repro.core.tape import GradientTape
from repro.core.tracing import init_scope, FuncGraph
from repro.core.variables import Variable

__all__ = [
    "function",
    "ConcreteFunction",
    "CompilationPipeline",
    "ForwardAccumulator",
    "GradientTape",
    "RetraceWarning",
    "init_scope",
    "FuncGraph",
    "Variable",
    "hvp",
    "jacobian",
    "jvp",
    "recompute_grad",
]
