"""The polymorphic ``function`` decorator — the tracing JIT (paper §4.6).

``function(f)`` returns a callable that is "an opt-in, JIT compiler
that generates an optimized polymorphic function for a Python function,
creating concrete functions backed by dataflow graphs via a
straightforward binding-time analysis at run-time" (§4.1).

The moving parts, each mirroring a paragraph of §4.6:

* **Polymorphism** — a trace cache maps inferred input signatures
  (tensors abstracted to dtype/shape, non-tensor values encoded by
  value or identity, plus the requested device) to monomorphic
  :class:`ConcreteFunction` objects.
* **Input signatures** — an explicit ``input_signature`` pins a single
  trace with relaxed shapes.
* **Lexical closure** — tensors and variables the Python function
  closes over are captured as silent extra inputs; variables by
  reference (Listing 7).
* **Composition** — calling a traced function inside another trace
  stages a single call operation (Listing 8 / Figure 2).
* **State creation** — variables may only be created on the first
  trace; when that happens the function is traced a second time, and
  any later creation raises (the two-trace contract).
* **Tape integration** — calling a concrete function under a watching
  tape runs the *forward* variant (outputs + intermediates) and records
  a custom backward that invokes a staged backward function (§4.2).
* **Shape relaxation** — the trace cache is two-level.  The first level
  is an exact LRU map over concrete signatures.  On repeated shape-only
  misses of the same dtype/rank pattern, the second level installs a
  single *symbolic* trace whose varying dimensions are generalized to
  ``None`` (``experimental_relax_shapes`` / ``REPRO_RELAX_SHAPES``);
  further calls with any compatible shape hit that one trace.  Each
  trace flows through the staged-compilation pipeline
  (:mod:`repro.core.pipeline`): trace → infer → optimize → plan →
  compile, with per-concrete-shape XLA specialization under a symbolic
  trace.
"""

from __future__ import annotations

import collections
import functools
import inspect
import threading
import warnings
import weakref
from typing import Callable, Optional, Sequence

import numpy as np

from repro.framework import dtypes, nest
from repro.framework.errors import (
    FailedPreconditionError,
    InvalidArgumentError,
)
from repro.runtime import records
from repro.runtime.context import context
from repro.tensor import Tensor, TensorBase, TensorSpec, convert_to_tensor
from repro.core import tracing
from repro.core.pipeline import CompilationPipeline
from repro.core.variables import Variable, variable_creation_observer
from repro.graph.function import GraphFunction

__all__ = [
    "function",
    "Function",
    "ConcreteFunction",
    "RetraceWarning",
    "SegmentCache",
    "reset_retrace_warning_state",
]


class SegmentCache:
    """Two-level cache of compiled lazy-trace segments.

    The lazy executor (:mod:`repro.runtime.lazy`) hashes every flushed
    segment — op list, attributes, dataflow references, fetch mask, and
    external-input signature — and looks the artifact up here, reusing
    the ``Function`` trace cache's two-level policy:

    * **Exact level**: ``(structural key, concrete external shapes) →
      artifact``, LRU-ordered and bounded by
      ``context.trace_cache_size``; evicted artifacts have ``release()``
      called so their execution plans are dropped.
    * **Relaxed level**: one shape-relaxed artifact per structural key,
      installed after ``context.relax_retraces`` shape-only misses of
      the same structure.  Execution plans are shape-polymorphic, so a
      single relaxed artifact (placeholder dims generalized to ``None``)
      serves every concrete shape the structure admits — the
      steady-state training loop with varying batch sizes compiles
      once.

    Artifacts are anything with a ``release()`` method; the cache never
    inspects them.  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._exact: collections.OrderedDict = collections.OrderedDict()
        self._relaxed: dict = {}
        self._shape_misses: dict = {}
        self._lock = threading.Lock()
        self._stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "relaxations": 0,
        }

    def lookup(self, structural_key, shapes) -> tuple:
        """Return ``(artifact or None, build_relaxed)``.

        ``build_relaxed`` asks the caller to compile the miss with
        relaxed (``None``-dimension) external specs and insert it via
        ``insert(..., relaxed=True)``: the structure has now missed on
        shapes alone ``context.relax_retraces`` times.
        """
        with self._lock:
            artifact = self._exact.get((structural_key, shapes))
            if artifact is not None:
                self._exact.move_to_end((structural_key, shapes))
                self._stats["hits"] += 1
                return artifact, False
            artifact = self._relaxed.get(structural_key)
            if artifact is not None:
                self._stats["hits"] += 1
                return artifact, False
            self._stats["misses"] += 1
            seen = self._shape_misses.get(structural_key, 0) + 1
            self._shape_misses[structural_key] = seen
            return None, seen > context.relax_retraces

    def insert(self, structural_key, shapes, artifact, relaxed: bool = False) -> None:
        """Add a compiled artifact, evicting LRU entries past the bound."""
        with self._lock:
            if relaxed:
                old = self._relaxed.pop(structural_key, None)
                if old is not None:
                    old.release()
                self._relaxed[structural_key] = artifact
                self._shape_misses.pop(structural_key, None)
                self._stats["relaxations"] += 1
                return
            self._exact[(structural_key, shapes)] = artifact
            limit = context.trace_cache_size
            while len(self._exact) > limit:
                _, evicted = self._exact.popitem(last=False)
                evicted.release()
                self._stats["evictions"] += 1

    def clear(self) -> None:
        with self._lock:
            for artifact in self._exact.values():
                artifact.release()
            for artifact in self._relaxed.values():
                artifact.release()
            self._exact.clear()
            self._relaxed.clear()
            self._shape_misses.clear()
            for key in self._stats:
                self._stats[key] = 0

    def stats(self) -> dict:
        """Hit/miss/eviction/relaxation counters plus current size."""
        with self._lock:
            stats = dict(self._stats)
            stats["size"] = len(self._exact) + len(self._relaxed)
            return stats


class RetraceWarning(UserWarning):
    """Issued when a Function keeps retracing on recent calls.

    Retracing re-runs the Python function and all compilation stages;
    a high retrace rate usually means tensor shapes (or Python-value
    arguments) vary call-to-call.  The warning names the cache-key leaf
    that differed so the offending argument is identifiable.
    """


#: Sliding window of recent calls inspected for retrace churn.
_RETRACE_WINDOW = 10
#: Number of traces within the window that triggers a warning.
_RETRACE_THRESHOLD = 5
#: Minimum calls between two warnings for the same Function.
_RETRACE_WARN_INTERVAL = 32

#: Bound on the level-0 (fast call path) route map; cleared wholesale
#: when exceeded — routes re-record lazily on the next slow-path call.
_FAST_KEY_LIMIT = 1024

#: How many distinct concrete input-shape tuples a symbolic trace
#: remembers for per-specialization memory-plan reporting.
_SEEN_SHAPE_LIMIT = 8

#: Every live Function, so test harnesses can reset the rate-limited
#: RetraceWarning state between tests (the warn interval otherwise
#: suppresses warnings across test boundaries).
_LIVE_FUNCTIONS: "weakref.WeakSet" = weakref.WeakSet()


def reset_retrace_warning_state() -> None:
    """Reset every live Function's retrace-churn warning state.

    The RetraceWarning machinery is deliberately rate-limited
    (``_RETRACE_WARN_INTERVAL`` calls between warnings, a sliding
    window of recent traces): correct for a long-lived program, wrong
    across test boundaries, where one test's churn can suppress — or
    trigger — another test's warning.  Harnesses call this alongside
    the context-knob resets.
    """
    for fn in list(_LIVE_FUNCTIONS):
        with fn._lock:
            fn._recent_traces.clear()
            fn._call_index = 0
            fn._last_warn_index = None
            fn._last_trace_key = None


def _describe_key_leaf(leaf) -> str:
    if isinstance(leaf, tuple) and leaf and leaf[0] == "tensor":
        dtype, shape = leaf[1], leaf[2]
        return f"tensor<{getattr(dtype, 'name', dtype)}, shape={shape}>"
    return repr(leaf)


def _diff_cache_keys(prev: tuple, new: tuple) -> str:
    """Human-readable first difference between two trace-cache keys."""
    if prev[0] != new[0]:
        return f"device changed: {prev[0]!r} -> {new[0]!r}"
    for i, (a, b) in enumerate(zip(prev[1:], new[1:])):
        if a != b:
            return (
                f"argument leaf #{i} changed: "
                f"{_describe_key_leaf(a)} -> {_describe_key_leaf(b)}"
            )
    return f"argument count changed: {len(prev) - 1} -> {len(new) - 1}"


class ConcreteFunction:
    """A single traced instantiation: fixed signature, executable graph."""

    def __init__(
        self,
        name: str,
        graph: "tracing.FuncGraph",
        flat_outputs: list,
        output_structure,
        num_explicit_inputs: int,
        jit_compile: bool = False,
        pipeline: Optional[CompilationPipeline] = None,
    ) -> None:
        self.name = name
        self.func_graph = graph
        self.captured_externals = list(graph.captured_externals)
        self.graph_function = GraphFunction(
            name=name,
            graph=graph,
            inputs=list(graph.inputs) + list(graph.capture_placeholders),
            outputs=flat_outputs,
        )
        self.output_structure = output_structure
        self.num_explicit_inputs = num_explicit_inputs
        self.jit_compile = jit_compile
        self.pipeline = pipeline if pipeline is not None else CompilationPipeline()
        # XLA executables per concrete input-shape tuple.  A fully static
        # trace has exactly one entry (key None); a symbolic (relaxed)
        # trace lazily specializes one executable per shape it actually
        # sees, all under this single trace.  ``False`` marks
        # uncompilable (e.g. py_func inside; fall back to the plan).
        self._compiled_cache: dict = {}
        self._compile_lock = threading.Lock()
        self._forward_backward = None
        self._fb_lock = threading.Lock()
        # Concrete input-shape tuples this trace has actually run with,
        # LRU-bounded; only populated when the signature has symbolic
        # dims.  ``execution_stats`` builds a specialized memory plan
        # per remembered shape (cached in ``_specialized_plans``) so a
        # symbolic trace still reports concrete peak-live-bytes.
        self._symbolic: Optional[bool] = None
        self._seen_shapes: collections.OrderedDict = collections.OrderedDict()
        self._specialized_plans: dict = {}

    # -- introspection --------------------------------------------------------
    @property
    def graph(self):
        return self.func_graph

    @property
    def num_nodes(self) -> int:
        return len(self.func_graph.nodes)

    def definition(self) -> dict:
        return self.graph_function.definition()

    # -- execution ---------------------------------------------------------
    def __call__(self, *flat_tensor_args):
        """Invoke with flat tensor inputs (structure handled by Function)."""
        full_inputs = list(flat_tensor_args) + self.captured_externals
        if self._symbolic is not False:
            self._note_shapes(full_inputs)
        if records.could_record(full_inputs):
            flat_results = self._call_with_tape(full_inputs)
        else:
            flat_results = self._call_plain(full_inputs)
        return self._pack_outputs(flat_results)

    def _call_plain(self, full_inputs: list) -> list:
        if self.jit_compile:
            compiled = self._get_compiled(full_inputs)
            if compiled is not None:
                return self._call_compiled(compiled, full_inputs)
        from repro.ops.functional_ops import call_graph_function

        return list(call_graph_function(self.graph_function, full_inputs))

    @property
    def _compiled(self):
        """The executable of a fully static trace (compat accessor).

        Symbolic traces hold one executable per concrete shape in
        ``_compiled_cache``; this view exposes the single static-shape
        entry the way the pre-pipeline attribute did (None = not yet
        compiled, False = uncompilable).
        """
        return self._compiled_cache.get(None)

    def _compile_key(self, full_inputs: list):
        """Per-shape cache key: None when this trace is fully static."""
        if all(spec.is_fully_defined for spec in self.graph_function.input_specs):
            return None
        return tuple(t.shape.as_tuple() for t in full_inputs)

    def _get_compiled(self, full_inputs: list):
        """The XLA-sim executable for these inputs (None if uncompilable).

        XLA needs static shapes (its cost model and fusion heuristics
        consume byte counts), so a symbolic trace is specialized to the
        concrete input shapes via the pipeline before compiling; the
        resulting executable is cached per shape tuple.
        """
        key = self._compile_key(full_inputs)
        with self._compile_lock:
            compiled = self._compiled_cache.get(key)
            if compiled is None:
                from repro.framework.errors import UnimplementedError

                try:
                    if key is None:
                        compiled = self.pipeline.compile(self.graph_function)
                    else:
                        compiled = self.pipeline.compile(
                            self.graph_function,
                            input_specs=[
                                TensorSpec(t.shape, t.dtype) for t in full_inputs
                            ],
                        )
                except UnimplementedError:
                    compiled = False  # e.g. py_func inside; fall back
                self._compiled_cache[key] = compiled
        return compiled or None

    def _note_shapes(self, full_inputs: list) -> None:
        """Remember the concrete shapes a symbolic trace runs with."""
        if self._symbolic is None:
            self._symbolic = not all(
                spec.is_fully_defined
                for spec in self.graph_function.input_specs
            )
        if not self._symbolic:
            return
        try:
            key = tuple(t.shape.as_tuple() for t in full_inputs)
        except Exception:
            return  # e.g. an async tensor whose shape is unresolved
        with self._compile_lock:
            if key in self._seen_shapes:
                self._seen_shapes.move_to_end(key)
                return
            self._seen_shapes[key] = True
            while len(self._seen_shapes) > _SEEN_SHAPE_LIMIT:
                evicted, _ = self._seen_shapes.popitem(last=False)
                self._specialized_plans.pop(evicted, None)

    def specialized_memory_plan(self, shapes: tuple) -> Optional[dict]:
        """The static memory plan at one concrete input-shape tuple.

        Specializes the (symbolic) trace to ``shapes`` through the
        pipeline — no Python re-execution — and returns the resulting
        plan's memory report, cached per shape tuple.  Returns None when
        specialization fails (e.g. the shapes are incompatible).
        """
        with self._compile_lock:
            plan = self._specialized_plans.get(shapes)
        if plan is not None:
            return plan
        gf = self.graph_function
        if len(shapes) != len(gf.input_specs):
            return None
        specs = [
            TensorSpec(shape, spec.dtype)
            for shape, spec in zip(shapes, gf.input_specs)
        ]
        try:
            specialized = self.pipeline.specialize(gf, specs)
            plan = dict(specialized.plan().memory_plan or {})
        except Exception:
            return None
        with self._compile_lock:
            self._specialized_plans[shapes] = plan
        return plan

    def release(self) -> None:
        """Drop derived artifacts so an evicted trace frees its memory.

        Clears the per-shape compiled executables, the forward/backward
        gradient graphs, the rematerializing backward, and the execution
        plan.  All are rebuilt lazily if the trace is ever called again,
        so releasing is safe even while callers hold a reference.
        """
        with self._compile_lock:
            self._compiled_cache.clear()
            self._specialized_plans.clear()
        with self._fb_lock:
            if not isinstance(self._forward_backward, Exception):
                self._forward_backward = None
        gf = self.graph_function
        gf.release_plan()
        if hasattr(gf, "_remat_backward"):
            del gf._remat_backward

    def _call_compiled(self, compiled, full_inputs: list) -> list:
        import numpy as np

        from repro.framework import dtypes as _dtypes

        explicit = context.current_device_name()
        device = (
            context.get_device(explicit) if explicit else context.cpu_device()
        )
        arrays = [t._array for t in full_inputs]
        results = compiled.execute(arrays, device)
        outputs = []
        for arr, spec in zip(results, self.graph_function.output_specs):
            if not isinstance(arr, np.ndarray):
                arr = np.asarray(arr)
            if spec.dtype in (_dtypes.resource, _dtypes.variant):
                outputs.append(Tensor._from_buffer(arr, spec.dtype, device))
            else:
                outputs.append(
                    Tensor._from_buffer(device.wrap_output(arr), spec.dtype, device)
                )
        return outputs

    def _call_with_tape(self, full_inputs: list) -> list:
        """Run the forward variant and record a staged backward (§4.2)."""
        from repro.framework.errors import UnimplementedError
        from repro.ops.functional_ops import call_graph_function

        try:
            fb = self._get_forward_backward()
        except UnimplementedError as exc:
            # The function contains an op with no gradient (e.g. a staged
            # While).  The forward pass still runs; asking for the
            # gradient surfaces the error.
            message = str(exc)
            with records.suspend():
                results = self._call_plain(full_inputs)

            def failing_backward(*out_grads):
                raise UnimplementedError(message)

            records.record_operation(
                "PartitionedCall",
                {"f": self.graph_function},
                full_inputs,
                results,
                backward_function=failing_backward,
            )
            return results
        with records.suspend():
            results = list(call_graph_function(fb.forward_fn, full_inputs))
        user_outputs = results[: fb.num_outputs]

        def backward_function(*out_grads):
            from repro.core import backprop
            from repro.ops import array_ops

            user_grads = out_grads[: fb.num_outputs]
            extra_grads = out_grads[fb.num_outputs :]
            if any(g is not None for g in extra_grads):
                # Higher-order case: an outer tape differentiated through
                # the saved intermediates.  Fall back to a backward that
                # accepts gradients for every forward output.
                return backprop.graph_function_backward(
                    fb.forward_fn, full_inputs, results, list(out_grads)
                )
            if fb.backward_fn is None:
                return [None] * len(full_inputs)
            seeds = []
            for i in fb.diff_output_indices:
                g = user_grads[i]
                if g is None:
                    g = backprop.zero_seed(user_outputs[i])
                seeds.append(g)
            saved = [results[j] for j in fb.boundary_indices]
            produced = list(
                call_graph_function(fb.backward_fn, saved + seeds)
            )
            grads = []
            it = iter(produced)
            for has_grad in fb.input_grad_mask:
                grads.append(next(it) if has_grad else None)
            return grads

        # The tape sees every forward output — named outputs *and*
        # intermediates — so gradients that flow into the intermediates
        # (higher-order differentiation) stay connected (§4.2).
        records.record_operation(
            "PartitionedCall",
            {"f": fb.forward_fn},
            full_inputs,
            results,
            backward_function=backward_function,
        )
        return user_outputs

    def _get_forward_backward(self):
        with self._fb_lock:
            if isinstance(self._forward_backward, Exception):
                raise self._forward_backward
            if self._forward_backward is None:
                from repro.core import backprop
                from repro.framework.errors import UnimplementedError

                try:
                    self._forward_backward = backprop.build_forward_backward(
                        self.graph_function
                    )
                except UnimplementedError as exc:
                    self._forward_backward = exc
                    raise
            return self._forward_backward

    def _pack_outputs(self, flat_results: list):
        structure = self.output_structure
        if structure is None:
            return None

        def restore(leaf):
            return None if leaf is None else flat_results[leaf]

        if not nest.is_nested(structure):
            return restore(structure)
        return nest.map_structure(restore, structure)

    def __repr__(self) -> str:
        return (
            f"<ConcreteFunction {self.name!r}: "
            f"{self.num_explicit_inputs} args + "
            f"{len(self.captured_externals)} captures, "
            f"{self.num_nodes} nodes>"
        )


def _leaf_key(leaf):
    """Cache-key encoding for one argument leaf (binding-time analysis).

    Tensors become abstract types; variables specialize by identity (they
    are bound into the trace by reference); other Python values by value
    when hashable, by identity otherwise — "non-tensor values are encoded
    by object identity" (§4.6).
    """
    if isinstance(leaf, TensorBase):
        return ("tensor", leaf.dtype, leaf.shape)
    if isinstance(leaf, TensorSpec):
        # A spec leaf (get_concrete_function/save) keys exactly like a
        # tensor of that abstract type, symbolic dims included.
        return ("tensor", leaf.dtype, leaf.shape)
    if isinstance(leaf, Variable):
        return ("variable", id(leaf))
    if isinstance(leaf, np.ndarray):
        return ("tensor", dtypes.as_dtype(leaf.dtype), tuple(leaf.shape))
    try:
        hash(leaf)
    except TypeError:
        return ("id", id(leaf))
    return ("value", type(leaf).__name__, leaf)


def _is_tensor_leaf(leaf) -> bool:
    # TensorSpec counts: a spec leaf stands in for a tensor argument at
    # trace time (get_concrete_function with symbolic shapes).
    return isinstance(leaf, (TensorBase, np.ndarray, Tensor, TensorSpec))


def _contains_spec(structure) -> bool:
    return any(isinstance(leaf, TensorSpec) for leaf in nest.flatten(structure))


class _RelaxedTrace:
    """A symbolic trace plus the (possibly widened) specs it was traced at."""

    __slots__ = ("specs", "concrete")

    def __init__(self, specs: list, concrete: ConcreteFunction) -> None:
        self.specs = specs
        self.concrete = concrete


class Function:
    """The polymorphic callable returned by the ``function`` decorator."""

    def __init__(
        self,
        python_function: Callable,
        name: Optional[str] = None,
        input_signature: Optional[Sequence[TensorSpec]] = None,
        jit_compile: bool = False,
        experimental_relax_shapes: Optional[bool] = None,
        autograph: Optional[bool] = None,
    ) -> None:
        self._python_function = python_function
        self._autograph = autograph
        # Converted lazily on the first trace (the knob may change
        # between construction and first call), then cached: conversion
        # parses and recompiles source, which must not re-run per trace.
        self._converted_function: Optional[Callable] = None
        self._jit_compile = bool(jit_compile)
        self._name = name or getattr(python_function, "__name__", "fn")
        self._input_signature = (
            None if input_signature is None else list(input_signature)
        )
        self._experimental_relax_shapes = experimental_relax_shapes
        self._pipeline = CompilationPipeline()
        # Level 1: exact concrete signatures, LRU-ordered (most recently
        # used last).  Bounded by ``context.trace_cache_size``.
        self._cache: collections.OrderedDict = collections.OrderedDict()
        # Level 2: one symbolic trace per dtype/rank pattern, installed
        # by the relaxation policy.  Bounded by pattern diversity.
        self._relaxed: dict = {}
        # Shape-only misses per pattern, with the running most-general
        # merge of the concrete specs seen so far.
        self._pattern_seen: dict = {}
        # Level 0: (device, dtype/shape per arg) -> where the full
        # binding-time analysis routed that call.  Serves the common
        # steady-state call — all-positional eager tensors, no kwargs —
        # without flatten/bind/key construction (§4.6's lookup cost).
        self._fast_keys: dict = {}
        self._stats = {
            "hits": 0,
            "misses": 0,
            "traces": 0,
            "relaxations": 0,
            "evictions": 0,
        }
        self._recent_traces: collections.deque = collections.deque(
            maxlen=_RETRACE_WINDOW
        )
        self._call_index = 0
        self._last_warn_index: Optional[int] = None
        self._last_trace_key: Optional[tuple] = None
        self._lock = threading.RLock()
        self._trace_count = 0
        self._created_variables: list[Variable] = []
        self._lifted_initializer_done = False
        functools.update_wrapper(self, python_function)
        try:
            self._signature = inspect.signature(python_function)
        except (TypeError, ValueError):
            self._signature = None
        _LIVE_FUNCTIONS.add(self)

    # -- public surface -------------------------------------------------------
    @property
    def python_function(self) -> Callable:
        return self._python_function

    @property
    def trace_count(self) -> int:
        """How many times the Python function has been traced (for tests)."""
        return self._trace_count

    def cache_stats(self) -> dict:
        """Trace-cache counters: hits, misses, traces, relaxations, evictions.

        ``hits`` counts calls served from either cache level without
        tracing; ``misses`` counts calls that required one; ``traces``
        counts actual traces of the Python function (a state-creating
        first call contributes two, per the two-trace contract);
        ``relaxations`` counts symbolic traces installed or widened by
        the relaxation policy; ``evictions`` counts exact traces dropped
        by the LRU bound.  ``size`` is the current number of live traces
        across both levels.
        """
        with self._lock:
            stats = dict(self._stats)
            stats["size"] = len(self._cache) + len(self._relaxed)
            return stats

    def execution_stats(self, profile=None) -> dict:
        """Graph-execution statistics for every live trace.

        Returns a dict with one entry per trace (exact and relaxed
        cache levels), each reporting the fusion outcome (node counts
        before/after the ``fuse`` pass, fused-region sizes from largest
        to smallest) and the executor's static memory plan (peak
        planned live bytes, in-place donation count, plus the byte size
        of the trace's own input signature — inputs are caller-held and
        count zero inside the plan).  A symbolic (shape-relaxed) trace
        reports its plan as a lower bound and additionally lists a
        ``specializations`` entry with the concrete peak-live-bytes for
        every input-shape tuple it has actually run with (built on
        demand via pipeline specialization, cached per shape).  When
        the concrete function has already built its staged
        forward/backward pair, those graphs are reported too — the
        backward function runs through the same fusion pass.

        Per-op wall times come from the existing dispatch-interceptor
        hooks: pass a :class:`repro.runtime.profiler.Profile` that was
        active while the function ran (or call this inside an active
        ``with Profile()`` block) and the report includes its per-op
        timing table; fused regions appear under ``FusedElementwise``.
        """
        from repro.graph.fusion import _spec_bytes
        from repro.runtime import profiler as _profiler

        def describe(role: str, gf) -> dict:
            fstats = getattr(gf, "_fusion_stats", None)
            plan = gf.plan().memory_plan or {}
            input_bytes = 0
            input_lb = False
            for spec in gf.input_specs:
                nbytes, lb = _spec_bytes(spec)
                input_bytes += nbytes
                input_lb |= lb
            return {
                "role": role,
                "name": gf.name,
                "nodes_before_fusion": (
                    fstats["nodes_before"] if fstats else gf.num_nodes
                ),
                "nodes_after_fusion": (
                    fstats["nodes_after"] if fstats else gf.num_nodes
                ),
                "fused_regions": list(fstats["regions"]) if fstats else [],
                "fused_ops": fstats["fused_ops"] if fstats else 0,
                "peak_live_bytes": plan.get("peak_live_bytes", 0),
                "peak_is_lower_bound": plan.get("lower_bound", False),
                "donated_nodes": plan.get("donated_nodes", 0),
                # Inputs are caller-held buffers the plan itself counts
                # as zero-byte placeholders; reporting them lets callers
                # compare configurations whose split between "saved by
                # the caller" and "live inside the graph" differs (e.g.
                # checkpointed vs not).
                "input_bytes": input_bytes,
                "input_bytes_is_lower_bound": input_lb,
            }

        with self._lock:
            concretes = list(self._cache.values()) + [
                entry.concrete for entry in self._relaxed.values()
            ]
        traces = []
        for concrete in concretes:
            trace = describe("forward", concrete.graph_function)
            trace["trace"] = concrete.name
            with concrete._compile_lock:
                seen_shapes = list(concrete._seen_shapes)
            if seen_shapes:
                # Symbolic trace: the plan above is a lower bound over
                # unknown dims.  Report the concrete number for every
                # shape this trace has actually run with.
                specializations = []
                for shape_key in seen_shapes:
                    plan = concrete.specialized_memory_plan(shape_key)
                    if plan is None:
                        continue
                    specializations.append(
                        {
                            "input_shapes": [list(s) for s in shape_key],
                            "peak_live_bytes": plan.get("peak_live_bytes", 0),
                            "peak_is_lower_bound": plan.get(
                                "lower_bound", False
                            ),
                            "donated_nodes": plan.get("donated_nodes", 0),
                        }
                    )
                if specializations:
                    trace["specializations"] = specializations
            fb = concrete._forward_backward
            if fb is not None and not isinstance(fb, Exception):
                trace["staged_forward"] = describe("staged_forward", fb.forward_fn)
                if fb.backward_fn is not None:
                    trace["staged_backward"] = describe(
                        "staged_backward", fb.backward_fn
                    )
            traces.append(trace)
        prof = profile if profile is not None else _profiler.active
        per_op_time = {}
        if prof is not None:
            per_op_time = {
                name: {
                    "count": stats.count,
                    "total_ms": stats.total_seconds * 1e3,
                    "mean_us": stats.mean_us,
                }
                for name, stats in prof.ops.items()
            }
        return {
            "traces": traces,
            "per_op_time": per_op_time,
            "cache": self.cache_stats(),
        }

    def __get__(self, instance, owner=None):
        """Support decorating methods: bind like a normal function would."""
        if instance is None:
            return self
        bound = functools.partial(self.__call__, instance)
        bound.get_concrete_function = functools.partial(
            self.get_concrete_function, instance
        )
        return bound

    def __call__(self, *args, **kwargs):
        concrete = None
        fast_key = None
        if not kwargs and self._input_signature is None:
            fast_key = self._fast_call_key(args)
            if fast_key is not None:
                concrete = self._lookup_fast(fast_key)
                if concrete is not None:
                    return concrete(*args)
        concrete, flat_tensors, route = self._maybe_trace(args, kwargs)
        if (
            fast_key is not None
            and route is not None
            and len(flat_tensors) == len(args)
            and all(t is a for t, a in zip(flat_tensors, args))
        ):
            with self._lock:
                if len(self._fast_keys) > _FAST_KEY_LIMIT:
                    self._fast_keys.clear()
                self._fast_keys[fast_key] = route
        return concrete(*flat_tensors)

    @staticmethod
    def _fast_call_key(args) -> Optional[tuple]:
        """Cheap exact key for an all-eager-Tensor positional call.

        Anything else — variables, ndarrays, nested structures, async
        tensors (whose shape may not be resolved yet) — returns None and
        takes the full binding-time analysis path.
        """
        parts = [context.current_device_name()]
        for a in args:
            if type(a) is not Tensor:
                return None
            parts.append(a._dtype)
            parts.append(a._array.shape)
        return tuple(parts)

    def _lookup_fast(self, fast_key) -> Optional[ConcreteFunction]:
        """Serve a previously-routed call shape without rebuilding keys.

        Routes point into the exact or relaxed cache rather than at a
        concrete directly, so eviction and relaxed-trace widening keep
        working: a dangling route simply falls back to the slow path,
        which re-records it.
        """
        with self._lock:
            route = self._fast_keys.get(fast_key)
            if route is None:
                return None
            kind, key = route
            if kind == "exact":
                concrete = self._cache.get(key)
                if concrete is None:
                    return None
                self._cache.move_to_end(key)
            else:
                entry = self._relaxed.get(key)
                if entry is None:
                    return None
                concrete = entry.concrete
            self._call_index += 1
            self._stats["hits"] += 1
            self._recent_traces.append(False)
            return concrete

    def get_concrete_function(self, *args, **kwargs) -> ConcreteFunction:
        """The monomorphic function this call signature binds to.

        Tensor arguments may be replaced by :class:`TensorSpec` leaves —
        including symbolic (``None``-dimension) specs — to select or
        force a shape-polymorphic trace without materializing example
        data, e.g. for export via :func:`repro.saved_function.save`.
        """
        if _contains_spec(args) or _contains_spec(kwargs):
            return self._concrete_from_specs(args, kwargs)
        concrete, _, _ = self._maybe_trace(args, kwargs)
        return concrete

    def _concrete_from_specs(self, args, kwargs) -> ConcreteFunction:
        """Trace (or fetch) the concrete function for spec-typed arguments.

        TensorSpec leaves stand in for tensors at their declared
        dtype/shape; any concrete tensor leaves mixed in are abstracted
        to their specs.  A symbolic spec installs the resulting trace in
        the relaxed cache level too, so later *calls* with compatible
        concrete shapes are served by the same trace.
        """
        if self._input_signature is not None:
            raise InvalidArgumentError(
                f"Function {self._name!r} has an input_signature; call "
                "get_concrete_function() without spec arguments"
            )
        args, kwargs = self._canonicalize(args, kwargs)
        flat = nest.flatten((list(args), kwargs))
        specs = []
        for leaf in flat:
            if isinstance(leaf, TensorSpec):
                specs.append(leaf)
            elif _is_tensor_leaf(leaf):
                t = leaf if isinstance(leaf, TensorBase) else convert_to_tensor(leaf)
                specs.append(TensorSpec.from_tensor(t))
        key = self._cache_key(flat)
        with self._lock:
            self._call_index += 1
            concrete = self._cache.get(key)
            if concrete is not None:
                self._cache.move_to_end(key)
                self._stats["hits"] += 1
                return concrete
            self._stats["misses"] += 1
            concrete = self._trace(args, kwargs, [], override_specs=specs)
            self._insert_exact(key, concrete)
            self._last_trace_key = key
            if any(not s.is_fully_defined for s in specs):
                pk = self._pattern_key(key)
                if pk not in self._relaxed:
                    self._relaxed[pk] = _RelaxedTrace(list(specs), concrete)
                    self._stats["relaxations"] += 1
        return concrete

    # -- binding-time analysis ----------------------------------------------
    def _canonicalize(self, args, kwargs):
        if self._signature is not None:
            try:
                bound = self._signature.bind(*args, **kwargs)
            except TypeError:
                return args, kwargs
            bound.apply_defaults()
            return tuple(bound.arguments.values()), {}
        return args, kwargs

    def _split_leaves(self, args, kwargs):
        """Separate tensor leaves from static Python leaves."""
        flat = nest.flatten((list(args), kwargs))
        tensor_leaves = []
        for leaf in flat:
            if isinstance(leaf, TensorSpec):
                raise InvalidArgumentError(
                    f"Function {self._name!r} was called with a TensorSpec "
                    f"argument ({leaf}); specs select traces via "
                    "get_concrete_function()/save(), they cannot be executed"
                )
            if _is_tensor_leaf(leaf):
                tensor_leaves.append(
                    leaf
                    if isinstance(leaf, TensorBase)
                    else convert_to_tensor(leaf)
                )
        return flat, tensor_leaves

    def _cache_key(self, flat_leaves) -> tuple:
        key = [context.current_device_name()]
        for leaf in flat_leaves:
            key.append(_leaf_key(leaf))
        return tuple(key)

    def _pattern_key(self, key: tuple) -> tuple:
        """The cache key with tensor leaves abstracted to (dtype, rank).

        Two exact keys with the same pattern differ only in tensor
        *shapes* — exactly the retraces the relaxation policy is allowed
        to collapse into one symbolic trace.
        """
        pattern = [key[0]]  # device
        for leaf in key[1:]:
            if isinstance(leaf, tuple) and leaf and leaf[0] == "tensor":
                dtype, shape = leaf[1], leaf[2]
                rank = shape.rank if hasattr(shape, "rank") else len(shape)
                pattern.append(("tensor", dtype, rank))
            else:
                pattern.append(leaf)
        return tuple(pattern)

    def _relax_enabled(self) -> bool:
        if self._input_signature is not None:
            return False  # the signature already pins one relaxed trace
        if self._experimental_relax_shapes is not None:
            return self._experimental_relax_shapes
        return context.relax_shapes

    def _maybe_trace(self, args, kwargs):
        """Resolve a call to ``(concrete, tensor_leaves, route)``.

        ``route`` names the cache slot that served the call (for the
        level-0 fast-key map) or is None when the call is not routable.
        It is *returned*, never stored on the instance: concurrent
        callers each get their own route, so one thread's miss cannot
        cross-wire another thread's fast-key recording.
        """
        args, kwargs = self._canonicalize(args, kwargs)
        if self._input_signature is not None:
            return self._trace_with_signature(args, kwargs)
        flat_leaves, tensor_leaves = self._split_leaves(args, kwargs)
        key = self._cache_key(flat_leaves)
        with self._lock:
            self._call_index += 1
            concrete = self._cache.get(key)
            if concrete is not None:
                self._cache.move_to_end(key)
                self._stats["hits"] += 1
                self._recent_traces.append(False)
                return concrete, tensor_leaves, ("exact", key)
            if self._relax_enabled() or self._relaxed:
                concrete = self._lookup_relaxed(key, args, kwargs, tensor_leaves)
                if concrete is not None:
                    return concrete, tensor_leaves, ("relaxed", self._pattern_key(key))
            self._stats["misses"] += 1
            self._recent_traces.append(True)
            self._maybe_warn_retrace(key)
            concrete = self._trace(args, kwargs, tensor_leaves)
            self._insert_exact(key, concrete)
            self._last_trace_key = key
        return concrete, tensor_leaves, ("exact", key)

    def _lookup_relaxed(
        self, key, args, kwargs, tensor_leaves
    ) -> Optional[ConcreteFunction]:
        """Second cache level: serve, widen, or install a symbolic trace.

        Called under the lock on an exact-cache miss.  Returns None when
        the relaxation policy decides an exact trace should happen
        instead (pattern not yet seen often enough).
        """
        pk = self._pattern_key(key)
        entry = self._relaxed.get(pk)
        if entry is not None:
            if len(tensor_leaves) == len(entry.specs) and all(
                t.shape.is_subtype_of(spec.shape)
                for t, spec in zip(tensor_leaves, entry.specs)
            ):
                self._stats["hits"] += 1
                self._recent_traces.append(False)
                return entry.concrete
            if not self._relax_enabled():
                # The entry was installed explicitly (a symbolic
                # get_concrete_function); incompatible shapes take a
                # normal exact trace rather than widening it.
                return None
            # Incompatible with the current symbolic specs (e.g. a dim
            # that had been stable so far started varying): widen and
            # retrace once; the evicted trace releases its artifacts.
            widened = [
                spec.most_general(TensorSpec.from_tensor(t))
                for spec, t in zip(entry.specs, tensor_leaves)
            ]
            self._stats["misses"] += 1
            self._recent_traces.append(True)
            concrete = self._trace(args, kwargs, tensor_leaves, override_specs=widened)
            entry.concrete.release()
            self._relaxed[pk] = _RelaxedTrace(widened, concrete)
            self._stats["relaxations"] += 1
            return concrete
        if not self._relax_enabled():
            return None
        seen = self._pattern_seen.get(pk)
        current = [TensorSpec.from_tensor(t) for t in tensor_leaves]
        if seen is None:
            # First sighting of this pattern: remember it; the caller
            # performs a normal exact trace.
            self._pattern_seen[pk] = [0, current]
            return None
        seen[0] += 1
        seen[1] = [old.most_general(new) for old, new in zip(seen[1], current)]
        if seen[0] < context.relax_retraces:
            return None
        # K shape-only retraces of this pattern: generalize the varying
        # dimensions to None and trace once, symbolically.
        relaxed_specs = seen[1]
        self._stats["misses"] += 1
        self._recent_traces.append(True)
        concrete = self._trace(
            args, kwargs, tensor_leaves, override_specs=relaxed_specs
        )
        self._relaxed[pk] = _RelaxedTrace(relaxed_specs, concrete)
        self._stats["relaxations"] += 1
        del self._pattern_seen[pk]
        return concrete

    def _insert_exact(self, key, concrete: ConcreteFunction) -> None:
        """Add to the exact level, evicting LRU entries past the bound."""
        self._cache[key] = concrete
        limit = context.trace_cache_size
        while len(self._cache) > limit:
            _, evicted = self._cache.popitem(last=False)
            evicted.release()
            self._stats["evictions"] += 1

    def _maybe_warn_retrace(self, key: tuple) -> None:
        """Rate-limited churn warning, naming the differing key leaf."""
        if self._last_trace_key is None:
            return
        if sum(self._recent_traces) < _RETRACE_THRESHOLD:
            return
        if (
            self._last_warn_index is not None
            and self._call_index - self._last_warn_index < _RETRACE_WARN_INTERVAL
        ):
            return
        self._last_warn_index = self._call_index
        warnings.warn(
            f"Function {self._name!r} retraced {sum(self._recent_traces)} times "
            f"in its last {len(self._recent_traces)} calls; retracing is "
            f"expensive. Last retrace: {_diff_cache_keys(self._last_trace_key, key)}. "
            "Consider an input_signature, or experimental_relax_shapes=True "
            "(env REPRO_RELAX_SHAPES=1) to generalize varying dimensions.",
            RetraceWarning,
            stacklevel=4,
        )

    def _trace_with_signature(self, args, kwargs):
        if kwargs:
            raise InvalidArgumentError(
                "Functions with an input_signature take positional tensor "
                "arguments only"
            )
        flat_args = nest.flatten(list(args))
        specs = self._input_signature
        if len(flat_args) != len(specs):
            raise InvalidArgumentError(
                f"Function {self._name!r} expects {len(specs)} tensor "
                f"arguments (from its input_signature), got {len(flat_args)}"
            )
        tensors = []
        for value, spec in zip(flat_args, specs):
            t = convert_to_tensor(value, dtype=spec.dtype)
            if not spec.is_compatible_with(t):
                raise InvalidArgumentError(
                    f"Argument {t.shape}/{t.dtype} is incompatible with the "
                    f"input signature entry {spec}"
                )
            tensors.append(t)
        key = ("signature", context.current_device_name())
        with self._lock:
            self._call_index += 1
            concrete = self._cache.get(key)
            if concrete is None:
                self._stats["misses"] += 1
                concrete = self._trace(
                    tuple(tensors), {}, tensors, override_specs=list(specs)
                )
                self._cache[key] = concrete
            else:
                self._cache.move_to_end(key)
                self._stats["hits"] += 1
        return concrete, tensors, None

    # -- tracing -----------------------------------------------------------
    def _trace(
        self,
        args,
        kwargs,
        tensor_leaves,
        override_specs: Optional[list[TensorSpec]] = None,
    ) -> ConcreteFunction:
        specs = override_specs or [TensorSpec.from_tensor(t) for t in tensor_leaves]
        created: list[Variable] = []
        with variable_creation_observer(created.append):
            concrete = self._trace_once(args, kwargs, specs)
        if created:
            if self._trace_count > 1 or self._cache or self._relaxed:
                raise FailedPreconditionError(
                    f"Function {self._name!r} created new variables on a "
                    "non-initial trace. State must only be created the first "
                    "time the function is called (paper §4.6)."
                )
            self._created_variables.extend(created)
            # The two-trace contract: re-trace to record post-creation
            # behaviour, and verify no further state is created.
            recheck: list[Variable] = []
            with variable_creation_observer(recheck.append):
                concrete = self._trace_once(args, kwargs, specs)
            if recheck:
                raise FailedPreconditionError(
                    f"Function {self._name!r} created variables on its second "
                    "trace; functions must create state only on their first "
                    "call (paper §4.6)."
                )
        return concrete

    def _traced_callable(self) -> Callable:
        """The function to trace: autograph-converted unless opted out."""
        enabled = (
            self._autograph if self._autograph is not None else context.autograph
        )
        if not enabled:
            return self._python_function
        if self._converted_function is None:
            from repro.autograph import convert

            self._converted_function = convert(self._python_function)
        return self._converted_function

    def _trace_once(self, args, kwargs, specs) -> ConcreteFunction:
        self._trace_count += 1
        self._stats["traces"] += 1
        marked_args, marked_kwargs = self._mark_tensors(args, kwargs)
        name = f"{self._name}_{context.unique_id()}"
        graph, flat_outputs, structure = self._pipeline.trace(
            self._traced_callable(),
            specs,
            name=name,
            structured_args=(marked_args, marked_kwargs),
        )
        concrete = ConcreteFunction(
            name=name,
            graph=graph,
            flat_outputs=flat_outputs,
            output_structure=structure,
            num_explicit_inputs=len(specs),
            jit_compile=self._jit_compile,
            pipeline=self._pipeline,
        )
        self._pipeline.finalize(concrete.graph_function)
        return concrete

    @staticmethod
    def _mark_tensors(args, kwargs):
        def mark(leaf):
            return tracing.TENSOR_MARKER if _is_tensor_leaf(leaf) else leaf

        marked_args = nest.map_structure(mark, list(args))
        marked_kwargs = nest.map_structure(mark, kwargs)
        return tuple(marked_args), marked_kwargs

    def __repr__(self) -> str:
        return (
            f"<repro.function {self._name!r} with "
            f"{len(self._cache) + len(self._relaxed)} traces>"
        )


def function(
    func: Optional[Callable] = None,
    *,
    input_signature: Optional[Sequence[TensorSpec]] = None,
    name: Optional[str] = None,
    jit_compile: bool = False,
    experimental_relax_shapes: Optional[bool] = None,
    autograph: Optional[bool] = None,
):
    """Decorator staging a Python function as graph functions (§4.1, §4.6).

    Usage::

        @repro.function
        def step(x):
            return repro.matmul(x, x)

    or with an explicit signature to pin a single, shape-polymorphic
    trace::

        @repro.function(input_signature=[repro.TensorSpec([None, 8])])
        def step(batch): ...

    ``jit_compile=True`` additionally lowers each trace through the
    XLA-sim compiler (paper §4.4: "the function decorator supports code
    generation via XLA"): elementwise chains fuse into single dispatches
    and, on the simulated TPU, the whole step becomes one program.
    Functions containing ``py_func`` silently fall back to the graph
    executor.

    ``experimental_relax_shapes=True`` enables the trace cache's
    relaxation policy for this function: after
    ``context.relax_retraces`` shape-only retraces of the same
    dtype/rank pattern, the varying dimensions are generalized to
    ``None`` and a single symbolic trace serves all compatible shapes.
    ``False`` disables it; the default ``None`` defers to the global
    ``context.relax_shapes`` knob (env ``REPRO_RELAX_SHAPES``).
    """
    if func is not None:
        return Function(
            func,
            name=name,
            input_signature=input_signature,
            jit_compile=jit_compile,
            experimental_relax_shapes=experimental_relax_shapes,
            autograph=autograph,
        )

    def decorator(f: Callable) -> Function:
        return Function(
            f,
            name=name,
            input_signature=input_signature,
            jit_compile=jit_compile,
            experimental_relax_shapes=experimental_relax_shapes,
            autograph=autograph,
        )

    return decorator
