"""The polymorphic ``function`` decorator — the tracing JIT (paper §4.6).

``function(f)`` returns a callable that is "an opt-in, JIT compiler
that generates an optimized polymorphic function for a Python function,
creating concrete functions backed by dataflow graphs via a
straightforward binding-time analysis at run-time" (§4.1).

The moving parts, each mirroring a paragraph of §4.6:

* **Polymorphism** — a trace cache maps inferred input signatures
  (tensors abstracted to dtype/shape, non-tensor values encoded by
  value or identity, plus the requested device) to monomorphic
  :class:`ConcreteFunction` objects.
* **Input signatures** — an explicit ``input_signature`` pins a single
  trace with relaxed shapes.
* **Lexical closure** — tensors and variables the Python function
  closes over are captured as silent extra inputs; variables by
  reference (Listing 7).
* **Composition** — calling a traced function inside another trace
  stages a single call operation (Listing 8 / Figure 2).
* **State creation** — variables may only be created on the first
  trace; when that happens the function is traced a second time, and
  any later creation raises (the two-trace contract).
* **Tape integration** — calling a concrete function under a watching
  tape runs the *forward* variant (outputs + intermediates) and records
  a custom backward that invokes a staged backward function (§4.2).
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Callable, Optional, Sequence

import numpy as np

from repro.framework import dtypes, nest
from repro.framework.errors import (
    FailedPreconditionError,
    InvalidArgumentError,
)
from repro.runtime import records
from repro.runtime.context import context
from repro.tensor import Tensor, TensorBase, TensorSpec, convert_to_tensor
from repro.core import tracing
from repro.core.variables import Variable, variable_creation_observer
from repro.graph.function import GraphFunction

__all__ = ["function", "Function", "ConcreteFunction"]


class ConcreteFunction:
    """A single traced instantiation: fixed signature, executable graph."""

    def __init__(
        self,
        name: str,
        graph: "tracing.FuncGraph",
        flat_outputs: list,
        output_structure,
        num_explicit_inputs: int,
        jit_compile: bool = False,
    ) -> None:
        self.name = name
        self.func_graph = graph
        self.captured_externals = list(graph.captured_externals)
        self.graph_function = GraphFunction(
            name=name,
            graph=graph,
            inputs=list(graph.inputs) + list(graph.capture_placeholders),
            outputs=flat_outputs,
        )
        self.output_structure = output_structure
        self.num_explicit_inputs = num_explicit_inputs
        self.jit_compile = jit_compile
        self._compiled = None
        self._forward_backward = None
        self._fb_lock = threading.Lock()

    # -- introspection --------------------------------------------------------
    @property
    def graph(self):
        return self.func_graph

    @property
    def num_nodes(self) -> int:
        return len(self.func_graph.nodes)

    def definition(self) -> dict:
        return self.graph_function.definition()

    # -- execution ---------------------------------------------------------
    def __call__(self, *flat_tensor_args):
        """Invoke with flat tensor inputs (structure handled by Function)."""
        full_inputs = list(flat_tensor_args) + self.captured_externals
        if records.could_record(full_inputs):
            flat_results = self._call_with_tape(full_inputs)
        else:
            flat_results = self._call_plain(full_inputs)
        return self._pack_outputs(flat_results)

    def _call_plain(self, full_inputs: list) -> list:
        if self.jit_compile:
            compiled = self._get_compiled()
            if compiled is not None:
                return self._call_compiled(compiled, full_inputs)
        from repro.ops.functional_ops import call_graph_function

        return list(call_graph_function(self.graph_function, full_inputs))

    def _get_compiled(self):
        """The XLA-sim executable for this trace (None if uncompilable)."""
        if self._compiled is None:
            from repro.framework.errors import UnimplementedError
            from repro.xla.compiler import compile_function

            try:
                self._compiled = compile_function(self.graph_function)
            except UnimplementedError:
                self._compiled = False  # e.g. py_func inside; fall back
        return self._compiled or None

    def _call_compiled(self, compiled, full_inputs: list) -> list:
        import numpy as np

        from repro.framework import dtypes as _dtypes

        explicit = context.current_device_name()
        device = (
            context.get_device(explicit) if explicit else context.cpu_device()
        )
        arrays = [t._array for t in full_inputs]
        results = compiled.execute(arrays, device)
        outputs = []
        for arr, spec in zip(results, self.graph_function.output_specs):
            if not isinstance(arr, np.ndarray):
                arr = np.asarray(arr)
            if spec.dtype in (_dtypes.resource, _dtypes.variant):
                outputs.append(Tensor._from_buffer(arr, spec.dtype, device))
            else:
                outputs.append(
                    Tensor._from_buffer(device.wrap_output(arr), spec.dtype, device)
                )
        return outputs

    def _call_with_tape(self, full_inputs: list) -> list:
        """Run the forward variant and record a staged backward (§4.2)."""
        from repro.framework.errors import UnimplementedError
        from repro.ops.functional_ops import call_graph_function

        try:
            fb = self._get_forward_backward()
        except UnimplementedError as exc:
            # The function contains an op with no gradient (e.g. a staged
            # While).  The forward pass still runs; asking for the
            # gradient surfaces the error.
            message = str(exc)
            with records.suspend():
                results = self._call_plain(full_inputs)

            def failing_backward(*out_grads):
                raise UnimplementedError(message)

            records.record_operation(
                "PartitionedCall",
                {"f": self.graph_function},
                full_inputs,
                results,
                backward_function=failing_backward,
            )
            return results
        with records.suspend():
            results = list(call_graph_function(fb.forward_fn, full_inputs))
        user_outputs = results[: fb.num_outputs]

        def backward_function(*out_grads):
            from repro.core import backprop
            from repro.ops import array_ops

            user_grads = out_grads[: fb.num_outputs]
            extra_grads = out_grads[fb.num_outputs :]
            if any(g is not None for g in extra_grads):
                # Higher-order case: an outer tape differentiated through
                # the saved intermediates.  Fall back to a backward that
                # accepts gradients for every forward output.
                return backprop.graph_function_backward(
                    fb.forward_fn, full_inputs, results, list(out_grads)
                )
            if fb.backward_fn is None:
                return [None] * len(full_inputs)
            seeds = []
            for i in fb.diff_output_indices:
                g = user_grads[i]
                if g is None:
                    g = backprop.zero_seed(user_outputs[i])
                seeds.append(g)
            saved = [results[j] for j in fb.boundary_indices]
            produced = list(
                call_graph_function(fb.backward_fn, saved + seeds)
            )
            grads = []
            it = iter(produced)
            for has_grad in fb.input_grad_mask:
                grads.append(next(it) if has_grad else None)
            return grads

        # The tape sees every forward output — named outputs *and*
        # intermediates — so gradients that flow into the intermediates
        # (higher-order differentiation) stay connected (§4.2).
        records.record_operation(
            "PartitionedCall",
            {"f": fb.forward_fn},
            full_inputs,
            results,
            backward_function=backward_function,
        )
        return user_outputs

    def _get_forward_backward(self):
        with self._fb_lock:
            if isinstance(self._forward_backward, Exception):
                raise self._forward_backward
            if self._forward_backward is None:
                from repro.core import backprop
                from repro.framework.errors import UnimplementedError

                try:
                    self._forward_backward = backprop.build_forward_backward(
                        self.graph_function
                    )
                except UnimplementedError as exc:
                    self._forward_backward = exc
                    raise
            return self._forward_backward

    def _pack_outputs(self, flat_results: list):
        structure = self.output_structure
        if structure is None:
            return None

        def restore(leaf):
            return None if leaf is None else flat_results[leaf]

        if not nest.is_nested(structure):
            return restore(structure)
        return nest.map_structure(restore, structure)

    def __repr__(self) -> str:
        return (
            f"<ConcreteFunction {self.name!r}: "
            f"{self.num_explicit_inputs} args + "
            f"{len(self.captured_externals)} captures, "
            f"{self.num_nodes} nodes>"
        )


def _leaf_key(leaf):
    """Cache-key encoding for one argument leaf (binding-time analysis).

    Tensors become abstract types; variables specialize by identity (they
    are bound into the trace by reference); other Python values by value
    when hashable, by identity otherwise — "non-tensor values are encoded
    by object identity" (§4.6).
    """
    if isinstance(leaf, TensorBase):
        return ("tensor", leaf.dtype, leaf.shape)
    if isinstance(leaf, Variable):
        return ("variable", id(leaf))
    if isinstance(leaf, np.ndarray):
        return ("tensor", dtypes.as_dtype(leaf.dtype), tuple(leaf.shape))
    try:
        hash(leaf)
    except TypeError:
        return ("id", id(leaf))
    return ("value", type(leaf).__name__, leaf)


def _is_tensor_leaf(leaf) -> bool:
    return isinstance(leaf, (TensorBase, np.ndarray, Tensor))


class Function:
    """The polymorphic callable returned by the ``function`` decorator."""

    def __init__(
        self,
        python_function: Callable,
        name: Optional[str] = None,
        input_signature: Optional[Sequence[TensorSpec]] = None,
        jit_compile: bool = False,
    ) -> None:
        self._python_function = python_function
        self._jit_compile = bool(jit_compile)
        self._name = name or getattr(python_function, "__name__", "fn")
        self._input_signature = (
            None if input_signature is None else list(input_signature)
        )
        self._cache: dict = {}
        self._lock = threading.RLock()
        self._trace_count = 0
        self._created_variables: list[Variable] = []
        self._lifted_initializer_done = False
        functools.update_wrapper(self, python_function)
        try:
            self._signature = inspect.signature(python_function)
        except (TypeError, ValueError):
            self._signature = None

    # -- public surface -------------------------------------------------------
    @property
    def python_function(self) -> Callable:
        return self._python_function

    @property
    def trace_count(self) -> int:
        """How many times the Python function has been traced (for tests)."""
        return self._trace_count

    def __get__(self, instance, owner=None):
        """Support decorating methods: bind like a normal function would."""
        if instance is None:
            return self
        bound = functools.partial(self.__call__, instance)
        bound.get_concrete_function = functools.partial(
            self.get_concrete_function, instance
        )
        return bound

    def __call__(self, *args, **kwargs):
        concrete, flat_tensors = self._maybe_trace(args, kwargs)
        return concrete(*flat_tensors)

    def get_concrete_function(self, *args, **kwargs) -> ConcreteFunction:
        """The monomorphic function this call signature binds to."""
        concrete, _ = self._maybe_trace(args, kwargs)
        return concrete

    # -- binding-time analysis ----------------------------------------------
    def _canonicalize(self, args, kwargs):
        if self._signature is not None:
            try:
                bound = self._signature.bind(*args, **kwargs)
            except TypeError:
                return args, kwargs
            bound.apply_defaults()
            return tuple(bound.arguments.values()), {}
        return args, kwargs

    def _split_leaves(self, args, kwargs):
        """Separate tensor leaves from static Python leaves."""
        flat = nest.flatten((list(args), kwargs))
        tensor_leaves = []
        for leaf in flat:
            if _is_tensor_leaf(leaf):
                tensor_leaves.append(
                    leaf
                    if isinstance(leaf, TensorBase)
                    else convert_to_tensor(leaf)
                )
        return flat, tensor_leaves

    def _cache_key(self, flat_leaves) -> tuple:
        key = [context.current_device_name()]
        for leaf in flat_leaves:
            key.append(_leaf_key(leaf))
        return tuple(key)

    def _maybe_trace(self, args, kwargs):
        args, kwargs = self._canonicalize(args, kwargs)
        if self._input_signature is not None:
            return self._trace_with_signature(args, kwargs)
        flat_leaves, tensor_leaves = self._split_leaves(args, kwargs)
        key = self._cache_key(flat_leaves)
        with self._lock:
            concrete = self._cache.get(key)
            if concrete is None:
                concrete = self._trace(args, kwargs, tensor_leaves)
                self._cache[key] = concrete
        return concrete, tensor_leaves

    def _trace_with_signature(self, args, kwargs):
        if kwargs:
            raise InvalidArgumentError(
                "Functions with an input_signature take positional tensor "
                "arguments only"
            )
        flat_args = nest.flatten(list(args))
        specs = self._input_signature
        if len(flat_args) != len(specs):
            raise InvalidArgumentError(
                f"Function {self._name!r} expects {len(specs)} tensor "
                f"arguments (from its input_signature), got {len(flat_args)}"
            )
        tensors = []
        for value, spec in zip(flat_args, specs):
            t = convert_to_tensor(value, dtype=spec.dtype)
            if not spec.is_compatible_with(t):
                raise InvalidArgumentError(
                    f"Argument {t.shape}/{t.dtype} is incompatible with the "
                    f"input signature entry {spec}"
                )
            tensors.append(t)
        key = ("signature", context.current_device_name())
        with self._lock:
            concrete = self._cache.get(key)
            if concrete is None:
                concrete = self._trace(
                    tuple(tensors), {}, tensors, override_specs=list(specs)
                )
                self._cache[key] = concrete
        return concrete, tensors

    # -- tracing -----------------------------------------------------------
    def _trace(
        self,
        args,
        kwargs,
        tensor_leaves,
        override_specs: Optional[list[TensorSpec]] = None,
    ) -> ConcreteFunction:
        specs = override_specs or [TensorSpec.from_tensor(t) for t in tensor_leaves]
        created: list[Variable] = []
        with variable_creation_observer(created.append):
            concrete = self._trace_once(args, kwargs, specs)
        if created:
            if self._trace_count > 1 or self._cache:
                raise FailedPreconditionError(
                    f"Function {self._name!r} created new variables on a "
                    "non-initial trace. State must only be created the first "
                    "time the function is called (paper §4.6)."
                )
            self._created_variables.extend(created)
            # The two-trace contract: re-trace to record post-creation
            # behaviour, and verify no further state is created.
            recheck: list[Variable] = []
            with variable_creation_observer(recheck.append):
                concrete = self._trace_once(args, kwargs, specs)
            if recheck:
                raise FailedPreconditionError(
                    f"Function {self._name!r} created variables on its second "
                    "trace; functions must create state only on their first "
                    "call (paper §4.6)."
                )
        return concrete

    def _trace_once(self, args, kwargs, specs) -> ConcreteFunction:
        self._trace_count += 1
        marked_args, marked_kwargs = self._mark_tensors(args, kwargs)
        name = f"{self._name}_{context.unique_id()}"
        graph, flat_outputs, structure = tracing.trace_into_graph(
            self._python_function,
            specs,
            name=name,
            structured_args=(marked_args, marked_kwargs),
        )
        concrete = ConcreteFunction(
            name=name,
            graph=graph,
            flat_outputs=flat_outputs,
            output_structure=structure,
            num_explicit_inputs=len(specs),
            jit_compile=self._jit_compile,
        )
        concrete.graph_function.optimize()
        return concrete

    @staticmethod
    def _mark_tensors(args, kwargs):
        def mark(leaf):
            return tracing.TENSOR_MARKER if _is_tensor_leaf(leaf) else leaf

        marked_args = nest.map_structure(mark, list(args))
        marked_kwargs = nest.map_structure(mark, kwargs)
        return tuple(marked_args), marked_kwargs

    def __repr__(self) -> str:
        return f"<repro.function {self._name!r} with {len(self._cache)} traces>"


def function(
    func: Optional[Callable] = None,
    *,
    input_signature: Optional[Sequence[TensorSpec]] = None,
    name: Optional[str] = None,
    jit_compile: bool = False,
):
    """Decorator staging a Python function as graph functions (§4.1, §4.6).

    Usage::

        @repro.function
        def step(x):
            return repro.matmul(x, x)

    or with an explicit signature to pin a single, shape-polymorphic
    trace::

        @repro.function(input_signature=[repro.TensorSpec([None, 8])])
        def step(batch): ...

    ``jit_compile=True`` additionally lowers each trace through the
    XLA-sim compiler (paper §4.4: "the function decorator supports code
    generation via XLA"): elementwise chains fuse into single dispatches
    and, on the simulated TPU, the whole step becomes one program.
    Functions containing ``py_func`` silently fall back to the graph
    executor.
    """
    if func is not None:
        return Function(
            func, name=name, input_signature=input_signature, jit_compile=jit_compile
        )

    def decorator(f: Callable) -> Function:
        return Function(
            f, name=name, input_signature=input_signature, jit_compile=jit_compile
        )

    return decorator
