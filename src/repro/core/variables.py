"""Variables: program state as Python objects (paper §4.3).

"In TensorFlow Eager, variables correspond to Python objects.  Each
variable object has its own unique storage that is deleted when Python
deletes the object. ... Staged computations reference variables by
unique identifiers, which are no longer usable if the Python variable
objects they reference do not exist."

A :class:`Variable` owns a NumPy buffer on a device and exposes it to
the op layer through a 0-d ``resource`` handle tensor.  Reads and
writes are ordinary ops (stageable, capturable by reference — Listing
7), and reading a variable automatically watches it on all active tapes
(Listing 2).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Union

import numpy as np

from repro.framework import dtypes
from repro.framework.errors import InvalidArgumentError
from repro.framework.tensor_shape import TensorShape
from repro.runtime.context import context
from repro.tensor import Tensor, TensorBase, convert_to_tensor

__all__ = ["Variable", "variable_creation_observer"]

_observer_lock = threading.Lock()
_creation_observers: list[Callable] = []


class variable_creation_observer:
    """Context manager notified of every Variable created inside it.

    The ``function`` decorator uses this to enforce its state-creation
    contract (paper §4.6: "No variables may be created during that
    second trace, or any subsequent one").
    """

    def __init__(self, callback: Callable) -> None:
        self._callback = callback

    def __enter__(self) -> "variable_creation_observer":
        with _observer_lock:
            _creation_observers.append(self._callback)
        return self

    def __exit__(self, *exc_info) -> None:
        with _observer_lock:
            _creation_observers.remove(self._callback)


class Variable:
    """A mutable tensor-shaped value with unique storage.

    Args:
        initial_value: a tensor-convertible value, or a zero-argument
            callable producing one (evaluated eagerly, outside any
            active trace, per the state-creation contract).
        trainable: whether optimizers should update this variable.
        name: optional name used in checkpoints and debugging.
        dtype: optional dtype override for the initial value.
    """

    def __init__(
        self,
        initial_value,
        trainable: bool = True,
        name: Optional[str] = None,
        dtype=None,
    ) -> None:
        from repro.core.tracing import init_scope

        with init_scope():
            if callable(initial_value):
                initial_value = initial_value()
            value = convert_to_tensor(initial_value, dtype=dtype)
            if not isinstance(value, Tensor):
                raise InvalidArgumentError(
                    "Variable initial values must be concrete; wrap creation "
                    "in the first call of the function (paper §4.6) or pass "
                    "an eager tensor"
                )
            device_name = context.current_device_name()
            self._device = (
                context.get_device(device_name)
                if device_name is not None
                else value.device_object
            )
            arr = np.asarray(value.numpy())
            self._storage = self._device.allocate(arr)
            self._dtype = value.dtype
            self._shape = TensorShape(arr.shape)
            self._trainable = bool(trainable)
            self._name = name or f"Variable_{context.unique_id()}"
            self._handle = Tensor(self, dtype=dtypes.resource, device=self._device)
        with _observer_lock:
            observers = list(_creation_observers)
        for callback in observers:
            callback(self)

    # -- identity / metadata ---------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def handle(self) -> Tensor:
        """The resource tensor through which ops reference this variable."""
        return self._handle

    @property
    def dtype(self) -> dtypes.DType:
        return self._dtype

    @property
    def shape(self) -> TensorShape:
        return self._shape

    @property
    def device(self) -> str:
        return self._device.name

    @property
    def trainable(self) -> bool:
        return self._trainable

    # -- reads -------------------------------------------------------------
    def read_value(self):
        """The current value, via a (stageable, tape-visible) read op."""
        from repro.runtime.executor import execute

        return execute(
            "ReadVariableOp",
            [self._handle],
            {"dtype": self._dtype, "shape": self._shape.as_tuple()},
        )

    def value(self):
        return self.read_value()

    def numpy(self) -> np.ndarray:
        """The current value as a NumPy array (no op dispatch)."""
        return self._storage

    def _as_tensor(self):
        """Hook for convert_to_tensor: variables convert by reading."""
        return self.read_value()

    @property
    def constant_value(self):
        return None

    # -- writes --------------------------------------------------------------
    def _assign_op(self, op_name: str, value):
        from repro.runtime.executor import execute

        value = convert_to_tensor(value, dtype=self._dtype)
        execute(op_name, [self._handle, value], {})
        graph = context.current_graph()
        if graph is not None:
            # In a graph, hand back the op node so classic Sessions can
            # fetch it explicitly (the `train_op` idiom).
            return graph.nodes[-1]
        return self

    def assign(self, value):
        """Overwrite the variable's value."""
        return self._assign_op("AssignVariableOp", value)

    def assign_add(self, value):
        """Add ``value`` to the variable in place."""
        return self._assign_op("AssignAddVariableOp", value)

    def assign_sub(self, value):
        """Subtract ``value`` from the variable in place."""
        return self._assign_op("AssignSubVariableOp", value)

    # -- operator sugar (delegates to a read) ----------------------------------
    def __add__(self, other):
        return self.read_value() + other

    def __radd__(self, other):
        return other + self.read_value()

    def __sub__(self, other):
        return self.read_value() - other

    def __rsub__(self, other):
        return other - self.read_value()

    def __mul__(self, other):
        return self.read_value() * other

    def __rmul__(self, other):
        return other * self.read_value()

    def __truediv__(self, other):
        return self.read_value() / other

    def __rtruediv__(self, other):
        return other / self.read_value()

    def __pow__(self, other):
        return self.read_value() ** other

    def __matmul__(self, other):
        return self.read_value() @ other

    def __rmatmul__(self, other):
        return other @ self.read_value()

    def __neg__(self):
        return -self.read_value()

    def __getitem__(self, key):
        return self.read_value()[key]

    def __float__(self) -> float:
        return float(self._storage.reshape(())[()])

    def __repr__(self) -> str:
        return (
            f"<repro.Variable {self._name!r} shape={self._shape} "
            f"dtype={self._dtype.name} value=\n{self._storage!r}>"
        )
